#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# crate dependencies, so no registry access is needed (and none is
# attempted — --offline makes any accidental reintroduction of an external
# dependency fail loudly instead of hanging on the network).
#
# Usage: scripts/verify.sh [--bench] [--bench-smoke] [--faults] [--corruption]
#                          [--hotpath] [--interp] [--mt] [--concurrent]
#                          [--endurance] [--serve]
#   --bench        additionally run the utpr-qc micro-benchmarks
#   --bench-smoke  additionally run fig11 at reduced scale with 1 worker and
#                  then all workers, check both emit BENCH_fig11.json, and —
#                  on machines with >= 4 cores — fail if the parallel run is
#                  not at least as fast as the serial one (15% noise margin)
#   --faults       additionally run a crash-point fault-sweep smoke: one
#                  structure, small scale, exhaustive; check BENCH_faults.json
#                  is emitted and reports zero failures
#   --corruption   additionally run the media-fault campaign smoke (torn
#                  sweeps + bit-flip trials + CRC overhead, small scale);
#                  check BENCH_corruption.json is emitted, reports zero
#                  oracle failures, and CRC write-path overhead <= 15%
#   --hotpath      additionally run the software-lookaside smoke (small
#                  scale): check BENCH_hotpath.json is emitted, the
#                  cached-vs-uncached equivalence probes passed, the YCSB-A
#                  sVALB hit rate is >= 0.95, and the cached va2ra fast
#                  path is >= 3x the cold BTree walk
#   --interp       additionally run the guest-MIPS interpreter smoke (small
#                  scale): check BENCH_interp.json is emitted, the
#                  reference-vs-decoded differential grid passed
#                  (bit-identical checksums and counters), the paired
#                  mem-mix speedup is >= 2x, and the interprocedural
#                  residual check fraction is < 0.42
#   --concurrent   additionally run the durable-linearizability smoke: the
#                  Wing&Gong checker self-tests, the 2-thread exhaustive +
#                  3-thread sampled concurrent-history crash sweeps, the
#                  twin-structure properties, then the concurrent bench at
#                  small scale; check BENCH_concurrent.json is emitted with
#                  strategy- and thread-invariant checksums and that FliT
#                  and Traverse each cut flushes/op by >= 20% vs Eager on
#                  the 4-thread YCSB-A-style runs (hash and list)
#   --endurance    additionally run the endurance smoke: the kv soak
#                  tests (replay, hard gates, scrub-off loss, read-only
#                  eADR), then the endurance bench at small scale; check
#                  BENCH_endurance.json is emitted with zero gate
#                  failures, scrub overhead at the realistic decay rate
#                  <= 10%, the scrub-off hot arm demonstrably losing
#                  keys (detected, never silent), and wear leveling
#                  cutting peak wear vs first-fit
#   --mt           additionally run the multicore smoke: the concurrent
#                  crash-matrix sweep (every crash point of a 3-thread
#                  seeded schedule recovers), then hotpath at small scale;
#                  check the multi-threaded YCSB-A arm's checksums are
#                  bit-identical at every thread count and the modelled
#                  8-core makespan speedup is >= 4x
#   --serve        additionally run the group-commit server smoke: the
#                  wire-protocol property battery, the loopback
#                  integration tests (semantics, fence gate, determinism,
#                  kill-mid-load recovery), then the server bench at small
#                  scale; check BENCH_server.json is emitted with p99
#                  latency reported, batched fences/op at most half of
#                  unbatched (amortization >= 2x), window-invariant
#                  contents checksums, and zero kill-arm oracle failures
#
# Environment:
#   UTPR_QC_SEED  override the property-test base seed (decimal or 0x-hex)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace --offline

run_bench=0
run_smoke=0
run_faults=0
run_corruption=0
run_hotpath=0
run_interp=0
run_mt=0
run_concurrent=0
run_endurance=0
run_serve=0
for arg in "$@"; do
    case "$arg" in
        --bench) run_bench=1 ;;
        --bench-smoke) run_smoke=1 ;;
        --faults) run_faults=1 ;;
        --corruption) run_corruption=1 ;;
        --hotpath) run_hotpath=1 ;;
        --interp) run_interp=1 ;;
        --mt) run_mt=1 ;;
        --concurrent) run_concurrent=1 ;;
        --endurance) run_endurance=1 ;;
        --serve) run_serve=1 ;;
        *) echo "verify: unknown flag: $arg" >&2; exit 2 ;;
    esac
done

if [[ "$run_bench" == 1 ]]; then
    echo "== extra: micro-benchmarks =="
    cargo bench -p utpr-bench --bench micro --offline
fi

# Pulls "wall_ms":<num> out of a BENCH_*.json report without a JSON parser.
wall_ms() {
    sed -n 's/.*"wall_ms":\([0-9.]*\).*/\1/p' "$1"
}

if [[ "$run_smoke" == 1 ]]; then
    echo "== extra: parallel-runner smoke (fig11, small scale) =="
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT

    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$smoke_dir/serial" \
        cargo bench -q -p utpr-bench --bench fig11 --offline > /dev/null
    [[ -f "$smoke_dir/serial/BENCH_fig11.json" ]] || {
        echo "verify: serial run did not emit BENCH_fig11.json" >&2
        exit 1
    }
    serial_ms=$(wall_ms "$smoke_dir/serial/BENCH_fig11.json")

    jobs=$(nproc 2>/dev/null || echo 1)
    UTPR_BENCH_SCALE=small UTPR_JOBS="$jobs" UTPR_BENCH_OUT="$smoke_dir/par" \
        cargo bench -q -p utpr-bench --bench fig11 --offline > /dev/null
    [[ -f "$smoke_dir/par/BENCH_fig11.json" ]] || {
        echo "verify: parallel run did not emit BENCH_fig11.json" >&2
        exit 1
    }
    par_ms=$(wall_ms "$smoke_dir/par/BENCH_fig11.json")

    echo "smoke: serial ${serial_ms} ms, ${jobs} workers ${par_ms} ms"
    if [[ "$jobs" -ge 4 ]]; then
        # The parallel run must be at least as fast as serial, within a 15%
        # noise margin. On fewer than 4 cores there is nothing to gain, so
        # only the JSON emission is checked.
        awk -v s="$serial_ms" -v p="$par_ms" 'BEGIN { exit !(p <= s * 1.15) }' || {
            echo "verify: parallel fig11 (${par_ms} ms) slower than serial (${serial_ms} ms) beyond noise" >&2
            exit 1
        }
    else
        echo "smoke: < 4 cores, skipping speedup check"
    fi
fi

if [[ "$run_faults" == 1 ]]; then
    echo "== extra: crash-point fault-sweep smoke (RB, small scale) =="
    faults_dir=$(mktemp -d)
    trap 'rm -rf "$faults_dir"' EXIT

    UTPR_BENCH_SCALE=small UTPR_FAULTS_ONLY=RB UTPR_BENCH_OUT="$faults_dir" \
        cargo bench -q -p utpr-bench --bench faults --offline
    [[ -f "$faults_dir/BENCH_faults.json" ]] || {
        echo "verify: fault sweep did not emit BENCH_faults.json" >&2
        exit 1
    }
    grep -q '"total_failures":0' "$faults_dir/BENCH_faults.json" || {
        echo "verify: fault sweep reported failures:" >&2
        cat "$faults_dir/BENCH_faults.json" >&2
        exit 1
    }
    echo "smoke: fault sweep clean"
fi

if [[ "$run_corruption" == 1 ]]; then
    echo "== extra: media-fault campaign smoke (small scale) =="
    corr_dir=$(mktemp -d)
    trap 'rm -rf "$corr_dir"' EXIT

    # The bench itself exits nonzero on any oracle failure (silent wrong
    # answer, undetected flip, failed recovery) — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$corr_dir" \
        cargo bench -q -p utpr-bench --bench corruption --offline
    [[ -f "$corr_dir/BENCH_corruption.json" ]] || {
        echo "verify: media-fault campaign did not emit BENCH_corruption.json" >&2
        exit 1
    }
    grep -q '"total_failures":0' "$corr_dir/BENCH_corruption.json" || {
        echo "verify: media-fault campaign reported oracle failures:" >&2
        cat "$corr_dir/BENCH_corruption.json" >&2
        exit 1
    }
    overhead=$(sed -n 's/.*"crc_overhead_frac":\(-\{0,1\}[0-9.]*\).*/\1/p' "$corr_dir/BENCH_corruption.json")
    awk -v o="$overhead" 'BEGIN { exit !(o <= 0.15) }' || {
        echo "verify: CRC write-path overhead ${overhead} exceeds the 15% budget" >&2
        exit 1
    }
    echo "smoke: media-fault campaign clean (CRC overhead ${overhead})"
fi

if [[ "$run_hotpath" == 1 ]]; then
    echo "== extra: software-lookaside smoke (small scale) =="
    hp_dir=$(mktemp -d)
    trap 'rm -rf "$hp_dir"' EXIT

    # The bench exits nonzero itself when any cached-vs-uncached divergence
    # is observed — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$hp_dir" \
        cargo bench -q -p utpr-bench --bench hotpath --offline
    [[ -f "$hp_dir/BENCH_hotpath.json" ]] || {
        echo "verify: hotpath smoke did not emit BENCH_hotpath.json" >&2
        exit 1
    }
    grep -q '"equivalence_ok":true' "$hp_dir/BENCH_hotpath.json" || {
        echo "verify: hotpath smoke reported cached-vs-uncached divergence:" >&2
        cat "$hp_dir/BENCH_hotpath.json" >&2
        exit 1
    }
    hit_rate=$(sed -n 's/.*"svalb_hit_rate":\([0-9.]*\).*/\1/p' "$hp_dir/BENCH_hotpath.json")
    awk -v h="$hit_rate" 'BEGIN { exit !(h >= 0.95) }' || {
        echo "verify: YCSB-A sVALB hit rate ${hit_rate} below the 0.95 floor" >&2
        exit 1
    }
    speedup=$(sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p' "$hp_dir/BENCH_hotpath.json")
    awk -v s="$speedup" 'BEGIN { exit !(s >= 3.0) }' || {
        echo "verify: cached va2ra only ${speedup}x the cold walk (need >= 3x)" >&2
        exit 1
    }
    echo "smoke: lookasides clean (speedup ${speedup}x, sVALB hit rate ${hit_rate})"
fi

if [[ "$run_interp" == 1 ]]; then
    echo "== extra: interpreter fast-path smoke (small scale) =="
    in_dir=$(mktemp -d)
    trap 'rm -rf "$in_dir"' EXIT

    # The bench exits nonzero itself when the differential grid diverges
    # (results, checksums, fuel, or counters) — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$in_dir" \
        cargo bench -q -p utpr-bench --bench interp --offline
    [[ -f "$in_dir/BENCH_interp.json" ]] || {
        echo "verify: interp smoke did not emit BENCH_interp.json" >&2
        exit 1
    }
    grep -q '"checksums_ok":true' "$in_dir/BENCH_interp.json" || {
        echo "verify: interp smoke reported reference-vs-decoded divergence:" >&2
        cat "$in_dir/BENCH_interp.json" >&2
        exit 1
    }
    speedup=$(sed -n 's/.*"speedup_mem":\([0-9.]*\).*/\1/p' "$in_dir/BENCH_interp.json")
    awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' || {
        echo "verify: decoded mem mixes only ${speedup}x the reference walk (need >= 2x)" >&2
        exit 1
    }
    residual=$(sed -n 's/.*"residual_check_fraction":\([0-9.]*\).*/\1/p' "$in_dir/BENCH_interp.json")
    awk -v r="$residual" 'BEGIN { exit !(r < 0.42) }' || {
        echo "verify: interprocedural residual check fraction ${residual} not < 0.42" >&2
        exit 1
    }
    echo "smoke: interp clean (mem speedup ${speedup}x, residual ${residual})"
fi

if [[ "$run_mt" == 1 ]]; then
    echo "== extra: multicore smoke (schedule explorer + crash sweeps + MT YCSB-A) =="
    cargo test -q --offline -p utpr-qc sched
    cargo test -q --offline -p utpr-kv mt::
    cargo test -q --offline --test crash_matrix concurrent_fault_sweep
    cargo test -q --offline -p utpr-bench --test par_determinism mt_ycsb

    mt_dir=$(mktemp -d)
    trap 'rm -rf "$mt_dir"' EXIT

    # The bench exits nonzero itself when the MT checksums diverge across
    # thread counts — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$mt_dir" \
        cargo bench -q -p utpr-bench --bench hotpath --offline
    [[ -f "$mt_dir/BENCH_hotpath.json" ]] || {
        echo "verify: multicore smoke did not emit BENCH_hotpath.json" >&2
        exit 1
    }
    grep -q '"mt_checksum_ok":true' "$mt_dir/BENCH_hotpath.json" || {
        echo "verify: MT YCSB-A checksums diverged across thread counts:" >&2
        cat "$mt_dir/BENCH_hotpath.json" >&2
        exit 1
    }
    mt_speedup=$(sed -n 's/.*"mt_speedup_8":\([0-9.]*\).*/\1/p' "$mt_dir/BENCH_hotpath.json")
    awk -v s="$mt_speedup" 'BEGIN { exit !(s >= 4.0) }' || {
        echo "verify: 8-core modelled speedup ${mt_speedup}x below the 4x floor" >&2
        exit 1
    }
    echo "smoke: multicore clean (8-core speedup ${mt_speedup}x, checksums thread-count-invariant)"
fi

if [[ "$run_concurrent" == 1 ]]; then
    echo "== extra: durable-linearizability smoke (checker + crash sweeps + flush-savings gate) =="
    # Checker self-tests (unit + macro-API selftests with the planted
    # corruptions), the turnstile, the concurrent-history crash sweeps
    # (2-thread exhaustive and 3-thread sampled, all strategies), and the
    # 1-thread twin-structure properties.
    cargo test -q --offline -p utpr-qc linear
    cargo test -q --offline -p utpr-qc --test selftest checker
    cargo test -q --offline -p utpr-kv conc
    cargo test -q --offline -p utpr-ds --test twin

    cc_dir=$(mktemp -d)
    trap 'rm -rf "$cc_dir"' EXIT

    # The bench exits nonzero itself when the audit checksum varies with
    # flush strategy or thread count — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$cc_dir" \
        cargo bench -q -p utpr-bench --bench concurrent --offline
    [[ -f "$cc_dir/BENCH_concurrent.json" ]] || {
        echo "verify: concurrent smoke did not emit BENCH_concurrent.json" >&2
        exit 1
    }
    grep -q '"checksum_ok":true' "$cc_dir/BENCH_concurrent.json" || {
        echo "verify: concurrent checksums diverged across strategies/threads:" >&2
        cat "$cc_dir/BENCH_concurrent.json" >&2
        exit 1
    }
    for key in flit_savings_chash_t4 traverse_savings_chash_t4 \
               flit_savings_clist_t4 traverse_savings_clist_t4; do
        saving=$(sed -n "s/.*\"$key\":\(-\{0,1\}[0-9.]*\).*/\1/p" "$cc_dir/BENCH_concurrent.json")
        awk -v s="$saving" 'BEGIN { exit !(s >= 0.20) }' || {
            echo "verify: $key = ${saving}, below the 20% flush-reduction floor" >&2
            exit 1
        }
        echo "smoke: $key = ${saving}"
    done
    echo "smoke: concurrent clean (checksums invariant, flush savings >= 20%)"
fi

if [[ "$run_endurance" == 1 ]]; then
    echo "== extra: endurance smoke (soak tests + bench gates, small scale) =="
    # The seeded-soak unit tests: bit-for-bit replay, the hard
    # zero-silent-corruption gates, scrub-off loss at hot decay, and the
    # read-only eADR arm.
    cargo test -q --offline -p utpr-kv endurance
    cargo test -q --offline -p utpr-heap scrub

    end_dir=$(mktemp -d)
    trap 'rm -rf "$end_dir"' EXIT

    # The bench exits nonzero itself on any gate failure (undetected
    # flip, silent audit mismatch, a too-gentle scrub-off arm, or wear
    # leveling failing to cut peak wear) — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$end_dir" \
        cargo bench -q -p utpr-bench --bench endurance --offline
    [[ -f "$end_dir/BENCH_endurance.json" ]] || {
        echo "verify: endurance smoke did not emit BENCH_endurance.json" >&2
        exit 1
    }
    grep -q '"total_failures":0' "$end_dir/BENCH_endurance.json" || {
        echo "verify: endurance smoke reported gate failures:" >&2
        cat "$end_dir/BENCH_endurance.json" >&2
        exit 1
    }
    overhead=$(sed -n 's/.*"scrub_overhead_frac":\([0-9.]*\).*/\1/p' "$end_dir/BENCH_endurance.json")
    awk -v o="$overhead" 'BEGIN { exit !(o <= 0.10) }' || {
        echo "verify: scrub overhead ${overhead} exceeds the 10% budget at the realistic decay rate" >&2
        exit 1
    }
    lost=$(sed -n 's/.*"lost_keys_noscrub_hot":\([0-9]*\).*/\1/p' "$end_dir/BENCH_endurance.json")
    awk -v l="$lost" 'BEGIN { exit !(l > 0) }' || {
        echo "verify: scrub-off hot arm lost no keys — the soak is too gentle to test the scrubber" >&2
        exit 1
    }
    echo "smoke: endurance clean (scrub overhead ${overhead}, scrub-off hot arm lost ${lost} keys, all detected)"
fi

if [[ "$run_serve" == 1 ]]; then
    echo "== extra: group-commit server smoke (protocol + loopback + bench gates) =="
    # The wire-protocol property battery (round-trip bit-for-bit under
    # arbitrary chunking, mutation robustness, typed malformed-frame
    # errors) and the loopback integration tests (serving semantics,
    # the fence-amortization gate, contents determinism, and the
    # kill-mid-load recovery oracles).
    cargo test -q --offline -p utpr-serve

    srv_dir=$(mktemp -d)
    trap 'rm -rf "$srv_dir"' EXIT

    # The bench exits nonzero itself when a gate fails (amortization
    # < 2x, checksum divergence across windows/modes, or a kill-arm
    # oracle violation) — set -e propagates that.
    UTPR_BENCH_SCALE=small UTPR_BENCH_OUT="$srv_dir" \
        cargo bench -q -p utpr-bench --bench server --offline
    [[ -f "$srv_dir/BENCH_server.json" ]] || {
        echo "verify: server smoke did not emit BENCH_server.json" >&2
        exit 1
    }
    grep -q '"p99_us":' "$srv_dir/BENCH_server.json" || {
        echo "verify: server smoke reported no p99 latency" >&2
        exit 1
    }
    grep -q '"checksum_ok":true' "$srv_dir/BENCH_server.json" || {
        echo "verify: server contents checksums diverged across batch windows:" >&2
        cat "$srv_dir/BENCH_server.json" >&2
        exit 1
    }
    grep -q '"kill_oracles_ok":true' "$srv_dir/BENCH_server.json" || {
        echo "verify: kill-mid-load arm reported oracle failures:" >&2
        cat "$srv_dir/BENCH_server.json" >&2
        exit 1
    }
    amort=$(sed -n 's/.*"fence_amortization":\([0-9.]*\).*/\1/p' "$srv_dir/BENCH_server.json")
    awk -v a="$amort" 'BEGIN { exit !(a >= 2.0) }' || {
        echo "verify: fence amortization ${amort}x below the 2x floor (batched fences/op must be <= 0.5x unbatched)" >&2
        exit 1
    }
    echo "smoke: server clean (amortization ${amort}x, checksums invariant, kill arm recovered)"
fi

echo "verify: OK"
