#!/usr/bin/env bash
# Tier-1 verification gate. Fully offline: the workspace has zero external
# crate dependencies, so no registry access is needed (and none is
# attempted — --offline makes any accidental reintroduction of an external
# dependency fail loudly instead of hanging on the network).
#
# Usage: scripts/verify.sh [--bench]
#   --bench  additionally run the utpr-qc micro-benchmarks as a smoke test
#
# Environment:
#   UTPR_QC_SEED  override the property-test base seed (decimal or 0x-hex)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace --offline

if [[ "${1:-}" == "--bench" ]]; then
    echo "== extra: micro-benchmarks =="
    cargo bench -p utpr-bench --bench micro --offline
fi

echo "verify: OK"
