#!/usr/bin/env bash
# Deterministic-performance baseline gate.
#
# The simulator's *modelled* outputs — simulated cycles and workload
# checksums per (benchmark, mode) — are bit-deterministic for a fixed seed
# and scale, so they can be committed and diffed like any other artifact.
# This script records them under baselines/ and fails CI-style when a code
# change regresses modelled cycles by more than 10% or perturbs a workload
# checksum at all.
#
# Host-time fields (wall_ms, median_ns, p95_ns, ...) are machine noise and
# are deliberately NEVER compared.
#
# Usage:
#   scripts/bench_baseline.sh check    compare a fresh run against baselines/
#                                      (default when no argument is given)
#   scripts/bench_baseline.sh record   re-run and overwrite baselines/
#
# Both modes run fig11, hotpath, interp, concurrent, endurance, and server
# at small scale with UTPR_JOBS=1
# so the parallel scheduler cannot reorder anything.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
# Absolute: cargo bench runs with the package dir as cwd, so a relative
# UTPR_BENCH_OUT would land the reports inside crates/bench/.
base_dir="$(pwd)/baselines"
tolerance=0.10

run_benches() {
    local out="$1"
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench fig11 --offline > /dev/null
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench hotpath --offline > /dev/null
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench interp --offline > /dev/null
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench concurrent --offline > /dev/null
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench endurance --offline > /dev/null
    UTPR_BENCH_SCALE=small UTPR_JOBS=1 UTPR_BENCH_OUT="$out" \
        cargo bench -q -p utpr-bench --bench server --offline > /dev/null
}

# Emits "key cycles checksum" lines from a BENCH_*.json report: one line per
# run record that carries modelled cycles. fig11 records are keyed
# benchmark/mode; hotpath YCSB records are keyed by their run name. interp
# records carry no cycles; their deterministic guest-instruction count
# stands in (same seed + scale => bit-identical count), and concurrent
# grid cells use their deterministic executed-op count the same way (the
# audit checksum is the real payload there). Records with none of these
# fields (host-timing summaries, the report header) are skipped.
# Checksums are kept as strings — they are full u64s and would lose
# precision as awk doubles.
extract() {
    awk '
        BEGIN { RS = "{"; FS = "," }
        {
            key = ""; name = ""; cyc = ""; gi = ""; sum = ""
            for (i = 1; i <= NF; i++) {
                if ($i ~ /^"benchmark":/) {
                    v = $i; gsub(/.*:"|"/, "", v); key = v
                } else if ($i ~ /^"mode":/) {
                    v = $i; gsub(/.*:"|"/, "", v); key = key "/" v
                } else if ($i ~ /^"name":/) {
                    v = $i; gsub(/.*:"|"/, "", v); name = v
                } else if ($i ~ /^"cycles":/) {
                    v = $i; sub(/.*:/, "", v); cyc = v
                } else if ($i ~ /^"guest_insts":/) {
                    v = $i; sub(/.*:/, "", v); gi = v
                } else if ($i ~ /^"ops":/) {
                    v = $i; sub(/.*:/, "", v); if (gi == "") gi = v
                } else if ($i ~ /^"checksum":/) {
                    v = $i; sub(/.*:/, "", v); sum = v
                }
            }
            if (key == "") key = name
            if (cyc == "") cyc = gi
            if (key != "" && cyc != "") print key, cyc, sum
        }' "$1"
}

compare() {
    # $1 = baseline extract, $2 = current extract, $3 = report label
    awk -v tol="$tolerance" -v label="$3" '
        NR == FNR { cyc[$1] = $2; sum[$1] = $3; next }
        {
            if (!($1 in cyc)) {
                printf "%s: %s has no committed baseline (run `scripts/bench_baseline.sh record`)\n", label, $1
                bad = 1; next
            }
            seen[$1] = 1
            if (sum[$1] != $3) {
                printf "%s: %s checksum drifted %s -> %s (workload results changed!)\n", label, $1, sum[$1], $3
                bad = 1
            }
            b = cyc[$1] + 0; c = $2 + 0
            if (b > 0 && c > b * (1 + tol)) {
                printf "%s: %s regressed: %d cycles vs baseline %d (%+.1f%%)\n", label, $1, c, b, (c - b) * 100.0 / b
                bad = 1
            } else if (b > 0 && c < b * (1 - tol)) {
                printf "%s: %s improved beyond tolerance: %d cycles vs baseline %d (%+.1f%%) — consider re-recording\n", label, $1, c, b, (c - b) * 100.0 / b
            }
        }
        END {
            for (k in cyc) if (!(k in seen)) {
                printf "%s: baseline key %s missing from current run\n", label, k
                bad = 1
            }
            exit bad
        }' "$1" "$2"
}

case "$mode" in
record)
    mkdir -p "$base_dir"
    echo "== recording baselines (small scale, 1 worker) =="
    run_benches "$base_dir"
    for f in "$base_dir"/BENCH_fig11.json "$base_dir"/BENCH_hotpath.json "$base_dir"/BENCH_interp.json "$base_dir"/BENCH_concurrent.json "$base_dir"/BENCH_endurance.json "$base_dir"/BENCH_server.json; do
        n=$(extract "$f" | wc -l)
        echo "recorded $f ($n keyed runs)"
    done
    ;;
check)
    for f in "$base_dir"/BENCH_fig11.json "$base_dir"/BENCH_hotpath.json "$base_dir"/BENCH_interp.json "$base_dir"/BENCH_concurrent.json "$base_dir"/BENCH_endurance.json "$base_dir"/BENCH_server.json; do
        [[ -f "$f" ]] || {
            echo "bench_baseline: $f missing — run \`scripts/bench_baseline.sh record\` first" >&2
            exit 2
        }
    done
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    echo "== baseline check (small scale, 1 worker, ${tolerance} cycle tolerance) =="
    run_benches "$work"
    ok=1
    for name in fig11 hotpath interp concurrent endurance server; do
        extract "$base_dir/BENCH_$name.json" > "$work/$name.base"
        extract "$work/BENCH_$name.json" > "$work/$name.cur"
        if compare "$work/$name.base" "$work/$name.cur" "$name"; then
            echo "$name: $(wc -l < "$work/$name.cur") runs within baseline"
        else
            ok=0
        fi
    done
    [[ "$ok" == 1 ]] || { echo "bench_baseline: FAILED" >&2; exit 1; }
    echo "bench_baseline: OK"
    ;;
*)
    echo "usage: scripts/bench_baseline.sh [check|record]" >&2
    exit 2
    ;;
esac
