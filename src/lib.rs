//! # utpr — user-transparent persistent references for legacy libraries on NVM
//!
//! A complete, executable reproduction of *"Supporting Legacy Libraries on
//! Non-Volatile Memory: A User-Transparent Approach"* (Ye, Xu, Shen, Liao,
//! Jin, Solihin — ISCA 2021), from the tagged 64-bit pointer format up to
//! the interval timing model that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates.
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`heap`] | simulated 48-bit address space, persistent pools, allocators |
//! | [`uptr`] | the pointer format, Fig. 4 C11 semantics, the four-mode [`uptr::ExecEnv`] |
//! | [`sim`]  | caches, TLBs, branch predictor, POLB/VALB, storeP unit, cycle model |
//! | [`cc`]   | mini-IR, pointer-property dataflow inference, interpreter |
//! | [`ds`]   | LL, Hash, RB, Splay, AVL, SG over the persistent heap |
//! | [`kv`]   | YCSB-style workloads and the KV benchmark harness |
//! | [`ml`]   | matrix library + KNN case study |
//!
//! ## A complete round trip
//!
//! ```
//! use utpr::prelude::*;
//!
//! let mut space = AddressSpace::new(1);
//! let pool = space.create_pool("facade", 8 << 20)?;
//! let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
//!
//! let mut tree = RbTree::create(&mut env)?;
//! tree.insert(&mut env, 42, 4242)?;
//! env.set_root(site!("facade.save", StackLocal), tree.descriptor())?;
//!
//! env.space_mut().restart();                 // crash
//! env.space_mut().open_pool("facade")?;      // new run, new base address
//! let mut tree = RbTree::open(env.root(site!("facade.load", KnownReturn))?);
//! assert_eq!(tree.get(&mut env, 42)?, Some(4242));
//! # Ok::<(), utpr::Error>(())
//! ```

use std::fmt;

pub use utpr_cc as cc;
pub use utpr_ds as ds;
pub use utpr_heap as heap;
pub use utpr_kv as kv;
pub use utpr_ml as ml;
pub use utpr_ptr as uptr;
pub use utpr_sim as sim;

/// The workspace-wide error: every crate's failure type converts into it,
/// so application code (the examples, scripts built on the facade) can use
/// one `?` everywhere instead of naming `utpr_heap::HeapError`,
/// `utpr_cc::InterpError`, `utpr_cc::ParseError`, or `utpr_cc::VerifyError`
/// directly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A simulated-memory fault (allocation, translation, pool, crash).
    Heap(heap::HeapError),
    /// A mini-IR interpreter failure.
    Interp(cc::InterpError),
    /// A mini-IR parse failure.
    Parse(cc::ParseError),
    /// A mini-IR structural verification failure.
    Verify(cc::VerifyError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Heap(e) => write!(f, "{e}"),
            Error::Interp(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Heap(e) => Some(e),
            Error::Interp(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Verify(e) => Some(e),
        }
    }
}

impl From<heap::HeapError> for Error {
    fn from(e: heap::HeapError) -> Self {
        Error::Heap(e)
    }
}

impl From<cc::InterpError> for Error {
    fn from(e: cc::InterpError) -> Self {
        // An interpreter fault that is really a heap fault stays a heap
        // fault, so matching on `Error::Heap` works regardless of which
        // layer surfaced it.
        match e {
            cc::InterpError::Heap(h) => Error::Heap(h),
            other => Error::Interp(other),
        }
    }
}

impl From<cc::ParseError> for Error {
    fn from(e: cc::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<cc::VerifyError> for Error {
    fn from(e: cc::VerifyError) -> Self {
        Error::Verify(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything an application built on the facade usually needs: the
/// address space, the environment builder and its knobs, the six data
/// structures, the KV harness types, and the unified [`Error`]/[`Result`].
pub mod prelude {
    pub use crate::ds::{
        AvlTree, BPlusTree, ConcHash, ConcList, ConcurrentIndex, FlushStrategy, HashMapIndex,
        Index, IndexCore, IndexOps, LinkedList, RbTree, ScapegoatTree, SplayTree, Striped,
    };
    pub use crate::heap::{
        AddressSpace, FaultPlan, PoolId, RelLoc, SharedPool, SlabId, UndoLog, VirtAddr,
    };
    pub use crate::kv::{Benchmark, KvStore, SweepSpec, WorkloadSpec};
    pub use crate::uptr::{
        site, CheckPolicy, CountingSink, ExecEnv, ExecEnvBuilder, Mode, NullSink, Placement, UPtr,
    };
    pub use crate::{Error, Result};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_converts_and_displays() {
        let h: Error = heap::HeapError::NoAddressSpace.into();
        assert!(matches!(h, Error::Heap(_)));
        let i: Error = cc::InterpError::OutOfFuel.into();
        assert!(matches!(i, Error::Interp(_)));
        let hi: Error = cc::InterpError::Heap(heap::HeapError::NoAddressSpace).into();
        assert!(matches!(hi, Error::Heap(_)), "nested heap faults unwrap");
        let p: Error = cc::ParseError { line: 3, message: "bad token".into() }.into();
        assert!(matches!(p, Error::Parse(_)));
        for e in [h, i, p] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some());
        }
    }

    #[test]
    fn question_mark_spans_layers() {
        fn cross_layer() -> Result<u64> {
            let mut space = heap::AddressSpace::new(9);
            let pool = space.create_pool("facade-test", 1 << 20)?; // HeapError
            let loc = space.pmalloc(pool, 16)?;
            let va = space.ra2va(loc)?;
            space.write_u64(va, 7)?;
            Ok(space.read_u64(va)?)
        }
        assert_eq!(cross_layer().unwrap(), 7);
    }
}
