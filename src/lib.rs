//! # utpr — user-transparent persistent references for legacy libraries on NVM
//!
//! A complete, executable reproduction of *"Supporting Legacy Libraries on
//! Non-Volatile Memory: A User-Transparent Approach"* (Ye, Xu, Shen, Liao,
//! Jin, Solihin — ISCA 2021), from the tagged 64-bit pointer format up to
//! the interval timing model that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates.
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`heap`] | simulated 48-bit address space, persistent pools, allocators |
//! | [`uptr`] | the pointer format, Fig. 4 C11 semantics, the four-mode [`uptr::ExecEnv`] |
//! | [`sim`]  | caches, TLBs, branch predictor, POLB/VALB, storeP unit, cycle model |
//! | [`cc`]   | mini-IR, pointer-property dataflow inference, interpreter |
//! | [`ds`]   | LL, Hash, RB, Splay, AVL, SG over the persistent heap |
//! | [`kv`]   | YCSB-style workloads and the KV benchmark harness |
//! | [`ml`]   | matrix library + KNN case study |
//!
//! ## A complete round trip
//!
//! ```
//! use utpr::uptr::{site, ExecEnv, Mode, NullSink};
//! use utpr::heap::AddressSpace;
//! use utpr::ds::{Index, RbTree};
//!
//! let mut space = AddressSpace::new(1);
//! let pool = space.create_pool("facade", 8 << 20)?;
//! let mut env = ExecEnv::new(space, Mode::Hw, Some(pool), NullSink);
//!
//! let mut tree = RbTree::create(&mut env)?;
//! tree.insert(&mut env, 42, 4242)?;
//! env.set_root(site!("facade.save", StackLocal), tree.descriptor())?;
//!
//! env.space_mut().restart();                 // crash
//! env.space_mut().open_pool("facade")?;      // new run, new base address
//! let mut tree = RbTree::open(env.root(site!("facade.load", KnownReturn))?);
//! assert_eq!(tree.get(&mut env, 42)?, Some(4242));
//! # Ok::<(), utpr::heap::HeapError>(())
//! ```

pub use utpr_cc as cc;
pub use utpr_ds as ds;
pub use utpr_heap as heap;
pub use utpr_kv as kv;
pub use utpr_ml as ml;
pub use utpr_ptr as uptr;
pub use utpr_sim as sim;
