//! The compiler-based method end to end (paper §V-B): build a small
//! "library function" in the IR, run the pointer-property dataflow
//! inference, see which dynamic checks survive, and execute it through the
//! interpreter against the simulated persistent heap.
//!
//! Run with: `cargo run --example compiler_pass`

use utpr::cc::analysis::analyze_module;
use utpr::cc::interp::{Interp, Val};
use utpr::cc::ir::{CmpOp, FnBuilder, Module, Operand::*};
use utpr::prelude::*;

fn main() -> utpr::Result<()> {
    // A legacy-style library function:
    //   void append(Node** slot, long v) {
    //       Node* n = pmalloc(16); n->val = v;
    //       n->next = *slot; *slot = n;
    //   }
    // `slot` is a parameter — the compiler cannot know whether callers pass
    // volatile or persistent memory, the exact situation the paper targets.
    let mut b = FnBuilder::new("append", 2);
    let slot = b.param(0);
    let v = b.param(1);
    let n = b.fresh();
    b.pmalloc(n, Imm(16));
    b.store(Reg(n), 0, Reg(v));
    let old = b.fresh();
    b.load_ptr(old, Reg(slot), 0);
    b.store_ptr(Reg(n), 8, Reg(old));
    b.store_ptr(Reg(slot), 0, Reg(n));
    b.ret(None);

    // sum(slot): walk the list.
    let mut s = FnBuilder::new("sum", 1);
    let slot_p = s.param(0);
    let acc = s.fresh();
    let p = s.fresh();
    let loop_bb = s.new_block();
    let body = s.new_block();
    let done = s.new_block();
    s.const_int(acc, 0);
    s.load_ptr(p, Reg(slot_p), 0);
    s.br(loop_bb);
    s.switch_to(loop_bb);
    let c = s.fresh();
    s.cmp_ptr(c, CmpOp::Ne, Reg(p), Null);
    s.cond_br(Reg(c), body, done);
    s.switch_to(body);
    let val = s.fresh();
    s.load(val, Reg(p), 0);
    s.int_add(acc, Reg(acc), Reg(val));
    s.load_ptr(p, Reg(p), 8);
    s.br(loop_bb);
    s.switch_to(done);
    s.ret(Some(Reg(acc)));

    let mut module = Module::new();
    module.add(b.finish());
    module.add(s.finish());
    module.verify()?;

    println!("=== the IR the pass sees ===\n{module}\n");

    // Inference: which sites keep their dynamic checks?
    let report = analyze_module(&module);
    for (name, analysis) in &report.functions {
        println!(
            "{name}: {} pointer-op sites, {} still need checks",
            analysis.total_sites(),
            analysis.checked_sites()
        );
    }
    println!(
        "static residual-check fraction: {:.0}% (paper measures ~42% on its benchmarks)\n",
        100.0 * report.static_check_fraction()
    );

    // Execute against the simulated persistent heap.
    let mut space = AddressSpace::new(3);
    let pool = space.create_pool("cc-demo", 1 << 20)?;
    let slot_loc = space.pmalloc(pool, 8)?;
    let slot_ptr = Val::Ptr(UPtr::from_rel(slot_loc));
    let mut interp = Interp::new(&mut space, pool, &module);
    for v in 1..=10i64 {
        interp.run("append", vec![slot_ptr, Val::Int(v)])?;
    }
    let total = interp.run("sum", vec![slot_ptr])?;
    println!("sum of appended values: {total:?} (expected Some(Int(55)))");
    let st = interp.stats();
    println!(
        "executed checks: {} of {} a naive compiler would run ({:.0}%)",
        st.executed_checks,
        st.max_checks,
        100.0 * st.dynamic_check_fraction()
    );
    Ok(())
}
