//! End-to-end crash recovery of a whole key-value store: load 1,000 pairs
//! into a persistent red-black tree, crash the process, re-open the pool in
//! a new "run" (different mapping address), and read everything back.
//!
//! Run with: `cargo run --release --example crash_recovery`

use utpr::kv::harness::crash_and_recover_demo;
use utpr::prelude::*;

fn main() -> utpr::Result<()> {
    let spec = WorkloadSpec { records: 1_000, operations: 0, read_fraction: 0.95, seed: 77 };
    println!("loading {} records into a persistent RB-tree KV store...", spec.records);
    let (before, after) = crash_and_recover_demo(&spec)?;
    println!("records before crash: {before}");
    println!("records after recovery: {after}");
    println!("every key re-read with its original value — recovery complete.");
    Ok(())
}
