//! Crash-consistent use of an unmodified library (paper §VI): the
//! application opens a persistent transaction around calls into the
//! red-black tree; undo logging happens transparently at the store
//! instructions. A crash before commit rolls the tree back to a consistent
//! state — without a single change to the tree code.
//!
//! Run with: `cargo run --example transactions`

use utpr::prelude::*;

fn main() -> utpr::Result<()> {
    let mut space = AddressSpace::new(808);
    let pool = space.create_pool("ledger", 16 << 20)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();

    let mut tree = RbTree::create(&mut env)?;
    for k in 0..50u64 {
        tree.insert(&mut env, k, k * 100)?;
    }
    env.set_root(site!("txn-ex.save", StackLocal), tree.descriptor())?;
    println!("ledger holds {} entries", tree.len(&mut env)?);

    // A multi-step update that must be atomic: move 3 entries. Use the raw
    // begin so we can "crash" before the commit ever happens.
    env.txn_begin()?;
    tree.remove(&mut env, 10)?;
    tree.remove(&mut env, 11)?;
    tree.insert(&mut env, 1000, 42)?;
    println!("inside txn: {} entries (uncommitted)", tree.len(&mut env)?);

    // Crash before commit.
    env.space_mut().restart();
    let pool = env.space_mut().open_pool("ledger")?;
    let rolled_back = UndoLog::recover(env.space_mut(), pool)?;
    println!("recovery rolled back a torn transaction: {rolled_back}");

    let mut tree = RbTree::open(env.root(site!("txn-ex.load", KnownReturn))?);
    println!(
        "after recovery: {} entries, key 10 = {:?}, key 1000 = {:?}",
        tree.len(&mut env)?,
        tree.get(&mut env, 10)?,
        tree.get(&mut env, 1000)?
    );
    assert_eq!(tree.len(&mut env)?, 50);
    tree.validate(&mut env)?;
    println!("tree invariants verified — the unmodified library is crash-consistent.");

    // The same update, committed this time — `with_txn` scopes the
    // transaction to a closure and commits on success, aborts on error.
    env.with_txn(|env| {
        tree.remove(env, 10)?;
        tree.insert(env, 1000, 42)
    })?;
    println!(
        "committed: {} entries, key 1000 = {:?}",
        tree.len(&mut env)?,
        tree.get(&mut env, 1000)?
    );
    Ok(())
}
