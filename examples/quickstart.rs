//! Quickstart: user-transparent persistent references in five minutes.
//!
//! Builds a persistent linked structure exactly the way legacy code would —
//! plain loads, stores and pointer assignments — and shows that (a) the
//! pointers stored in NVM are relocation-stable relative addresses, and
//! (b) the data survives a crash and re-attachment at a different address.
//!
//! Run with: `cargo run --example quickstart`

use utpr::prelude::*;

fn main() -> utpr::Result<()> {
    // A process address space with one persistent pool.
    let mut space = AddressSpace::new(2024);
    let pool = space.create_pool("quickstart", 1 << 20)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();

    // Legacy-style code: build a 3-node list. Notice there is no special
    // pointer type anywhere — the env plays the role of the hardware.
    let mut head = UPtr::NULL;
    for value in (1..=3u64).rev() {
        let node = env.alloc(site!("qs.alloc", AllocResult), 16)?;
        env.write_u64(site!("qs.val", AllocResult), node, 0, value)?;
        env.write_ptr(site!("qs.next", AllocResult), node, 8, head)?;
        head = node;
    }
    env.set_root(site!("qs.root", StackLocal), head)?;

    // The stored format in NVM is relative (bit 63 set) — relocatable.
    let raw_next = env.peek_raw(head, 8)?;
    println!("stored next-pointer bits: {raw_next:#018x} (relative: {})", raw_next >> 63 == 1);

    // Crash. DRAM is gone; the pool re-attaches at a different address.
    let old_base = env.space().attachment(pool).unwrap().base;
    env.space_mut().restart();
    env.space_mut().open_pool("quickstart")?;
    let new_base = env.space().attachment(pool).unwrap().base;
    println!("pool base across restart: {old_base} -> {new_base}");

    // Walk the recovered list through the persistent root.
    let mut p = env.root(site!("qs.reload", KnownReturn))?;
    print!("recovered list:");
    while !p.is_null() {
        print!(" {}", env.read_u64(site!("qs.walk.val", MemLoad), p, 0)?);
        p = env.read_ptr(site!("qs.walk.next", MemLoad), p, 8)?;
    }
    println!();
    println!("ok: data survived relocation with zero pointer fixup.");
    Ok(())
}
