//! The paper's §VII-E case study: a KNN classifier (MLPack analogue) whose
//! four matrices (Armadillo analogue) can live in any DRAM/NVM combination.
//! With user-transparent references all 16 combinations run the *same*
//! binary; only allocation placements differ.
//!
//! Run with: `cargo run --release --example knn_pipeline`

use utpr::ml::{run_knn, Dataset, Knn, KnnPlacements};
use utpr::prelude::*;
use utpr::sim::SimConfig;

fn main() -> utpr::Result<()> {
    // Part 1: every placement combination computes the same predictions.
    let mut space = AddressSpace::new(99);
    let pool = space.create_pool("knn-demo", 64 << 20)?;
    let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
    let mut data = Dataset::iris_like(11);
    data.features.truncate(60);
    data.labels.truncate(60);

    let combos = KnnPlacements::all_combinations(pool);
    let mut reference = None;
    for (i, placements) in combos.iter().enumerate() {
        let mut knn = Knn::setup(&mut env, &data, *placements, 3)?;
        let acc = knn.classify_all(&mut env, &data)?;
        let r = *reference.get_or_insert(acc);
        assert_eq!(acc, r, "combination {i} diverged");
    }
    println!(
        "all {} DRAM/NVM placement combinations produced accuracy {:.3} from one binary",
        combos.len(),
        reference.unwrap()
    );

    // Part 2: performance across the four builds (full 150-sample dataset).
    println!("\nKNN on the full iris-like dataset, all four builds:");
    let vol = run_knn(Mode::Volatile, SimConfig::table_iv(), 3, 11)?;
    for mode in Mode::ALL {
        let r = run_knn(mode, SimConfig::table_iv(), 3, 11)?;
        println!(
            "  {:<9} {:>12.0} cycles  ({:.2}x native)  accuracy {:.3}",
            mode.label(),
            r.cycles,
            r.cycles / vol.cycles,
            r.accuracy
        );
    }

    // Part 3: the productivity comparison the paper reports.
    println!("\nmigration effort (paper §VII-E):");
    for e in utpr::ml::paper_knn_efforts() {
        println!(
            "  {:<32} {:>4} lines, {:>2} versions needed",
            e.approach, e.lines_changed, e.versions_needed
        );
    }
    Ok(())
}
