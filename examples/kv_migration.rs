//! The library-migration story: the same red-black-tree "library" code runs
//! as a volatile program, as an NVM program under explicit persistent
//! references, under software user-transparent references, and with the
//! paper's hardware support — with identical results and very different
//! costs.
//!
//! Run with: `cargo run --release --example kv_migration`

use utpr::prelude::*;
use utpr::kv::harness::run_all_modes;
use utpr::sim::SimConfig;

fn main() -> utpr::Result<()> {
    let spec = WorkloadSpec { records: 2_000, operations: 10_000, read_fraction: 0.95, seed: 7 };
    println!(
        "running the RB key-value benchmark ({} records, {} ops) in all four builds...\n",
        spec.records, spec.operations
    );
    let results = run_all_modes(Benchmark::Rb, SimConfig::table_iv(), &spec)?;
    let vol = results.iter().find(|r| r.mode == Mode::Volatile).unwrap().cycles;

    println!("{:<10} {:>14} {:>10} {:>12} {:>16}", "build", "cycles", "vs native", "checks", "translations");
    for r in &results {
        println!(
            "{:<10} {:>14.0} {:>9.2}x {:>12} {:>16}",
            r.mode.label(),
            r.cycles,
            r.cycles / vol,
            r.ptr.dynamic_checks,
            r.sim.polb_accesses + r.sim.valb_accesses,
        );
    }
    println!(
        "\nall four builds computed the same checksum: {:#x}",
        results[0].checksum
    );
    println!("migration effort: one changed line (the allocator choice) — the tree code is shared.");
    Ok(())
}
