//! The POLB and VALB: the paper's two new MMU lookaside structures.
//!
//! - POLB (persistent object lookaside buffer): pool id → base virtual
//!   address, used by `ra2va` (loads through relative pointers, storeP
//!   destination conversion). Backed by the kernel POTB; a miss costs a
//!   POW walk.
//! - VALB (virtual address lookaside buffer): virtual address → pool id,
//!   used by `va2ra` (storeP storing a persistent-half virtual address).
//!   Modelled as a fully-associative range TCAM over the kernel VATB
//!   (a range table of pool attachments); a miss costs a VAW walk.

use crate::config::LookasideCfg;

/// Fully-associative LRU buffer keyed by pool id (the POLB).
#[derive(Clone, Debug)]
pub struct Polb {
    cfg: LookasideCfg,
    entries: Vec<(u32, u64)>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Polb {
    /// Creates an empty POLB.
    pub fn new(cfg: LookasideCfg) -> Self {
        Polb { cfg, entries: Vec::with_capacity(cfg.entries), stamp: 0, hits: 0, misses: 0 }
    }

    /// Translates `pool`; returns the latency in cycles (hit latency or the
    /// POW walk on a miss, which also fills the entry).
    pub fn access(&mut self, pool: u32) -> u64 {
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == pool) {
            e.1 = self.stamp;
            self.hits += 1;
            return self.cfg.hit_cycles;
        }
        self.misses += 1;
        if self.entries.len() < self.cfg.entries {
            self.entries.push((pool, self.stamp));
        } else if let Some(v) = self.entries.iter_mut().min_by_key(|(_, s)| *s) {
            *v = (pool, self.stamp);
        }
        self.cfg.hit_cycles + self.cfg.walk_cycles
    }

    /// Invalidates everything (pool detach / address-space change).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (POW walks).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Clears counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// One VALB entry: a pool attachment range (paper: start, size, id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeEntry {
    /// Base virtual address of the attachment.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Pool id.
    pub pool: u32,
}

/// Fully-associative range TCAM keyed by address containment (the VALB),
/// backed by a complete range table (the kernel VATB).
#[derive(Clone, Debug)]
pub struct Valb {
    cfg: LookasideCfg,
    entries: Vec<(RangeEntry, u64)>,
    table: Vec<RangeEntry>,
    stamp: u64,
    hits: u64,
    misses: u64,
    unbacked: u64,
}

impl Valb {
    /// Creates an empty VALB with an empty backing VATB.
    pub fn new(cfg: LookasideCfg) -> Self {
        Valb {
            cfg,
            entries: Vec::with_capacity(cfg.entries),
            table: Vec::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
            unbacked: 0,
        }
    }

    /// Replaces the kernel VATB contents (pool attach/detach), flushing the
    /// TCAM.
    pub fn set_ranges(&mut self, ranges: Vec<RangeEntry>) {
        self.table = ranges;
        self.entries.clear();
    }

    /// Translates `va`; returns `(latency, pool)` where `pool` is `None`
    /// when the address belongs to no attached pool (a storeP fault in the
    /// paper's Table I).
    pub fn access(&mut self, va: u64) -> (u64, Option<u32>) {
        self.stamp += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(r, _)| va >= r.base && va < r.base + r.size)
        {
            e.1 = self.stamp;
            self.hits += 1;
            return (self.cfg.hit_cycles, Some(e.0.pool));
        }
        // VAW walk over the VATB range table.
        let found = self
            .table
            .iter()
            .find(|r| va >= r.base && va < r.base + r.size)
            .copied();
        match found {
            Some(r) => {
                self.misses += 1;
                if self.entries.len() < self.cfg.entries {
                    self.entries.push((r, self.stamp));
                } else if let Some(v) = self.entries.iter_mut().min_by_key(|(_, s)| *s) {
                    *v = (r, self.stamp);
                }
                (self.cfg.hit_cycles + self.cfg.walk_cycles, Some(r.pool))
            }
            None => {
                self.unbacked += 1;
                (self.cfg.hit_cycles + self.cfg.walk_cycles, None)
            }
        }
    }

    /// Lookups that hit the TCAM.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that walked the VATB.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups for addresses in no pool.
    pub fn unbacked(&self) -> u64 {
        self.unbacked
    }

    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.unbacked
    }

    /// Clears counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.unbacked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LookasideCfg {
        LookasideCfg { entries: 2, hit_cycles: 2, walk_cycles: 30 }
    }

    #[test]
    fn polb_hit_after_fill() {
        let mut p = Polb::new(cfg());
        assert_eq!(p.access(7), 32);
        assert_eq!(p.access(7), 2);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn polb_lru_eviction() {
        let mut p = Polb::new(cfg());
        p.access(1);
        p.access(2);
        p.access(1); // 2 becomes LRU
        p.access(3); // evicts 2
        assert_eq!(p.access(1), 2, "1 resident");
        assert_eq!(p.access(2), 32, "2 was evicted");
    }

    #[test]
    fn polb_flush_empties() {
        let mut p = Polb::new(cfg());
        p.access(1);
        p.flush();
        assert_eq!(p.access(1), 32);
    }

    #[test]
    fn valb_range_containment() {
        let mut v = Valb::new(cfg());
        v.set_ranges(vec![
            RangeEntry { base: 0x1000, size: 0x1000, pool: 1 },
            RangeEntry { base: 0x8000, size: 0x2000, pool: 2 },
        ]);
        let (lat, pool) = v.access(0x1800);
        assert_eq!((lat, pool), (32, Some(1)));
        let (lat, pool) = v.access(0x1ff8);
        assert_eq!((lat, pool), (2, Some(1)), "same range hits TCAM");
        let (_, pool) = v.access(0x9000);
        assert_eq!(pool, Some(2));
        let (_, pool) = v.access(0x4000);
        assert_eq!(pool, None, "gap between pools");
        assert_eq!(v.unbacked(), 1);
    }

    #[test]
    fn valb_set_ranges_flushes_tcam() {
        let mut v = Valb::new(cfg());
        v.set_ranges(vec![RangeEntry { base: 0, size: 0x1000, pool: 1 }]);
        v.access(0x10);
        v.set_ranges(vec![RangeEntry { base: 0, size: 0x1000, pool: 9 }]);
        let (lat, pool) = v.access(0x10);
        assert_eq!(lat, 32, "TCAM flushed after remap");
        assert_eq!(pool, Some(9));
    }
}
