//! Set-associative LRU caches and the three-level data hierarchy.

use crate::config::{CacheCfg, SimConfig};

/// One set-associative, true-LRU cache level.
///
/// # Examples
///
/// ```
/// use utpr_sim::cache::Cache;
/// use utpr_sim::config::CacheCfg;
///
/// let mut c = Cache::new(CacheCfg { sets: 2, ways: 2, line: 64, hit_cycles: 4 });
/// assert!(!c.access(0x000)); // cold miss
/// assert!(c.access(0x000));  // hit
/// assert!(c.access(0x03f));  // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheCfg,
    /// `tags[set]` holds (tag, last-use stamp); invalid entries use tag = MAX.
    tags: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if sets or ways are zero, or line size is not a power of two.
    pub fn new(cfg: CacheCfg) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0);
        assert!(cfg.line.is_power_of_two());
        Cache {
            cfg,
            tags: vec![vec![(INVALID, 0); cfg.ways]; cfg.sets],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    pub fn cfg(&self) -> CacheCfg {
        self.cfg
    }

    /// Accesses `addr`, updating LRU state; returns `true` on hit.
    /// Misses allocate (write-allocate, no distinction read/write).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line;
        let set = (line as usize) % self.cfg.sets;
        let tag = line / self.cfg.sets as u64;
        self.stamp += 1;
        let ways = &mut self.tags[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict LRU (or an invalid way).
        let victim = ways
            .iter_mut()
            .min_by_key(|(t, s)| if *t == INVALID { 0 } else { s + 1 })
            .expect("ways nonzero");
        *victim = (tag, self.stamp);
        false
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears counters but keeps contents (for post-warm-up measurement).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Inserts the line containing `addr` without touching the hit/miss
    /// counters — used by prefetchers.
    pub fn touch(&mut self, addr: u64) {
        let line = addr / self.cfg.line;
        let set = (line as usize) % self.cfg.sets;
        let tag = line / self.cfg.sets as u64;
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = &mut self.tags[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = stamp;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|(t, s)| if *t == INVALID { 0 } else { s + 1 })
            .expect("ways nonzero");
        *victim = (tag, stamp);
    }
}

/// The L1/L2/L3 data hierarchy: an access probes levels in order and
/// returns the latency of the first hit (or memory on full miss).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// L2 cache.
    pub l2: Cache,
    /// L3 cache.
    pub l3: Cache,
    dram_cycles: u64,
    nvm_cycles: u64,
    prefetch_next_line: bool,
    prefetches: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram_cycles: cfg.dram_cycles,
            nvm_cycles: cfg.nvm_cycles,
            prefetch_next_line: cfg.prefetch_next_line,
            prefetches: 0,
        }
    }

    /// Performs an access; returns its latency in cycles. `is_nvm` selects
    /// the memory latency on a full miss (bit 47 of the virtual address in
    /// the paper's layout).
    pub fn access(&mut self, addr: u64, is_nvm: bool) -> u64 {
        if self.l1.access(addr) {
            return self.l1.cfg().hit_cycles;
        }
        // A physical-address next-line prefetcher (paper §VI: such
        // prefetchers are unaffected by the pointer-format scheme because
        // data placement in the physical space does not change): on an L1
        // miss, pull the next line into L2/L3.
        if self.prefetch_next_line {
            let next = addr + self.l1.cfg().line;
            self.l1.touch(next);
            self.l2.touch(next);
            self.l3.touch(next);
            self.prefetches += 1;
        }
        if self.l2.access(addr) {
            return self.l2.cfg().hit_cycles;
        }
        if self.l3.access(addr) {
            return self.l3.cfg().hit_cycles;
        }
        if is_nvm {
            self.nvm_cycles
        } else {
            self.dram_cycles
        }
    }

    /// Prefetches issued.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Clears all counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.l1.reset_counters();
        self.l2.reset_counters();
        self.l3.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheCfg { sets: 2, ways: 2, line: 64, hit_cycles: 1 })
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0, 2, 4... (line index mod 2).
        assert!(!c.access(0)); // A (line 0) miss
        assert!(!c.access(2 * 64)); // B miss
        assert!(c.access(0)); // A hit (B is now LRU)
        assert!(!c.access(4 * 64)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(2 * 64)); // B was evicted
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(0); // line 0, set 0
        c.access(1 * 64); // set 1
        c.access(3 * 64); // set 1
        c.access(5 * 64); // set 1, evicts line 1
        assert!(c.access(0), "set 0 untouched");
    }

    #[test]
    fn hit_rate_counts() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.access(0), "contents survive counter reset");
    }

    #[test]
    fn hierarchy_latencies_by_level() {
        let cfg = SimConfig::table_iv();
        let mut h = Hierarchy::new(&cfg);
        // Cold: full miss to DRAM.
        assert_eq!(h.access(0x1000, false), cfg.dram_cycles);
        // Now everywhere: L1 hit.
        assert_eq!(h.access(0x1000, false), cfg.l1.hit_cycles);
        // NVM miss latency differs.
        assert_eq!(h.access(1 << 47, true), cfg.nvm_cycles);
    }

    #[test]
    fn prefetcher_pulls_next_line_into_l2() {
        let cfg = SimConfig::table_iv().with_prefetcher();
        let mut h = Hierarchy::new(&cfg);
        // Miss on line 0: next line prefetched into L2.
        h.access(0, false);
        assert_eq!(h.prefetches(), 1);
        // Line 1 hits L1 thanks to the prefetch fill.
        assert_eq!(h.access(64, false), cfg.l1.hit_cycles);
        // Without the prefetcher the same access goes to memory.
        let mut h2 = Hierarchy::new(&SimConfig::table_iv());
        h2.access(0, false);
        assert_eq!(h2.access(64, false), cfg.dram_cycles);
    }

    #[test]
    fn l1_evicted_line_hits_in_l2() {
        let cfg = SimConfig::table_iv();
        let mut h = Hierarchy::new(&cfg);
        h.access(0, false);
        // Thrash L1 set 0 with 8+ conflicting lines (same L1 set, different
        // L2 sets so line 0 survives in L2).
        for i in 1..=8u64 {
            h.access(i * cfg.l1.sets as u64 * cfg.l1.line, false);
        }
        assert_eq!(h.access(0, false), cfg.l2.hit_cycles);
    }
}
