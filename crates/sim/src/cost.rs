//! Hardware storage-cost model — regenerates the paper's Table II.
//!
//! The paper sizes three on-chip structures (the storeP unit's FSM buffer,
//! the POLB, and the VALB) and evaluates die area with CACTI at 45 nm. We
//! model area as linear in SRAM bytes, calibrated on the paper's own rows
//! (512 B → 0.0205 mm², 384 B → 0.0137 mm²; the FSM's entries carry more
//! logic per bit, hence a slightly higher coefficient).

/// Area coefficient for plain SRAM structures at 45 nm (mm² per byte),
/// calibrated on the paper's POLB/VALB rows.
pub const SRAM_MM2_PER_BYTE: f64 = 0.0137 / 384.0;

/// Area coefficient for the FSM buffer (extra comparators/state logic).
pub const FSM_MM2_PER_BYTE: f64 = 0.0205 / 512.0;

/// One hardware structure's cost line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureCost {
    /// Structure name.
    pub name: &'static str,
    /// Bytes per entry.
    pub entry_bytes: u64,
    /// Number of entries.
    pub entries: u64,
    /// Area coefficient (mm² per byte).
    pub mm2_per_byte: f64,
}

impl StructureCost {
    /// Total storage in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entry_bytes * self.entries
    }

    /// Estimated die area in mm² at 45 nm.
    pub fn area_mm2(&self) -> f64 {
        self.total_bytes() as f64 * self.mm2_per_byte
    }
}

/// The paper's Table II configuration: FSM (16 B × 32), POLB (12 B × 32),
/// VALB (12 B × 32).
pub fn table_ii() -> Vec<StructureCost> {
    vec![
        StructureCost { name: "FSM", entry_bytes: 16, entries: 32, mm2_per_byte: FSM_MM2_PER_BYTE },
        StructureCost {
            name: "POLB",
            entry_bytes: 12,
            entries: 32,
            mm2_per_byte: SRAM_MM2_PER_BYTE,
        },
        StructureCost {
            name: "VALB",
            entry_bytes: 12,
            entries: 32,
            mm2_per_byte: SRAM_MM2_PER_BYTE,
        },
    ]
}

/// Total bytes across a cost table.
pub fn total_bytes(rows: &[StructureCost]) -> u64 {
    rows.iter().map(StructureCost::total_bytes).sum()
}

/// Total area across a cost table.
pub fn total_area_mm2(rows: &[StructureCost]) -> f64 {
    rows.iter().map(StructureCost::area_mm2).sum()
}

/// Die area of the reference 45 nm octal-core Nehalem processor the paper
/// normalizes against (mm²).
pub const NEHALEM_8C_AREA_MM2: f64 = 684.0;

/// Fraction of reference die area consumed by the structures.
pub fn die_fraction(rows: &[StructureCost]) -> f64 {
    total_area_mm2(rows) / NEHALEM_8C_AREA_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper_totals() {
        let rows = table_ii();
        assert_eq!(total_bytes(&rows), 1280);
        let area = total_area_mm2(&rows);
        assert!((area - 0.0479).abs() < 0.002, "area {area}");
    }

    #[test]
    fn per_row_bytes() {
        let rows = table_ii();
        assert_eq!(rows[0].total_bytes(), 512);
        assert_eq!(rows[1].total_bytes(), 384);
        assert_eq!(rows[2].total_bytes(), 384);
    }

    #[test]
    fn die_fraction_is_tiny() {
        let f = die_fraction(&table_ii());
        assert!(f < 0.001, "well under 0.1% of the die: {f}");
    }
}
