//! Aggregate simulation statistics and report helpers.

use std::fmt;

/// Snapshot of everything the machine counted.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: f64,
    /// Plain micro-ops dispatched.
    pub uops: u64,
    /// Loads executed.
    pub loads: u64,
    /// storeD instructions executed.
    pub stores: u64,
    /// storeP instructions executed.
    pub storep: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// L3 cache misses (memory accesses).
    pub l3_misses: u64,
    /// Full TLB misses (page walks).
    pub tlb_walks: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// POLB lookups (hardware ra2va).
    pub polb_accesses: u64,
    /// POLB misses (POW walks).
    pub polb_misses: u64,
    /// VALB lookups (hardware va2ra).
    pub valb_accesses: u64,
    /// VALB misses (VAW walks).
    pub valb_misses: u64,
    /// Software conversion calls (SW mode).
    pub sw_conversions: u64,
}

impl SimStats {
    /// Total memory-reference instructions.
    pub fn memory_refs(&self) -> u64 {
        self.loads + self.stores + self.storep
    }

    /// Fraction of memory references that are storeP (paper Fig. 15).
    pub fn storep_fraction(&self) -> f64 {
        ratio(self.storep, self.memory_refs())
    }

    /// Fraction of memory references that access the POLB/POW (Fig. 15).
    pub fn polb_fraction(&self) -> f64 {
        ratio(self.polb_accesses, self.memory_refs())
    }

    /// Fraction of memory references that access the VALB/VAW (Fig. 15).
    pub fn valb_fraction(&self) -> f64 {
        ratio(self.valb_accesses, self.memory_refs())
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        ratio(self.branch_mispredicts, self.branches)
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles             {:>14.0}", self.cycles)?;
        writeln!(f, "uops               {:>14}", self.uops)?;
        writeln!(f, "loads              {:>14}", self.loads)?;
        writeln!(f, "stores             {:>14}", self.stores)?;
        writeln!(f, "storeP             {:>14}", self.storep)?;
        writeln!(f, "L1/L2/L3 misses    {:>6} {:>6} {:>6}", self.l1_misses, self.l2_misses, self.l3_misses)?;
        writeln!(f, "tlb walks          {:>14}", self.tlb_walks)?;
        writeln!(
            f,
            "branches           {:>14}  mispredicts {} ({:.2}%)",
            self.branches,
            self.branch_mispredicts,
            100.0 * self.mispredict_rate()
        )?;
        writeln!(
            f,
            "polb               {:>14}  misses {}",
            self.polb_accesses, self.polb_misses
        )?;
        writeln!(
            f,
            "valb               {:>14}  misses {}",
            self.valb_accesses, self.valb_misses
        )?;
        write!(f, "sw conversions     {:>14}", self.sw_conversions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero_denominator() {
        let s = SimStats::default();
        assert_eq!(s.storep_fraction(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn fig15_fractions() {
        let s = SimStats {
            loads: 60,
            stores: 30,
            storep: 10,
            polb_accesses: 25,
            valb_accesses: 5,
            ..Default::default()
        };
        assert!((s.storep_fraction() - 0.1).abs() < 1e-12);
        assert!((s.polb_fraction() - 0.25).abs() < 1e-12);
        assert!((s.valb_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_rows() {
        let s = SimStats::default();
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("polb"));
        assert!(text.contains("mispredicts"));
    }
}
