//! Two-level data TLB with a fixed page-walk penalty.

use crate::config::SimConfig;

/// A set-associative LRU TLB level over page numbers.
#[derive(Clone, Debug)]
pub struct Tlb {
    sets: usize,
    entries: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries % ways == 0, "entries must be a multiple of ways");
        let sets = entries / ways;
        Tlb {
            sets,
            entries: vec![vec![(INVALID, 0); ways]; sets],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a page number, updating LRU; returns `true` on hit.
    pub fn access(&mut self, page: u64) -> bool {
        let set = (page as usize) % self.sets;
        let tag = page / self.sets as u64;
        self.stamp += 1;
        let ways = &mut self.entries[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|(t, s)| if *t == INVALID { 0 } else { s + 1 })
            .expect("ways nonzero");
        *victim = (tag, self.stamp);
        false
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// The two-level TLB of Table IV: L1 hit is free (pipelined), L1 miss pays
/// the L2 latency, full miss pays the page walk.
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    /// L1 data TLB.
    pub l1: Tlb,
    /// L2 shared TLB.
    pub l2: Tlb,
    page_bytes: u64,
    l2_hit_cycles: u64,
    walk_cycles: u64,
    walks: u64,
}

impl TlbHierarchy {
    /// Builds the TLB hierarchy from a machine configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        TlbHierarchy {
            l1: Tlb::new(cfg.tlb1.entries, cfg.tlb1.ways),
            l2: Tlb::new(cfg.tlb2.entries, cfg.tlb2.ways),
            page_bytes: cfg.page_bytes,
            l2_hit_cycles: cfg.tlb2_hit_cycles,
            walk_cycles: cfg.page_walk_cycles,
            walks: 0,
        }
    }

    /// Translates `addr`; returns the added latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        let page = addr / self.page_bytes;
        if self.l1.access(page) {
            return 0;
        }
        if self.l2.access(page) {
            return self.l2_hit_cycles;
        }
        self.walks += 1;
        self.walk_cycles
    }

    /// Full page walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Clears counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.l1.reset_counters();
        self.l2.reset_counters();
        self.walks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_first_touch() {
        let cfg = SimConfig::table_iv();
        let mut t = TlbHierarchy::new(&cfg);
        assert_eq!(t.access(0x1000), cfg.page_walk_cycles);
        assert_eq!(t.access(0x1ff8), 0, "same page, L1 hit");
        assert_eq!(t.walks(), 1);
    }

    #[test]
    fn l1_capacity_miss_falls_to_l2() {
        let cfg = SimConfig::table_iv();
        let mut t = TlbHierarchy::new(&cfg);
        t.access(0);
        // Touch enough pages mapping to L1 set 0 to evict page 0 from L1
        // but not from the much larger L2.
        let l1_sets = (cfg.tlb1.entries / cfg.tlb1.ways) as u64;
        for i in 1..=4u64 {
            t.access(i * l1_sets * cfg.page_bytes);
        }
        assert_eq!(t.access(0), cfg.tlb2_hit_cycles);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(63, 4);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut t = Tlb::new(8, 2);
        t.access(1);
        t.access(1);
        t.access(2);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }
}
