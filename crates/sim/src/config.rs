//! Machine configuration — the paper's Table IV, as data.
//!
//! Latencies are in core cycles at the modelled 2.66 GHz Gainestown-like
//! core. Only relative time matters for the paper's figures, so the clock
//! itself never appears.

/// Geometry and hit latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCfg {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: u64,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheCfg {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line
    }
}

/// Geometry of a TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbCfg {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

/// Geometry and latencies of a lookaside buffer (POLB / VALB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookasideCfg {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
    /// Walker latency on a miss (POW / VAW), in cycles.
    pub walk_cycles: u64,
}

/// Full machine configuration (paper Table IV plus the software-cost knobs
/// the paper folds into its compiler-generated code).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Effective cycles per plain micro-op (models a ~2-wide sustainable
    /// dispatch on the 4-wide core).
    pub uop_cpi: f64,
    /// L1 data cache (32 KB, 8-way, 4 cycles).
    pub l1: CacheCfg,
    /// L2 cache (256 KB, 8-way, 12 cycles).
    pub l2: CacheCfg,
    /// L3 cache (2 MB, 8-way, 40 cycles).
    pub l3: CacheCfg,
    /// DRAM access latency (cycles).
    pub dram_cycles: u64,
    /// NVM access latency (cycles) — 2× DRAM per Table IV.
    pub nvm_cycles: u64,
    /// L1 data TLB (64 entries, 4-way, pipelined: no extra cycles on hit).
    pub tlb1: TlbCfg,
    /// L2 shared TLB (1536 entries, 4-way).
    pub tlb2: TlbCfg,
    /// L2 TLB hit latency.
    pub tlb2_hit_cycles: u64,
    /// Page-walk latency on full TLB miss.
    pub page_walk_cycles: u64,
    /// Page size for TLB indexing.
    pub page_bytes: u64,
    /// Branch misprediction penalty (Pentium-M-like predictor, 8 cycles).
    pub branch_penalty: u64,
    /// Branch predictor table entries (2-bit counters).
    pub predictor_entries: usize,
    /// Branch history bits (gshare).
    pub history_bits: u32,
    /// POLB: pool id → base VA.
    pub polb: LookasideCfg,
    /// VALB: VA range → pool id.
    pub valb: LookasideCfg,
    /// Extra cycles the storeP functional unit adds beyond translations.
    pub storep_unit_cycles: u64,
    /// Store (storeD) commit cost; stores are buffered.
    pub store_cycles: u64,
    /// Software `ra2va` cost beyond the emitted call uops (table lookup).
    pub sw_ra2va_cycles: u64,
    /// Software `va2ra` cost beyond the emitted call uops (range search).
    pub sw_va2ra_cycles: u64,
    /// Enable the physical-address next-line prefetcher (§VI discussion;
    /// off in the Table IV baseline).
    pub prefetch_next_line: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            uop_cpi: 0.5,
            l1: CacheCfg { sets: 64, ways: 8, line: 64, hit_cycles: 4 },
            l2: CacheCfg { sets: 512, ways: 8, line: 64, hit_cycles: 12 },
            l3: CacheCfg { sets: 4096, ways: 8, line: 64, hit_cycles: 40 },
            dram_cycles: 120,
            nvm_cycles: 240,
            tlb1: TlbCfg { entries: 64, ways: 4 },
            tlb2: TlbCfg { entries: 1536, ways: 4 },
            tlb2_hit_cycles: 7,
            page_walk_cycles: 30,
            page_bytes: 4096,
            branch_penalty: 8,
            predictor_entries: 4096,
            history_bits: 12,
            polb: LookasideCfg { entries: 32, hit_cycles: 1, walk_cycles: 30 },
            valb: LookasideCfg { entries: 32, hit_cycles: 1, walk_cycles: 30 },
            storep_unit_cycles: 0,
            store_cycles: 1,
            sw_ra2va_cycles: 12,
            sw_va2ra_cycles: 18,
            prefetch_next_line: false,
        }
    }
}

impl SimConfig {
    /// The paper's Table IV configuration.
    pub fn table_iv() -> Self {
        Self::default()
    }

    /// Same configuration with a different VALB/VAW amortized latency — the
    /// paper's Fig. 14 sensitivity sweep.
    pub fn with_valb_latency(mut self, cycles: u64) -> Self {
        self.valb.hit_cycles = cycles;
        self.valb.walk_cycles = cycles.max(self.valb.walk_cycles);
        self
    }

    /// Same configuration with a different NVM latency (ablation).
    pub fn with_nvm_latency(mut self, cycles: u64) -> Self {
        self.nvm_cycles = cycles;
        self
    }

    /// Same configuration with the next-line prefetcher enabled (ablation).
    pub fn with_prefetcher(mut self) -> Self {
        self.prefetch_next_line = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_table_iv() {
        let c = SimConfig::table_iv();
        assert_eq!(c.l1.capacity(), 32 << 10);
        assert_eq!(c.l2.capacity(), 256 << 10);
        assert_eq!(c.l3.capacity(), 2 << 20);
        assert_eq!(c.nvm_cycles, 2 * c.dram_cycles);
    }

    #[test]
    fn valb_sweep_sets_latency() {
        let c = SimConfig::table_iv().with_valb_latency(50);
        assert_eq!(c.valb.hit_cycles, 50);
        assert!(c.valb.walk_cycles >= 50);
    }
}
