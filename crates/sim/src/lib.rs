//! # utpr-sim — interval timing model of the paper's architecture support
//!
//! An interval-based processor model in the spirit of Sniper (the simulator
//! the paper evaluates on), configured per the paper's Table IV: three-level
//! cache hierarchy, two-level TLB, gshare branch predictor with an 8-cycle
//! misprediction penalty, DRAM at 120 cycles and NVM at 240, plus the
//! paper's new structures — the POLB (pool id → base address), the VALB
//! (address → pool id range TCAM), and the storeP functional unit.
//!
//! A [`Machine`] implements [`utpr_ptr::TimingSink`], so it can be plugged
//! directly into an `ExecEnv` and prices the event stream as the paper's
//! hardware would:
//!
//! ```
//! use utpr_heap::AddressSpace;
//! use utpr_ptr::{site, ExecEnv, Mode};
//! use utpr_sim::{Machine, SimConfig};
//!
//! let mut space = AddressSpace::new(3);
//! let pool = space.create_pool("p", 1 << 20)?;
//! let machine = Machine::new(SimConfig::table_iv());
//! let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).sink(machine).build();
//!
//! let node = env.alloc(site!("doc.alloc", AllocResult), 32)?;
//! env.write_u64(site!("doc.store", StackLocal), node, 0, 1)?;
//! assert!(env.sink().cycles() > 0.0);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod cost;
pub mod lookaside;
pub mod machine;
pub mod stats;
pub mod tlb;

pub use config::{CacheCfg, LookasideCfg, SimConfig, TlbCfg};
pub use lookaside::RangeEntry;
pub use machine::Machine;
pub use stats::SimStats;
