//! The interval-based core model: turns the [`MemEvent`] stream into cycles.
//!
//! Modelled after the way Sniper accounts time: plain micro-ops cost a
//! fraction of a cycle each (dispatch), memory operations pay the latency of
//! the level they hit (pointer-chasing workloads serialize on loads, so the
//! load-to-use latency is on the critical path), branch mispredictions pay a
//! fixed penalty, and the new structures (POLB, VALB, storeP unit) add their
//! Table IV latencies exactly where the paper's hardware puts them.

use crate::branch::BranchPredictor;
use crate::cache::Hierarchy;
use crate::config::SimConfig;
use crate::lookaside::{Polb, RangeEntry, Valb};
use crate::stats::SimStats;
use utpr_ptr::{MemEvent, TimingSink};

/// The simulated machine. Implements [`TimingSink`] so an
/// [`utpr_ptr::ExecEnv`] can drive it directly.
///
/// # Examples
///
/// ```
/// use utpr_sim::{Machine, SimConfig};
/// use utpr_ptr::{MemEvent, TimingSink};
///
/// let mut m = Machine::new(SimConfig::table_iv());
/// m.event(MemEvent::Exec(4));
/// m.event(MemEvent::Load { va: 0x1000, rel_base: false });
/// assert!(m.cycles() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: SimConfig,
    mem: Hierarchy,
    tlb: crate::tlb::TlbHierarchy,
    predictor: BranchPredictor,
    polb: Polb,
    valb: Valb,
    cycles: f64,
    stats: SimStats,
}

impl Machine {
    /// Creates a machine in the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Machine {
            cfg,
            mem: Hierarchy::new(&cfg),
            tlb: crate::tlb::TlbHierarchy::new(&cfg),
            predictor: BranchPredictor::new(&cfg),
            polb: Polb::new(cfg.polb),
            valb: Valb::new(cfg.valb),
            cycles: 0.0,
            stats: SimStats::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Installs the kernel VATB contents (pool attachments) used by VAW
    /// walks. Call after pools are attached or moved.
    pub fn set_pool_ranges(&mut self, ranges: Vec<RangeEntry>) {
        self.valb.set_ranges(ranges);
        self.polb.flush();
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Counter snapshot (includes derived structure counters).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.cycles;
        s.l1_misses = self.mem.l1.misses();
        s.l2_misses = self.mem.l2.misses();
        s.l3_misses = self.mem.l3.misses();
        s.tlb_walks = self.tlb.walks();
        s.branches = self.predictor.branches();
        s.branch_mispredicts = self.predictor.mispredicts();
        s.polb_accesses = self.polb.accesses();
        s.polb_misses = self.polb.misses();
        s.valb_accesses = self.valb.accesses();
        s.valb_misses = self.valb.misses() + self.valb.unbacked();
        s
    }

    /// Zeroes time and counters but keeps all learned state (warm caches,
    /// TLBs, predictor) — call between warm-up and measurement.
    pub fn reset_measurement(&mut self) {
        self.cycles = 0.0;
        self.stats = SimStats::default();
        self.mem.reset_counters();
        self.tlb.reset_counters();
        self.predictor.reset_counters();
        self.polb.reset_counters();
        self.valb.reset_counters();
    }

    fn data_access(&mut self, va: u64) -> f64 {
        let t = self.tlb.access(va);
        let m = self.mem.access(va, va & (1 << 47) != 0);
        (t + m) as f64
    }
}

impl TimingSink for Machine {
    fn event(&mut self, ev: MemEvent) {
        match ev {
            MemEvent::Exec(n) => {
                self.stats.uops += u64::from(n);
                self.cycles += f64::from(n) * self.cfg.uop_cpi;
            }
            MemEvent::Load { va, .. } => {
                self.stats.loads += 1;
                self.cycles += self.data_access(va);
            }
            MemEvent::Store { va, .. } => {
                self.stats.stores += 1;
                // Stores are buffered: charge commit cost, update state.
                let _ = self.data_access(va);
                self.cycles += self.cfg.store_cycles as f64;
            }
            MemEvent::StoreP { va, .. } => {
                self.stats.storep += 1;
                let _ = self.data_access(va);
                self.cycles +=
                    (self.cfg.store_cycles + self.cfg.storep_unit_cycles) as f64;
            }
            MemEvent::Branch { pc, taken } => {
                if self.predictor.execute(pc, taken) {
                    self.cycles += self.cfg.branch_penalty as f64;
                }
                self.cycles += self.cfg.uop_cpi;
            }
            MemEvent::PolbAccess { pool } => {
                self.cycles += self.polb.access(pool) as f64;
            }
            MemEvent::ValbAccess { va } => {
                let (lat, _pool) = self.valb.access(va);
                self.cycles += lat as f64;
            }
            MemEvent::SwRa2Va { pool } => {
                // Software table lookup: fixed cost; it also pollutes the
                // data cache with the pool-table line.
                self.stats.sw_conversions += 1;
                let table_va = 0x7000_0000u64 + u64::from(pool % 1024) * 64;
                let _ = self.data_access(table_va);
                self.cycles += self.cfg.sw_ra2va_cycles as f64;
            }
            MemEvent::SwVa2Ra { va } => {
                self.stats.sw_conversions += 1;
                let table_va = 0x7100_0000u64 + (va >> 20) % 4096 * 64;
                let _ = self.data_access(table_va);
                self.cycles += self.cfg.sw_va2ra_cycles as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(SimConfig::table_iv())
    }

    #[test]
    fn exec_uops_cost_fractional_cycles() {
        let mut m = machine();
        m.event(MemEvent::Exec(10));
        assert!((m.cycles() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_load_gets_cheaper() {
        let mut m = machine();
        m.event(MemEvent::Load { va: 0x2000, rel_base: false });
        let cold = m.cycles();
        m.event(MemEvent::Load { va: 0x2000, rel_base: false });
        let warm = m.cycles() - cold;
        assert!(warm < cold, "warm {warm} cold {cold}");
        assert_eq!(warm, 4.0, "L1 hit latency");
    }

    #[test]
    fn nvm_loads_cost_more_than_dram_when_cold() {
        let cfg = SimConfig::table_iv();
        let mut m = Machine::new(cfg);
        m.event(MemEvent::Load { va: 0x10_0000, rel_base: false });
        let dram = m.cycles();
        m.reset_measurement();
        m.event(MemEvent::Load { va: (1 << 47) | 0x10_0000, rel_base: false });
        let nvm = m.cycles();
        assert!(nvm > dram);
        assert_eq!(nvm - dram, (cfg.nvm_cycles - cfg.dram_cycles) as f64);
    }

    #[test]
    fn mispredicted_branch_pays_penalty() {
        let mut m = machine();
        // Train taken, then surprise.
        for _ in 0..100 {
            m.event(MemEvent::Branch { pc: 0x40, taken: true });
        }
        let before = m.cycles();
        m.event(MemEvent::Branch { pc: 0x40, taken: false });
        let delta = m.cycles() - before;
        assert!(delta >= 8.0, "penalty paid: {delta}");
    }

    #[test]
    fn polb_valb_latencies_accumulate() {
        let cfg = SimConfig::table_iv();
        let mut m = machine();
        m.set_pool_ranges(vec![RangeEntry { base: 1 << 47, size: 1 << 20, pool: 3 }]);
        m.event(MemEvent::PolbAccess { pool: 3 });
        let cold = m.cycles();
        assert_eq!(cold, (cfg.polb.hit_cycles + cfg.polb.walk_cycles) as f64, "miss: hit + walk");
        m.event(MemEvent::PolbAccess { pool: 3 });
        assert_eq!(m.cycles() - cold, cfg.polb.hit_cycles as f64, "hit");
        m.event(MemEvent::ValbAccess { va: (1 << 47) + 0x100 });
        m.event(MemEvent::ValbAccess { va: (1 << 47) + 0x200 });
        let s = m.stats();
        assert_eq!(s.valb_accesses, 2);
        assert_eq!(s.valb_misses, 1);
    }

    #[test]
    fn reset_measurement_keeps_warm_state() {
        let mut m = machine();
        m.event(MemEvent::Load { va: 0x3000, rel_base: false });
        m.reset_measurement();
        assert_eq!(m.cycles(), 0.0);
        m.event(MemEvent::Load { va: 0x3000, rel_base: false });
        assert_eq!(m.cycles(), 4.0, "cache stayed warm");
    }

    #[test]
    fn stats_snapshot_counts_events() {
        let mut m = machine();
        m.event(MemEvent::Exec(2));
        m.event(MemEvent::Load { va: 1 << 13, rel_base: false });
        m.event(MemEvent::Store { va: 1 << 13, rel_base: false });
        m.event(MemEvent::StoreP { va: 1 << 13, rs_va2ra: false, rs_ra2va: false, rd_ra2va: false });
        m.event(MemEvent::SwRa2Va { pool: 1 });
        let s = m.stats();
        assert_eq!(s.uops, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.storep, 1);
        assert_eq!(s.sw_conversions, 1);
        assert!(s.cycles > 0.0);
    }
}
