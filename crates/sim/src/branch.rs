//! A gshare branch predictor with 2-bit saturating counters.
//!
//! The paper models a Pentium-M-class predictor with an 8-cycle
//! misprediction penalty. The interesting consumer is Fig. 13: the SW
//! version's dynamic checks execute real branches whose outcome streams are
//! interleaved at shared helper pcs, and the predictor's mispredictions are
//! what the figure reports.

use crate::config::SimConfig;

/// Gshare predictor: prediction table indexed by `pc ⊕ history`.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_mask: u64,
    branches: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor from the machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the table size is not a power of two.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::with_params(cfg.predictor_entries, cfg.history_bits)
    }

    /// Creates a predictor with explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn with_params(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "predictor entries must be a power of two");
        BranchPredictor {
            table: vec![1u8; entries], // weakly not-taken
            mask: entries as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Predicts and updates with the actual outcome; returns `true` when
    /// the branch was mispredicted.
    pub fn execute(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc ^ self.history) & self.mask) as usize;
        let counter = &mut self.table[idx];
        let predicted = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        self.branches += 1;
        let wrong = predicted != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Branches executed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions observed.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Clears counters, keeping learned state.
    pub fn reset_counters(&mut self) {
        self.branches = 0;
        self.mispredicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::with_params(4096, 12)
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = predictor();
        for _ in 0..1000 {
            p.execute(0x400, true);
        }
        assert!(p.miss_rate() < 0.05, "biased branch should be learned: {}", p.miss_rate());
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = predictor();
        for i in 0..2000u64 {
            p.execute(0x800, i % 2 == 0);
        }
        // gshare captures the period-2 pattern after warm-up.
        p.reset_counters();
        for i in 0..2000u64 {
            p.execute(0x800, i % 2 == 0);
        }
        assert!(p.miss_rate() < 0.05, "alternation should be learned: {}", p.miss_rate());
    }

    #[test]
    fn random_outcomes_mispredict_heavily() {
        let mut p = predictor();
        let mut x = 0x12345678u64;
        let mut wrongs = 0u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.execute(0xc00, x & 1 == 1) {
                wrongs += 1;
            }
        }
        assert!(wrongs > 3000, "random stream must mispredict often: {wrongs}");
    }

    #[test]
    fn counters_reset_but_state_survives() {
        let mut p = predictor();
        for _ in 0..100 {
            p.execute(0x10, true);
        }
        p.reset_counters();
        assert_eq!(p.branches(), 0);
        p.execute(0x10, true);
        assert_eq!(p.mispredicts(), 0, "learned bias survives reset");
    }
}
