//! Structural-invariant battery: each tree's validator (RB black-height,
//! AVL balance, scapegoat α-weight, B+ ordering/leaf-depth) must hold
//! after arbitrary insert/remove sequences, in every execution mode, and
//! the structure must agree with a `BTreeMap` oracle throughout.

use std::collections::BTreeMap;

use utpr_ds::{AvlTree, BPlusTree, Index, RbTree, ScapegoatTree};
use utpr_heap::AddressSpace;
use utpr_ptr::{ExecEnv, Mode, NullSink};
use utpr_qc::prelude::*;

/// One step over a bounded key space (collisions are the interesting part).
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
}

fn op_gen() -> OneOf<Op> {
    one_of![
        3 => (0u64..200, 0u64..1_000_000).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0u64..200).prop_map(Op::Remove),
    ]
}

/// Applies `ops` in `mode`, validating against the oracle mid-sequence and
/// at the end; `validate` is the structure's own invariant checker, which
/// panics on violations and returns the node/key count.
fn run_ops<T, V>(mode: Mode, ops: &[Op], validate: V) -> Result<(), String>
where
    T: Index,
    V: Fn(&mut T, &mut ExecEnv<NullSink>) -> u64,
{
    let mut space = AddressSpace::new(0xD5 ^ mode.label().len() as u64);
    let pool = space.create_pool("inv", 16 << 20).unwrap();
    let mut env = ExecEnv::builder(space).mode(mode).pool(pool).build();
    let mut t = T::create(&mut env).unwrap();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let prev = t.insert(&mut env, k, v).unwrap();
                prop_assert_eq!(prev, model.insert(k, v), "{}: insert({}) prev", T::NAME, k);
            }
            Op::Remove(k) => {
                let prev = t.remove(&mut env, k).unwrap();
                prop_assert_eq!(prev, model.remove(&k), "{}: remove({}) prev", T::NAME, k);
            }
        }
        // Validate periodically, not only at the end: rebalancing bugs can
        // be transient.
        if i % 16 == 15 {
            let n = validate(&mut t, &mut env);
            prop_assert_eq!(n, model.len() as u64, "{} count mid-sequence", T::NAME);
        }
    }

    let n = validate(&mut t, &mut env);
    prop_assert_eq!(n, model.len() as u64, "{} final count", T::NAME);
    prop_assert_eq!(t.len(&mut env).unwrap(), model.len() as u64);
    for (k, v) in &model {
        prop_assert_eq!(t.get(&mut env, *k).unwrap(), Some(*v), "{}: get({})", T::NAME, k);
    }
    Ok(())
}

props! {
    #![cases(24)]

    /// Red-black: BST order, no red-red edge, equal black height.
    #[test]
    fn rb_invariants_hold_in_all_modes(ops in collection::vec(op_gen(), 1..120)) {
        for mode in Mode::ALL {
            run_ops::<RbTree, _>(mode, &ops, |t, env| t.validate(env).unwrap())?;
        }
    }

    /// AVL: BST order, height fields, |balance| ≤ 1.
    #[test]
    fn avl_invariants_hold_in_all_modes(ops in collection::vec(op_gen(), 1..120)) {
        for mode in Mode::ALL {
            run_ops::<AvlTree, _>(mode, &ops, |t, env| t.validate(env).unwrap())?;
        }
    }

    /// Scapegoat: BST order plus the α-weight balance at every node.
    #[test]
    fn scapegoat_invariants_hold_in_all_modes(ops in collection::vec(op_gen(), 1..120)) {
        for mode in Mode::ALL {
            run_ops::<ScapegoatTree, _>(mode, &ops, |t, env| t.validate(env).unwrap())?;
        }
    }

    /// B+: per-node key order, separator bounds, uniform leaf depth,
    /// sorted leaf chain.
    #[test]
    fn bplus_invariants_hold_in_all_modes(ops in collection::vec(op_gen(), 1..120)) {
        for mode in Mode::ALL {
            run_ops::<BPlusTree, _>(mode, &ops, |t, env| t.validate(env).unwrap())?;
        }
    }
}
