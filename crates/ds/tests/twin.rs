//! Twin-structure property: a concurrent index driven by a single
//! thread under a 1-thread turnstile schedule must be observationally
//! identical to its sequential twin — same `Option<u64>` result for
//! every operation, and when an operation fails, the same
//! [`HeapError`] discriminant. The concurrent module's extra machinery
//! (flush strategies, write sets, persist fences, CAS publication)
//! must be invisible to a lone caller.

use std::collections::BTreeMap;
use std::sync::Arc;

use utpr_ds::concurrent::{ConcurrentIndex, FlushStrategy, Handle};
use utpr_ds::{AvlTree, ConcHash, ConcList, HashMapIndex, IndexCore, IndexOps};
use utpr_heap::{AddressSpace, FlushModel, HeapError, SharedPool};
use utpr_ptr::{ExecEnv, Mode, NullSink};
use utpr_qc::prelude::*;
use utpr_qc::sched::Turnstile;

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_gen() -> OneOf<Op> {
    one_of![
        3 => (0u64..24, 0u64..1_000_000).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u64..24).prop_map(Op::Get),
        1 => (0u64..24).prop_map(Op::Remove),
    ]
}

/// Result of one op, collapsed to what the twin comparison inspects:
/// the value on success, the error discriminant on failure.
fn outcome(r: Result<Option<u64>, HeapError>) -> Result<Option<u64>, std::mem::Discriminant<HeapError>> {
    r.map_err(|e| std::mem::discriminant(&e))
}

/// Runs `ops` against the concurrent structure `C` (single caller, all
/// accesses threaded through a 1-thread turnstile) and its sequential
/// twin `T`, comparing every outcome; both must also agree with a
/// `BTreeMap` at the end.
fn twin_run<C: ConcurrentIndex, T: IndexCore + IndexOps>(
    ops: &[Op],
    strategy: FlushStrategy,
) -> Result<(), String> {
    // Concurrent side: shared pool in ADR mode, one handle, one-thread
    // turnstile driving every yield point.
    let sp = SharedPool::create(&format!("twin-{}-{}", C::NAME, strategy.label()), 16 << 20, 8)
        .map_err(|e| e.to_string())?;
    sp.set_flush_model(FlushModel::Adr);
    let mut cspace = AddressSpace::new(0x7717);
    let cpool = cspace.adopt_shared(&sp).map_err(|e| e.to_string())?;
    let mut cenv = ExecEnv::builder(cspace).mode(Mode::Hw).pool(cpool).build();
    let cidx = C::create(&mut cenv).map_err(|e| e.to_string())?;
    let ts = Arc::new(Turnstile::new(1, 0x7717));
    let yielder = || {
        ts.yield_point(0).map_err(|_| HeapError::CrashInjected { writes: u64::MAX })
    };
    let mut h = Handle::new(&mut cenv, strategy)
        .map_err(|e| e.to_string())?
        .with_yielder(&yielder);

    // Sequential twin: a plain private pool.
    let mut sspace = AddressSpace::new(0x7417);
    let spool = sspace.create_pool("twin-seq", 16 << 20).map_err(|e| e.to_string())?;
    let mut senv =
        ExecEnv::builder(sspace).mode(Mode::Hw).pool(spool).sink(NullSink).build();
    let mut sidx = T::create(&mut senv).map_err(|e| e.to_string())?;

    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let (conc, seq, oracle) = match op {
            Op::Insert(k, v) => (
                outcome(cidx.insert(&mut h, k, v)),
                outcome(sidx.insert(&mut senv, k, v)),
                Ok(model.insert(k, v)),
            ),
            Op::Remove(k) => (
                outcome(cidx.remove(&mut h, k)),
                outcome(sidx.remove(&mut senv, k)),
                Ok(model.remove(&k)),
            ),
            Op::Get(k) => (
                outcome(cidx.get(&mut h, k)),
                outcome(sidx.get(&mut h_seq_reborrow(&mut senv), k)),
                Ok(model.get(&k).copied()),
            ),
        };
        if conc != seq || conc != oracle {
            return Err(format!(
                "op {i} ({op:?}) diverged: concurrent {conc:?}, sequential {seq:?}, oracle {oracle:?}"
            ));
        }
    }
    let clen = cidx.len(&mut h).map_err(|e| e.to_string())?;
    let slen = sidx.len(&mut senv).map_err(|e| e.to_string())?;
    if clen != slen || clen != model.len() as u64 {
        return Err(format!("final len diverged: {clen} vs {slen} vs {}", model.len()));
    }
    ts.finish(0);
    Ok(())
}

// `IndexOps::get` takes `&mut env` like every sequential op; this shim
// only exists to keep the tuple construction above symmetrical.
fn h_seq_reborrow<S: utpr_ptr::TimingSink>(env: &mut ExecEnv<S>) -> &mut ExecEnv<S> {
    env
}

props! {
    #![cases(24)]

    #[test]
    fn conc_hash_twins_hashmap_under_one_thread(ops in collection::vec(op_gen(), 1..120)) {
        for strategy in FlushStrategy::ALL {
            if let Err(d) = twin_run::<ConcHash, HashMapIndex>(&ops, strategy) {
                prop_assert!(false, "{} twin: {d}", strategy.label());
            }
        }
    }

    #[test]
    fn conc_list_twins_avl_under_one_thread(ops in collection::vec(op_gen(), 1..60)) {
        for strategy in FlushStrategy::ALL {
            if let Err(d) = twin_run::<ConcList, AvlTree>(&ops, strategy) {
                prop_assert!(false, "{} twin: {d}", strategy.label());
            }
        }
    }
}
