//! RB — a red-black tree (paper Table III, Boost `intrusive::rbtree`
//! analogue).
//!
//! Classic CLRS insertion with parent pointers and recoloring/rotation
//! fixup. Node layout: `[key, value, left, right, parent, color]`
//! (color 0 = red, 1 = black). Descriptor: `[root, len]`.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, Site, TimingSink, UPtr};

const OFF_KEY: i64 = 0;
const OFF_VAL: i64 = 8;
const OFF_LEFT: i64 = 16;
const OFF_RIGHT: i64 = 24;
const OFF_PARENT: i64 = 32;
const OFF_COLOR: i64 = 40;
const NODE_SIZE: u64 = 48;

const RED: u64 = 0;
const BLACK: u64 = 1;

const D_ROOT: i64 = 0;
const D_LEN: i64 = 8;
const DESC_SIZE: u64 = 16;

/// A red-black tree in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{IndexCore, IndexOps, RbTree};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("rb", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut t = RbTree::create(&mut env)?;
/// for k in 0..100 {
///     t.insert(&mut env, k, k * k)?;
/// }
/// assert_eq!(t.get(&mut env, 9)?, Some(81));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RbTree {
    desc: UPtr,
}

// Field accessors: each is one shared static site, matching how a compiled
// accessor in library code is one static instruction.
fn left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("rb.node.left", MemLoad), n, OFF_LEFT)
}
fn right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("rb.node.right", MemLoad), n, OFF_RIGHT)
}
fn parent<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("rb.node.parent", MemLoad), n, OFF_PARENT)
}
fn set_left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("rb.node.set-left", MemLoad), n, OFF_LEFT, v)
}
fn set_right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("rb.node.set-right", MemLoad), n, OFF_RIGHT, v)
}
fn set_parent<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("rb.node.set-parent", MemLoad), n, OFF_PARENT, v)
}
fn key_of<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    env.read_u64(site!("rb.node.key", MemLoad), n, OFF_KEY)
}
/// Color of a node; null counts as black (CLRS sentinel behaviour).
fn color<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    if env.ptr_is_null(site!("rb.node.color-null", StackLocal), n) {
        return Ok(BLACK);
    }
    env.read_u64(site!("rb.node.color", MemLoad), n, OFF_COLOR)
}
fn set_color<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, c: u64) -> Result<()> {
    env.write_u64(site!("rb.node.set-color", MemLoad), n, OFF_COLOR, c)
}

const S_EQ_LEFT: &Site = site!("rb.eq.is-left-child", Param);

impl RbTree {
    fn root<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("rb.root", Param), self.desc, D_ROOT)
    }

    fn set_root<S: TimingSink>(&self, env: &mut ExecEnv<S>, r: UPtr) -> Result<()> {
        env.write_ptr(site!("rb.set-root", Param), self.desc, D_ROOT, r)
    }

    fn rotate_left<S: TimingSink>(&self, env: &mut ExecEnv<S>, x: UPtr) -> Result<()> {
        let y = right(env, x)?;
        let yl = left(env, y)?;
        set_right(env, x, yl)?;
        if !env.ptr_is_null(site!("rb.rotl.yl-null", StackLocal), yl) {
            set_parent(env, yl, x)?;
        }
        let xp = parent(env, x)?;
        set_parent(env, y, xp)?;
        if env.ptr_is_null(site!("rb.rotl.xp-null", StackLocal), xp) {
            self.set_root(env, y)?;
        } else {
            let xpl = left(env, xp)?;
            if env.ptr_eq(S_EQ_LEFT, x, xpl)? {
                set_left(env, xp, y)?;
            } else {
                set_right(env, xp, y)?;
            }
        }
        set_left(env, y, x)?;
        set_parent(env, x, y)
    }

    fn rotate_right<S: TimingSink>(&self, env: &mut ExecEnv<S>, x: UPtr) -> Result<()> {
        let y = left(env, x)?;
        let yr = right(env, y)?;
        set_left(env, x, yr)?;
        if !env.ptr_is_null(site!("rb.rotr.yr-null", StackLocal), yr) {
            set_parent(env, yr, x)?;
        }
        let xp = parent(env, x)?;
        set_parent(env, y, xp)?;
        if env.ptr_is_null(site!("rb.rotr.xp-null", StackLocal), xp) {
            self.set_root(env, y)?;
        } else {
            let xpl = left(env, xp)?;
            if env.ptr_eq(S_EQ_LEFT, x, xpl)? {
                set_left(env, xp, y)?;
            } else {
                set_right(env, xp, y)?;
            }
        }
        set_right(env, y, x)?;
        set_parent(env, x, y)
    }

    fn insert_fixup<S: TimingSink>(&self, env: &mut ExecEnv<S>, mut z: UPtr) -> Result<()> {
        loop {
            let p = parent(env, z)?;
            if color(env, p)? != RED {
                break;
            }
            let g = parent(env, p)?; // red parent implies non-null grandparent
            let gl = left(env, g)?;
            if env.ptr_eq(site!("rb.fix.p-is-left", Param), p, gl)? {
                let u = right(env, g)?;
                if color(env, u)? == RED {
                    set_color(env, p, BLACK)?;
                    set_color(env, u, BLACK)?;
                    set_color(env, g, RED)?;
                    z = g;
                } else {
                    let pr = right(env, p)?;
                    if env.ptr_eq(site!("rb.fix.z-is-right", Param), z, pr)? {
                        z = p;
                        self.rotate_left(env, z)?;
                    }
                    let p2 = parent(env, z)?;
                    let g2 = parent(env, p2)?;
                    set_color(env, p2, BLACK)?;
                    set_color(env, g2, RED)?;
                    self.rotate_right(env, g2)?;
                }
            } else {
                let u = left(env, g)?;
                if color(env, u)? == RED {
                    set_color(env, p, BLACK)?;
                    set_color(env, u, BLACK)?;
                    set_color(env, g, RED)?;
                    z = g;
                } else {
                    let pl = left(env, p)?;
                    if env.ptr_eq(site!("rb.fix.z-is-left", Param), z, pl)? {
                        z = p;
                        self.rotate_right(env, z)?;
                    }
                    let p2 = parent(env, z)?;
                    let g2 = parent(env, p2)?;
                    set_color(env, p2, BLACK)?;
                    set_color(env, g2, RED)?;
                    self.rotate_left(env, g2)?;
                }
            }
        }
        let root = self.root(env)?;
        set_color(env, root, BLACK)
    }

    /// Replaces the subtree rooted at `u` with `v` (CLRS `transplant`).
    /// `v` may be null; its parent pointer is fixed when present.
    fn transplant<S: TimingSink>(&self, env: &mut ExecEnv<S>, u: UPtr, v: UPtr) -> Result<()> {
        let up = parent(env, u)?;
        if env.ptr_is_null(site!("rb.tp.up-null", StackLocal), up) {
            self.set_root(env, v)?;
        } else {
            let upl = left(env, up)?;
            if env.ptr_eq(S_EQ_LEFT, u, upl)? {
                set_left(env, up, v)?;
            } else {
                set_right(env, up, v)?;
            }
        }
        if !env.ptr_is_null(site!("rb.tp.v-null", StackLocal), v) {
            set_parent(env, v, up)?;
        }
        Ok(())
    }

    /// Minimum node of the subtree rooted at `n` (`n` must be non-null).
    fn minimum<S: TimingSink>(&self, env: &mut ExecEnv<S>, mut n: UPtr) -> Result<UPtr> {
        loop {
            let l = left(env, n)?;
            if env.ptr_is_null(site!("rb.min.l-null", StackLocal), l) {
                return Ok(n);
            }
            n = l;
        }
    }

    /// Removes `key`, returning its value if present. CLRS deletion with
    /// the doubly-black fixup; null children are treated as black with an
    /// explicitly tracked parent (no sentinel node).
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        // Find z.
        let mut z = self.root(env)?;
        loop {
            if env.ptr_is_null(site!("rb.del.descend", StackLocal), z) {
                return Ok(None);
            }
            let k = key_of(env, z)?;
            if k == key {
                break;
            }
            let goleft = key < k;
            env.branch(site!("rb.del.cmp", StackLocal), goleft);
            z = if goleft { left(env, z)? } else { right(env, z)? };
        }
        let removed_value = env.read_u64(site!("rb.del.val", MemLoad), z, OFF_VAL)?;

        let zl = left(env, z)?;
        let zr = right(env, z)?;
        let mut y_color = env.read_u64(site!("rb.del.zcolor", MemLoad), z, OFF_COLOR)?;
        let x;
        let xp;
        if env.ptr_is_null(site!("rb.del.zl-null", StackLocal), zl) {
            x = zr;
            xp = parent(env, z)?;
            self.transplant(env, z, zr)?;
        } else if env.ptr_is_null(site!("rb.del.zr-null", StackLocal), zr) {
            x = zl;
            xp = parent(env, z)?;
            self.transplant(env, z, zl)?;
        } else {
            let y = self.minimum(env, zr)?;
            y_color = env.read_u64(site!("rb.del.ycolor", MemLoad), y, OFF_COLOR)?;
            x = right(env, y)?;
            let yp = parent(env, y)?;
            if env.ptr_eq(site!("rb.del.y-child-of-z", Param), yp, z)? {
                xp = y;
            } else {
                xp = yp;
                let yr = right(env, y)?;
                self.transplant(env, y, yr)?;
                set_right(env, y, zr)?;
                set_parent(env, zr, y)?;
            }
            self.transplant(env, z, y)?;
            set_left(env, y, zl)?;
            set_parent(env, zl, y)?;
            let zc = env.read_u64(site!("rb.del.zcolor2", MemLoad), z, OFF_COLOR)?;
            set_color(env, y, zc)?;
        }
        env.free(site!("rb.del.free", MemLoad), z)?;

        if y_color == BLACK {
            self.delete_fixup(env, x, xp)?;
        }
        let len = env.read_u64(site!("rb.del.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("rb.del.len-set", Param), self.desc, D_LEN, len - 1)?;
        Ok(Some(removed_value))
    }

    /// Restores the red-black invariants after deleting a black node;
    /// `x` (possibly null) carries the extra black, `xp` is its parent.
    fn delete_fixup<S: TimingSink>(&self, env: &mut ExecEnv<S>, mut x: UPtr, mut xp: UPtr) -> Result<()> {
        loop {
            if env.ptr_is_null(site!("rb.fixd.xp-null", StackLocal), xp) {
                break; // x is (or replaces) the root
            }
            if !x.is_null() && color(env, x)? == RED {
                break;
            }
            let xpl = left(env, xp)?;
            let x_is_left = if x.is_null() {
                xpl.is_null()
            } else {
                env.ptr_eq(site!("rb.fixd.x-left", Param), x, xpl)?
            };
            if x_is_left {
                let mut w = right(env, xp)?;
                if color(env, w)? == RED {
                    set_color(env, w, BLACK)?;
                    set_color(env, xp, RED)?;
                    self.rotate_left(env, xp)?;
                    w = right(env, xp)?;
                }
                let wl = left(env, w)?;
                let wr = right(env, w)?;
                if color(env, wl)? == BLACK && color(env, wr)? == BLACK {
                    set_color(env, w, RED)?;
                    x = xp;
                    xp = parent(env, x)?;
                } else {
                    if color(env, wr)? == BLACK {
                        set_color(env, wl, BLACK)?;
                        set_color(env, w, RED)?;
                        self.rotate_right(env, w)?;
                        w = right(env, xp)?;
                    }
                    let xpc = env.read_u64(site!("rb.fixd.xpc", MemLoad), xp, OFF_COLOR)?;
                    set_color(env, w, xpc)?;
                    set_color(env, xp, BLACK)?;
                    let wr2 = right(env, w)?;
                    set_color(env, wr2, BLACK)?;
                    self.rotate_left(env, xp)?;
                    break;
                }
            } else {
                let mut w = left(env, xp)?;
                if color(env, w)? == RED {
                    set_color(env, w, BLACK)?;
                    set_color(env, xp, RED)?;
                    self.rotate_right(env, xp)?;
                    w = left(env, xp)?;
                }
                let wl = left(env, w)?;
                let wr = right(env, w)?;
                if color(env, wl)? == BLACK && color(env, wr)? == BLACK {
                    set_color(env, w, RED)?;
                    x = xp;
                    xp = parent(env, x)?;
                } else {
                    if color(env, wl)? == BLACK {
                        set_color(env, wr, BLACK)?;
                        set_color(env, w, RED)?;
                        self.rotate_left(env, w)?;
                        w = left(env, xp)?;
                    }
                    let xpc = env.read_u64(site!("rb.fixd.xpc2", MemLoad), xp, OFF_COLOR)?;
                    set_color(env, w, xpc)?;
                    set_color(env, xp, BLACK)?;
                    let wl2 = left(env, w)?;
                    set_color(env, wl2, BLACK)?;
                    self.rotate_right(env, xp)?;
                    break;
                }
            }
        }
        if !x.is_null() {
            set_color(env, x, BLACK)?;
        }
        // The root is black in every case (CLRS colors T.root black last).
        let root = self.root(env)?;
        if !root.is_null() {
            set_color(env, root, BLACK)?;
        }
        Ok(())
    }

    /// Checks every red-black invariant (BST order, no red-red edge, equal
    /// black heights, parent links, stored length); returns the node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on violations.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        fn walk<S: TimingSink>(
            env: &mut ExecEnv<S>,
            n: UPtr,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<(u64, u64)> {
            // returns (black_height, count)
            if n.is_null() {
                return Ok((1, 0));
            }
            let k = key_of(env, n)?;
            if let Some(l) = lo {
                assert!(k > l, "BST order violated");
            }
            if let Some(h) = hi {
                assert!(k < h, "BST order violated");
            }
            let c = env.read_u64(site!("rb.val.color", MemLoad), n, OFF_COLOR)?;
            let l = left(env, n)?;
            let r = right(env, n)?;
            if c == RED {
                assert_eq!(color(env, l)?, BLACK, "red-red edge");
                assert_eq!(color(env, r)?, BLACK, "red-red edge");
            }
            for child in [l, r] {
                if !child.is_null() {
                    let cp = parent(env, child)?;
                    assert!(env.ptr_eq(site!("rb.val.parent-eq", Param), cp, n)?, "parent link");
                }
            }
            let (bl, cl) = walk(env, l, lo, Some(k))?;
            let (br, cr) = walk(env, r, Some(k), hi)?;
            assert_eq!(bl, br, "black height mismatch");
            Ok((bl + u64::from(c == BLACK), cl + cr + 1))
        }
        let root = self.root(env)?;
        if !root.is_null() {
            assert_eq!(color(env, root)?, BLACK, "root must be black");
        }
        let (_, count) = walk(env, root, None, None)?;
        assert_eq!(count, self.len(env)?, "stored length");
        Ok(count)
    }
}

impl IndexCore for RbTree {
    const NAME: &'static str = "RB";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("rb.create.desc", AllocResult), DESC_SIZE)?;
        env.write_ptr(site!("rb.create.root", AllocResult), desc, D_ROOT, UPtr::NULL)?;
        env.write_u64(site!("rb.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(RbTree { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        RbTree { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        RbTree::validate(self, env)
    }
}

impl IndexOps for RbTree {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        let mut y = UPtr::NULL;
        let mut x = self.root(env)?;
        let mut went_left = false;
        while !env.ptr_is_null(site!("rb.ins.descend", StackLocal), x) {
            y = x;
            let k = key_of(env, x)?;
            if k == key {
                let old = env.read_u64(site!("rb.ins.old", MemLoad), x, OFF_VAL)?;
                env.write_u64(site!("rb.ins.update", MemLoad), x, OFF_VAL, value)?;
                return Ok(Some(old));
            }
            went_left = key < k;
            env.branch(site!("rb.ins.cmp", StackLocal), went_left);
            x = if went_left { left(env, x)? } else { right(env, x)? };
        }
        let z = env.alloc(site!("rb.ins.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("rb.ins.key", AllocResult), z, OFF_KEY, key)?;
        env.write_u64(site!("rb.ins.val", AllocResult), z, OFF_VAL, value)?;
        env.write_ptr(site!("rb.ins.left", AllocResult), z, OFF_LEFT, UPtr::NULL)?;
        env.write_ptr(site!("rb.ins.right", AllocResult), z, OFF_RIGHT, UPtr::NULL)?;
        env.write_ptr(site!("rb.ins.parent", AllocResult), z, OFF_PARENT, y)?;
        env.write_u64(site!("rb.ins.color", AllocResult), z, OFF_COLOR, RED)?;
        if env.ptr_is_null(site!("rb.ins.empty", StackLocal), y) {
            self.set_root(env, z)?;
        } else if went_left {
            set_left(env, y, z)?;
        } else {
            set_right(env, y, z)?;
        }
        self.insert_fixup(env, z)?;
        let len = env.read_u64(site!("rb.ins.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("rb.ins.len-set", Param), self.desc, D_LEN, len + 1)?;
        Ok(None)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let mut x = self.root(env)?;
        while !env.ptr_is_null(site!("rb.get.descend", StackLocal), x) {
            let k = key_of(env, x)?;
            if k == key {
                return Ok(Some(env.read_u64(site!("rb.get.val", MemLoad), x, OFF_VAL)?));
            }
            let goleft = key < k;
            env.branch(site!("rb.get.cmp", StackLocal), goleft);
            x = if goleft { left(env, x)? } else { right(env, x)? };
        }
        Ok(None)
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        RbTree::remove(self, env, key)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("rb.len", Param), self.desc, D_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<RbTree>(mode, 1200);
        }
    }

    #[test]
    fn invariants_hold_under_sequential_insert() {
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in 0..512u64 {
            t.insert(&mut env, k, k).unwrap();
            if k % 64 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), 512);
    }

    #[test]
    fn invariants_hold_under_reverse_and_random_insert() {
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in (0..256u64).rev() {
            t.insert(&mut env, k, k).unwrap();
        }
        t.validate(&mut env).unwrap();
        let mut t2 = RbTree::create(&mut env).unwrap();
        let mut x = 88172645463325252u64;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t2.insert(&mut env, x % 1000, x).unwrap();
        }
        t2.validate(&mut env).unwrap();
    }

    #[test]
    fn sequential_insert_keeps_logarithmic_depth() {
        // A plain BST would degenerate to a 512-long chain; red-black keeps
        // black height ≤ 2·log2(n+1). Validate passes ⇒ balanced enough; we
        // additionally bound the worst-case descent by probing the deepest
        // key with a counted walk.
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in 0..1024u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        // Count descent steps for every key; max must be ≤ 2*log2(1025)+1 ≈ 21.
        for probe in [0u64, 511, 1023] {
            let mut steps = 0;
            let mut x = t.root(&mut env).unwrap();
            while !x.is_null() {
                let k = key_of(&mut env, x).unwrap();
                if k == probe {
                    break;
                }
                x = if probe < k { left(&mut env, x).unwrap() } else { right(&mut env, x).unwrap() };
                steps += 1;
                assert!(steps <= 21, "descent too deep: {steps}");
            }
        }
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<RbTree>();
    }

    #[test]
    fn remove_preserves_invariants() {
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in 0..128u64 {
            t.insert(&mut env, k, k * 2).unwrap();
        }
        // Remove every third key, validating as we go.
        for k in (0..128u64).step_by(3) {
            assert_eq!(t.remove(&mut env, k).unwrap(), Some(k * 2), "key {k}");
            t.validate(&mut env).unwrap();
        }
        for k in 0..128u64 {
            let expect = if k % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(t.get(&mut env, k).unwrap(), expect, "key {k}");
        }
        assert_eq!(t.remove(&mut env, 999).unwrap(), None);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in 0..64u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        for k in 0..64u64 {
            t.remove(&mut env, k).unwrap();
            t.validate(&mut env).unwrap();
        }
        assert_eq!(t.len(&mut env).unwrap(), 0);
        // Reuse the emptied tree; freed nodes recycle through the allocator.
        for k in 0..32u64 {
            t.insert(&mut env, k, k + 1).unwrap();
        }
        assert_eq!(t.validate(&mut env).unwrap(), 32);
    }

    #[test]
    fn random_insert_remove_oracle_with_validation() {
        use std::collections::BTreeMap;
        let mut env = env_for(Mode::Sw);
        let mut t = RbTree::create(&mut env).unwrap();
        let mut model = BTreeMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 97;
            if x % 5 < 3 {
                assert_eq!(
                    t.insert(&mut env, key, x).unwrap(),
                    model.insert(key, x),
                    "insert at {step}"
                );
            } else {
                assert_eq!(t.remove(&mut env, key).unwrap(), model.remove(&key), "remove at {step}");
            }
            if step % 250 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), model.len() as u64);
    }

    #[test]
    fn stored_node_links_are_relative_in_hw() {
        let mut env = env_for(Mode::Hw);
        let mut t = RbTree::create(&mut env).unwrap();
        for k in 0..64u64 {
            t.insert(&mut env, k * 17 % 97, k).unwrap();
        }
        fn check<S: utpr_ptr::TimingSink>(env: &mut ExecEnv<S>, n: UPtr) {
            if n.is_null() {
                return;
            }
            for off in [OFF_LEFT, OFF_RIGHT, OFF_PARENT] {
                let raw = env.peek_raw(n, off).unwrap();
                assert!(raw == 0 || raw & (1 << 63) != 0, "non-relative stored link");
            }
            let l = left(env, n).unwrap();
            let r = right(env, n).unwrap();
            check(env, l);
            check(env, r);
        }
        let root = t.root(&mut env).unwrap();
        check(&mut env, root);
    }
}
