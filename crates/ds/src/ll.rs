//! LL — a doubly-linked list (paper Table III).
//!
//! The paper's LL harness builds 10,000 nodes, each holding two pointers
//! and a 16-byte value, then iterates the list accumulating the values.
//! Node layout (8-byte fields):
//!
//! ```text
//! 0x00 value word 0     0x08 value word 1
//! 0x10 next             0x18 prev
//! ```
//!
//! Descriptor: `[head, tail, len]`.

use crate::index::Result;
use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

const OFF_V0: i64 = 0;
const OFF_V1: i64 = 8;
const OFF_NEXT: i64 = 16;
const OFF_PREV: i64 = 24;
const NODE_SIZE: u64 = 32;

const D_HEAD: i64 = 0;
const D_TAIL: i64 = 8;
const D_LEN: i64 = 16;
const DESC_SIZE: u64 = 24;

/// A doubly-linked list of 16-byte values living in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::LinkedList;
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("ll", 1 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut list = LinkedList::create(&mut env)?;
/// list.push_back(&mut env, 1, 2)?;
/// list.push_back(&mut env, 3, 4)?;
/// assert_eq!(list.iter_sum(&mut env)?, 10);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LinkedList {
    desc: UPtr,
}

impl LinkedList {
    /// Allocates an empty list at the environment's default placement.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("ll.create.desc", AllocResult), DESC_SIZE)?;
        env.write_ptr(site!("ll.create.head", AllocResult), desc, D_HEAD, UPtr::NULL)?;
        env.write_ptr(site!("ll.create.tail", AllocResult), desc, D_TAIL, UPtr::NULL)?;
        env.write_u64(site!("ll.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(LinkedList { desc })
    }

    /// Re-attaches to an existing descriptor.
    pub fn open(descriptor: UPtr) -> Self {
        LinkedList { desc: descriptor }
    }

    /// The descriptor pointer.
    pub fn descriptor(&self) -> UPtr {
        self.desc
    }

    /// Number of nodes.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("ll.len", Param), self.desc, D_LEN)
    }

    /// Appends a node carrying the 16-byte value `(v0, v1)`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and translation failures.
    pub fn push_back<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, v0: u64, v1: u64) -> Result<()> {
        let n = env.alloc(site!("ll.push.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("ll.push.v0", AllocResult), n, OFF_V0, v0)?;
        env.write_u64(site!("ll.push.v1", AllocResult), n, OFF_V1, v1)?;
        env.write_ptr(site!("ll.push.next", AllocResult), n, OFF_NEXT, UPtr::NULL)?;
        let tail = env.read_ptr(site!("ll.push.tail", Param), self.desc, D_TAIL)?;
        env.write_ptr(site!("ll.push.prev", AllocResult), n, OFF_PREV, tail)?;
        if env.ptr_is_null(site!("ll.push.tail-null", StackLocal), tail) {
            env.write_ptr(site!("ll.push.head-link", Param), self.desc, D_HEAD, n)?;
        } else {
            env.write_ptr(site!("ll.push.tail-link", MemLoad), tail, OFF_NEXT, n)?;
        }
        env.write_ptr(site!("ll.push.tail-set", Param), self.desc, D_TAIL, n)?;
        let len = env.read_u64(site!("ll.push.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("ll.push.len-set", Param), self.desc, D_LEN, len + 1)?;
        Ok(())
    }

    /// Removes and returns the first value.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn pop_front<S: TimingSink>(&mut self, env: &mut ExecEnv<S>) -> Result<Option<(u64, u64)>> {
        let head = env.read_ptr(site!("ll.pop.head", Param), self.desc, D_HEAD)?;
        if env.ptr_is_null(site!("ll.pop.head-null", StackLocal), head) {
            return Ok(None);
        }
        let v0 = env.read_u64(site!("ll.pop.v0", MemLoad), head, OFF_V0)?;
        let v1 = env.read_u64(site!("ll.pop.v1", MemLoad), head, OFF_V1)?;
        let next = env.read_ptr(site!("ll.pop.next", MemLoad), head, OFF_NEXT)?;
        if env.ptr_is_null(site!("ll.pop.next-null", StackLocal), next) {
            env.write_ptr(site!("ll.pop.tail-clear", Param), self.desc, D_TAIL, UPtr::NULL)?;
        } else {
            env.write_ptr(site!("ll.pop.prev-clear", MemLoad), next, OFF_PREV, UPtr::NULL)?;
        }
        env.write_ptr(site!("ll.pop.head-set", Param), self.desc, D_HEAD, next)?;
        let len = env.read_u64(site!("ll.pop.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("ll.pop.len-set", Param), self.desc, D_LEN, len - 1)?;
        env.free(site!("ll.pop.free", MemLoad), head)?;
        Ok(Some((v0, v1)))
    }

    /// Iterates the whole list and accumulates all value words (the paper's
    /// LL benchmark loop).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn iter_sum<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        let mut sum = 0u64;
        let mut p = env.read_ptr(site!("ll.sum.head", Param), self.desc, D_HEAD)?;
        while !env.ptr_is_null(site!("ll.sum.loop", StackLocal), p) {
            sum = sum
                .wrapping_add(env.read_u64(site!("ll.sum.v0", MemLoad), p, OFF_V0)?)
                .wrapping_add(env.read_u64(site!("ll.sum.v1", MemLoad), p, OFF_V1)?);
            p = env.read_ptr(site!("ll.sum.next", MemLoad), p, OFF_NEXT)?;
        }
        Ok(sum)
    }

    /// Walks forward and backward checking the doubly-linked invariants;
    /// returns the node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on inconsistency.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        let len = self.len(env)?;
        // Forward walk.
        let mut count = 0u64;
        let mut prev = UPtr::NULL;
        let mut p = env.read_ptr(site!("ll.val.head", Param), self.desc, D_HEAD)?;
        while !env.ptr_is_null(site!("ll.val.loop", StackLocal), p) {
            let stored_prev = env.read_ptr(site!("ll.val.prev", MemLoad), p, OFF_PREV)?;
            assert!(
                env.ptr_eq(site!("ll.val.prev-eq", Param), stored_prev, prev)?,
                "prev link broken at node {count}"
            );
            prev = p;
            p = env.read_ptr(site!("ll.val.next", MemLoad), p, OFF_NEXT)?;
            count += 1;
        }
        let tail = env.read_ptr(site!("ll.val.tail", Param), self.desc, D_TAIL)?;
        assert!(env.ptr_eq(site!("ll.val.tail-eq", Param), tail, prev)?, "tail mismatch");
        assert_eq!(count, len, "length mismatch");
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::env_for;
    use utpr_ptr::Mode;

    #[test]
    fn push_iterate_sum_all_modes() {
        for mode in Mode::ALL {
            let mut env = env_for(mode);
            let mut ll = LinkedList::create(&mut env).unwrap();
            let mut expect = 0u64;
            for i in 0..100u64 {
                ll.push_back(&mut env, i, i * 10).unwrap();
                expect = expect.wrapping_add(i + i * 10);
            }
            assert_eq!(ll.iter_sum(&mut env).unwrap(), expect, "{mode:?}");
            assert_eq!(ll.len(&mut env).unwrap(), 100);
            ll.validate(&mut env).unwrap();
        }
    }

    #[test]
    fn pop_front_drains_in_order() {
        let mut env = env_for(Mode::Hw);
        let mut ll = LinkedList::create(&mut env).unwrap();
        for i in 0..10u64 {
            ll.push_back(&mut env, i, 0).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(ll.pop_front(&mut env).unwrap(), Some((i, 0)));
            ll.validate(&mut env).unwrap();
        }
        assert_eq!(ll.pop_front(&mut env).unwrap(), None);
        assert_eq!(ll.len(&mut env).unwrap(), 0);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut env = env_for(Mode::Sw);
        let mut ll = LinkedList::create(&mut env).unwrap();
        ll.push_back(&mut env, 1, 1).unwrap();
        ll.push_back(&mut env, 2, 2).unwrap();
        assert_eq!(ll.pop_front(&mut env).unwrap(), Some((1, 1)));
        ll.push_back(&mut env, 3, 3).unwrap();
        assert_eq!(ll.pop_front(&mut env).unwrap(), Some((2, 2)));
        assert_eq!(ll.pop_front(&mut env).unwrap(), Some((3, 3)));
        ll.validate(&mut env).unwrap();
    }

    #[test]
    fn stored_links_are_relative_in_hw_mode() {
        let mut env = env_for(Mode::Hw);
        let mut ll = LinkedList::create(&mut env).unwrap();
        for i in 0..5u64 {
            ll.push_back(&mut env, i, i).unwrap();
        }
        // Walk raw memory: every non-null stored link must have bit 63 set.
        let mut p = env.read_ptr(site!("t.head", Param), ll.descriptor(), 0).unwrap();
        let mut checked = 0;
        while !p.is_null() {
            for off in [OFF_NEXT, OFF_PREV] {
                let raw = env.peek_raw(p, off).unwrap();
                if raw != 0 {
                    assert_ne!(raw & (1 << 63), 0, "link at {off} not relative");
                    checked += 1;
                }
            }
            p = env.read_ptr(site!("t.next", MemLoad), p, OFF_NEXT).unwrap();
        }
        assert!(checked >= 8);
    }

    #[test]
    fn survives_crash_and_relocation() {
        use utpr_ptr::site;
        let mut env = env_for(Mode::Hw);
        let mut ll = LinkedList::create(&mut env).unwrap();
        let mut expect = 0u64;
        for i in 0..50u64 {
            ll.push_back(&mut env, i, i * 3).unwrap();
            expect = expect.wrapping_add(i + i * 3);
        }
        env.set_root(site!("t.save", StackLocal), ll.descriptor()).unwrap();
        env.space_mut().restart();
        env.space_mut().open_pool("ds-test").unwrap();
        let desc = env.root(site!("t.load", KnownReturn)).unwrap();
        let ll2 = LinkedList::open(desc);
        assert_eq!(ll2.iter_sum(&mut env).unwrap(), expect);
        assert_eq!(ll2.validate(&mut env).unwrap(), 50);
    }

    #[test]
    fn explicit_mode_keeps_object_ids_in_descriptor() {
        let mut env = env_for(Mode::Explicit);
        let mut ll = LinkedList::create(&mut env).unwrap();
        ll.push_back(&mut env, 9, 9).unwrap();
        assert_eq!(ll.iter_sum(&mut env).unwrap(), 18);
        assert!(env.stats().explicit_translations > 0);
    }
}
