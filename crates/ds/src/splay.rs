//! Splay — a self-adjusting binary search tree (paper Table III, Boost
//! `intrusive::splaytree` analogue).
//!
//! Every insert and lookup splays the accessed node to the root with
//! zig / zig-zig / zig-zag rotations, which is why the paper's Splay
//! benchmark has the most pointer stores of the six structures. Node
//! layout: `[key, value, left, right, parent]`. Descriptor: `[root, len]`.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, Site, TimingSink, UPtr};

const OFF_KEY: i64 = 0;
const OFF_VAL: i64 = 8;
const OFF_LEFT: i64 = 16;
const OFF_RIGHT: i64 = 24;
const OFF_PARENT: i64 = 32;
const NODE_SIZE: u64 = 40;

const D_ROOT: i64 = 0;
const D_LEN: i64 = 8;
const DESC_SIZE: u64 = 16;

/// A splay tree in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{IndexCore, IndexOps, SplayTree};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("sp", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut t = SplayTree::create(&mut env)?;
/// t.insert(&mut env, 11, 111)?;
/// assert_eq!(t.get(&mut env, 11)?, Some(111));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SplayTree {
    desc: UPtr,
}

fn left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("splay.node.left", MemLoad), n, OFF_LEFT)
}
fn right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("splay.node.right", MemLoad), n, OFF_RIGHT)
}
fn parent<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("splay.node.parent", MemLoad), n, OFF_PARENT)
}
fn set_left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("splay.node.set-left", MemLoad), n, OFF_LEFT, v)
}
fn set_right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("splay.node.set-right", MemLoad), n, OFF_RIGHT, v)
}
fn set_parent<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("splay.node.set-parent", MemLoad), n, OFF_PARENT, v)
}
fn key_of<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    env.read_u64(site!("splay.node.key", MemLoad), n, OFF_KEY)
}

const S_IS_LEFT: &Site = site!("splay.eq.is-left-child", Param);

impl SplayTree {
    fn root<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("splay.root", Param), self.desc, D_ROOT)
    }

    fn set_root<S: TimingSink>(&self, env: &mut ExecEnv<S>, r: UPtr) -> Result<()> {
        env.write_ptr(site!("splay.set-root", Param), self.desc, D_ROOT, r)
    }

    /// Rotates `x` up over its parent (handles both directions).
    fn rotate_up<S: TimingSink>(&self, env: &mut ExecEnv<S>, x: UPtr) -> Result<()> {
        let p = parent(env, x)?;
        let g = parent(env, p)?;
        let pl = left(env, p)?;
        let x_is_left = env.ptr_eq(S_IS_LEFT, x, pl)?;
        if x_is_left {
            let xr = right(env, x)?;
            set_left(env, p, xr)?;
            if !env.ptr_is_null(site!("splay.rot.xr-null", StackLocal), xr) {
                set_parent(env, xr, p)?;
            }
            set_right(env, x, p)?;
        } else {
            let xl = left(env, x)?;
            set_right(env, p, xl)?;
            if !env.ptr_is_null(site!("splay.rot.xl-null", StackLocal), xl) {
                set_parent(env, xl, p)?;
            }
            set_left(env, x, p)?;
        }
        set_parent(env, p, x)?;
        set_parent(env, x, g)?;
        if env.ptr_is_null(site!("splay.rot.g-null", StackLocal), g) {
            self.set_root(env, x)?;
        } else {
            let gl = left(env, g)?;
            if env.ptr_eq(site!("splay.eq.p-was-left", Param), p, gl)? {
                set_left(env, g, x)?;
            } else {
                set_right(env, g, x)?;
            }
        }
        Ok(())
    }

    /// Splays `x` to the root.
    fn splay<S: TimingSink>(&self, env: &mut ExecEnv<S>, x: UPtr) -> Result<()> {
        loop {
            let p = parent(env, x)?;
            if env.ptr_is_null(site!("splay.splay.p-null", StackLocal), p) {
                break;
            }
            let g = parent(env, p)?;
            if env.ptr_is_null(site!("splay.splay.g-null", StackLocal), g) {
                // zig
                self.rotate_up(env, x)?;
            } else {
                let pl = left(env, p)?;
                let gl = left(env, g)?;
                let x_left = env.ptr_eq(site!("splay.eq.x-left", Param), x, pl)?;
                let p_left = env.ptr_eq(site!("splay.eq.p-left", Param), p, gl)?;
                if x_left == p_left {
                    // zig-zig: rotate parent first, then x.
                    self.rotate_up(env, p)?;
                    self.rotate_up(env, x)?;
                } else {
                    // zig-zag: rotate x twice.
                    self.rotate_up(env, x)?;
                    self.rotate_up(env, x)?;
                }
            }
        }
        Ok(())
    }

    /// Replaces the subtree rooted at `u` with `v` (possibly null), fixing
    /// parent links and the descriptor root.
    fn transplant<S: TimingSink>(&self, env: &mut ExecEnv<S>, u: UPtr, v: UPtr) -> Result<()> {
        let up = parent(env, u)?;
        if env.ptr_is_null(site!("splay.tp.up-null", StackLocal), up) {
            self.set_root(env, v)?;
        } else {
            let upl = left(env, up)?;
            if env.ptr_eq(S_IS_LEFT, u, upl)? {
                set_left(env, up, v)?;
            } else {
                set_right(env, up, v)?;
            }
        }
        if !env.ptr_is_null(site!("splay.tp.v-null", StackLocal), v) {
            set_parent(env, v, up)?;
        }
        Ok(())
    }

    /// Removes `key`, returning its value if present. The parent of the
    /// physically removed node is splayed afterwards, the textbook
    /// bottom-up splay-tree deletion.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        // Find z.
        let mut last = UPtr::NULL;
        let mut z = self.root(env)?;
        loop {
            if env.ptr_is_null(site!("splay.del.descend", StackLocal), z) {
                if !last.is_null() {
                    self.splay(env, last)?;
                }
                return Ok(None);
            }
            last = z;
            let k = key_of(env, z)?;
            if k == key {
                break;
            }
            let goleft = key < k;
            env.branch(site!("splay.del.cmp", StackLocal), goleft);
            z = if goleft { left(env, z)? } else { right(env, z)? };
        }
        let removed_value = env.read_u64(site!("splay.del.val", MemLoad), z, OFF_VAL)?;

        let zl = left(env, z)?;
        let zr = right(env, z)?;
        let physically_removed;
        if env.ptr_is_null(site!("splay.del.zl-null", StackLocal), zl) {
            self.transplant(env, z, zr)?;
            physically_removed = z;
        } else if env.ptr_is_null(site!("splay.del.zr-null", StackLocal), zr) {
            self.transplant(env, z, zl)?;
            physically_removed = z;
        } else {
            // Copy the in-order successor's pair into z, then unlink the
            // successor (it has no left child).
            let mut y = zr;
            loop {
                let l = left(env, y)?;
                if env.ptr_is_null(site!("splay.del.min", StackLocal), l) {
                    break;
                }
                y = l;
            }
            let yk = key_of(env, y)?;
            let yv = env.read_u64(site!("splay.del.yval", MemLoad), y, OFF_VAL)?;
            env.write_u64(site!("splay.del.copy-key", MemLoad), z, OFF_KEY, yk)?;
            env.write_u64(site!("splay.del.copy-val", MemLoad), z, OFF_VAL, yv)?;
            let yr = right(env, y)?;
            self.transplant(env, y, yr)?;
            physically_removed = y;
        }
        let splay_from = parent(env, physically_removed)?;
        env.free(site!("splay.del.free", MemLoad), physically_removed)?;
        if !env.ptr_is_null(site!("splay.del.sf-null", StackLocal), splay_from) {
            self.splay(env, splay_from)?;
        }
        let len = env.read_u64(site!("splay.del.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("splay.del.len-set", Param), self.desc, D_LEN, len - 1)?;
        Ok(Some(removed_value))
    }

    /// Checks BST order, parent links, and the stored length; returns the
    /// node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on violations.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        fn walk<S: TimingSink>(
            env: &mut ExecEnv<S>,
            n: UPtr,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<u64> {
            if n.is_null() {
                return Ok(0);
            }
            let k = key_of(env, n)?;
            if let Some(l) = lo {
                assert!(k > l, "BST order");
            }
            if let Some(h) = hi {
                assert!(k < h, "BST order");
            }
            let l = left(env, n)?;
            let r = right(env, n)?;
            for child in [l, r] {
                if !child.is_null() {
                    let cp = parent(env, child)?;
                    assert!(env.ptr_eq(site!("splay.val.parent", Param), cp, n)?, "parent link");
                }
            }
            Ok(1 + walk(env, l, lo, Some(k))? + walk(env, r, Some(k), hi)?)
        }
        let root = self.root(env)?;
        if !root.is_null() {
            let rp = parent(env, root)?;
            assert!(rp.is_null(), "root has a parent");
        }
        let count = walk(env, root, None, None)?;
        assert_eq!(count, self.len(env)?);
        Ok(count)
    }
}

impl IndexCore for SplayTree {
    const NAME: &'static str = "Splay";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("splay.create.desc", AllocResult), DESC_SIZE)?;
        env.write_ptr(site!("splay.create.root", AllocResult), desc, D_ROOT, UPtr::NULL)?;
        env.write_u64(site!("splay.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(SplayTree { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        SplayTree { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        SplayTree::validate(self, env)
    }
}

impl IndexOps for SplayTree {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        let mut y = UPtr::NULL;
        let mut x = self.root(env)?;
        let mut went_left = false;
        while !env.ptr_is_null(site!("splay.ins.descend", StackLocal), x) {
            y = x;
            let k = key_of(env, x)?;
            if k == key {
                let old = env.read_u64(site!("splay.ins.old", MemLoad), x, OFF_VAL)?;
                env.write_u64(site!("splay.ins.update", MemLoad), x, OFF_VAL, value)?;
                self.splay(env, x)?;
                return Ok(Some(old));
            }
            went_left = key < k;
            env.branch(site!("splay.ins.cmp", StackLocal), went_left);
            x = if went_left { left(env, x)? } else { right(env, x)? };
        }
        let z = env.alloc(site!("splay.ins.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("splay.ins.key", AllocResult), z, OFF_KEY, key)?;
        env.write_u64(site!("splay.ins.val", AllocResult), z, OFF_VAL, value)?;
        env.write_ptr(site!("splay.ins.left", AllocResult), z, OFF_LEFT, UPtr::NULL)?;
        env.write_ptr(site!("splay.ins.right", AllocResult), z, OFF_RIGHT, UPtr::NULL)?;
        env.write_ptr(site!("splay.ins.parent", AllocResult), z, OFF_PARENT, y)?;
        if env.ptr_is_null(site!("splay.ins.empty", StackLocal), y) {
            self.set_root(env, z)?;
        } else if went_left {
            set_left(env, y, z)?;
        } else {
            set_right(env, y, z)?;
        }
        self.splay(env, z)?;
        let len = env.read_u64(site!("splay.ins.len", Param), self.desc, D_LEN)?;
        env.write_u64(site!("splay.ins.len-set", Param), self.desc, D_LEN, len + 1)?;
        Ok(None)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let mut last = UPtr::NULL;
        let mut x = self.root(env)?;
        while !env.ptr_is_null(site!("splay.get.descend", StackLocal), x) {
            last = x;
            let k = key_of(env, x)?;
            if k == key {
                let v = env.read_u64(site!("splay.get.val", MemLoad), x, OFF_VAL)?;
                self.splay(env, x)?;
                return Ok(Some(v));
            }
            let goleft = key < k;
            env.branch(site!("splay.get.cmp", StackLocal), goleft);
            x = if goleft { left(env, x)? } else { right(env, x)? };
        }
        // Splay the last touched node even on a miss (standard splay).
        if !env.ptr_is_null(site!("splay.get.last-null", StackLocal), last) {
            self.splay(env, last)?;
        }
        Ok(None)
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        SplayTree::remove(self, env, key)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("splay.len", Param), self.desc, D_LEN)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<SplayTree>(mode, 1200);
        }
    }

    #[test]
    fn accessed_key_moves_to_root() {
        let mut env = env_for(Mode::Hw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in 0..64u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        t.get(&mut env, 17).unwrap();
        let root = t.root(&mut env).unwrap();
        assert_eq!(key_of(&mut env, root).unwrap(), 17);
        t.validate(&mut env).unwrap();
    }

    #[test]
    fn insert_splays_new_node_to_root() {
        let mut env = env_for(Mode::Hw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in [10u64, 5, 20, 15] {
            t.insert(&mut env, k, k).unwrap();
            let root = t.root(&mut env).unwrap();
            assert_eq!(key_of(&mut env, root).unwrap(), k, "new key splayed to root");
        }
        t.validate(&mut env).unwrap();
    }

    #[test]
    fn miss_splays_last_touched_node() {
        let mut env = env_for(Mode::Hw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in [50u64, 25, 75] {
            t.insert(&mut env, k, k).unwrap();
        }
        assert_eq!(t.get(&mut env, 60).unwrap(), None);
        let root = t.root(&mut env).unwrap();
        // Last node on the search path for 60 is 75 (right of 50, then left
        // of 75 is null — wait: path 75 → left(75)... depends on shape after
        // splays). Whatever the shape, root must be a real key and the tree
        // valid.
        assert!([50u64, 25, 75].contains(&key_of(&mut env, root).unwrap()));
        t.validate(&mut env).unwrap();
    }

    #[test]
    fn zipfian_like_repeat_access_shortens_path() {
        let mut env = env_for(Mode::Hw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in 0..128u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        // Access key 64 twice: the second access must find it at the root
        // (depth 0), the whole point of splaying for skewed workloads.
        t.get(&mut env, 64).unwrap();
        let root = t.root(&mut env).unwrap();
        assert_eq!(key_of(&mut env, root).unwrap(), 64);
        t.get(&mut env, 64).unwrap();
        let root2 = t.root(&mut env).unwrap();
        assert_eq!(key_of(&mut env, root2).unwrap(), 64);
        t.validate(&mut env).unwrap();
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<SplayTree>();
    }

    #[test]
    fn remove_keeps_bst_and_parent_links() {
        let mut env = env_for(Mode::Hw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in 0..96u64 {
            t.insert(&mut env, (k * 37) % 96, k).unwrap();
        }
        for k in (0..96u64).step_by(2) {
            assert!(t.remove(&mut env, k).unwrap().is_some(), "key {k}");
            if k % 16 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), 48);
        for k in 0..96u64 {
            assert_eq!(t.get(&mut env, k).unwrap().is_some(), k % 2 == 1, "key {k}");
        }
        assert_eq!(t.remove(&mut env, 1000).unwrap(), None);
    }

    #[test]
    fn remove_root_and_drain() {
        let mut env = env_for(Mode::Sw);
        let mut t = SplayTree::create(&mut env).unwrap();
        for k in [5u64, 2, 8, 1, 3, 7, 9] {
            t.insert(&mut env, k, k).unwrap();
        }
        // The most recent insert is at the root; remove it first.
        assert_eq!(t.remove(&mut env, 9).unwrap(), Some(9));
        t.validate(&mut env).unwrap();
        for k in [5u64, 2, 8, 1, 3, 7] {
            assert_eq!(t.remove(&mut env, k).unwrap(), Some(k));
            t.validate(&mut env).unwrap();
        }
        assert_eq!(t.len(&mut env).unwrap(), 0);
    }
}
