//! Lock-free sorted linked-list map: one [`harris`] chain behind a
//! one-word descriptor.
//!
//! The concurrent counterpart of [`crate::ll::LinkedList`] in the
//! benchmark suite's "LL" slot — but as a key→value *map* so it shares
//! the [`ConcurrentIndex`] interface and the linearizability oracles
//! with the hash map.
//!
//! ```
//! use utpr_ds::{ConcList, ConcurrentIndex, FlushStrategy, Handle, IndexCore};
//! use utpr_heap::{AddressSpace, FlushModel, SharedPool};
//! use utpr_ptr::{ExecEnv, Mode};
//!
//! let sp = SharedPool::create("doc-clist", 4 << 20, 8)?;
//! sp.set_flush_model(FlushModel::Adr);
//! let mut space = AddressSpace::new(1);
//! let pool = space.adopt_shared(&sp)?;
//! let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
//! let list = ConcList::create(&mut env)?;
//! let mut h = Handle::new(&mut env, FlushStrategy::FliT)?;
//! assert_eq!(list.insert(&mut h, 7, 70)?, None);
//! assert_eq!(list.get(&mut h, 7)?, Some(70));
//! assert_eq!(list.remove(&mut h, 7)?, Some(70));
//! assert_eq!(list.len(&mut h)?, 0);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

use super::{harris, ConcurrentIndex, Handle};
use crate::index::{IndexCore, Result};

/// Lock-free sorted-list map; the value is just the descriptor pointer,
/// so it is `Copy`-cheap to reopen per worker shard.
#[derive(Clone, Copy, Debug)]
pub struct ConcList {
    desc: UPtr,
}

impl IndexCore for ConcList {
    const NAME: &'static str = "CList";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("clist.create", AllocResult), 8)?;
        env.write_u64(site!("clist.init-head", AllocResult), desc, 0, 0)?;
        // Single-threaded setup: drain so the empty chain is durable
        // before any worker adopts the pool.
        env.space_mut().fence();
        Ok(ConcList { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        ConcList { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        harris::validate_chain(env, self.desc, 0)
    }
}

impl ConcurrentIndex for ConcList {
    fn insert<S: TimingSink>(
        &self,
        h: &mut Handle<'_, S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        harris::insert(h, self.desc, 0, key, value)
    }

    fn get<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        harris::get(h, self.desc, 0, key)
    }

    fn remove<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        harris::remove(h, self.desc, 0, key)
    }

    fn len<S: TimingSink>(&self, h: &mut Handle<'_, S>) -> Result<u64> {
        harris::count_live(h, self.desc, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::FlushStrategy;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use utpr_heap::{AddressSpace, FlushModel, SharedPool};
    use utpr_ptr::{CountingSink, Mode, NullSink};

    fn setup(seed: u64, name: &str) -> ExecEnv<CountingSink> {
        let sp = SharedPool::create(name, 16 << 20, 8).unwrap();
        sp.set_flush_model(FlushModel::Adr);
        let mut space = AddressSpace::new(seed);
        let pool = space.adopt_shared(&sp).unwrap();
        ExecEnv::builder(space).mode(Mode::Hw).pool(pool).sink(CountingSink::new()).build()
    }

    #[test]
    fn oracle_against_btreemap_all_strategies() {
        for (i, strategy) in FlushStrategy::ALL.iter().enumerate() {
            let mut env = setup(41 + i as u64, &format!("clist-oracle-{i}"));
            let list = ConcList::create(&mut env).unwrap();
            let mut h = Handle::new(&mut env, *strategy).unwrap();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut x = 0x9e3779b97f4a7c15u64 ^ i as u64;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for op in 0..600 {
                let r = step();
                let key = step() % 61;
                match r % 4 {
                    0 | 1 => {
                        let v = step() >> 1; // < VALUE_LIMIT
                        assert_eq!(
                            list.insert(&mut h, key, v).unwrap(),
                            model.insert(key, v),
                            "{strategy:?} insert @{op}"
                        );
                    }
                    2 => assert_eq!(
                        list.get(&mut h, key).unwrap(),
                        model.get(&key).copied(),
                        "{strategy:?} get @{op}"
                    ),
                    _ => assert_eq!(
                        list.remove(&mut h, key).unwrap(),
                        model.remove(&key),
                        "{strategy:?} remove @{op}"
                    ),
                }
            }
            assert_eq!(list.len(&mut h).unwrap(), model.len() as u64);
            let c = h.counters();
            assert_eq!(c.ops, 601);
            assert_eq!(c.fences, c.ops, "one persist fence per op");
            let live = list.validate(&mut env).unwrap();
            assert_eq!(live, model.len() as u64, "{strategy:?} validate");
        }
    }

    #[test]
    fn two_real_threads_on_disjoint_keys_converge() {
        let sp = SharedPool::create("clist-mt", 16 << 20, 8).unwrap();
        sp.set_flush_model(FlushModel::Adr);
        let desc_rel = {
            let mut space = AddressSpace::new(5);
            let pool = space.adopt_shared(&sp).unwrap();
            let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
            let list = ConcList::create(&mut env).unwrap();
            let h = Handle::new(&mut env, FlushStrategy::Eager).unwrap();
            h.rel_raw(list.descriptor()).unwrap()
        };
        let sp = Arc::new(sp);
        std::thread::scope(|s| {
            for t in 0u64..2 {
                let sp = Arc::clone(&sp);
                s.spawn(move || {
                    let mut space = AddressSpace::new(100 + t);
                    let pool = space.adopt_shared(&sp).unwrap();
                    let mut env =
                        ExecEnv::builder(space).mode(Mode::Hw).pool(pool).sink(NullSink).build();
                    let list = ConcList::open(UPtr::from_raw(desc_rel));
                    let mut h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
                    for i in 0..50u64 {
                        let k = i * 2 + t; // interleaved, disjoint
                        list.insert(&mut h, k, k * 10).unwrap();
                    }
                    for i in 0..50u64 {
                        let k = i * 2 + t;
                        assert_eq!(list.get(&mut h, k).unwrap(), Some(k * 10));
                        if i % 5 == 0 {
                            assert_eq!(list.remove(&mut h, k).unwrap(), Some(k * 10));
                        }
                    }
                });
            }
        });
        let mut space = AddressSpace::new(777);
        let pool = space.adopt_shared(&sp).unwrap();
        let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
        let list = ConcList::open(UPtr::from_raw(desc_rel));
        let live = list.validate(&mut env).unwrap();
        assert_eq!(live, 80, "2 × (50 inserted − 10 removed)");
        let mut h = Handle::new(&mut env, FlushStrategy::Eager).unwrap();
        assert_eq!(list.len(&mut h).unwrap(), 80);
    }
}
