//! Lock-free chained hash map: a fixed array of [`harris`] chains.
//!
//! The concurrent counterpart of [`crate::hash::HashMapIndex`]. The
//! bucket directory is allocated once at [`IndexCore::create`] and never
//! resized — resizing a lock-free table needs a cooperative migration
//! protocol that is out of scope here (the sequential map keeps its
//! doubling growth; chains just get longer under load on this one).
//! With the multiplicative bucket hash the expected chain length stays
//! `n / 64`, which the flush-traffic benches are insensitive to.
//!
//! ```
//! use utpr_ds::{ConcHash, ConcurrentIndex, FlushStrategy, Handle, IndexCore};
//! use utpr_heap::{AddressSpace, FlushModel, SharedPool};
//! use utpr_ptr::{ExecEnv, Mode};
//!
//! let sp = SharedPool::create("doc-chash", 4 << 20, 8)?;
//! sp.set_flush_model(FlushModel::Adr);
//! let mut space = AddressSpace::new(2);
//! let pool = space.adopt_shared(&sp)?;
//! let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
//! let map = ConcHash::create(&mut env)?;
//! let mut h = Handle::new(&mut env, FlushStrategy::Traverse)?;
//! assert_eq!(map.insert(&mut h, 1, 10)?, None);
//! assert_eq!(map.insert(&mut h, 1, 11)?, Some(10));
//! assert_eq!(map.len(&mut h)?, 1);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

use super::{harris, ConcurrentIndex, Handle};
use crate::index::{IndexCore, Result};

/// Bucket count; fixed for the structure's lifetime (no lock-free
/// resize).
pub const BUCKETS: u64 = 64;

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Descriptor layout: `[bucket_count, head_0, …, head_63]`.
const DESC_BYTES: u64 = (1 + BUCKETS) * 8;

#[inline]
fn bucket_off(key: u64) -> i64 {
    let b = key.wrapping_mul(GOLDEN) >> (64 - BUCKETS.trailing_zeros());
    (8 + b * 8) as i64
}

/// Lock-free fixed-fanout chained hash map.
#[derive(Clone, Copy, Debug)]
pub struct ConcHash {
    desc: UPtr,
}

impl IndexCore for ConcHash {
    const NAME: &'static str = "CHash";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("chash.create", AllocResult), DESC_BYTES)?;
        env.write_u64(site!("chash.init-count", AllocResult), desc, 0, BUCKETS)?;
        for b in 0..BUCKETS {
            env.write_u64(site!("chash.init-head", AllocResult), desc, (8 + b * 8) as i64, 0)?;
        }
        env.space_mut().fence();
        Ok(ConcHash { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        ConcHash { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        let count = env.read_u64(site!("chash.val-count", KnownReturn), self.desc, 0)?;
        assert_eq!(count, BUCKETS, "bucket directory header damaged");
        let mut live = 0;
        for b in 0..BUCKETS {
            live += harris::validate_chain(env, self.desc, (8 + b * 8) as i64)?;
        }
        Ok(live)
    }
}

impl ConcurrentIndex for ConcHash {
    fn insert<S: TimingSink>(
        &self,
        h: &mut Handle<'_, S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        harris::insert(h, self.desc, bucket_off(key), key, value)
    }

    fn get<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        harris::get(h, self.desc, bucket_off(key), key)
    }

    fn remove<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        harris::remove(h, self.desc, bucket_off(key), key)
    }

    fn len<S: TimingSink>(&self, h: &mut Handle<'_, S>) -> Result<u64> {
        let mut live = 0;
        for b in 0..BUCKETS {
            // count_live fences per chain; fold them into one logical op
            // by treating len as BUCKETS sequential sub-traversals.
            live += harris::count_live(h, self.desc, (8 + b * 8) as i64)?;
        }
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::FlushStrategy;
    use std::collections::BTreeMap;
    use utpr_heap::{AddressSpace, FlushModel, SharedPool};
    use utpr_ptr::{CountingSink, Mode};

    fn setup(seed: u64, name: &str) -> ExecEnv<CountingSink> {
        let sp = SharedPool::create(name, 16 << 20, 8).unwrap();
        sp.set_flush_model(FlushModel::Adr);
        let mut space = AddressSpace::new(seed);
        let pool = space.adopt_shared(&sp).unwrap();
        ExecEnv::builder(space).mode(Mode::Hw).pool(pool).sink(CountingSink::new()).build()
    }

    #[test]
    fn oracle_against_btreemap() {
        let mut env = setup(19, "chash-oracle");
        let map = ConcHash::create(&mut env).unwrap();
        let mut h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x = 0x1234_5678_9abc_def1u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for op in 0..1500 {
            let r = step();
            let key = step() % 331;
            match r % 4 {
                0 | 1 => {
                    let v = step() >> 1;
                    assert_eq!(
                        map.insert(&mut h, key, v).unwrap(),
                        model.insert(key, v),
                        "insert @{op}"
                    );
                }
                2 => assert_eq!(
                    map.get(&mut h, key).unwrap(),
                    model.get(&key).copied(),
                    "get @{op}"
                ),
                _ => assert_eq!(
                    map.remove(&mut h, key).unwrap(),
                    model.remove(&key),
                    "remove @{op}"
                ),
            }
        }
        assert_eq!(map.len(&mut h).unwrap(), model.len() as u64);
        assert_eq!(map.validate(&mut env).unwrap(), model.len() as u64);
    }

    #[test]
    fn strategies_produce_identical_contents() {
        let mut checksums = Vec::new();
        for (i, strategy) in FlushStrategy::ALL.iter().enumerate() {
            let mut env = setup(7, &format!("chash-same-{i}"));
            let map = ConcHash::create(&mut env).unwrap();
            let mut h = Handle::new(&mut env, *strategy).unwrap();
            for k in 0..200u64 {
                map.insert(&mut h, k.wrapping_mul(GOLDEN) % 997, k).unwrap();
            }
            for k in 0..50u64 {
                map.remove(&mut h, (k * 3).wrapping_mul(GOLDEN) % 997).unwrap();
            }
            let mut sum = 0u64;
            for k in 0..997u64 {
                if let Some(v) = map.get(&mut h, k).unwrap() {
                    sum = sum.wrapping_mul(0x100_0000_01b3).wrapping_add(k ^ v);
                }
            }
            checksums.push((h.counters(), sum));
        }
        assert_eq!(checksums[0].1, checksums[1].1, "eager vs flit contents");
        assert_eq!(checksums[0].1, checksums[2].1, "eager vs traverse contents");
        let (eager, flit, traverse) =
            (checksums[0].0, checksums[1].0, checksums[2].0);
        assert!(flit.flushes < eager.flushes, "flit must elide read flushes");
        assert!(traverse.flushes < eager.flushes, "traverse must elide traversal flushes");
        assert!(flit.elided > 0 && traverse.elided > 0);
    }
}
