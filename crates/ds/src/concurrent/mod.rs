//! Durable-linearizable concurrent index variants (paper §VII scaling,
//! FliT/NVTraverse-style flush elision).
//!
//! The sequential structures in this crate are single-writer: `insert`
//! and `remove` take `&mut self` and every durable store is published by
//! the caller's explicit transaction or fence discipline. This module
//! adds the concurrent tier of the redesigned two-level index API:
//!
//! * [`ConcurrentIndex`] — operations take `&self` plus a per-thread
//!   [`Handle`], so one structure value can be shared across workers
//!   (each worker re-opens it from the same descriptor in its own
//!   address-space shard; all stored links are pool-relative).
//! * [`ConcList`] / [`ConcHash`] — a Harris-style lock-free sorted
//!   linked-list map and a fixed-fanout chained hash map built on it
//!   ([`harris`] holds the shared core).
//! * [`Striped`] — a lock-striped adapter lifting any sequential
//!   [`IndexOps`] tree into the concurrent interface.
//!
//! ## Flush strategies
//!
//! Every handle is parameterized by a [`FlushStrategy`] deciding *which*
//! cache lines are explicitly written back (`clwb`) and *when*:
//!
//! * [`FlushStrategy::Eager`] — the Izraelevitz et al. transform: flush
//!   after **every** shared NVM load and store, fence at operation end.
//!   Correct everywhere, maximally expensive; the baseline.
//! * [`FlushStrategy::FliT`] — per-word tag counters. A store tags its
//!   word and defers the writeback to the operation's persist point,
//!   where the writer flushes and untags its write set. A load flushes
//!   only when the word is tagged (someone's store is still in flight);
//!   untagged loads elide the flush entirely. Tags live beside the data
//!   in [`SharedPool`]'s flush plane, never in the persistent image.
//! * [`FlushStrategy::Traverse`] — the NVTraverse split: the traversal
//!   phase issues **no** flushes at all; at the traversal/critical-phase
//!   boundary the destination nodes (pred link + current node) are made
//!   durable ([`Handle::ensure_reachable`]), and the critical phase's
//!   write set is flushed at the persist point.
//!
//! The operation-end fence is modelled as a machine-wide drain of the
//! pool's pending-line set, so a *completed* operation's entire causal
//! prefix is durable no matter which strategy issued (or elided) the
//! individual line writebacks — all three strategies are durably
//! linearizable by construction, and differ in the `clwb` traffic the
//! handle counters record (see `DESIGN.md` §12). Crash points between an
//! operation's stores and its fence expose the strategies' different
//! pending sets; the in-flight operation may be dropped or retained,
//! which durable linearizability permits.
//!
//! Schedule yields ([`Handle::with_yielder`]) happen only at loads,
//! stores, CAS, and allocation — never at flushes or fences — so a
//! seeded schedule and every CAS outcome are identical across the three
//! strategies and the final contents are bit-identical (the bench gate
//! checks exactly this).

use std::sync::Arc;

use utpr_heap::space::LINE_SIZE;
use utpr_heap::{HeapError, PoolId, SharedPool};
use utpr_ptr::{ExecEnv, PtrKind, Site, TimingSink, UPtr};

pub mod harris;
pub mod hash;
pub mod list;
pub mod striped;

pub use hash::ConcHash;
pub use list::ConcList;
pub use striped::Striped;

use crate::index::{IndexCore, Result};

/// Values ≥ this are reserved by the lock-free structures (the tombstone
/// that logically deletes a node in one CAS). Inserting a reserved value
/// is rejected at the API boundary.
pub const VALUE_LIMIT: u64 = u64::MAX;

pub(crate) const TOMBSTONE: u64 = u64::MAX;

/// Modelled cost of one `clwb` issue (micro-ops charged to the worker's
/// core).
const FLUSH_UOPS: u32 = 6;
/// Modelled cost of one persist fence (`sfence` + drain visibility).
const FENCE_UOPS: u32 = 40;

/// Which cache-line writeback protocol a [`Handle`] follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlushStrategy {
    /// Flush every shared load and store (Izraelevitz transform).
    Eager,
    /// Tagged words: stores tag + defer, loads flush only tagged words.
    FliT,
    /// No traversal flushes; persist destinations + write set only.
    Traverse,
}

impl FlushStrategy {
    /// Short lowercase label used in bench rows and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlushStrategy::Eager => "eager",
            FlushStrategy::FliT => "flit",
            FlushStrategy::Traverse => "traverse",
        }
    }

    /// All strategies, in baseline-first order.
    pub const ALL: [FlushStrategy; 3] =
        [FlushStrategy::Eager, FlushStrategy::FliT, FlushStrategy::Traverse];
}

/// Writeback/fence accounting one handle accumulates across its
/// operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushCounters {
    /// `clwb`s issued.
    pub flushes: u64,
    /// Loads/stores whose writeback the strategy elided.
    pub elided: u64,
    /// Persist fences issued (one per completed operation).
    pub fences: u64,
    /// Operations completed through this handle.
    pub ops: u64,
}

impl FlushCounters {
    /// `clwb`s per completed operation.
    #[must_use]
    pub fn flushes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.flushes as f64 / self.ops as f64
        }
    }

    /// Merges another handle's counters (join-time aggregation).
    pub fn merge(&mut self, other: &FlushCounters) {
        self.flushes += other.flushes;
        self.elided += other.elided;
        self.fences += other.fences;
        self.ops += other.ops;
    }
}

/// Yield callback invoked before every shared load/store/CAS/alloc; an
/// `Err` means the schedule declared a machine-wide crash and the
/// operation must unwind.
pub type Yielder<'a> = &'a (dyn Fn() -> std::result::Result<(), HeapError> + 'a);

/// Per-thread execution handle for the concurrent structures: the
/// worker's [`ExecEnv`] shard plus the shared pool's flush plane and the
/// strategy-specific writeback bookkeeping.
///
/// A handle is cheap to build once per worker and reused across
/// operations; it is `!Send` by construction (it borrows the worker's
/// environment).
pub struct Handle<'a, S: TimingSink> {
    env: &'a mut ExecEnv<S>,
    sp: Arc<SharedPool>,
    pool: PoolId,
    strategy: FlushStrategy,
    counters: FlushCounters,
    /// Word offsets written by the in-flight operation (FliT: tagged,
    /// to untag+flush at persist; Traverse: to flush at persist).
    write_set: Vec<u64>,
    yielder: Option<Yielder<'a>>,
}

impl<'a, S: TimingSink> Handle<'a, S> {
    /// Builds a handle over the environment's default pool, which must be
    /// an adopted [`SharedPool`] (the flush plane lives there).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the environment has no
    /// default pool or it is not a shared pool.
    pub fn new(env: &'a mut ExecEnv<S>, strategy: FlushStrategy) -> Result<Self> {
        let pool =
            env.pool().ok_or_else(|| HeapError::NoSuchPoolName("<no default pool>".into()))?;
        let sp = env
            .space()
            .shared_pool(pool)
            .cloned()
            .ok_or(HeapError::PoolDetached(pool))?;
        Ok(Handle {
            env,
            sp,
            pool,
            strategy,
            counters: FlushCounters::default(),
            write_set: Vec::with_capacity(16),
            yielder: None,
        })
    }

    /// Installs a schedule yield point (turnstile hook). Yields fire
    /// before every load/store/CAS/alloc and nowhere else.
    #[must_use]
    pub fn with_yielder(mut self, y: Yielder<'a>) -> Self {
        self.yielder = Some(y);
        self
    }

    /// The strategy this handle follows.
    #[must_use]
    pub fn strategy(&self) -> FlushStrategy {
        self.strategy
    }

    /// Accumulated writeback/fence counters.
    #[must_use]
    pub fn counters(&self) -> FlushCounters {
        self.counters
    }

    /// The wrapped environment (for descriptor reads, validation walks,
    /// and the striped adapter's sequential inner operations).
    pub fn env_mut(&mut self) -> &mut ExecEnv<S> {
        self.env
    }

    /// The pool the handle operates on.
    #[must_use]
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    fn tick(&mut self) -> Result<()> {
        if let Some(y) = self.yielder {
            y()?;
        }
        Ok(())
    }

    /// Pool-relative byte offset of `base + off` (works for both rel- and
    /// va-format pointers; the flush plane is keyed by pool offsets so
    /// tags and pending lines are shard-independent).
    fn word_off(&self, base: UPtr, off: i64) -> Result<u64> {
        let p = base.offset(off);
        match p.kind() {
            PtrKind::Rel(loc) => Ok(u64::from(loc.offset)),
            PtrKind::Va(va) => Ok(u64::from(self.env.space().va2ra_uncached(va)?.offset)),
            PtrKind::Null => Err(HeapError::Unmapped(utpr_heap::VirtAddr::new(0))),
        }
    }

    /// Canonical pool-relative raw bits for a pointer (what the
    /// structures store in next links, shard-independent).
    pub fn rel_raw(&self, p: UPtr) -> Result<u64> {
        match p.kind() {
            PtrKind::Null => Ok(0),
            PtrKind::Rel(_) => Ok(p.raw()),
            PtrKind::Va(va) => {
                Ok(UPtr::from_rel(self.env.space().va2ra_uncached(va)?).raw())
            }
        }
    }

    fn issue_flush(&mut self, word: u64) {
        self.sp.flush_line(word);
        self.counters.flushes += 1;
        self.env.charge_exec(FLUSH_UOPS);
    }

    /// Loads a shared word, applying the strategy's read-side writeback
    /// rule.
    ///
    /// # Errors
    ///
    /// Propagates translation/crash errors (including a schedule-declared
    /// crash from the yield point).
    pub fn read_word(&mut self, site: &'static Site, base: UPtr, off: i64) -> Result<u64> {
        self.tick()?;
        let v = self.env.read_u64(site, base, off)?;
        let w = self.word_off(base, off)?;
        match self.strategy {
            FlushStrategy::Eager => self.issue_flush(w),
            FlushStrategy::FliT => {
                if self.sp.word_tagged(w) {
                    self.issue_flush(w);
                } else {
                    self.counters.elided += 1;
                }
            }
            FlushStrategy::Traverse => self.counters.elided += 1,
        }
        Ok(v)
    }

    fn note_store(&mut self, w: u64) {
        match self.strategy {
            FlushStrategy::Eager => self.issue_flush(w),
            FlushStrategy::FliT => {
                self.sp.tag_word(w);
                self.write_set.push(w);
            }
            FlushStrategy::Traverse => self.write_set.push(w),
        }
    }

    /// Stores a shared word, applying the strategy's write-side rule.
    ///
    /// # Errors
    ///
    /// Propagates translation/crash errors.
    pub fn write_word(&mut self, site: &'static Site, base: UPtr, off: i64, v: u64) -> Result<()> {
        self.tick()?;
        self.env.write_u64(site, base, off, v)?;
        let w = self.word_off(base, off)?;
        self.note_store(w);
        Ok(())
    }

    /// Compare-and-swap on a shared word. A successful CAS is a store
    /// (tag/flush per strategy); a failed CAS is a load.
    ///
    /// # Errors
    ///
    /// Propagates translation/crash errors.
    pub fn cas_word(
        &mut self,
        site: &'static Site,
        base: UPtr,
        off: i64,
        expected: u64,
        new: u64,
    ) -> Result<(bool, u64)> {
        self.tick()?;
        let (ok, old) = self.env.cas_u64(site, base, off, expected, new)?;
        let w = self.word_off(base, off)?;
        if ok {
            self.note_store(w);
        } else {
            match self.strategy {
                FlushStrategy::Eager => self.issue_flush(w),
                FlushStrategy::FliT => {
                    if self.sp.word_tagged(w) {
                        self.issue_flush(w);
                    } else {
                        self.counters.elided += 1;
                    }
                }
                FlushStrategy::Traverse => self.counters.elided += 1,
            }
        }
        Ok((ok, old))
    }

    /// Allocates `size` bytes in the shared pool (a yield point; the
    /// allocator's own metadata persistence is fence-first and outside
    /// the strategy accounting).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn alloc(&mut self, site: &'static Site, size: u64) -> Result<UPtr> {
        self.tick()?;
        self.env.alloc(site, size)
    }

    /// NVTraverse's `ensureReachable`: called at the traversal →
    /// critical-phase boundary with the destination range(s); flushes
    /// every line of `[base+off, base+off+len)` under
    /// [`FlushStrategy::Traverse`], a no-op for the others (Eager already
    /// flushed, FliT's read rule already covered tagged words).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn ensure_reachable(&mut self, base: UPtr, off: i64, len: u64) -> Result<()> {
        if self.strategy != FlushStrategy::Traverse {
            return Ok(());
        }
        let start = self.word_off(base, off)?;
        let first = start / LINE_SIZE;
        let last = (start + len.max(1) - 1) / LINE_SIZE;
        for line in first..=last {
            self.issue_flush(line * LINE_SIZE);
        }
        Ok(())
    }

    /// Operation persist point: flush the deferred write set (untagging
    /// under FliT), then fence. Every [`ConcurrentIndex`] operation ends
    /// here, including read-only ones (their write set is empty; the
    /// fence is the Izraelevitz return barrier).
    pub fn op_persist(&mut self) {
        if !self.write_set.is_empty() {
            let mut words = std::mem::take(&mut self.write_set);
            if self.strategy == FlushStrategy::FliT {
                for &w in &words {
                    self.sp.untag_word(w);
                }
            }
            // One clwb per distinct line, however many words it holds.
            words.sort_unstable_by_key(|w| w / LINE_SIZE);
            words.dedup_by_key(|w| *w / LINE_SIZE);
            for w in words {
                self.issue_flush(w);
            }
            self.write_set = Vec::with_capacity(16);
        }
        self.sp.drain_all();
        self.counters.fences += 1;
        self.counters.ops += 1;
        self.env.charge_exec(FENCE_UOPS);
    }
}

/// The concurrent operations tier: shared-receiver operations driven
/// through a per-thread [`Handle`]. Lifecycle (create/open/descriptor/
/// validate) comes from the common [`IndexCore`] supertrait.
pub trait ConcurrentIndex: IndexCore {
    /// Inserts or updates; returns the previous value if the key was
    /// present. Values must be `< VALUE_LIMIT`.
    ///
    /// # Errors
    ///
    /// Propagates allocation/translation/crash failures.
    fn insert<S: TimingSink>(
        &self,
        h: &mut Handle<'_, S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>>;

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates translation/crash failures.
    fn get<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>>;

    /// Removes a key, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates translation/crash failures.
    fn remove<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>>;

    /// Number of live keys (a full traversal; exact at quiescence).
    ///
    /// # Errors
    ///
    /// Propagates translation/crash failures.
    fn len<S: TimingSink>(&self, h: &mut Handle<'_, S>) -> Result<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_heap::AddressSpace;
    use utpr_ptr::{CountingSink, Mode};

    pub(crate) fn shared_env(seed: u64) -> (Arc<SharedPool>, ExecEnv<CountingSink>) {
        let sp = SharedPool::create(&format!("conc-mod-{seed}"), 16 << 20, 8).unwrap();
        sp.set_flush_model(utpr_heap::FlushModel::Adr);
        let mut space = AddressSpace::new(seed);
        let pool = space.adopt_shared(&sp).unwrap();
        let env = ExecEnv::builder(space)
            .mode(Mode::Hw)
            .pool(pool)
            .sink(CountingSink::new())
            .build();
        (sp, env)
    }

    #[test]
    fn handle_requires_a_shared_pool() {
        let mut space = AddressSpace::new(3);
        let pool = space.create_pool("local", 1 << 20).unwrap();
        let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
        assert!(Handle::new(&mut env, FlushStrategy::Eager).is_err());
    }

    #[test]
    fn eager_flushes_loads_and_stores_flit_elides_untagged_loads() {
        let (_sp, mut env) = shared_env(11);
        let site = utpr_ptr::site!("conc.test", StackLocal);
        let p = env.alloc(site, 64).unwrap();
        for (strategy, expect_load_flush) in
            [(FlushStrategy::Eager, true), (FlushStrategy::FliT, false)]
        {
            let mut h = Handle::new(&mut env, strategy).unwrap();
            h.write_word(site, p, 0, 7).unwrap();
            let before = h.counters();
            h.read_word(site, p, 8).unwrap(); // untouched word: never tagged
            let after = h.counters();
            assert_eq!(
                after.flushes > before.flushes,
                expect_load_flush,
                "{strategy:?} load flush"
            );
            h.op_persist();
        }
    }

    #[test]
    fn flit_tags_are_cleared_at_persist() {
        let (sp, mut env) = shared_env(12);
        let site = utpr_ptr::site!("conc.tag", StackLocal);
        let p = env.alloc(site, 64).unwrap();
        let rel = {
            let h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
            h.rel_raw(p).unwrap()
        };
        let w = u64::from(UPtr::from_raw(rel).as_rel().unwrap().offset);
        let mut h = Handle::new(&mut env, FlushStrategy::FliT).unwrap();
        h.write_word(site, p, 0, 9).unwrap();
        assert!(sp.word_tagged(w), "store must tag its word");
        h.op_persist();
        assert!(!sp.word_tagged(w), "persist point must untag the write set");
        assert_eq!(h.counters().ops, 1);
    }

    #[test]
    fn traverse_flushes_only_at_boundaries() {
        let (sp, mut env) = shared_env(13);
        let site = utpr_ptr::site!("conc.trav", StackLocal);
        let p = env.alloc(site, 128).unwrap();
        let mut h = Handle::new(&mut env, FlushStrategy::Traverse).unwrap();
        h.write_word(site, p, 0, 1).unwrap();
        h.read_word(site, p, 0).unwrap();
        assert_eq!(h.counters().flushes, 0, "traversal phase issues no clwb");
        assert_eq!(h.counters().elided, 1);
        h.ensure_reachable(p, 0, 24).unwrap();
        assert!(h.counters().flushes >= 1, "destination made durable");
        h.op_persist();
        assert_eq!(sp.pending_lines(), 0, "fence drains the pool");
    }
}
