//! Harris-style lock-free sorted-list core shared by [`super::ConcList`]
//! and [`super::ConcHash`].
//!
//! One chain is a singly-linked sorted run of 24-byte nodes
//! `[key, value, next]` hanging off a *head link word* (a bare `u64` slot
//! in the owner's descriptor — not a sentinel node). All stored links are
//! pool-relative raw pointer bits, so every worker shard sees the same
//! chain no matter where its attachment mapped the pool.
//!
//! Deviations from the textbook Harris list, chosen so the map supports
//! linearizable in-place updates:
//!
//! * **The value word is the node's liveness register.** A remove
//!   logically deletes in one CAS — `value: v → TOMBSTONE` — whose old
//!   value is the op's return; an update CASes `v → v'` and fails (and
//!   retries or falls back to a fresh insert) if the node died first.
//!   One atomic word arbitrates every update/remove race, which is what
//!   makes the histories pass the Wing&Gong checker.
//! * **The Harris mark bit** (bit 0 of a node's `next` word; payloads
//!   are 8-aligned so it is free) is set *after* tombstoning, by the
//!   sole tombstoner, to let traversals physically unlink the node.
//!   Marked ⇒ tombstoned, never the reverse order.
//! * **Duplicate keys may transiently coexist**: a fresh insert links
//!   its node before the first `key ≥ k` position, so within an
//!   equal-key run the (at most one) live node is always first and dead
//!   ones trail until helped out of the chain.
//! * **Removed nodes are leaked**, exactly like the allocator's
//!   crash-leaked arena remainders: with no safe memory reclamation,
//!   leaking is the price of lock-freedom here, and it also kills ABA
//!   (a raw pointer value is never reissued). An epoch reclaimer is
//!   future work (see `ROADMAP.md`).

use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

use super::{Handle, TOMBSTONE};
use crate::index::Result;

/// Node layout: `[key, value, next]`.
pub(crate) const OFF_KEY: i64 = 0;
pub(crate) const OFF_VALUE: i64 = 8;
pub(crate) const OFF_NEXT: i64 = 16;
pub(crate) const NODE_BYTES: u64 = 24;

/// Harris mark bit: set in a node's `next` word once the node is dead.
pub(crate) const MARK: u64 = 1;

#[inline]
fn node_ptr(raw: u64) -> UPtr {
    UPtr::from_raw(raw & !MARK)
}

/// Where a search landed: the link word `pred_base + pred_off` holds
/// `curr_raw` (0 at end of chain); `curr_key` is valid when `curr_raw`
/// is non-zero and satisfies `curr_key >= key` searched for.
pub(crate) struct Cursor {
    pub pred_base: UPtr,
    pub pred_off: i64,
    pub curr_raw: u64,
    pub curr_key: u64,
}

/// Traverses the chain for `key`, helping unlink marked nodes on the
/// way, and ends with the NVTraverse `ensureReachable` boundary: the
/// pred link word and the current node are made durable before the
/// caller's critical phase.
pub(crate) fn search<S: TimingSink>(
    h: &mut Handle<'_, S>,
    head_base: UPtr,
    head_off: i64,
    key: u64,
) -> Result<Cursor> {
    'retry: loop {
        let mut pred_base = head_base;
        let mut pred_off = head_off;
        let mut curr_raw = h.read_word(site!("harris.load-head", Param), pred_base, pred_off)?;
        loop {
            if curr_raw == 0 {
                h.ensure_reachable(pred_base, pred_off, 8)?;
                return Ok(Cursor { pred_base, pred_off, curr_raw: 0, curr_key: 0 });
            }
            let curr = node_ptr(curr_raw);
            let succ_raw = h.read_word(site!("harris.load-next", MemLoad), curr, OFF_NEXT)?;
            if succ_raw & MARK != 0 {
                // curr is dead: help unlink it, restarting on contention.
                let (ok, _) = h.cas_word(
                    site!("harris.unlink", MemLoad),
                    pred_base,
                    pred_off,
                    curr_raw,
                    succ_raw & !MARK,
                )?;
                if !ok {
                    continue 'retry;
                }
                curr_raw = succ_raw & !MARK;
                continue;
            }
            let curr_key = h.read_word(site!("harris.load-key", MemLoad), curr, OFF_KEY)?;
            if curr_key >= key {
                h.ensure_reachable(pred_base, pred_off, 8)?;
                h.ensure_reachable(curr, 0, NODE_BYTES)?;
                return Ok(Cursor { pred_base, pred_off, curr_raw, curr_key });
            }
            pred_base = curr;
            pred_off = OFF_NEXT;
            curr_raw = succ_raw;
        }
    }
}

/// Insert-or-update; returns the previous value. See the module docs for
/// the linearization points.
pub(crate) fn insert<S: TimingSink>(
    h: &mut Handle<'_, S>,
    head_base: UPtr,
    head_off: i64,
    key: u64,
    value: u64,
) -> Result<Option<u64>> {
    assert!(value < TOMBSTONE, "value {value:#x} is reserved (VALUE_LIMIT)");
    // One spare node survives CAS retries so a contended insert does not
    // allocate per attempt.
    let mut spare: Option<UPtr> = None;
    loop {
        let c = search(h, head_base, head_off, key)?;
        if c.curr_raw != 0 && c.curr_key == key {
            let node = node_ptr(c.curr_raw);
            loop {
                let v = h.read_word(site!("harris.upd-load", MemLoad), node, OFF_VALUE)?;
                if v == TOMBSTONE {
                    break; // died under us: fall through to a fresh insert
                }
                let (ok, _) =
                    h.cas_word(site!("harris.upd-cas", MemLoad), node, OFF_VALUE, v, value)?;
                if ok {
                    h.op_persist();
                    return Ok(Some(v));
                }
            }
        }
        let n = match spare {
            Some(n) => n,
            None => {
                let n = h.alloc(site!("harris.alloc", AllocResult), NODE_BYTES)?;
                h.write_word(site!("harris.init-key", AllocResult), n, OFF_KEY, key)?;
                h.write_word(site!("harris.init-val", AllocResult), n, OFF_VALUE, value)?;
                spare = Some(n);
                n
            }
        };
        h.write_word(site!("harris.init-next", AllocResult), n, OFF_NEXT, c.curr_raw)?;
        let n_raw = h.rel_raw(n)?;
        let (ok, _) = h.cas_word(
            site!("harris.publish", Param),
            c.pred_base,
            c.pred_off,
            c.curr_raw,
            n_raw,
        )?;
        if ok {
            h.op_persist();
            return Ok(None);
        }
    }
}

/// Lookup. Read-only, but still ends at the persist point (empty write
/// set): the return fence is what lets a completed read be ordered
/// against the crash in the durable history.
pub(crate) fn get<S: TimingSink>(
    h: &mut Handle<'_, S>,
    head_base: UPtr,
    head_off: i64,
    key: u64,
) -> Result<Option<u64>> {
    let c = search(h, head_base, head_off, key)?;
    let out = if c.curr_raw != 0 && c.curr_key == key {
        let v = h.read_word(site!("harris.get-load", MemLoad), node_ptr(c.curr_raw), OFF_VALUE)?;
        (v != TOMBSTONE).then_some(v)
    } else {
        None
    };
    h.op_persist();
    Ok(out)
}

/// Remove; the tombstone CAS is the linearization point and its old
/// value the return.
pub(crate) fn remove<S: TimingSink>(
    h: &mut Handle<'_, S>,
    head_base: UPtr,
    head_off: i64,
    key: u64,
) -> Result<Option<u64>> {
    loop {
        let c = search(h, head_base, head_off, key)?;
        if c.curr_raw == 0 || c.curr_key != key {
            h.op_persist();
            return Ok(None);
        }
        let node = node_ptr(c.curr_raw);
        loop {
            let v = h.read_word(site!("harris.rm-load", MemLoad), node, OFF_VALUE)?;
            if v == TOMBSTONE {
                // Someone else's remove linearized first.
                h.op_persist();
                return Ok(None);
            }
            let (ok, _) =
                h.cas_word(site!("harris.rm-cas", MemLoad), node, OFF_VALUE, v, TOMBSTONE)?;
            if !ok {
                continue;
            }
            // We are the sole tombstoner: set the Harris mark so
            // traversals can unlink, then try once ourselves.
            loop {
                let nx = h.read_word(site!("harris.rm-next", MemLoad), node, OFF_NEXT)?;
                if nx & MARK != 0 {
                    break;
                }
                let (mok, _) =
                    h.cas_word(site!("harris.rm-mark", MemLoad), node, OFF_NEXT, nx, nx | MARK)?;
                if mok {
                    let _ = h.cas_word(
                        site!("harris.rm-unlink", Param),
                        c.pred_base,
                        c.pred_off,
                        c.curr_raw,
                        nx,
                    )?;
                    break;
                }
            }
            h.op_persist();
            return Ok(Some(v));
        }
    }
}

/// Live-key count by full traversal (exact at quiescence; a snapshot
/// under concurrency, like any lock-free size).
pub(crate) fn count_live<S: TimingSink>(
    h: &mut Handle<'_, S>,
    head_base: UPtr,
    head_off: i64,
) -> Result<u64> {
    let mut raw = h.read_word(site!("harris.count-head", Param), head_base, head_off)?;
    let mut live = 0u64;
    while raw != 0 {
        let node = node_ptr(raw);
        let v = h.read_word(site!("harris.count-val", MemLoad), node, OFF_VALUE)?;
        if v != TOMBSTONE {
            live += 1;
        }
        raw = h.read_word(site!("harris.count-next", MemLoad), node, OFF_NEXT)? & !MARK;
    }
    h.op_persist();
    Ok(live)
}

/// Quiescent invariant walk used by `IndexCore::validate`: keys
/// non-decreasing, at most one live node per equal-key run and it comes
/// first, marked ⇒ tombstoned. Panics on violation (the sweeps catch the
/// panic); returns the live count.
pub(crate) fn validate_chain<S: TimingSink>(
    env: &mut ExecEnv<S>,
    head_base: UPtr,
    head_off: i64,
) -> Result<u64> {
    let mut raw = env.read_u64(site!("harris.val-head", Param), head_base, head_off)?;
    assert_eq!(raw & MARK, 0, "head link carries a mark bit");
    let mut live = 0u64;
    let mut last_key: Option<u64> = None;
    while raw != 0 {
        let node = node_ptr(raw);
        let key = env.read_u64(site!("harris.val-key", MemLoad), node, OFF_KEY)?;
        let value = env.read_u64(site!("harris.val-val", MemLoad), node, OFF_VALUE)?;
        let next = env.read_u64(site!("harris.val-next", MemLoad), node, OFF_NEXT)?;
        let dead = value == TOMBSTONE;
        if next & MARK != 0 {
            assert!(dead, "marked node {raw:#x} (key {key}) is not tombstoned");
        }
        if let Some(lk) = last_key {
            assert!(key >= lk, "chain order violated: {key} after {lk}");
            if key == lk {
                assert!(dead, "duplicate live node for key {key}");
            }
        }
        if !dead {
            live += 1;
        }
        last_key = Some(key);
        raw = next & !MARK;
    }
    Ok(live)
}
