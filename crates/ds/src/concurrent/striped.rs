//! Lock-striped adapter: lifts any sequential [`IndexOps`] structure
//! (the trees) into the [`ConcurrentIndex`] interface.
//!
//! Keys are hashed onto [`STRIPES`] independent instances of the inner
//! structure, each guarded by a CAS spin word in the adapter's
//! descriptor. A worker acquires the stripe lock (yield-spinning through
//! the handle, so seeded schedules stay deterministic and the holder
//! always progresses), runs the sequential operation inside an undo-log
//! transaction on its own slot, drains the pool (the persist point), and
//! releases.
//!
//! Two deliberate simplifications, documented here and in `DESIGN.md`
//! §12:
//!
//! * **Lock words are volatile-semantics.** They live in pool memory
//!   because the descriptor must be shard-independent, but their durable
//!   value is meaningless: after a crash, [`Striped::clear_locks`] must
//!   run before workers attach (a held lock dies with its holder).
//! * **Flush strategies collapse.** The inner structure's stores go
//!   through the sequential [`ExecEnv`] write path, not the handle, so
//!   FliT tags and Traverse boundaries have nothing to hook; every
//!   strategy behaves like the drain-on-release shown here. Benches
//!   report striped rows under the `eager` label only.
//!
//! Lock ordering: each operation holds at most one stripe lock and never
//! allocates a second, so the adapter cannot deadlock against itself or
//! the heap's internal `flush → faults → slabs → central → stripes`
//! order (stripe locks here are *above* all heap locks).

use std::marker::PhantomData;

use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

use super::{ConcurrentIndex, Handle};
use crate::index::{IndexCore, IndexOps, Result};

/// Stripe count (fixed power of two).
pub const STRIPES: u64 = 8;

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Descriptor layout: `[stripe_count, (lock, inner_desc) × STRIPES]`.
const DESC_BYTES: u64 = 8 + STRIPES * 16;

#[inline]
fn stripe_of(key: u64) -> u64 {
    key.wrapping_mul(GOLDEN) >> (64 - STRIPES.trailing_zeros())
}

#[inline]
fn lock_off(s: u64) -> i64 {
    (8 + s * 16) as i64
}

#[inline]
fn desc_off(s: u64) -> i64 {
    (8 + s * 16 + 8) as i64
}

/// Lock-striped concurrent wrapper over a sequential index.
pub struct Striped<I> {
    desc: UPtr,
    _inner: PhantomData<I>,
}

// Derive-free impls: `I` itself is only a type tag, the wrapper holds no
// instance of it.
impl<I> Clone for Striped<I> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I> Copy for Striped<I> {}

impl<I: IndexOps> Striped<I> {
    /// Clears every stripe lock word. Must run once, single-threaded,
    /// after crash recovery and before workers reattach: a lock held at
    /// the crash died with its holder.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn clear_locks<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<()> {
        for s in 0..STRIPES {
            env.write_u64(site!("striped.clear-lock", Param), self.desc, lock_off(s), 0)?;
        }
        env.space_mut().fence();
        Ok(())
    }

    fn acquire<S: TimingSink>(&self, h: &mut Handle<'_, S>, s: u64) -> Result<()> {
        loop {
            let (ok, _) =
                h.cas_word(site!("striped.lock", Param), self.desc, lock_off(s), 0, 1)?;
            if ok {
                return Ok(());
            }
            // cas_word yields before each attempt, so under a turnstile
            // the holder is guaranteed to run and release.
        }
    }

    fn with_stripe<S: TimingSink, R>(
        &self,
        h: &mut Handle<'_, S>,
        s: u64,
        f: impl FnOnce(&mut I, &mut ExecEnv<S>) -> Result<R>,
    ) -> Result<R> {
        self.acquire(h, s)?;
        let inner_desc = h.env_mut().read_ptr(site!("striped.desc", KnownReturn), self.desc, desc_off(s))?;
        let mut inner = I::open(inner_desc);
        // The sequential op runs under the worker's undo-log slot so a
        // crash mid-rotation rolls back instead of tearing the tree.
        let r = h.env_mut().with_txn(|env| f(&mut inner, env));
        match r {
            Ok(v) => {
                // Persist point before the release store: the operation
                // is durable before it becomes visible as "unlocked".
                h.op_persist();
                h.write_word(site!("striped.unlock", Param), self.desc, lock_off(s), 0)?;
                Ok(v)
            }
            // Crash or hard error: die holding the lock (clear_locks
            // handles it after recovery).
            Err(e) => Err(e),
        }
    }
}

impl<I: IndexOps> IndexCore for Striped<I> {
    const NAME: &'static str = "Striped";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("striped.create", AllocResult), DESC_BYTES)?;
        env.write_u64(site!("striped.init-count", AllocResult), desc, 0, STRIPES)?;
        for s in 0..STRIPES {
            let inner = I::create(env)?;
            env.write_u64(site!("striped.init-lock", AllocResult), desc, lock_off(s), 0)?;
            env.write_ptr(
                site!("striped.init-desc", AllocResult),
                desc,
                desc_off(s),
                inner.descriptor(),
            )?;
        }
        env.space_mut().fence();
        Ok(Striped { desc, _inner: PhantomData })
    }

    fn open(descriptor: UPtr) -> Self {
        Striped { desc: descriptor, _inner: PhantomData }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        let count = env.read_u64(site!("striped.val-count", KnownReturn), self.desc, 0)?;
        assert_eq!(count, STRIPES, "stripe directory header damaged");
        let mut total = 0;
        for s in 0..STRIPES {
            let inner_desc =
                env.read_ptr(site!("striped.val-desc", KnownReturn), self.desc, desc_off(s))?;
            total += I::open(inner_desc).validate(env)?;
        }
        Ok(total)
    }
}

impl<I: IndexOps> ConcurrentIndex for Striped<I> {
    fn insert<S: TimingSink>(
        &self,
        h: &mut Handle<'_, S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        self.with_stripe(h, stripe_of(key), |i, env| i.insert(env, key, value))
    }

    fn get<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        self.with_stripe(h, stripe_of(key), |i, env| i.get(env, key))
    }

    fn remove<S: TimingSink>(&self, h: &mut Handle<'_, S>, key: u64) -> Result<Option<u64>> {
        self.with_stripe(h, stripe_of(key), |i, env| i.remove(env, key))
    }

    fn len<S: TimingSink>(&self, h: &mut Handle<'_, S>) -> Result<u64> {
        let mut total = 0;
        for s in 0..STRIPES {
            total += self.with_stripe(h, s, |i, env| i.len(env))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::FlushStrategy;
    use crate::RbTree;
    use std::collections::BTreeMap;
    use utpr_heap::{AddressSpace, FlushModel, SharedPool};
    use utpr_ptr::{CountingSink, Mode};

    #[test]
    fn striped_rb_matches_model_and_validates() {
        let sp = SharedPool::create("striped-rb", 16 << 20, 8).unwrap();
        sp.set_flush_model(FlushModel::Adr);
        let mut space = AddressSpace::new(23);
        let pool = space.adopt_shared(&sp).unwrap();
        let mut env = ExecEnv::builder(space)
            .mode(Mode::Hw)
            .pool(pool)
            .sink(CountingSink::new())
            .build();
        let idx: Striped<RbTree> = Striped::create(&mut env).unwrap();
        let mut h = Handle::new(&mut env, FlushStrategy::Eager).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x = 0xfeed_beefu64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..400 {
            let r = step();
            let key = step() % 97;
            match r % 4 {
                0 | 1 => {
                    let v = step();
                    assert_eq!(idx.insert(&mut h, key, v).unwrap(), model.insert(key, v));
                }
                2 => assert_eq!(idx.get(&mut h, key).unwrap(), model.get(&key).copied()),
                _ => assert_eq!(idx.remove(&mut h, key).unwrap(), model.remove(&key)),
            }
        }
        assert_eq!(idx.len(&mut h).unwrap(), model.len() as u64);
        assert_eq!(idx.validate(&mut env).unwrap(), model.len() as u64);
        let reopened: Striped<RbTree> = Striped::open(idx.descriptor());
        reopened.clear_locks(&mut env).unwrap();
        assert_eq!(reopened.validate(&mut env).unwrap(), model.len() as u64);
    }
}
