//! AVL — a height-balanced binary search tree (paper Table III, Boost
//! `intrusive::avltree` analogue).
//!
//! Recursive insertion with single/double rotations. Node layout:
//! `[key, value, left, right, height]`. Descriptor: `[root, len]`.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

const OFF_KEY: i64 = 0;
const OFF_VAL: i64 = 8;
const OFF_LEFT: i64 = 16;
const OFF_RIGHT: i64 = 24;
const OFF_HEIGHT: i64 = 32;
const NODE_SIZE: u64 = 40;

const D_ROOT: i64 = 0;
const D_LEN: i64 = 8;
const DESC_SIZE: u64 = 16;

/// An AVL tree in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{AvlTree, IndexCore, IndexOps};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("avl", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut t = AvlTree::create(&mut env)?;
/// t.insert(&mut env, 3, 30)?;
/// assert_eq!(t.get(&mut env, 3)?, Some(30));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AvlTree {
    desc: UPtr,
}

fn left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("avl.node.left", MemLoad), n, OFF_LEFT)
}
fn right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("avl.node.right", MemLoad), n, OFF_RIGHT)
}
fn set_left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("avl.node.set-left", MemLoad), n, OFF_LEFT, v)
}
fn set_right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("avl.node.set-right", MemLoad), n, OFF_RIGHT, v)
}
fn height<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    if env.ptr_is_null(site!("avl.node.h-null", StackLocal), n) {
        return Ok(0);
    }
    env.read_u64(site!("avl.node.height", MemLoad), n, OFF_HEIGHT)
}
fn update_height<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<()> {
    let l = left(env, n)?;
    let r = right(env, n)?;
    let h = 1 + height(env, l)?.max(height(env, r)?);
    env.write_u64(site!("avl.node.set-height", MemLoad), n, OFF_HEIGHT, h)
}
fn balance<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<i64> {
    let l = left(env, n)?;
    let r = right(env, n)?;
    Ok(height(env, l)? as i64 - height(env, r)? as i64)
}

/// Right rotation around `n`; returns the new subtree root.
fn rotate_right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    let y = left(env, n)?;
    let yr = right(env, y)?;
    set_left(env, n, yr)?;
    set_right(env, y, n)?;
    update_height(env, n)?;
    update_height(env, y)?;
    Ok(y)
}

/// Left rotation around `n`; returns the new subtree root.
fn rotate_left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    let y = right(env, n)?;
    let yl = left(env, y)?;
    set_right(env, n, yl)?;
    set_left(env, y, n)?;
    update_height(env, n)?;
    update_height(env, y)?;
    Ok(y)
}

fn rebalance<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    update_height(env, n)?;
    let b = balance(env, n)?;
    env.branch(site!("avl.rebalance.skew", StackLocal), b.abs() > 1);
    if b > 1 {
        let l = left(env, n)?;
        if balance(env, l)? < 0 {
            let nl = rotate_left(env, l)?;
            set_left(env, n, nl)?;
        }
        return rotate_right(env, n);
    }
    if b < -1 {
        let r = right(env, n)?;
        if balance(env, r)? > 0 {
            let nr = rotate_right(env, r)?;
            set_right(env, n, nr)?;
        }
        return rotate_left(env, n);
    }
    Ok(n)
}

fn insert_rec<S: TimingSink>(
    env: &mut ExecEnv<S>,
    n: UPtr,
    key: u64,
    value: u64,
    old: &mut Option<u64>,
) -> Result<UPtr> {
    if env.ptr_is_null(site!("avl.ins.null", StackLocal), n) {
        let z = env.alloc(site!("avl.ins.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("avl.ins.key", AllocResult), z, OFF_KEY, key)?;
        env.write_u64(site!("avl.ins.val", AllocResult), z, OFF_VAL, value)?;
        env.write_ptr(site!("avl.ins.left", AllocResult), z, OFF_LEFT, UPtr::NULL)?;
        env.write_ptr(site!("avl.ins.right", AllocResult), z, OFF_RIGHT, UPtr::NULL)?;
        env.write_u64(site!("avl.ins.height", AllocResult), z, OFF_HEIGHT, 1)?;
        return Ok(z);
    }
    let k = env.read_u64(site!("avl.ins.cmp-key", MemLoad), n, OFF_KEY)?;
    if k == key {
        *old = Some(env.read_u64(site!("avl.ins.old", MemLoad), n, OFF_VAL)?);
        env.write_u64(site!("avl.ins.update", MemLoad), n, OFF_VAL, value)?;
        return Ok(n);
    }
    let goleft = key < k;
    env.branch(site!("avl.ins.cmp", StackLocal), goleft);
    if goleft {
        let l = left(env, n)?;
        let nl = insert_rec(env, l, key, value, old)?;
        set_left(env, n, nl)?;
    } else {
        let r = right(env, n)?;
        let nr = insert_rec(env, r, key, value, old)?;
        set_right(env, n, nr)?;
    }
    if old.is_some() {
        // No structural change on update.
        return Ok(n);
    }
    rebalance(env, n)
}

/// Key and value of the minimum node in subtree `n` (must be non-null).
fn min_kv<S: TimingSink>(env: &mut ExecEnv<S>, mut n: UPtr) -> Result<(u64, u64)> {
    loop {
        let l = left(env, n)?;
        if env.ptr_is_null(site!("avl.minkv.null", StackLocal), l) {
            let k = env.read_u64(site!("avl.minkv.key", MemLoad), n, OFF_KEY)?;
            let v = env.read_u64(site!("avl.minkv.val", MemLoad), n, OFF_VAL)?;
            return Ok((k, v));
        }
        n = l;
    }
}

fn remove_rec<S: TimingSink>(
    env: &mut ExecEnv<S>,
    n: UPtr,
    key: u64,
    removed: &mut Option<u64>,
) -> Result<UPtr> {
    if env.ptr_is_null(site!("avl.del.null", StackLocal), n) {
        return Ok(n);
    }
    let k = env.read_u64(site!("avl.del.key", MemLoad), n, OFF_KEY)?;
    if key == k {
        *removed = Some(env.read_u64(site!("avl.del.val", MemLoad), n, OFF_VAL)?);
        let l = left(env, n)?;
        let r = right(env, n)?;
        if env.ptr_is_null(site!("avl.del.l-null", StackLocal), l) {
            env.free(site!("avl.del.free", MemLoad), n)?;
            return Ok(r);
        }
        if env.ptr_is_null(site!("avl.del.r-null", StackLocal), r) {
            env.free(site!("avl.del.free2", MemLoad), n)?;
            return Ok(l);
        }
        // Two children: pull the in-order successor's pair up, then delete
        // the successor node from the right subtree.
        let (sk, sv) = min_kv(env, r)?;
        env.write_u64(site!("avl.del.copy-key", MemLoad), n, OFF_KEY, sk)?;
        env.write_u64(site!("avl.del.copy-val", MemLoad), n, OFF_VAL, sv)?;
        let mut inner = None;
        let nr = remove_rec(env, r, sk, &mut inner)?;
        debug_assert!(inner.is_some());
        set_right(env, n, nr)?;
        return rebalance(env, n);
    }
    let goleft = key < k;
    env.branch(site!("avl.del.cmp", StackLocal), goleft);
    if goleft {
        let l = left(env, n)?;
        let nl = remove_rec(env, l, key, removed)?;
        set_left(env, n, nl)?;
    } else {
        let r = right(env, n)?;
        let nr = remove_rec(env, r, key, removed)?;
        set_right(env, n, nr)?;
    }
    if removed.is_none() {
        return Ok(n);
    }
    rebalance(env, n)
}

impl AvlTree {
    fn root<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("avl.root", Param), self.desc, D_ROOT)
    }

    /// Removes `key`, returning its value if present, rebalancing along the
    /// unwind path.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let root = self.root(env)?;
        let mut removed = None;
        let new_root = remove_rec(env, root, key, &mut removed)?;
        env.write_ptr(site!("avl.del.root-set", Param), self.desc, D_ROOT, new_root)?;
        if removed.is_some() {
            let len = env.read_u64(site!("avl.del.len", Param), self.desc, D_LEN)?;
            env.write_u64(site!("avl.del.len-set", Param), self.desc, D_LEN, len - 1)?;
        }
        Ok(removed)
    }

    /// Checks AVL invariants (BST order, height fields, |balance| ≤ 1,
    /// stored length); returns the node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on violations.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        fn walk<S: TimingSink>(
            env: &mut ExecEnv<S>,
            n: UPtr,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<(u64, u64)> {
            // (height, count)
            if n.is_null() {
                return Ok((0, 0));
            }
            let k = env.read_u64(site!("avl.val.key", MemLoad), n, OFF_KEY)?;
            if let Some(l) = lo {
                assert!(k > l, "BST order");
            }
            if let Some(h) = hi {
                assert!(k < h, "BST order");
            }
            let l = left(env, n)?;
            let r = right(env, n)?;
            let (hl, cl) = walk(env, l, lo, Some(k))?;
            let (hr, cr) = walk(env, r, Some(k), hi)?;
            let h = 1 + hl.max(hr);
            let stored = env.read_u64(site!("avl.val.height", MemLoad), n, OFF_HEIGHT)?;
            assert_eq!(stored, h, "height field stale");
            assert!((hl as i64 - hr as i64).abs() <= 1, "unbalanced");
            Ok((h, cl + cr + 1))
        }
        let root = self.root(env)?;
        let (_, count) = walk(env, root, None, None)?;
        assert_eq!(count, self.len(env)?);
        Ok(count)
    }
}

impl IndexCore for AvlTree {
    const NAME: &'static str = "AVL";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("avl.create.desc", AllocResult), DESC_SIZE)?;
        env.write_ptr(site!("avl.create.root", AllocResult), desc, D_ROOT, UPtr::NULL)?;
        env.write_u64(site!("avl.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(AvlTree { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        AvlTree { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        AvlTree::validate(self, env)
    }
}

impl IndexOps for AvlTree {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        let root = self.root(env)?;
        let mut old = None;
        let new_root = insert_rec(env, root, key, value, &mut old)?;
        env.write_ptr(site!("avl.ins.root-set", Param), self.desc, D_ROOT, new_root)?;
        if old.is_none() {
            let len = env.read_u64(site!("avl.ins.len", Param), self.desc, D_LEN)?;
            env.write_u64(site!("avl.ins.len-set", Param), self.desc, D_LEN, len + 1)?;
        }
        Ok(old)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let mut x = self.root(env)?;
        while !env.ptr_is_null(site!("avl.get.descend", StackLocal), x) {
            let k = env.read_u64(site!("avl.get.key", MemLoad), x, OFF_KEY)?;
            if k == key {
                return Ok(Some(env.read_u64(site!("avl.get.val", MemLoad), x, OFF_VAL)?));
            }
            let goleft = key < k;
            env.branch(site!("avl.get.cmp", StackLocal), goleft);
            x = if goleft { left(env, x)? } else { right(env, x)? };
        }
        Ok(None)
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        AvlTree::remove(self, env, key)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("avl.len", Param), self.desc, D_LEN)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<AvlTree>(mode, 1200);
        }
    }

    #[test]
    fn stays_balanced_under_sequential_insert() {
        let mut env = env_for(Mode::Hw);
        let mut t = AvlTree::create(&mut env).unwrap();
        for k in 0..512u64 {
            t.insert(&mut env, k, k).unwrap();
            if k % 128 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), 512);
        // Height must be ≤ 1.44·log2(513) ≈ 13.
        let root = t.root(&mut env).unwrap();
        let h = height(&mut env, root).unwrap();
        assert!(h <= 13, "AVL height {h}");
    }

    #[test]
    fn double_rotation_cases() {
        // left-right and right-left insertions trigger double rotations.
        let mut env = env_for(Mode::Hw);
        let mut t = AvlTree::create(&mut env).unwrap();
        for k in [50u64, 30, 40] {
            t.insert(&mut env, k, k).unwrap(); // LR case
        }
        t.validate(&mut env).unwrap();
        let mut t2 = AvlTree::create(&mut env).unwrap();
        for k in [50u64, 70, 60] {
            t2.insert(&mut env, k, k).unwrap(); // RL case
        }
        t2.validate(&mut env).unwrap();
    }

    #[test]
    fn update_does_not_change_length_or_shape() {
        let mut env = env_for(Mode::Sw);
        let mut t = AvlTree::create(&mut env).unwrap();
        for k in 0..50u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        assert_eq!(t.insert(&mut env, 25, 999).unwrap(), Some(25));
        assert_eq!(t.len(&mut env).unwrap(), 50);
        assert_eq!(t.get(&mut env, 25).unwrap(), Some(999));
        t.validate(&mut env).unwrap();
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<AvlTree>();
    }

    #[test]
    fn remove_rebalances() {
        let mut env = env_for(Mode::Hw);
        let mut t = AvlTree::create(&mut env).unwrap();
        for k in 0..256u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        // Remove one side heavily: rebalancing must keep |balance| ≤ 1.
        for k in 0..200u64 {
            assert_eq!(t.remove(&mut env, k).unwrap(), Some(k));
            if k % 20 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), 56);
        assert_eq!(t.remove(&mut env, 5).unwrap(), None);
    }

    #[test]
    fn random_insert_remove_oracle() {
        use std::collections::BTreeMap;
        let mut env = env_for(Mode::Hw);
        let mut t = AvlTree::create(&mut env).unwrap();
        let mut model = BTreeMap::new();
        let mut x = 0xfeed_beefu64;
        for step in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 101;
            if x % 4 < 2 {
                assert_eq!(t.insert(&mut env, key, x).unwrap(), model.insert(key, x));
            } else {
                assert_eq!(t.remove(&mut env, key).unwrap(), model.remove(&key));
            }
            if step % 300 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), model.len() as u64);
    }

    #[test]
    fn remove_two_children_cases() {
        let mut env = env_for(Mode::Sw);
        let mut t = AvlTree::create(&mut env).unwrap();
        for k in [50u64, 25, 75, 10, 30, 60, 90, 27, 35] {
            t.insert(&mut env, k, k * 10).unwrap();
        }
        // 25 has two children; its successor (27) replaces it.
        assert_eq!(t.remove(&mut env, 25).unwrap(), Some(250));
        t.validate(&mut env).unwrap();
        assert_eq!(t.get(&mut env, 27).unwrap(), Some(270));
        assert_eq!(t.get(&mut env, 25).unwrap(), None);
        // Remove the root with two children.
        assert_eq!(t.remove(&mut env, 50).unwrap(), Some(500));
        t.validate(&mut env).unwrap();
    }
}
