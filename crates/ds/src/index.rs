//! The map interface shared by the six key→value index structures.
//!
//! Mirrors the role of the paper's KV harness: it swaps one indexing data
//! structure for another (Table III) behind a single GET/SET interface.
//! Every structure stores its descriptor (root pointer, length, auxiliary
//! fields) in the same memory the nodes live in, so a persistent index is
//! recoverable from its pool root after a crash.
//!
//! The interface is two-tier:
//!
//! - [`IndexCore`] — lifecycle: create, reopen from a descriptor, expose
//!   the descriptor, validate. Shared by the sequential and concurrent
//!   variants.
//! - [`IndexOps`] — the sequential single-writer operations
//!   (insert/get/remove/len), each taking the environment explicitly.
//! - [`crate::concurrent::ConcurrentIndex`] — the concurrent operations,
//!   taking `&self` plus a per-thread [`crate::concurrent::Handle`]
//!   instead of `&mut self`/`&mut ExecEnv`.
//!
//! [`Index`] remains as the combined alias (blanket-implemented for every
//! `IndexOps` type), so existing `I: Index` bounds keep compiling.
//!
//! `get` and `len` take `&self`: the structure value owns no memory, only
//! the descriptor pointer, so even self-adjusting reads mutate *pool*
//! memory through the environment, never the handle. The splay tree is the
//! documented exception in spirit — its `get` still performs durable
//! writes (the splay rotation is a read-fixup behind the `&self` receiver)
//! — so splay reads remain writers for concurrency purposes and the splay
//! tree gets no lock-free concurrent variant.

use utpr_heap::HeapError;
use utpr_ptr::{ExecEnv, TimingSink, UPtr};

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, HeapError>;

/// Lifecycle half of the index interface: everything needed to build,
/// persist, reopen, and audit a structure — but not to operate on it.
pub trait IndexCore: Sized {
    /// Short benchmark name ("RB", "Hash", …; paper Table III).
    const NAME: &'static str;

    /// Allocates an empty index (descriptor + any initial arrays) at the
    /// environment's default placement.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self>;

    /// Re-attaches to an existing descriptor (e.g. read from a pool root
    /// after a restart).
    fn open(descriptor: UPtr) -> Self;

    /// The descriptor pointer (store it in a pool root to persist the
    /// index).
    fn descriptor(&self) -> UPtr;

    /// Walks the whole structure checking its invariants (shape, ordering,
    /// stored length), panicking on violation; returns the key count. Used
    /// as the post-recovery oracle by the crash-point sweeps.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64>;
}

/// Sequential operations half: one writer at a time per structure (per
/// shard). Reads take `&self`; see the module docs for the splay caveat.
pub trait IndexOps: IndexCore {
    /// Inserts or updates; returns the previous value if the key existed.
    ///
    /// # Errors
    ///
    /// Propagates allocation and translation failures.
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>>;

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>>;

    /// Removes a key, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>>;

    /// Number of keys currently stored.
    ///
    /// # Errors
    ///
    /// Propagates translation failures (the length lives in the
    /// descriptor).
    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64>;
}

/// The combined sequential interface — the pre-split trait, kept as an
/// alias so `I: Index` bounds (store, faultsweep, ycsb, benches) keep
/// working unchanged.
pub trait Index: IndexOps {}

impl<T: IndexOps> Index for T {}

/// Exhaustive cross-check of an index against a model map — shared by the
/// per-structure test suites.
#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use std::collections::BTreeMap;
    use utpr_heap::AddressSpace;
    use utpr_ptr::{CountingSink, Mode};

    pub fn env_for(mode: Mode) -> ExecEnv<CountingSink> {
        let mut space = AddressSpace::new(97);
        let pool = space.create_pool("ds-test", 16 << 20).unwrap();
        ExecEnv::builder(space).mode(mode).pool(pool).sink(CountingSink::new()).build()
    }

    /// Runs a deterministic pseudo-random op sequence against the index and
    /// a BTreeMap oracle in the given mode.
    pub fn oracle_test<I: Index>(mode: Mode, ops: usize) {
        let mut env = env_for(mode);
        let mut idx = I::create(&mut env).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x = 0x243f6a8885a308d3u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..ops {
            let r = step();
            let key = step() % 257; // small key space forces updates
            match r % 4 {
                0 | 1 => {
                    let value = step();
                    let expected = model.insert(key, value);
                    let got = idx.insert(&mut env, key, value).unwrap();
                    assert_eq!(got, expected, "{} insert mismatch at op {i}", I::NAME);
                }
                2 => {
                    let expected = model.get(&key).copied();
                    let got = idx.get(&mut env, key).unwrap();
                    assert_eq!(got, expected, "{} get mismatch at op {i}", I::NAME);
                }
                _ => {
                    let expected = model.remove(&key);
                    let got = idx.remove(&mut env, key).unwrap();
                    assert_eq!(got, expected, "{} remove mismatch at op {i}", I::NAME);
                }
            }
        }
        assert_eq!(idx.len(&mut env).unwrap(), model.len() as u64);
        // Every key readable at the end.
        for (k, v) in &model {
            assert_eq!(idx.get(&mut env, *k).unwrap(), Some(*v));
        }
    }

    /// Builds an index, persists the descriptor in the pool root, restarts
    /// the process, reopens, and checks the content survived relocation.
    pub fn crash_recovery_test<I: Index>() {
        use utpr_ptr::site;
        let mut env = env_for(Mode::Hw);
        let mut idx = I::create(&mut env).unwrap();
        for k in 0..200u64 {
            idx.insert(&mut env, k * 7 % 101, k).unwrap();
        }
        env.set_root(site!("test.save-root", StackLocal), idx.descriptor()).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for k in 0..200u64 {
            model.insert(k * 7 % 101, k);
        }

        // Crash + new generation at a different base address.
        env.space_mut().restart();
        env.space_mut().open_pool("ds-test").unwrap();
        let desc = env.root(site!("test.load-root", KnownReturn)).unwrap();
        let idx2 = I::open(desc);
        assert_eq!(idx2.len(&mut env).unwrap(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(idx2.get(&mut env, *k).unwrap(), Some(*v), "{} key {k}", I::NAME);
        }
    }

}
