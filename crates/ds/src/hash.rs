//! Hash — a chained hash map (paper Table III, Boost `unordered_map`
//! analogue).
//!
//! An array of bucket-head pointers plus singly-linked collision chains.
//! The table doubles when the load factor reaches 1, rehashing every chain
//! — heavy, realistic pointer traffic.
//!
//! Node layout: `[key, value, next]`. Descriptor: `[buckets, log2(nbuckets),
//! len]`.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

const OFF_KEY: i64 = 0;
const OFF_VAL: i64 = 8;
const OFF_NEXT: i64 = 16;
const NODE_SIZE: u64 = 24;

const D_BUCKETS: i64 = 0;
const D_LOG2: i64 = 8;
const D_LEN: i64 = 16;
const DESC_SIZE: u64 = 24;

const INITIAL_LOG2: u64 = 4;

/// A chained hash map in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{HashMapIndex, IndexCore, IndexOps};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("h", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut h = HashMapIndex::create(&mut env)?;
/// h.insert(&mut env, 7, 70)?;
/// assert_eq!(h.get(&mut env, 7)?, Some(70));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HashMapIndex {
    desc: UPtr,
}

fn bucket_of(key: u64, log2: u64) -> i64 {
    ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - log2)) * 8) as i64
}

impl HashMapIndex {
    fn find_in_chain<S: TimingSink>(
        env: &mut ExecEnv<S>,
        mut p: UPtr,
        key: u64,
    ) -> Result<Option<UPtr>> {
        while !env.ptr_is_null(site!("hash.find.loop", StackLocal), p) {
            let k = env.read_u64(site!("hash.find.key", MemLoad), p, OFF_KEY)?;
            env.branch(site!("hash.find.cmp", StackLocal), k == key);
            if k == key {
                return Ok(Some(p));
            }
            p = env.read_ptr(site!("hash.find.next", MemLoad), p, OFF_NEXT)?;
        }
        Ok(None)
    }

    fn grow<S: TimingSink>(&mut self, env: &mut ExecEnv<S>) -> Result<()> {
        let old_buckets = env.read_ptr(site!("hash.grow.old", Param), self.desc, D_BUCKETS)?;
        let old_log2 = env.read_u64(site!("hash.grow.log2", Param), self.desc, D_LOG2)?;
        let new_log2 = old_log2 + 1;
        let new_n = 1u64 << new_log2;
        let new_buckets = env.alloc(site!("hash.grow.alloc", AllocResult), new_n * 8)?;
        for b in 0..new_n {
            env.write_ptr(
                site!("hash.grow.clear", AllocResult),
                new_buckets,
                (b * 8) as i64,
                UPtr::NULL,
            )?;
        }
        // Rehash every chain.
        for b in 0..(1u64 << old_log2) {
            let mut p =
                env.read_ptr(site!("hash.grow.head", MemLoad), old_buckets, (b * 8) as i64)?;
            while !env.ptr_is_null(site!("hash.grow.loop", StackLocal), p) {
                let next = env.read_ptr(site!("hash.grow.next", MemLoad), p, OFF_NEXT)?;
                let key = env.read_u64(site!("hash.grow.key", MemLoad), p, OFF_KEY)?;
                let slot = bucket_of(key, new_log2);
                let head = env.read_ptr(site!("hash.grow.newhead", MemLoad), new_buckets, slot)?;
                env.write_ptr(site!("hash.grow.link", MemLoad), p, OFF_NEXT, head)?;
                env.write_ptr(site!("hash.grow.install", MemLoad), new_buckets, slot, p)?;
                p = next;
            }
        }
        env.write_ptr(site!("hash.grow.swap", Param), self.desc, D_BUCKETS, new_buckets)?;
        env.write_u64(site!("hash.grow.log2-set", Param), self.desc, D_LOG2, new_log2)?;
        env.free(site!("hash.grow.free", Param), old_buckets)?;
        Ok(())
    }

    /// Walks every chain checking keys hash to their bucket; returns the
    /// total node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        let buckets = env.read_ptr(site!("hash.val.buckets", Param), self.desc, D_BUCKETS)?;
        let log2 = env.read_u64(site!("hash.val.log2", Param), self.desc, D_LOG2)?;
        let mut count = 0u64;
        for b in 0..(1u64 << log2) {
            let mut p = env.read_ptr(site!("hash.val.head", MemLoad), buckets, (b * 8) as i64)?;
            while !env.ptr_is_null(site!("hash.val.loop", StackLocal), p) {
                let key = env.read_u64(site!("hash.val.key", MemLoad), p, OFF_KEY)?;
                assert_eq!(bucket_of(key, log2), (b * 8) as i64, "key in wrong bucket");
                count += 1;
                p = env.read_ptr(site!("hash.val.next", MemLoad), p, OFF_NEXT)?;
            }
        }
        assert_eq!(count, self.len(env)?);
        Ok(count)
    }

    /// Removes a key, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let buckets = env.read_ptr(site!("hash.rm.buckets", Param), self.desc, D_BUCKETS)?;
        let log2 = env.read_u64(site!("hash.rm.log2", Param), self.desc, D_LOG2)?;
        let slot = bucket_of(key, log2);
        let mut prev = UPtr::NULL;
        let mut p = env.read_ptr(site!("hash.rm.head", MemLoad), buckets, slot)?;
        while !env.ptr_is_null(site!("hash.rm.loop", StackLocal), p) {
            let k = env.read_u64(site!("hash.rm.key", MemLoad), p, OFF_KEY)?;
            env.branch(site!("hash.rm.cmp", StackLocal), k == key);
            if k == key {
                let v = env.read_u64(site!("hash.rm.val", MemLoad), p, OFF_VAL)?;
                let next = env.read_ptr(site!("hash.rm.next", MemLoad), p, OFF_NEXT)?;
                if env.ptr_is_null(site!("hash.rm.prev-null", StackLocal), prev) {
                    env.write_ptr(site!("hash.rm.unlink-head", MemLoad), buckets, slot, next)?;
                } else {
                    env.write_ptr(site!("hash.rm.unlink", MemLoad), prev, OFF_NEXT, next)?;
                }
                env.free(site!("hash.rm.free", MemLoad), p)?;
                let len = env.read_u64(site!("hash.rm.len", Param), self.desc, D_LEN)?;
                env.write_u64(site!("hash.rm.len-set", Param), self.desc, D_LEN, len - 1)?;
                return Ok(Some(v));
            }
            prev = p;
            p = env.read_ptr(site!("hash.rm.step", MemLoad), p, OFF_NEXT)?;
        }
        Ok(None)
    }
}

impl IndexCore for HashMapIndex {
    const NAME: &'static str = "Hash";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("hash.create.desc", AllocResult), DESC_SIZE)?;
        let n = 1u64 << INITIAL_LOG2;
        let buckets = env.alloc(site!("hash.create.buckets", AllocResult), n * 8)?;
        for b in 0..n {
            env.write_ptr(
                site!("hash.create.clear", AllocResult),
                buckets,
                (b * 8) as i64,
                UPtr::NULL,
            )?;
        }
        env.write_ptr(site!("hash.create.install", AllocResult), desc, D_BUCKETS, buckets)?;
        env.write_u64(site!("hash.create.log2", AllocResult), desc, D_LOG2, INITIAL_LOG2)?;
        env.write_u64(site!("hash.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(HashMapIndex { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        HashMapIndex { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        HashMapIndex::validate(self, env)
    }
}

impl IndexOps for HashMapIndex {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        let buckets = env.read_ptr(site!("hash.ins.buckets", Param), self.desc, D_BUCKETS)?;
        let log2 = env.read_u64(site!("hash.ins.log2", Param), self.desc, D_LOG2)?;
        let slot = bucket_of(key, log2);
        let head = env.read_ptr(site!("hash.ins.head", MemLoad), buckets, slot)?;
        if let Some(node) = Self::find_in_chain(env, head, key)? {
            let old = env.read_u64(site!("hash.ins.old", MemLoad), node, OFF_VAL)?;
            env.write_u64(site!("hash.ins.update", MemLoad), node, OFF_VAL, value)?;
            return Ok(Some(old));
        }
        let n = env.alloc(site!("hash.ins.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("hash.ins.key", AllocResult), n, OFF_KEY, key)?;
        env.write_u64(site!("hash.ins.val", AllocResult), n, OFF_VAL, value)?;
        env.write_ptr(site!("hash.ins.link", AllocResult), n, OFF_NEXT, head)?;
        env.write_ptr(site!("hash.ins.install", MemLoad), buckets, slot, n)?;
        let len = env.read_u64(site!("hash.ins.len", Param), self.desc, D_LEN)? + 1;
        env.write_u64(site!("hash.ins.len-set", Param), self.desc, D_LEN, len)?;
        if len > (1u64 << log2) {
            self.grow(env)?;
        }
        Ok(None)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let buckets = env.read_ptr(site!("hash.get.buckets", Param), self.desc, D_BUCKETS)?;
        let log2 = env.read_u64(site!("hash.get.log2", Param), self.desc, D_LOG2)?;
        let head = env.read_ptr(site!("hash.get.head", MemLoad), buckets, bucket_of(key, log2))?;
        match Self::find_in_chain(env, head, key)? {
            Some(node) => Ok(Some(env.read_u64(site!("hash.get.val", MemLoad), node, OFF_VAL)?)),
            None => Ok(None),
        }
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        HashMapIndex::remove(self, env, key)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("hash.len", Param), self.desc, D_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<HashMapIndex>(mode, 1500);
        }
    }

    #[test]
    fn growth_rehashes_correctly() {
        let mut env = env_for(Mode::Hw);
        let mut h = HashMapIndex::create(&mut env).unwrap();
        for k in 0..500u64 {
            h.insert(&mut env, k, k * 2).unwrap();
        }
        // Table must have grown well past the initial 16 buckets.
        let log2 = env
            .read_u64(site!("t.log2", Param), h.descriptor(), super::D_LOG2)
            .unwrap();
        assert!(log2 > super::INITIAL_LOG2, "log2 {log2}");
        assert_eq!(h.validate(&mut env).unwrap(), 500);
        for k in 0..500u64 {
            assert_eq!(h.get(&mut env, k).unwrap(), Some(k * 2));
        }
    }

    #[test]
    fn remove_then_get_misses() {
        let mut env = env_for(Mode::Sw);
        let mut h = HashMapIndex::create(&mut env).unwrap();
        for k in 0..64u64 {
            h.insert(&mut env, k, k).unwrap();
        }
        for k in (0..64u64).step_by(2) {
            assert_eq!(h.remove(&mut env, k).unwrap(), Some(k));
        }
        for k in 0..64u64 {
            let expect = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(h.get(&mut env, k).unwrap(), expect);
        }
        assert_eq!(h.remove(&mut env, 999).unwrap(), None);
        h.validate(&mut env).unwrap();
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<HashMapIndex>();
    }

    #[test]
    fn colliding_keys_chain() {
        let mut env = env_for(Mode::Hw);
        let mut h = HashMapIndex::create(&mut env).unwrap();
        // Keys crafted to collide in a 16-bucket table are hard with the
        // multiplicative hash; instead just verify duplicate inserts update.
        assert_eq!(h.insert(&mut env, 5, 1).unwrap(), None);
        assert_eq!(h.insert(&mut env, 5, 2).unwrap(), Some(1));
        assert_eq!(h.get(&mut env, 5).unwrap(), Some(2));
        assert_eq!(h.len(&mut env).unwrap(), 1);
    }
}
