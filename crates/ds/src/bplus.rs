//! B+ — a B+ tree (bonus index beyond the paper's Table III).
//!
//! The paper's motivation cites key-value stores (Redis, RocksDB) whose
//! indexes differ from binary trees: wide nodes hold arrays of keys and
//! child pointers, so traversal does few pointer hops but touches many
//! words per node — a different translation-traffic profile that the
//! extension benches exercise.
//!
//! Order-8 tree. Leaf layout:
//! `[is_leaf=1, count, keys[8], values[8], next_leaf]`. Internal layout:
//! `[is_leaf=0, count, keys[8], children[9]]` where `count` is the number
//! of keys (children = count + 1). Deletion is lazy (keys leave leaves;
//! nodes are never merged), standard practice for write-light workloads.
//! Descriptor: `[root, len]`.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

/// Maximum keys per node.
const ORDER: u64 = 8;

const OFF_IS_LEAF: i64 = 0;
const OFF_COUNT: i64 = 8;
const OFF_KEYS: i64 = 16; // 8 keys
const OFF_VALS: i64 = OFF_KEYS + (ORDER as i64) * 8; // leaves: 8 values
const OFF_NEXT: i64 = OFF_VALS + (ORDER as i64) * 8; // leaves: next-leaf link
const OFF_CHILDREN: i64 = OFF_VALS; // internals: 9 children
const LEAF_SIZE: u64 = (OFF_NEXT + 8) as u64;
const INTERNAL_SIZE: u64 = OFF_CHILDREN as u64 + (ORDER + 1) * 8;

/// A B+ tree in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{BPlusTree, IndexCore, IndexOps};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("bp", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut t = BPlusTree::create(&mut env)?;
/// for k in 0..100 {
///     t.insert(&mut env, k, k + 1)?;
/// }
/// assert_eq!(t.get(&mut env, 42)?, Some(43));
/// assert_eq!(t.scan(&mut env, 40, 3)?, vec![(40, 41), (41, 42), (42, 43)]);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BPlusTree {
    desc: UPtr,
}

const D_ROOT: i64 = 0;
const D_LEN: i64 = 8;
const DESC_SIZE: u64 = 16;

fn is_leaf<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<bool> {
    Ok(env.read_u64(site!("bp.node.is-leaf", MemLoad), n, OFF_IS_LEAF)? != 0)
}
fn count<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    env.read_u64(site!("bp.node.count", MemLoad), n, OFF_COUNT)
}
fn set_count<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, c: u64) -> Result<()> {
    env.write_u64(site!("bp.node.set-count", MemLoad), n, OFF_COUNT, c)
}
fn key_at<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64) -> Result<u64> {
    env.read_u64(site!("bp.node.key", MemLoad), n, OFF_KEYS + (i as i64) * 8)
}
fn set_key<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64, k: u64) -> Result<()> {
    env.write_u64(site!("bp.node.set-key", MemLoad), n, OFF_KEYS + (i as i64) * 8, k)
}
fn val_at<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64) -> Result<u64> {
    env.read_u64(site!("bp.node.val", MemLoad), n, OFF_VALS + (i as i64) * 8)
}
fn set_val<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64, v: u64) -> Result<()> {
    env.write_u64(site!("bp.node.set-val", MemLoad), n, OFF_VALS + (i as i64) * 8, v)
}
fn child_at<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64) -> Result<UPtr> {
    env.read_ptr(site!("bp.node.child", MemLoad), n, OFF_CHILDREN + (i as i64) * 8)
}
fn set_child<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, i: u64, c: UPtr) -> Result<()> {
    env.write_ptr(site!("bp.node.set-child", MemLoad), n, OFF_CHILDREN + (i as i64) * 8, c)
}
fn next_leaf<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("bp.node.next", MemLoad), n, OFF_NEXT)
}
fn set_next_leaf<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, p: UPtr) -> Result<()> {
    env.write_ptr(site!("bp.node.set-next", MemLoad), n, OFF_NEXT, p)
}

fn new_leaf<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<UPtr> {
    let n = env.alloc(site!("bp.alloc.leaf", AllocResult), LEAF_SIZE)?;
    env.write_u64(site!("bp.init.is-leaf", AllocResult), n, OFF_IS_LEAF, 1)?;
    env.write_u64(site!("bp.init.count", AllocResult), n, OFF_COUNT, 0)?;
    env.write_ptr(site!("bp.init.next", AllocResult), n, OFF_NEXT, UPtr::NULL)?;
    Ok(n)
}

fn new_internal<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<UPtr> {
    let n = env.alloc(site!("bp.alloc.internal", AllocResult), INTERNAL_SIZE)?;
    env.write_u64(site!("bp.init.is-leaf2", AllocResult), n, OFF_IS_LEAF, 0)?;
    env.write_u64(site!("bp.init.count2", AllocResult), n, OFF_COUNT, 0)?;
    Ok(n)
}

/// Result of a recursive insert: a promoted separator and new right node
/// when the child split.
struct SplitUp {
    key: u64,
    right: UPtr,
}

impl BPlusTree {
    fn root<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("bp.root", Param), self.desc, D_ROOT)
    }

    /// Position of the child to descend into for `key` (first separator
    /// greater than `key`).
    fn child_index<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, key: u64) -> Result<u64> {
        let c = count(env, n)?;
        let mut i = 0;
        while i < c {
            let k = key_at(env, n, i)?;
            env.branch(site!("bp.descend.cmp", StackLocal), key < k);
            if key < k {
                break;
            }
            i += 1;
        }
        Ok(i)
    }

    fn insert_rec<S: TimingSink>(
        &self,
        env: &mut ExecEnv<S>,
        n: UPtr,
        key: u64,
        value: u64,
        old: &mut Option<u64>,
    ) -> Result<Option<SplitUp>> {
        if is_leaf(env, n)? {
            let c = count(env, n)?;
            // Find position; update in place on duplicate.
            let mut pos = 0;
            while pos < c {
                let k = key_at(env, n, pos)?;
                if k == key {
                    *old = Some(val_at(env, n, pos)?);
                    set_val(env, n, pos, value)?;
                    return Ok(None);
                }
                env.branch(site!("bp.leaf.cmp", StackLocal), key < k);
                if key < k {
                    break;
                }
                pos += 1;
            }
            if c < ORDER {
                // Shift right and insert.
                let mut i = c;
                while i > pos {
                    let k = key_at(env, n, i - 1)?;
                    let v = val_at(env, n, i - 1)?;
                    set_key(env, n, i, k)?;
                    set_val(env, n, i, v)?;
                    i -= 1;
                }
                set_key(env, n, pos, key)?;
                set_val(env, n, pos, value)?;
                set_count(env, n, c + 1)?;
                return Ok(None);
            }
            // Split the full leaf: keep the lower half, move the upper half.
            let right = new_leaf(env)?;
            let mid = ORDER / 2;
            for (j, i) in (mid..ORDER).enumerate() {
                let k = key_at(env, n, i)?;
                let v = val_at(env, n, i)?;
                set_key(env, right, j as u64, k)?;
                set_val(env, right, j as u64, v)?;
            }
            set_count(env, right, ORDER - mid)?;
            set_count(env, n, mid)?;
            let old_next = next_leaf(env, n)?;
            set_next_leaf(env, right, old_next)?;
            set_next_leaf(env, n, right)?;
            // Insert the pending key into the proper half.
            let sep = key_at(env, right, 0)?;
            let target = if key < sep { n } else { right };
            let mut inner = None;
            let split = self.insert_rec(env, target, key, value, &mut inner)?;
            debug_assert!(split.is_none() && inner.is_none());
            Ok(Some(SplitUp { key: key_at(env, right, 0)?, right }))
        } else {
            let idx = Self::child_index(env, n, key)?;
            let child = child_at(env, n, idx)?;
            let Some(up) = self.insert_rec(env, child, key, value, old)? else {
                return Ok(None);
            };
            let c = count(env, n)?;
            if c < ORDER {
                // Shift separators/children right of idx and insert.
                let mut i = c;
                while i > idx {
                    let k = key_at(env, n, i - 1)?;
                    set_key(env, n, i, k)?;
                    let ch = child_at(env, n, i)?;
                    set_child(env, n, i + 1, ch)?;
                    i -= 1;
                }
                set_key(env, n, idx, up.key)?;
                set_child(env, n, idx + 1, up.right)?;
                set_count(env, n, c + 1)?;
                return Ok(None);
            }
            // Split the full internal node. Gather ORDER+1 separators and
            // ORDER+2 children in host scratch (registers/stack), then
            // redistribute.
            let mut keys = Vec::with_capacity(ORDER as usize + 1);
            let mut children = Vec::with_capacity(ORDER as usize + 2);
            for i in 0..ORDER {
                keys.push(key_at(env, n, i)?);
            }
            for i in 0..=ORDER {
                children.push(child_at(env, n, i)?);
            }
            keys.insert(idx as usize, up.key);
            children.insert(idx as usize + 1, up.right);

            let mid = (ORDER + 1) / 2; // separator promoted upward
            let promoted = keys[mid as usize];
            let right = new_internal(env)?;
            // Left keeps keys[0..mid], children[0..=mid].
            for (i, k) in keys[..mid as usize].iter().enumerate() {
                set_key(env, n, i as u64, *k)?;
            }
            for (i, ch) in children[..=mid as usize].iter().enumerate() {
                set_child(env, n, i as u64, *ch)?;
            }
            set_count(env, n, mid)?;
            // Right takes keys[mid+1..], children[mid+1..].
            let rkeys = &keys[mid as usize + 1..];
            for (i, k) in rkeys.iter().enumerate() {
                set_key(env, right, i as u64, *k)?;
            }
            for (i, ch) in children[mid as usize + 1..].iter().enumerate() {
                set_child(env, right, i as u64, *ch)?;
            }
            set_count(env, right, rkeys.len() as u64)?;
            Ok(Some(SplitUp { key: promoted, right }))
        }
    }

    fn find_leaf<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<UPtr> {
        let mut n = self.root(env)?;
        while !is_leaf(env, n)? {
            let idx = Self::child_index(env, n, key)?;
            n = child_at(env, n, idx)?;
        }
        Ok(n)
    }

    /// Range scan: up to `limit` pairs with keys ≥ `start`, in order,
    /// following the leaf chain (the B+-tree specialty).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn scan<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::with_capacity(limit);
        let mut leaf = self.find_leaf(env, start)?;
        while out.len() < limit {
            let c = count(env, leaf)?;
            for i in 0..c {
                let k = key_at(env, leaf, i)?;
                if k >= start {
                    out.push((k, val_at(env, leaf, i)?));
                    if out.len() == limit {
                        break;
                    }
                }
            }
            if out.len() == limit {
                break;
            }
            let next = next_leaf(env, leaf)?;
            if env.ptr_is_null(site!("bp.scan.end", StackLocal), next) {
                break;
            }
            leaf = next;
        }
        Ok(out)
    }

    /// Checks B+ invariants: uniform leaf depth, per-node key order,
    /// separator bounds, the leaf chain sorted end to end; returns the key
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on violations.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        fn walk<S: TimingSink>(
            env: &mut ExecEnv<S>,
            n: UPtr,
            lo: Option<u64>,
            hi: Option<u64>,
            depth: u64,
            leaf_depth: &mut Option<u64>,
        ) -> Result<u64> {
            let c = count(env, n)?;
            let mut prev: Option<u64> = None;
            for i in 0..c {
                let k = key_at(env, n, i)?;
                if let Some(p) = prev {
                    assert!(k > p, "key order within node");
                }
                if let Some(l) = lo {
                    assert!(k >= l, "separator lower bound");
                }
                if let Some(h) = hi {
                    assert!(k < h, "separator upper bound");
                }
                prev = Some(k);
            }
            if is_leaf(env, n)? {
                match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                }
                return Ok(c);
            }
            let mut total = 0;
            for i in 0..=c {
                let child = child_at(env, n, i)?;
                let clo = if i == 0 { lo } else { Some(key_at(env, n, i - 1)?) };
                let chi = if i == c { hi } else { Some(key_at(env, n, i)?) };
                total += walk(env, child, clo, chi, depth + 1, leaf_depth)?;
            }
            Ok(total)
        }
        let root = self.root(env)?;
        let mut leaf_depth = None;
        let total = walk(env, root, None, None, 0, &mut leaf_depth)?;
        assert_eq!(total, self.len(env)?, "stored length");
        // Leaf chain covers all keys in sorted order.
        let mut leaf = self.find_leaf(env, 0)?;
        let mut chained = 0;
        let mut prev: Option<u64> = None;
        loop {
            let c = count(env, leaf)?;
            for i in 0..c {
                let k = key_at(env, leaf, i)?;
                if let Some(p) = prev {
                    assert!(k > p, "leaf chain out of order");
                }
                prev = Some(k);
                chained += 1;
            }
            let next = next_leaf(env, leaf)?;
            if next.is_null() {
                break;
            }
            leaf = next;
        }
        assert_eq!(chained, total, "leaf chain misses keys");
        Ok(total)
    }
}

impl IndexCore for BPlusTree {
    const NAME: &'static str = "B+";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("bp.create.desc", AllocResult), DESC_SIZE)?;
        let root = new_leaf(env)?;
        env.write_ptr(site!("bp.create.root", AllocResult), desc, D_ROOT, root)?;
        env.write_u64(site!("bp.create.len", AllocResult), desc, D_LEN, 0)?;
        Ok(BPlusTree { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        BPlusTree { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        BPlusTree::validate(self, env)
    }
}

impl IndexOps for BPlusTree {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        let root = self.root(env)?;
        let mut old = None;
        if let Some(up) = self.insert_rec(env, root, key, value, &mut old)? {
            // Grow a new root.
            let new_root = new_internal(env)?;
            set_key(env, new_root, 0, up.key)?;
            set_child(env, new_root, 0, root)?;
            set_child(env, new_root, 1, up.right)?;
            set_count(env, new_root, 1)?;
            env.write_ptr(site!("bp.ins.root-set", Param), self.desc, D_ROOT, new_root)?;
        }
        if old.is_none() {
            let len = env.read_u64(site!("bp.ins.len", Param), self.desc, D_LEN)?;
            env.write_u64(site!("bp.ins.len-set", Param), self.desc, D_LEN, len + 1)?;
        }
        Ok(old)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let leaf = self.find_leaf(env, key)?;
        let c = count(env, leaf)?;
        for i in 0..c {
            let k = key_at(env, leaf, i)?;
            env.branch(site!("bp.get.cmp", StackLocal), k == key);
            if k == key {
                return Ok(Some(val_at(env, leaf, i)?));
            }
        }
        Ok(None)
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        // Lazy deletion: remove from the leaf, never merge nodes.
        let leaf = self.find_leaf(env, key)?;
        let c = count(env, leaf)?;
        for i in 0..c {
            let k = key_at(env, leaf, i)?;
            if k == key {
                let v = val_at(env, leaf, i)?;
                for j in i..c - 1 {
                    let nk = key_at(env, leaf, j + 1)?;
                    let nv = val_at(env, leaf, j + 1)?;
                    set_key(env, leaf, j, nk)?;
                    set_val(env, leaf, j, nv)?;
                }
                set_count(env, leaf, c - 1)?;
                let len = env.read_u64(site!("bp.del.len", Param), self.desc, D_LEN)?;
                env.write_u64(site!("bp.del.len-set", Param), self.desc, D_LEN, len - 1)?;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("bp.len", Param), self.desc, D_LEN)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<BPlusTree>(mode, 1500);
        }
    }

    #[test]
    fn splits_cascade_to_new_roots() {
        let mut env = env_for(Mode::Hw);
        let mut t = BPlusTree::create(&mut env).unwrap();
        // Enough keys for at least three levels at order 8.
        for k in 0..1000u64 {
            t.insert(&mut env, k * 7 % 2048, k).unwrap();
            if k % 200 == 0 {
                t.validate(&mut env).unwrap();
            }
        }
        assert_eq!(t.validate(&mut env).unwrap(), t.len(&mut env).unwrap());
    }

    #[test]
    fn scan_follows_leaf_chain_in_order() {
        let mut env = env_for(Mode::Hw);
        let mut t = BPlusTree::create(&mut env).unwrap();
        for k in (0..200u64).rev() {
            t.insert(&mut env, k * 2, k).unwrap();
        }
        let out = t.scan(&mut env, 100, 10).unwrap();
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (50..60).map(|i| i * 2).collect::<Vec<_>>());
        // Scan past the end stops gracefully.
        let tail = t.scan(&mut env, 395, 100).unwrap();
        assert_eq!(tail.len(), 2, "{tail:?}");
    }

    #[test]
    fn lazy_removal_keeps_structure_valid() {
        let mut env = env_for(Mode::Sw);
        let mut t = BPlusTree::create(&mut env).unwrap();
        for k in 0..300u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        for k in (0..300u64).step_by(3) {
            assert_eq!(t.remove(&mut env, k).unwrap(), Some(k));
        }
        t.validate(&mut env).unwrap();
        for k in 0..300u64 {
            let expect = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(t.get(&mut env, k).unwrap(), expect);
        }
        // Reinsertion into lazily emptied leaves works.
        for k in (0..300u64).step_by(3) {
            t.insert(&mut env, k, k + 1).unwrap();
        }
        assert_eq!(t.validate(&mut env).unwrap(), 300);
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<BPlusTree>();
    }

    #[test]
    fn duplicate_inserts_update_in_place() {
        let mut env = env_for(Mode::Hw);
        let mut t = BPlusTree::create(&mut env).unwrap();
        for round in 1..=3u64 {
            for k in 0..50u64 {
                let old = t.insert(&mut env, k, k * round).unwrap();
                if round == 1 {
                    assert_eq!(old, None);
                } else {
                    assert_eq!(old, Some(k * (round - 1)));
                }
            }
        }
        assert_eq!(t.len(&mut env).unwrap(), 50);
        t.validate(&mut env).unwrap();
    }
}
