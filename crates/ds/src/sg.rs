//! SG — a scapegoat tree (paper Table III, Boost `intrusive::sgtree`
//! analogue).
//!
//! A weight-balanced BST with no per-node metadata: when an insertion lands
//! deeper than the α-height bound, the highest α-weight-violating ancestor
//! (the scapegoat) is flattened and rebuilt perfectly balanced. Node
//! layout: `[key, value, left, right]`. Descriptor: `[root, len, max_len]`
//! where `max_len` is the high-water mark driving deletion rebuilds.
//! α = 0.7, the Boost default region.

use crate::index::{IndexCore, IndexOps, Result};
use utpr_ptr::{site, ExecEnv, TimingSink, UPtr};

const OFF_KEY: i64 = 0;
const OFF_VAL: i64 = 8;
const OFF_LEFT: i64 = 16;
const OFF_RIGHT: i64 = 24;
const NODE_SIZE: u64 = 32;

const D_ROOT: i64 = 0;
const D_LEN: i64 = 8;
/// High-water mark of `len` since the last full rebuild; deletions trigger
/// a whole-tree rebuild when `len < α · max_len` (Galperin & Rivest).
const D_MAXLEN: i64 = 16;
const DESC_SIZE: u64 = 24;

/// α numerator/denominator (α = 0.7).
const ALPHA_NUM: u64 = 7;
const ALPHA_DEN: u64 = 10;

/// A scapegoat tree in simulated memory.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{ExecEnv, Mode};
/// use utpr_ds::{IndexCore, IndexOps, ScapegoatTree};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("sg", 4 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
/// let mut t = ScapegoatTree::create(&mut env)?;
/// t.insert(&mut env, 2, 20)?;
/// assert_eq!(t.get(&mut env, 2)?, Some(20));
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ScapegoatTree {
    desc: UPtr,
}

fn left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("sg.node.left", MemLoad), n, OFF_LEFT)
}
fn right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<UPtr> {
    env.read_ptr(site!("sg.node.right", MemLoad), n, OFF_RIGHT)
}
fn set_left<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("sg.node.set-left", MemLoad), n, OFF_LEFT, v)
}
fn set_right<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, v: UPtr) -> Result<()> {
    env.write_ptr(site!("sg.node.set-right", MemLoad), n, OFF_RIGHT, v)
}
fn key_of<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    env.read_u64(site!("sg.node.key", MemLoad), n, OFF_KEY)
}

/// Subtree size by traversal (scapegoat trees store no size fields).
fn size_of<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr) -> Result<u64> {
    if n.is_null() {
        return Ok(0);
    }
    let l = left(env, n)?;
    let r = right(env, n)?;
    Ok(1 + size_of(env, l)? + size_of(env, r)?)
}

/// In-order flatten of a subtree into a host-side vector of node handles
/// (the rebuild scratch array a C implementation would alloca/malloc).
fn flatten<S: TimingSink>(env: &mut ExecEnv<S>, n: UPtr, out: &mut Vec<UPtr>) -> Result<()> {
    if n.is_null() {
        return Ok(());
    }
    let l = left(env, n)?;
    let r = right(env, n)?;
    flatten(env, l, out)?;
    out.push(n);
    flatten(env, r, out)
}

/// Rebuilds a perfectly balanced subtree from sorted node handles.
fn build_balanced<S: TimingSink>(env: &mut ExecEnv<S>, nodes: &[UPtr]) -> Result<UPtr> {
    if nodes.is_empty() {
        return Ok(UPtr::NULL);
    }
    let mid = nodes.len() / 2;
    let root = nodes[mid];
    let l = build_balanced(env, &nodes[..mid])?;
    let r = build_balanced(env, &nodes[mid + 1..])?;
    set_left(env, root, l)?;
    set_right(env, root, r)?;
    Ok(root)
}

/// ⌊log_{1/α}(n)⌋ — the depth bound for a valid α-height-balanced tree.
fn depth_limit(len: u64) -> u64 {
    // log(n) / log(1/alpha) computed in integers: find smallest d with
    // (1/alpha)^d >= n, i.e. 10^d >= n * 7^d / 7^d … use floats, this is a
    // host-side bound, not simulated work.
    if len <= 1 {
        return 1;
    }
    let alpha = ALPHA_NUM as f64 / ALPHA_DEN as f64;
    ((len as f64).ln() / (1.0 / alpha).ln()).floor() as u64 + 1
}

impl ScapegoatTree {
    fn root<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<UPtr> {
        env.read_ptr(site!("sg.root", Param), self.desc, D_ROOT)
    }

    /// Removes `key`, returning its value if present. Plain BST deletion
    /// (successor copy); when `len` falls below `α · max_len` the whole
    /// tree is rebuilt perfectly balanced and the high-water mark reset —
    /// the Galperin–Rivest deletion rule.
    ///
    /// # Errors
    ///
    /// Propagates translation and free failures.
    pub fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        // Find z with its parent and side.
        let mut parent = UPtr::NULL;
        let mut went_left = false;
        let mut z = self.root(env)?;
        loop {
            if env.ptr_is_null(site!("sg.del.descend", StackLocal), z) {
                return Ok(None);
            }
            let k = key_of(env, z)?;
            if k == key {
                break;
            }
            went_left = key < k;
            env.branch(site!("sg.del.cmp", StackLocal), went_left);
            parent = z;
            z = if went_left { left(env, z)? } else { right(env, z)? };
        }
        let removed_value = env.read_u64(site!("sg.del.val", MemLoad), z, OFF_VAL)?;

        let zl = left(env, z)?;
        let zr = right(env, z)?;
        let replacement;
        let physically_removed;
        if env.ptr_is_null(site!("sg.del.zl-null", StackLocal), zl) {
            replacement = zr;
            physically_removed = z;
        } else if env.ptr_is_null(site!("sg.del.zr-null", StackLocal), zr) {
            replacement = zl;
            physically_removed = z;
        } else {
            // Successor copy: find min of the right subtree with its parent.
            let mut yp = z;
            let mut y = zr;
            loop {
                let l = left(env, y)?;
                if env.ptr_is_null(site!("sg.del.min", StackLocal), l) {
                    break;
                }
                yp = y;
                y = l;
            }
            let yk = key_of(env, y)?;
            let yv = env.read_u64(site!("sg.del.yval", MemLoad), y, OFF_VAL)?;
            env.write_u64(site!("sg.del.copy-key", MemLoad), z, OFF_KEY, yk)?;
            env.write_u64(site!("sg.del.copy-val", MemLoad), z, OFF_VAL, yv)?;
            let yr = right(env, y)?;
            if env.ptr_eq(site!("sg.del.y-direct", Param), yp, z)? {
                set_right(env, z, yr)?;
            } else {
                set_left(env, yp, yr)?;
            }
            env.free(site!("sg.del.free-succ", MemLoad), y)?;
            physically_removed = UPtr::NULL; // already unlinked
            replacement = UPtr::NULL;
        }
        if !physically_removed.is_null() {
            if env.ptr_is_null(site!("sg.del.p-null", StackLocal), parent) {
                env.write_ptr(site!("sg.del.root-set", Param), self.desc, D_ROOT, replacement)?;
            } else if went_left {
                set_left(env, parent, replacement)?;
            } else {
                set_right(env, parent, replacement)?;
            }
            env.free(site!("sg.del.free", MemLoad), physically_removed)?;
        }

        let len = env.read_u64(site!("sg.del.len", Param), self.desc, D_LEN)? - 1;
        env.write_u64(site!("sg.del.len-set", Param), self.desc, D_LEN, len)?;
        let maxlen = env.read_u64(site!("sg.del.maxlen", Param), self.desc, D_MAXLEN)?;
        env.branch(site!("sg.del.rebuild?", StackLocal), len * ALPHA_DEN < maxlen * ALPHA_NUM);
        if len * ALPHA_DEN < maxlen * ALPHA_NUM {
            let root = self.root(env)?;
            let mut nodes = Vec::with_capacity(len as usize);
            flatten(env, root, &mut nodes)?;
            let rebuilt = build_balanced(env, &nodes)?;
            env.write_ptr(site!("sg.del.rebuild-root", Param), self.desc, D_ROOT, rebuilt)?;
            env.write_u64(site!("sg.del.maxlen-reset", Param), self.desc, D_MAXLEN, len)?;
        }
        Ok(Some(removed_value))
    }

    /// Checks BST order and the α-weight balance at every node; returns the
    /// node count.
    ///
    /// # Errors
    ///
    /// Propagates translation failures; panics (in tests) on violations.
    pub fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        fn walk<S: TimingSink>(
            env: &mut ExecEnv<S>,
            n: UPtr,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<(u64, u64)> {
            // (size, height)
            if n.is_null() {
                return Ok((0, 0));
            }
            let k = key_of(env, n)?;
            if let Some(l) = lo {
                assert!(k > l, "BST order");
            }
            if let Some(h) = hi {
                assert!(k < h, "BST order");
            }
            let l = left(env, n)?;
            let r = right(env, n)?;
            let (sl, hl) = walk(env, l, lo, Some(k))?;
            let (sr, hr) = walk(env, r, Some(k), hi)?;
            Ok((sl + sr + 1, 1 + hl.max(hr)))
        }
        let root = self.root(env)?;
        let (size, height) = walk(env, root, None, None)?;
        assert_eq!(size, self.len(env)?);
        // The scapegoat height invariant is relative to the high-water mark
        // (deletions only rebuild when len < α·max_len); +2 covers the
        // not-yet-rebuilt slack after a triggering insert.
        let maxlen = env.read_u64(site!("sg.val.maxlen", Param), self.desc, D_MAXLEN)?;
        let bound = depth_limit(size.max(maxlen).max(1)) + 2;
        assert!(height <= bound, "height {height} size {size} maxlen {maxlen}");
        Ok(size)
    }
}

impl IndexCore for ScapegoatTree {
    const NAME: &'static str = "SG";

    fn create<S: TimingSink>(env: &mut ExecEnv<S>) -> Result<Self> {
        let desc = env.alloc(site!("sg.create.desc", AllocResult), DESC_SIZE)?;
        env.write_ptr(site!("sg.create.root", AllocResult), desc, D_ROOT, UPtr::NULL)?;
        env.write_u64(site!("sg.create.len", AllocResult), desc, D_LEN, 0)?;
        env.write_u64(site!("sg.create.maxlen", AllocResult), desc, D_MAXLEN, 0)?;
        Ok(ScapegoatTree { desc })
    }

    fn open(descriptor: UPtr) -> Self {
        ScapegoatTree { desc: descriptor }
    }

    fn descriptor(&self) -> UPtr {
        self.desc
    }

    fn validate<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        ScapegoatTree::validate(self, env)
    }
}

impl IndexOps for ScapegoatTree {
    fn insert<S: TimingSink>(
        &mut self,
        env: &mut ExecEnv<S>,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>> {
        // Descend, recording the path (a compiler would keep this on the
        // stack; handles here are locals, i.e. registers/stack slots).
        let mut path: Vec<(UPtr, bool)> = Vec::new();
        let mut x = self.root(env)?;
        while !env.ptr_is_null(site!("sg.ins.descend", StackLocal), x) {
            let k = key_of(env, x)?;
            if k == key {
                let old = env.read_u64(site!("sg.ins.old", MemLoad), x, OFF_VAL)?;
                env.write_u64(site!("sg.ins.update", MemLoad), x, OFF_VAL, value)?;
                return Ok(Some(old));
            }
            let goleft = key < k;
            env.branch(site!("sg.ins.cmp", StackLocal), goleft);
            path.push((x, goleft));
            x = if goleft { left(env, x)? } else { right(env, x)? };
        }
        let z = env.alloc(site!("sg.ins.node", AllocResult), NODE_SIZE)?;
        env.write_u64(site!("sg.ins.key", AllocResult), z, OFF_KEY, key)?;
        env.write_u64(site!("sg.ins.val", AllocResult), z, OFF_VAL, value)?;
        env.write_ptr(site!("sg.ins.left", AllocResult), z, OFF_LEFT, UPtr::NULL)?;
        env.write_ptr(site!("sg.ins.right", AllocResult), z, OFF_RIGHT, UPtr::NULL)?;
        match path.last() {
            None => env.write_ptr(site!("sg.ins.root-set", Param), self.desc, D_ROOT, z)?,
            Some((p, true)) => set_left(env, *p, z)?,
            Some((p, false)) => set_right(env, *p, z)?,
        }
        let len = env.read_u64(site!("sg.ins.len", Param), self.desc, D_LEN)? + 1;
        env.write_u64(site!("sg.ins.len-set", Param), self.desc, D_LEN, len)?;
        let maxlen = env.read_u64(site!("sg.ins.maxlen", Param), self.desc, D_MAXLEN)?;
        if len > maxlen {
            env.write_u64(site!("sg.ins.maxlen-set", Param), self.desc, D_MAXLEN, len)?;
        }

        // Depth check: path.len() is the new node's depth.
        let depth = path.len() as u64 + 1;
        env.branch(site!("sg.ins.too-deep", StackLocal), depth > depth_limit(len));
        if depth > depth_limit(len) {
            // Walk back up looking for the scapegoat: the first ancestor
            // whose child-to-subtree weight ratio exceeds α.
            let mut child_size = 1u64;
            for (i, (anc, _)) in path.iter().enumerate().rev() {
                let anc_size = size_of(env, *anc)?;
                if child_size * ALPHA_DEN > anc_size * ALPHA_NUM {
                    // `anc` is the scapegoat: rebuild its subtree.
                    let mut nodes = Vec::with_capacity(anc_size as usize);
                    flatten(env, *anc, &mut nodes)?;
                    let rebuilt = build_balanced(env, &nodes)?;
                    if i == 0 {
                        env.write_ptr(
                            site!("sg.rebuild.root", Param),
                            self.desc,
                            D_ROOT,
                            rebuilt,
                        )?;
                    } else {
                        let (gp, was_left) = path[i - 1];
                        if was_left {
                            set_left(env, gp, rebuilt)?;
                        } else {
                            set_right(env, gp, rebuilt)?;
                        }
                    }
                    break;
                }
                child_size = anc_size;
            }
        }
        Ok(None)
    }

    fn get<S: TimingSink>(&self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        let mut x = self.root(env)?;
        while !env.ptr_is_null(site!("sg.get.descend", StackLocal), x) {
            let k = key_of(env, x)?;
            if k == key {
                return Ok(Some(env.read_u64(site!("sg.get.val", MemLoad), x, OFF_VAL)?));
            }
            let goleft = key < k;
            env.branch(site!("sg.get.cmp", StackLocal), goleft);
            x = if goleft { left(env, x)? } else { right(env, x)? };
        }
        Ok(None)
    }

    fn remove<S: TimingSink>(&mut self, env: &mut ExecEnv<S>, key: u64) -> Result<Option<u64>> {
        ScapegoatTree::remove(self, env, key)
    }

    fn len<S: TimingSink>(&self, env: &mut ExecEnv<S>) -> Result<u64> {
        env.read_u64(site!("sg.len", Param), self.desc, D_LEN)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::testing::{crash_recovery_test, env_for, oracle_test};
    use utpr_ptr::Mode;

    #[test]
    fn oracle_all_modes() {
        for mode in Mode::ALL {
            oracle_test::<ScapegoatTree>(mode, 1200);
        }
    }

    #[test]
    fn sequential_insert_triggers_rebuilds_and_stays_shallow() {
        let mut env = env_for(Mode::Hw);
        let mut t = ScapegoatTree::create(&mut env).unwrap();
        // Sorted insertion is the worst case: without rebuilds the tree is a
        // 512-chain and validate's height bound fails.
        for k in 0..512u64 {
            t.insert(&mut env, k, k).unwrap();
        }
        assert_eq!(t.validate(&mut env).unwrap(), 512);
        for k in 0..512u64 {
            assert_eq!(t.get(&mut env, k).unwrap(), Some(k));
        }
    }

    #[test]
    fn reverse_and_zigzag_orders() {
        let mut env = env_for(Mode::Hw);
        let mut t = ScapegoatTree::create(&mut env).unwrap();
        for k in (0..256u64).rev() {
            t.insert(&mut env, k, k).unwrap();
        }
        t.validate(&mut env).unwrap();
        let mut t2 = ScapegoatTree::create(&mut env).unwrap();
        for i in 0..128u64 {
            let k = if i % 2 == 0 { i } else { 1000 - i };
            t2.insert(&mut env, k, i).unwrap();
        }
        t2.validate(&mut env).unwrap();
    }

    #[test]
    fn depth_limit_monotone() {
        assert!(depth_limit(2) <= depth_limit(100));
        assert!(depth_limit(100) <= depth_limit(100_000));
        // α = 0.7 ⇒ limit ≈ log_{1.43}(n) ≈ 1.94 log2(n).
        assert!(depth_limit(1024) <= 21);
    }

    #[test]
    fn crash_recovery() {
        crash_recovery_test::<ScapegoatTree>();
    }
}
