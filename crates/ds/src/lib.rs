//! # utpr-ds — the six benchmark data structures (paper Table III)
//!
//! Re-implementations of the Boost data structures the paper evaluates,
//! written once against [`utpr_ptr::ExecEnv`] so the same code runs in all
//! four build variants (Volatile / Explicit / SW / HW). Every pointer
//! operation is tagged with a static site describing its provenance, which
//! is what decides whether the SW build executes a dynamic check there.
//!
//! | Name  | Structure            | Module |
//! |-------|----------------------|--------|
//! | LL    | doubly-linked list   | [`ll`] |
//! | Hash  | chained hash map     | [`hash`] |
//! | RB    | red-black tree       | [`rb`] |
//! | Splay | splay tree           | [`splay`] |
//! | AVL   | AVL tree             | [`avl`] |
//! | SG    | scapegoat tree       | [`sg`] |
//!
//! The five maps implement [`IndexOps`] (lifecycle in [`IndexCore`], with
//! [`Index`] as the combined alias); the list has its own iteration
//! harness, as in the paper. A bonus [`bplus`] B+ tree (wide nodes, leaf
//! chain) extends the suite beyond Table III.
//!
//! The [`concurrent`] module adds durable-linearizable multi-thread
//! variants (lock-free hash + list, lock-striped wrapper for the trees)
//! parameterized by a flush strategy (Eager / FliT / Traverse).

pub mod avl;
pub mod bplus;
pub mod concurrent;
pub mod hash;
pub mod index;
pub mod ll;
pub mod rb;
pub mod sg;
pub mod splay;

pub use avl::AvlTree;
pub use bplus::BPlusTree;
pub use concurrent::{ConcHash, ConcList, ConcurrentIndex, FlushStrategy, Handle, Striped};
pub use hash::HashMapIndex;
pub use index::{Index, IndexCore, IndexOps};
pub use ll::LinkedList;
pub use rb::RbTree;
pub use sg::ScapegoatTree;
pub use splay::SplayTree;
