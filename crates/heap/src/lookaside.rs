//! Software translation lookasides: generation-stamped inline caches in
//! front of the attachment-table walks in [`crate::AddressSpace`].
//!
//! The paper accelerates `ra2va`/`va2ra` in hardware with two lookaside
//! buffers: the POLB (pool id → base VA) and the VALB (VA range → pool id,
//! a TCAM over the VATB). This module mirrors both as *software* caches on
//! the simulated hot path:
//!
//! - **sPOLB** — a dense array indexed by raw pool id holding the pool's
//!   current `(base, size)`, replacing the per-access registry probe in
//!   `ra2va`.
//! - **sVALB** — a one-entry last-hit memo plus a small direct-mapped array
//!   of `(base, size, pool)` ranges, consulted before the BTree
//!   containing-range walk in `va2ra`.
//!
//! Both are **generation-stamped**: every entry carries the epoch at which
//! it was filled, and a single epoch bump — performed on attach, detach,
//! restart, pool destruction, integrity-mode switches, and any mutable
//! escape-hatch access to the pool device (quarantine / reseal / salvage
//! all go through it) — invalidates every cached entry in O(1). Because
//! entries are only ever installed from a *successful* slow-path walk of
//! the same epoch, a cache hit returns exactly what the walk would have,
//! and misses (detached pools, foreign addresses) always take the slow
//! path, so error semantics (`PoolDetached`, `NotInAnyPool`,
//! `OffsetOutOfPool`, quarantine faults) are bit-identical with the cache
//! on or off. There is deliberately no negative caching.
//!
//! All cache state lives in [`std::cell::Cell`]s so the read-only
//! translation methods (`&self`) can refill entries; like the
//! [`crate::pagestore::PageStore`] memo this keeps the space `Send` but
//! not `Sync`, which is fine — each simulated machine owns its memory
//! privately.

use std::cell::Cell;

/// Number of direct-mapped sVALB range slots. Pools attach at 1 MiB
/// alignment, so hashing the MiB index of the address spreads distinct
/// pools across slots; 64 covers every multi-pool working set in the
/// benchmark suite without conflict thrash.
const VALB_WAYS: usize = 64;

/// Epoch value that no live entry can carry: slots start zeroed and the
/// cache's epoch starts at 1, so an all-zero slot is simply stale.
const NEVER: u64 = 0;

/// One sPOLB entry: the attachment of pool `raw id == index` as of `stamp`.
#[derive(Clone, Copy, Debug, Default)]
struct PolbSlot {
    stamp: u64,
    base: u64,
    size: u64,
}

/// One sVALB entry: an attached range `[base, base + size)` owned by
/// `pool`, valid while `stamp` matches the cache epoch.
#[derive(Clone, Copy, Debug, Default)]
struct ValbSlot {
    stamp: u64,
    base: u64,
    size: u64,
    pool: u32,
}

/// Hit/miss/invalidation counters for the software lookasides.
///
/// These are *host-side* diagnostics: they never feed the simulated cycle
/// model, events, or checksums, so they may differ between cache-enabled
/// and cache-disabled runs of the same workload (that is the point). They
/// are still fully deterministic for a fixed op sequence and layout seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransStats {
    /// `ra2va` translations served from the sPOLB.
    pub spolb_hits: u64,
    /// `ra2va` translations that fell through to the registry probe.
    pub spolb_misses: u64,
    /// `va2ra` translations served from the sVALB (memo or array).
    pub svalb_hits: u64,
    /// `va2ra` translations that fell through to the BTree walk.
    pub svalb_misses: u64,
    /// Epoch bumps (each one invalidates every cached entry).
    pub epoch_bumps: u64,
}

impl TransStats {
    /// sVALB hit rate over all cached `va2ra` translations, in `[0, 1]`.
    pub fn svalb_hit_rate(&self) -> f64 {
        let total = self.svalb_hits + self.svalb_misses;
        if total == 0 {
            0.0
        } else {
            self.svalb_hits as f64 / total as f64
        }
    }

    /// sPOLB hit rate over all cached `ra2va` translations, in `[0, 1]`.
    pub fn spolb_hit_rate(&self) -> f64 {
        let total = self.spolb_hits + self.spolb_misses;
        if total == 0 {
            0.0
        } else {
            self.spolb_hits as f64 / total as f64
        }
    }
}

/// The software lookaside layer. Owned by [`crate::AddressSpace`]; see the
/// module docs for the invalidation contract.
#[derive(Clone, Debug)]
pub(crate) struct TransCache {
    enabled: bool,
    /// Current generation. Entries are valid iff `slot.stamp == epoch`.
    epoch: Cell<u64>,
    /// sPOLB: dense by raw pool id (slot 0 unused — ids start at 1).
    /// Grown on attach; ids past the end simply take the slow path.
    polb: Vec<Cell<PolbSlot>>,
    /// sVALB last-hit memo, checked before the direct-mapped array.
    last: Cell<ValbSlot>,
    /// sVALB direct-mapped range array.
    valb: [Cell<ValbSlot>; VALB_WAYS],
    spolb_hits: Cell<u64>,
    spolb_misses: Cell<u64>,
    svalb_hits: Cell<u64>,
    svalb_misses: Cell<u64>,
    epoch_bumps: Cell<u64>,
}

impl TransCache {
    pub(crate) fn new() -> Self {
        TransCache {
            enabled: true,
            epoch: Cell::new(NEVER + 1),
            polb: Vec::new(),
            last: Cell::new(ValbSlot::default()),
            valb: std::array::from_fn(|_| Cell::new(ValbSlot::default())),
            spolb_hits: Cell::new(0),
            spolb_misses: Cell::new(0),
            svalb_hits: Cell::new(0),
            svalb_misses: Cell::new(0),
            epoch_bumps: Cell::new(0),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The current generation. Exposed so higher layers (the per-site
    /// check caches in `utpr-ptr`) can stamp their own entries against the
    /// same invalidation clock.
    #[inline]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Turns the lookasides on or off. Disabling (and re-enabling) bumps
    /// the epoch so no entry filled earlier can ever hit again.
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.bump();
    }

    /// Invalidates every cached entry in O(1) by advancing the epoch.
    #[inline]
    pub(crate) fn bump(&mut self) {
        self.epoch.set(self.epoch.get() + 1);
        self.epoch_bumps.set(self.epoch_bumps.get() + 1);
    }

    /// Grows the sPOLB to cover raw id `raw` and installs its attachment
    /// under the current epoch (called from `attach`, which owns `&mut`).
    pub(crate) fn install_pool(&mut self, raw: u32, base: u64, size: u64) {
        let idx = raw as usize;
        if idx >= self.polb.len() {
            self.polb.resize_with(idx + 1, || Cell::new(PolbSlot::default()));
        }
        self.polb[idx].set(PolbSlot { stamp: self.epoch.get(), base, size });
    }

    /// sPOLB probe: the `(base, size)` of pool `raw` if cached this epoch.
    #[inline]
    pub(crate) fn lookup_pool(&self, raw: u32) -> Option<(u64, u64)> {
        if let Some(slot) = self.polb.get(raw as usize) {
            let s = slot.get();
            if s.stamp == self.epoch.get() {
                self.spolb_hits.set(self.spolb_hits.get() + 1);
                return Some((s.base, s.size));
            }
        }
        self.spolb_misses.set(self.spolb_misses.get() + 1);
        None
    }

    /// Refills pool `raw`'s sPOLB entry after a successful slow-path
    /// lookup. Ids beyond the array (never attached since the last grow)
    /// are skipped — they keep taking the slow path.
    #[inline]
    pub(crate) fn fill_pool(&self, raw: u32, base: u64, size: u64) {
        if let Some(slot) = self.polb.get(raw as usize) {
            slot.set(PolbSlot { stamp: self.epoch.get(), base, size });
        }
    }

    #[inline]
    fn valb_index(va: u64) -> usize {
        // Pools attach at 1 MiB boundaries: fold the MiB index.
        ((va >> 20) ^ (va >> 26)) as usize & (VALB_WAYS - 1)
    }

    /// sVALB probe: the `(pool, base, size)` of the attached range
    /// containing `va`, if cached this epoch.
    #[inline]
    pub(crate) fn lookup_va(&self, va: u64) -> Option<(u32, u64, u64)> {
        let epoch = self.epoch.get();
        let l = self.last.get();
        if l.stamp == epoch && va.wrapping_sub(l.base) < l.size {
            self.svalb_hits.set(self.svalb_hits.get() + 1);
            return Some((l.pool, l.base, l.size));
        }
        let s = self.valb[Self::valb_index(va)].get();
        if s.stamp == epoch && va.wrapping_sub(s.base) < s.size {
            self.last.set(s);
            self.svalb_hits.set(self.svalb_hits.get() + 1);
            return Some((s.pool, s.base, s.size));
        }
        self.svalb_misses.set(self.svalb_misses.get() + 1);
        None
    }

    /// Refills the sVALB (memo + the slot `va` maps to) after a successful
    /// slow-path walk found `va` inside `pool`'s range.
    #[inline]
    pub(crate) fn fill_va(&self, va: u64, pool: u32, base: u64, size: u64) {
        let slot = ValbSlot { stamp: self.epoch.get(), base, size, pool };
        self.last.set(slot);
        self.valb[Self::valb_index(va)].set(slot);
    }

    /// Snapshot of the hit/miss counters.
    pub(crate) fn stats(&self) -> TransStats {
        TransStats {
            spolb_hits: self.spolb_hits.get(),
            spolb_misses: self.spolb_misses.get(),
            svalb_hits: self.svalb_hits.get(),
            svalb_misses: self.svalb_misses.get(),
            epoch_bumps: self.epoch_bumps.get(),
        }
    }

    /// Zeroes the hit/miss counters (cached entries stay valid).
    pub(crate) fn reset_stats(&self) {
        self.spolb_hits.set(0);
        self.spolb_misses.set(0);
        self.svalb_hits.set(0);
        self.svalb_misses.set(0);
        self.epoch_bumps.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cache_misses_everything() {
        let c = TransCache::new();
        assert!(c.lookup_pool(1).is_none());
        assert!(c.lookup_va(1 << 47).is_none());
        let s = c.stats();
        assert_eq!((s.spolb_hits, s.spolb_misses), (0, 1));
        assert_eq!((s.svalb_hits, s.svalb_misses), (0, 1));
    }

    #[test]
    fn install_then_lookup_hits_until_bump() {
        let mut c = TransCache::new();
        c.install_pool(3, 0x8000_0000_0000, 1 << 20);
        assert_eq!(c.lookup_pool(3), Some((0x8000_0000_0000, 1 << 20)));
        c.bump();
        assert_eq!(c.lookup_pool(3), None, "epoch bump invalidates in O(1)");
        c.fill_pool(3, 0x9000_0000_0000, 1 << 20);
        assert_eq!(c.lookup_pool(3), Some((0x9000_0000_0000, 1 << 20)));
    }

    #[test]
    fn valb_contains_and_rejects_by_range() {
        let c = TransCache::new();
        let base = (1u64 << 47) + (5 << 20);
        c.fill_va(base, 7, base, 1 << 20);
        assert_eq!(c.lookup_va(base), Some((7, base, 1 << 20)));
        assert_eq!(c.lookup_va(base + (1 << 20) - 1), Some((7, base, 1 << 20)));
        assert!(c.lookup_va(base + (1 << 20)).is_none(), "one past the end");
        assert!(c.lookup_va(base - 1).is_none(), "below the base");
    }

    #[test]
    fn valb_memo_survives_direct_map_conflicts() {
        let c = TransCache::new();
        let a = (1u64 << 47) + (1 << 20);
        // Find a distinct range mapping to the same direct-mapped slot as
        // `a`: its fill evicts `a`'s array entry, but `b` stays hot in the
        // memo.
        let b = (2..)
            .map(|k| a + (k << 20))
            .find(|&va| TransCache::valb_index(va) == TransCache::valb_index(a))
            .unwrap();
        c.fill_va(a, 1, a, 1 << 20);
        c.fill_va(b, 2, b, 1 << 20);
        assert_eq!(c.lookup_va(b), Some((2, b, 1 << 20)), "memo holds b");
        assert!(c.lookup_va(a).is_none(), "a evicted from its slot");
    }

    #[test]
    fn counters_reset_without_invalidating() {
        let mut c = TransCache::new();
        c.install_pool(1, 1 << 47, 1 << 20);
        let _ = c.lookup_pool(1);
        c.reset_stats();
        assert_eq!(c.stats(), TransStats::default());
        assert!(c.lookup_pool(1).is_some(), "entries survive a stats reset");
    }

    #[test]
    fn disabling_bumps_the_epoch() {
        let mut c = TransCache::new();
        c.install_pool(1, 1 << 47, 1 << 20);
        c.set_enabled(false);
        assert!(!c.enabled());
        c.set_enabled(true);
        assert!(c.lookup_pool(1).is_none(), "pre-disable entries are stale");
    }
}
