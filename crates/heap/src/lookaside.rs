//! Software translation lookasides: generation-stamped inline caches in
//! front of the attachment-table walks in [`crate::AddressSpace`].
//!
//! The paper accelerates `ra2va`/`va2ra` in hardware with two lookaside
//! buffers: the POLB (pool id → base VA) and the VALB (VA range → pool id,
//! a TCAM over the VATB). This module mirrors both as *software* caches on
//! the simulated hot path:
//!
//! - **sPOLB** — a dense array indexed by raw pool id holding the pool's
//!   current `(base, size)`, replacing the per-access registry probe in
//!   `ra2va`.
//! - **sVALB** — a one-entry last-hit memo plus a small direct-mapped array
//!   of `(base, size, pool)` ranges, consulted before the BTree
//!   containing-range walk in `va2ra`.
//!
//! Both are **generation-stamped** against a monotonic invalidation
//! *clock*, with two watermarks drawn from it:
//!
//! - a **global epoch** — advanced by events that can move *any*
//!   attachment (restart, integrity-mode switches, cache toggles, mutable
//!   escape-hatch access to the pool device); and
//! - a **per-pool epoch** — advanced when one specific pool attaches,
//!   detaches, or is destroyed.
//!
//! An entry is valid iff its fill stamp is at least both the global epoch
//! and its own pool's epoch. Detaching pool *A* therefore invalidates only
//! *A*'s cached translations: the other pools' entries — one per core in
//! the multicore picture — stay hot instead of being flushed by an
//! unrelated pool's lifecycle (the per-shard epoch rule of the
//! concurrency model, DESIGN.md §10). Because entries are only ever
//! installed from a *successful* slow-path walk, a cache hit returns
//! exactly what the walk would have, and misses (detached pools, foreign
//! addresses) always take the slow path, so error semantics
//! (`PoolDetached`, `NotInAnyPool`, `OffsetOutOfPool`, quarantine faults)
//! are bit-identical with the cache on or off. There is deliberately no
//! negative caching.
//!
//! All cache state lives in [`std::cell::Cell`]s so the read-only
//! translation methods (`&self`) can refill entries; like the
//! [`crate::pagestore::PageStore`] memo this keeps the space `Send` but
//! not `Sync`, which is fine — each worker thread owns its shard of the
//! address space privately, and only the lower pool layer
//! ([`crate::shard::SharedPool`]) is shared between threads.

use std::cell::Cell;

/// Number of direct-mapped sVALB range slots. Pools attach at 1 MiB
/// alignment, so hashing the MiB index of the address spreads distinct
/// pools across slots; 64 covers every multi-pool working set in the
/// benchmark suite without conflict thrash.
const VALB_WAYS: usize = 64;

/// Stamp value that no live entry can carry: slots start zeroed and the
/// invalidation clock starts at 1, so an all-zero slot is simply stale.
const NEVER: u64 = 0;

/// One sPOLB entry: the attachment of pool `raw id == index` as of `stamp`.
#[derive(Clone, Copy, Debug, Default)]
struct PolbSlot {
    stamp: u64,
    base: u64,
    size: u64,
}

/// One sVALB entry: an attached range `[base, base + size)` owned by
/// `pool`, valid while `stamp` is current for both watermarks.
#[derive(Clone, Copy, Debug, Default)]
struct ValbSlot {
    stamp: u64,
    base: u64,
    size: u64,
    pool: u32,
}

/// Hit/miss/invalidation counters for the software lookasides.
///
/// These are *host-side* diagnostics: they never feed the simulated cycle
/// model, events, or checksums, so they may differ between cache-enabled
/// and cache-disabled runs of the same workload (that is the point). They
/// are still fully deterministic for a fixed op sequence and layout seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransStats {
    /// `ra2va` translations served from the sPOLB.
    pub spolb_hits: u64,
    /// `ra2va` translations that fell through to the registry probe.
    pub spolb_misses: u64,
    /// `va2ra` translations served from the sVALB (memo or array).
    pub svalb_hits: u64,
    /// `va2ra` translations that fell through to the BTree walk.
    pub svalb_misses: u64,
    /// Global epoch bumps (each one invalidates every cached entry).
    pub epoch_bumps: u64,
    /// Per-pool epoch bumps (each invalidates one pool's entries only).
    pub pool_epoch_bumps: u64,
}

impl TransStats {
    /// sVALB hit rate over all cached `va2ra` translations, in `[0, 1]`.
    pub fn svalb_hit_rate(&self) -> f64 {
        let total = self.svalb_hits + self.svalb_misses;
        if total == 0 {
            0.0
        } else {
            self.svalb_hits as f64 / total as f64
        }
    }

    /// sPOLB hit rate over all cached `ra2va` translations, in `[0, 1]`.
    pub fn spolb_hit_rate(&self) -> f64 {
        let total = self.spolb_hits + self.spolb_misses;
        if total == 0 {
            0.0
        } else {
            self.spolb_hits as f64 / total as f64
        }
    }

    /// Accumulates another shard's counters into this one — how per-thread
    /// lookaside telemetry is merged when workers join.
    pub fn merge(&mut self, other: &TransStats) {
        self.spolb_hits += other.spolb_hits;
        self.spolb_misses += other.spolb_misses;
        self.svalb_hits += other.svalb_hits;
        self.svalb_misses += other.svalb_misses;
        self.epoch_bumps += other.epoch_bumps;
        self.pool_epoch_bumps += other.pool_epoch_bumps;
    }
}

/// The software lookaside layer. Owned by [`crate::AddressSpace`]; see the
/// module docs for the invalidation contract.
#[derive(Clone, Debug)]
pub(crate) struct TransCache {
    enabled: bool,
    /// Monotonic invalidation clock; every bump (global or per-pool)
    /// advances it, and entries are stamped with its value at fill time.
    clock: Cell<u64>,
    /// Global watermark: entries stamped before it are stale.
    global: Cell<u64>,
    /// Per-pool watermarks, dense by raw pool id (missing ids are 0, i.e.
    /// never individually invalidated).
    pool_epochs: Vec<Cell<u64>>,
    /// sPOLB: dense by raw pool id (slot 0 unused — ids start at 1).
    /// Grown on attach; ids past the end simply take the slow path.
    polb: Vec<Cell<PolbSlot>>,
    /// sVALB last-hit memo, checked before the direct-mapped array.
    last: Cell<ValbSlot>,
    /// sVALB direct-mapped range array.
    valb: [Cell<ValbSlot>; VALB_WAYS],
    spolb_hits: Cell<u64>,
    spolb_misses: Cell<u64>,
    svalb_hits: Cell<u64>,
    svalb_misses: Cell<u64>,
    epoch_bumps: Cell<u64>,
    pool_epoch_bumps: Cell<u64>,
}

impl TransCache {
    pub(crate) fn new() -> Self {
        TransCache {
            enabled: true,
            clock: Cell::new(NEVER + 1),
            global: Cell::new(NEVER + 1),
            pool_epochs: Vec::new(),
            polb: Vec::new(),
            last: Cell::new(ValbSlot::default()),
            valb: std::array::from_fn(|_| Cell::new(ValbSlot::default())),
            spolb_hits: Cell::new(0),
            spolb_misses: Cell::new(0),
            svalb_hits: Cell::new(0),
            svalb_misses: Cell::new(0),
            epoch_bumps: Cell::new(0),
            pool_epoch_bumps: Cell::new(0),
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The invalidation clock. Exposed so higher layers (the per-site
    /// check caches in `utpr-ptr`) can stamp their own entries against the
    /// same clock: *any* bump — global or per-pool — advances it, so a
    /// stale higher-level entry can never survive a pool lifecycle event.
    #[inline]
    pub(crate) fn epoch(&self) -> u64 {
        self.clock.get()
    }

    /// Turns the lookasides on or off. Disabling (and re-enabling) bumps
    /// the global epoch so no entry filled earlier can ever hit again.
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.bump();
    }

    /// Invalidates every cached entry in O(1) by advancing the global
    /// watermark.
    #[inline]
    pub(crate) fn bump(&mut self) {
        let now = self.clock.get() + 1;
        self.clock.set(now);
        self.global.set(now);
        self.epoch_bumps.set(self.epoch_bumps.get() + 1);
    }

    /// Invalidates one pool's cached entries in O(1) by advancing its
    /// per-pool watermark — the per-shard epoch rule: another pool's
    /// detach must not flush this pool's (this core's) hot translations.
    pub(crate) fn bump_pool(&mut self, raw: u32) {
        let now = self.clock.get() + 1;
        self.clock.set(now);
        let idx = raw as usize;
        if idx >= self.pool_epochs.len() {
            self.pool_epochs.resize_with(idx + 1, || Cell::new(NEVER));
        }
        self.pool_epochs[idx].set(now);
        self.pool_epoch_bumps.set(self.pool_epoch_bumps.get() + 1);
    }

    #[inline]
    fn pool_epoch(&self, raw: u32) -> u64 {
        self.pool_epochs.get(raw as usize).map_or(NEVER, Cell::get)
    }

    /// An entry stamped `stamp` for pool `raw` is valid iff the stamp is
    /// current for both the global and the pool watermark.
    #[inline]
    fn fresh(&self, stamp: u64, raw: u32) -> bool {
        stamp >= self.global.get() && stamp >= self.pool_epoch(raw)
    }

    /// Grows the sPOLB to cover raw id `raw` and installs its attachment
    /// under the current clock (called from `attach`, which owns `&mut`).
    pub(crate) fn install_pool(&mut self, raw: u32, base: u64, size: u64) {
        let idx = raw as usize;
        if idx >= self.polb.len() {
            self.polb.resize_with(idx + 1, || Cell::new(PolbSlot::default()));
        }
        self.polb[idx].set(PolbSlot { stamp: self.clock.get(), base, size });
    }

    /// [`Self::lookup_pool`] without the hit/miss accounting: the probe
    /// for callers that only validate a translation (results are
    /// bit-identical; only the counters differ).
    #[inline]
    pub(crate) fn lookup_pool_quiet(&self, raw: u32) -> Option<(u64, u64)> {
        if let Some(slot) = self.polb.get(raw as usize) {
            let s = slot.get();
            if self.fresh(s.stamp, raw) {
                return Some((s.base, s.size));
            }
        }
        None
    }

    /// sPOLB probe: the `(base, size)` of pool `raw` if cached and fresh.
    #[inline]
    pub(crate) fn lookup_pool(&self, raw: u32) -> Option<(u64, u64)> {
        if let Some(slot) = self.polb.get(raw as usize) {
            let s = slot.get();
            if self.fresh(s.stamp, raw) {
                self.spolb_hits.set(self.spolb_hits.get() + 1);
                return Some((s.base, s.size));
            }
        }
        self.spolb_misses.set(self.spolb_misses.get() + 1);
        None
    }

    /// Refills pool `raw`'s sPOLB entry after a successful slow-path
    /// lookup. Ids beyond the array (never attached since the last grow)
    /// are skipped — they keep taking the slow path.
    #[inline]
    pub(crate) fn fill_pool(&self, raw: u32, base: u64, size: u64) {
        if let Some(slot) = self.polb.get(raw as usize) {
            slot.set(PolbSlot { stamp: self.clock.get(), base, size });
        }
    }

    #[inline]
    fn valb_index(va: u64) -> usize {
        // Pools attach at 1 MiB boundaries: fold the MiB index.
        ((va >> 20) ^ (va >> 26)) as usize & (VALB_WAYS - 1)
    }

    /// sVALB probe: the `(pool, base, size)` of the attached range
    /// containing `va`, if cached and fresh.
    #[inline]
    pub(crate) fn lookup_va(&self, va: u64) -> Option<(u32, u64, u64)> {
        let l = self.last.get();
        if self.fresh(l.stamp, l.pool) && va.wrapping_sub(l.base) < l.size {
            self.svalb_hits.set(self.svalb_hits.get() + 1);
            return Some((l.pool, l.base, l.size));
        }
        let s = self.valb[Self::valb_index(va)].get();
        if self.fresh(s.stamp, s.pool) && va.wrapping_sub(s.base) < s.size {
            self.last.set(s);
            self.svalb_hits.set(self.svalb_hits.get() + 1);
            return Some((s.pool, s.base, s.size));
        }
        self.svalb_misses.set(self.svalb_misses.get() + 1);
        None
    }

    /// Refills the sVALB (memo + the slot `va` maps to) after a successful
    /// slow-path walk found `va` inside `pool`'s range.
    #[inline]
    pub(crate) fn fill_va(&self, va: u64, pool: u32, base: u64, size: u64) {
        let slot = ValbSlot { stamp: self.clock.get(), base, size, pool };
        self.last.set(slot);
        self.valb[Self::valb_index(va)].set(slot);
    }

    /// Snapshot of the hit/miss counters.
    pub(crate) fn stats(&self) -> TransStats {
        TransStats {
            spolb_hits: self.spolb_hits.get(),
            spolb_misses: self.spolb_misses.get(),
            svalb_hits: self.svalb_hits.get(),
            svalb_misses: self.svalb_misses.get(),
            epoch_bumps: self.epoch_bumps.get(),
            pool_epoch_bumps: self.pool_epoch_bumps.get(),
        }
    }

    /// Zeroes the hit/miss counters (cached entries stay valid).
    pub(crate) fn reset_stats(&self) {
        self.spolb_hits.set(0);
        self.spolb_misses.set(0);
        self.svalb_hits.set(0);
        self.svalb_misses.set(0);
        self.epoch_bumps.set(0);
        self.pool_epoch_bumps.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cache_misses_everything() {
        let c = TransCache::new();
        assert!(c.lookup_pool(1).is_none());
        assert!(c.lookup_va(1 << 47).is_none());
        let s = c.stats();
        assert_eq!((s.spolb_hits, s.spolb_misses), (0, 1));
        assert_eq!((s.svalb_hits, s.svalb_misses), (0, 1));
    }

    #[test]
    fn install_then_lookup_hits_until_bump() {
        let mut c = TransCache::new();
        c.install_pool(3, 0x8000_0000_0000, 1 << 20);
        assert_eq!(c.lookup_pool(3), Some((0x8000_0000_0000, 1 << 20)));
        c.bump();
        assert_eq!(c.lookup_pool(3), None, "epoch bump invalidates in O(1)");
        c.fill_pool(3, 0x9000_0000_0000, 1 << 20);
        assert_eq!(c.lookup_pool(3), Some((0x9000_0000_0000, 1 << 20)));
    }

    #[test]
    fn pool_bump_invalidates_only_that_pool() {
        let mut c = TransCache::new();
        c.install_pool(3, 0x8000_0000_0000, 1 << 20);
        c.install_pool(5, 0x9000_0000_0000, 1 << 20);
        let a = (1u64 << 47) + (3 << 20);
        let b = (1u64 << 47) + (700 << 20);
        c.fill_va(a, 3, a, 1 << 20);
        c.fill_va(b, 5, b, 1 << 20);
        c.bump_pool(3);
        assert_eq!(c.lookup_pool(3), None, "pool 3's sPOLB entry is stale");
        assert_eq!(c.lookup_pool(5), Some((0x9000_0000_0000, 1 << 20)), "pool 5 survives");
        assert!(c.lookup_va(a).is_none(), "pool 3's sVALB range is stale");
        assert_eq!(c.lookup_va(b), Some((5, b, 1 << 20)), "pool 5's range survives");
        let s = c.stats();
        assert_eq!(s.pool_epoch_bumps, 1);
        assert_eq!(s.epoch_bumps, 0, "no global flush happened");
    }

    #[test]
    fn refill_after_pool_bump_is_fresh_again() {
        let mut c = TransCache::new();
        c.install_pool(3, 0x8000_0000_0000, 1 << 20);
        c.bump_pool(3);
        assert!(c.lookup_pool(3).is_none());
        c.fill_pool(3, 0xa000_0000_0000, 1 << 20);
        assert_eq!(c.lookup_pool(3), Some((0xa000_0000_0000, 1 << 20)));
        // A later global bump still kills the refilled entry.
        c.bump();
        assert!(c.lookup_pool(3).is_none());
    }

    #[test]
    fn clock_advances_on_both_bump_kinds() {
        let mut c = TransCache::new();
        let e0 = c.epoch();
        c.bump_pool(9);
        let e1 = c.epoch();
        c.bump();
        let e2 = c.epoch();
        assert!(e1 > e0 && e2 > e1, "every bump advances the shared clock");
    }

    #[test]
    fn valb_contains_and_rejects_by_range() {
        let c = TransCache::new();
        let base = (1u64 << 47) + (5 << 20);
        c.fill_va(base, 7, base, 1 << 20);
        assert_eq!(c.lookup_va(base), Some((7, base, 1 << 20)));
        assert_eq!(c.lookup_va(base + (1 << 20) - 1), Some((7, base, 1 << 20)));
        assert!(c.lookup_va(base + (1 << 20)).is_none(), "one past the end");
        assert!(c.lookup_va(base - 1).is_none(), "below the base");
    }

    #[test]
    fn valb_memo_survives_direct_map_conflicts() {
        let c = TransCache::new();
        let a = (1u64 << 47) + (1 << 20);
        // Find a distinct range mapping to the same direct-mapped slot as
        // `a`: its fill evicts `a`'s array entry, but `b` stays hot in the
        // memo.
        let b = (2..)
            .map(|k| a + (k << 20))
            .find(|&va| TransCache::valb_index(va) == TransCache::valb_index(a))
            .unwrap();
        c.fill_va(a, 1, a, 1 << 20);
        c.fill_va(b, 2, b, 1 << 20);
        assert_eq!(c.lookup_va(b), Some((2, b, 1 << 20)), "memo holds b");
        assert!(c.lookup_va(a).is_none(), "a evicted from its slot");
    }

    #[test]
    fn counters_reset_without_invalidating() {
        let mut c = TransCache::new();
        c.install_pool(1, 1 << 47, 1 << 20);
        let _ = c.lookup_pool(1);
        c.reset_stats();
        assert_eq!(c.stats(), TransStats::default());
        assert!(c.lookup_pool(1).is_some(), "entries survive a stats reset");
    }

    #[test]
    fn disabling_bumps_the_epoch() {
        let mut c = TransCache::new();
        c.install_pool(1, 1 << 47, 1 << 20);
        c.set_enabled(false);
        assert!(!c.enabled());
        c.set_enabled(true);
        assert!(c.lookup_pool(1).is_none(), "pre-disable entries are stale");
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = TransStats { spolb_hits: 1, svalb_misses: 2, ..TransStats::default() };
        let b = TransStats { spolb_hits: 3, pool_epoch_bumps: 4, ..TransStats::default() };
        a.merge(&b);
        assert_eq!(a.spolb_hits, 4);
        assert_eq!(a.svalb_misses, 2);
        assert_eq!(a.pool_epoch_bumps, 4);
    }
}
