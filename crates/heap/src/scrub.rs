//! The online scrubber: a patrol worker that walks a [`SharedPool`]'s CRC
//! sidecar oldest-first, verifies sealed cold pages, refreshes (rewrites
//! in place) pages nearing the end of their decay window, and routes
//! detected corruption through the quarantine → salvage → reseal path.
//!
//! The scrubber is deliberately *passive*: it owns no thread. The caller
//! — the endurance harness's dedicated scrubber participant on the
//! `utpr-qc::sched` turnstile, or a mutator donating idle turns — asks
//! [`Scrubber::step`] at its own yield points, so every interleaving with
//! mutator traffic is seeded and replayable under `UTPR_QC_SEED`. Each
//! step charges its modelled cost to the pool's scrub-work column
//! ([`SharedPool::note_scrub_work`]), which is what the endurance report's
//! scrub-overhead figure is computed from.
//!
//! Protocol per step (see DESIGN.md §13):
//!
//! 1. If the media clock has not reached the next patrol due-tick, do
//!    nothing (cheap idle poll).
//! 2. Otherwise run one [`SharedPool::scrub_batch`]: up to
//!    [`ScrubConfig::batch_pages`] sealed cold pages, oldest first.
//!    Clean young pages cost a verify; pages at or past
//!    [`ScrubConfig::refresh_age`] are reprogrammed in place (age resets,
//!    wear accrues); checksum mismatches quarantine the pool.
//! 3. A quarantined pool is repaired with [`Scrubber::repair`]:
//!    [`SharedPool::salvage`] walks the damage, the repair cost is charged
//!    to the media clock (*before* the verify — a clock advance can inject
//!    fresh decay, which only a later verify can catch), then `verify_all`
//!    detects and accounts every stale flip, then
//!    [`SharedPool::reseal_all`] blesses the surviving image, then the
//!    quarantine lifts. The salvage accounting accumulates into
//!    [`ScrubStats::salvage`] via the same [`SalvageStats`] the corruption
//!    bench reports, so the two paths can never diverge on what
//!    "recovered" means.

use crate::alloc::SalvageStats;
use crate::integrity::PageVerdict;
use crate::shard::SharedPool;

/// Modelled work units one page verification costs the scrubber.
pub const VERIFY_UNITS: u64 = 256;
/// Modelled work units one in-place page refresh (reprogram) costs.
pub const REFRESH_UNITS: u64 = 512;

/// Patrol parameters of one [`Scrubber`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Sealed pages visited per patrol batch.
    pub batch_pages: usize,
    /// A clean page at or past this age (ticks since last reprogram) is
    /// preventively rewritten. Choose it well inside the decay window:
    /// pages older than this are the ones the decay lottery is winning
    /// against.
    pub refresh_age: u64,
    /// Media-clock ticks between patrol batches.
    pub interval_ticks: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig { batch_pages: 64, refresh_age: 16, interval_ticks: 4 }
    }
}

/// Lifetime counters of one scrubber.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Patrol batches that actually ran (due-tick reached).
    pub batches: u64,
    /// Pages visited across all batches.
    pub pages_scanned: u64,
    /// Pages verified clean and young.
    pub pages_clean: u64,
    /// Pages preventively rewritten before their decay window expired —
    /// the "rescued" column of the endurance report.
    pub pages_refreshed: u64,
    /// Pages whose checksum mismatched (each quarantined its pool).
    pub pages_quarantined: u64,
    /// Quarantine → salvage → reseal episodes completed.
    pub repairs: u64,
    /// Accumulated recovered-vs-lost accounting across all repairs.
    pub salvage: SalvageStats,
}

/// The passive patrol worker. One per pool; drive it from whichever
/// schedule-controlled thread the harness dedicates to scrubbing.
#[derive(Clone, Copy, Debug)]
pub struct Scrubber {
    cfg: ScrubConfig,
    next_due: u64,
    stats: ScrubStats,
}

impl Scrubber {
    /// A scrubber that first patrols at tick `cfg.interval_ticks`.
    #[must_use]
    pub fn new(cfg: ScrubConfig) -> Scrubber {
        Scrubber { cfg, next_due: cfg.interval_ticks, stats: ScrubStats::default() }
    }

    /// The patrol parameters.
    #[must_use]
    pub fn config(&self) -> ScrubConfig {
        self.cfg
    }

    /// Lifetime counters so far.
    #[must_use]
    pub fn stats(&self) -> ScrubStats {
        self.stats
    }

    /// Whether the next patrol batch is due at media-clock `tick`.
    #[must_use]
    pub fn due(&self, tick: u64) -> bool {
        tick >= self.next_due
    }

    /// One scrubber turn: runs a patrol batch if due, charging modelled
    /// verify/refresh cost to the pool's scrub-work column. Returns the
    /// batch's verdicts (empty when not due or the plane is off).
    pub fn step(&mut self, pool: &SharedPool) -> Vec<(u64, PageVerdict)> {
        if !pool.retention_enabled() || !self.due(pool.media_tick()) {
            return Vec::new();
        }
        let verdicts = pool.scrub_batch(self.cfg.batch_pages, self.cfg.refresh_age);
        self.stats.batches += 1;
        let mut cost = 0u64;
        for (_, v) in &verdicts {
            self.stats.pages_scanned += 1;
            cost += VERIFY_UNITS;
            match v {
                PageVerdict::Clean => self.stats.pages_clean += 1,
                PageVerdict::Repaired => {
                    self.stats.pages_refreshed += 1;
                    cost += REFRESH_UNITS;
                }
                PageVerdict::Quarantined => self.stats.pages_quarantined += 1,
            }
        }
        let tick = pool.note_scrub_work(cost.max(VERIFY_UNITS));
        self.next_due = tick + self.cfg.interval_ticks;
        verdicts
    }

    /// Repairs a quarantined pool: salvage walk, repair cost charged to
    /// the media clock, full verify (detect and account every stale flip —
    /// including any the clock advance just injected — *before* anything
    /// is blessed), reseal of the surviving image, quarantine release.
    /// Returns the pass's
    /// recovered-vs-lost accounting, also accumulated into
    /// [`ScrubStats::salvage`]. No-op returning zeroes when the pool is
    /// not quarantined.
    pub fn repair(&mut self, pool: &SharedPool) -> SalvageStats {
        if pool.quarantined_page().is_none() {
            return SalvageStats::default();
        }
        // Salvage walks first (read-only), then the modelled repair cost
        // is charged *before* the verify: advancing the media clock can
        // itself inject fresh decay, so the charge must precede a verify
        // pass — charging after reseal would strike pages no verify ever
        // re-reads, and the last repair of a run would leak silent flips.
        // The cost scales with the resident pages the reseal reprograms
        // (one verify + one rewrite each), the same units the patrol pays.
        let report = pool.salvage();
        let stats = report.stats();
        pool.note_scrub_work(pool.resident_pages() * (VERIFY_UNITS + REFRESH_UNITS));
        pool.verify_all();
        pool.reseal_all();
        pool.release_quarantine();
        self.stats.repairs += 1;
        self.stats.salvage.merge(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::pagestore::PAGE_SIZE;
    use crate::retain::RetentionConfig;

    fn pool_with_data() -> std::sync::Arc<SharedPool> {
        let p = SharedPool::create("scrubber", 1 << 20, 4).unwrap();
        p.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 100 });
        let a = p.alloc_central(PAGE_SIZE * 4).unwrap();
        for i in 0..256u64 {
            p.write_u64(a + i * 8, i ^ 0xabcd);
        }
        p
    }

    #[test]
    fn scrubber_waits_for_its_due_tick_then_patrols() {
        let p = pool_with_data();
        let mut s = Scrubber::new(ScrubConfig { batch_pages: 8, refresh_age: 1000, interval_ticks: 4 });
        assert!(s.step(&p).is_empty(), "tick 0: not due");
        p.note_work(100 * 6); // past the first due tick; pages seal
        let verdicts = s.step(&p);
        assert!(!verdicts.is_empty());
        assert!(verdicts.iter().all(|(_, v)| *v == PageVerdict::Clean));
        let st = s.stats();
        assert_eq!(st.batches, 1);
        assert_eq!(st.pages_clean, st.pages_scanned);
        let (_, scrub_work) = p.media_work();
        assert_eq!(scrub_work, st.pages_scanned * VERIFY_UNITS, "verify cost booked");
        assert!(s.step(&p).is_empty(), "not due again until the next interval");
    }

    #[test]
    fn scrubber_refreshes_aging_pages_preventing_decay_loss() {
        let p = pool_with_data();
        let mut s = Scrubber::new(ScrubConfig { batch_pages: 64, refresh_age: 10, interval_ticks: 2 });
        p.note_work(100 * 20); // age well past refresh_age
        let verdicts = s.step(&p);
        assert!(verdicts.iter().all(|(_, v)| *v == PageVerdict::Repaired), "{verdicts:?}");
        assert_eq!(s.stats().pages_refreshed, verdicts.len() as u64);
        // Refreshed pages are young: with a hot decay law, several more
        // intervals pass without a flip only because ages stay low.
        p.set_faults(FaultPlan::disabled().with_decay(3, 2_000_000));
        for _ in 0..30 {
            p.note_work(100 * 2);
            s.step(&p);
            if p.quarantined_page().is_some() {
                s.repair(&p);
            }
        }
        // End-of-soak protocol: a final full verify turns every latent
        // flip (e.g. one injected by the clock advancing *after* the last
        // patrol batch) into a detected one. Only then is the
        // zero-silent-corruption invariant checkable.
        p.verify_all();
        let (injected, detected, cancelled) = p.media_flips();
        assert_eq!(injected, detected + cancelled, "any live flip the lottery won was caught, none silent");
    }

    #[test]
    fn quarantine_routes_through_repair_with_shared_salvage_accounting() {
        let p = pool_with_data();
        let mut s = Scrubber::new(ScrubConfig { batch_pages: 64, refresh_age: u64::MAX, interval_ticks: 1 });
        p.note_work(100 * 4);
        // Plant a flip on a sealed page, then let the patrol find it.
        let page = {
            let sealed = p.scrub_batch(1, u64::MAX); // oldest page, clean
            sealed[0].0
        };
        assert!(p.corrupt_bit(page * PAGE_SIZE + 100, 5));
        p.note_work(100);
        let verdicts = s.step(&p);
        assert!(verdicts.iter().any(|(pg, v)| *pg == page && *v == PageVerdict::Quarantined));
        assert_eq!(p.quarantined_page(), Some(page));
        let pass = s.repair(&p);
        assert!(pass.blocks_recovered > 0);
        assert_eq!(pass.lost_bytes, 0, "a single bit flip breaks no block framing");
        assert!(p.quarantined_page().is_none());
        let st = s.stats();
        assert_eq!(st.repairs, 1);
        assert_eq!(st.salvage, pass, "scrubber accumulates the same accounting it returned");
        let (i, d, c) = p.media_flips();
        assert_eq!(i, d + c, "zero silent corruption after repair");
        // Repair on a healthy pool is a no-op.
        assert_eq!(s.repair(&p), SalvageStats::default());
        assert_eq!(s.stats().repairs, 1);
    }
}
