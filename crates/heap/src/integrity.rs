//! Media-integrity layer: CRC32 page sidecars, versioned pool headers, and
//! scrubbing.
//!
//! The crash model in [`crate::faults`] covers *ordering* failures — writes
//! that never landed or landed torn. This module covers *media* failures:
//! bits that decay after they were durably written. No write-ordering
//! discipline defends against those; they have to be detected. The defense
//! here is the classic storage-stack one:
//!
//! - every pool page carries a CRC32 in a **sidecar** (simulating the
//!   out-of-band metadata an NVM controller or DIMM ECC region would hold);
//! - CRCs are *sealed* at quiesce points — [`crate::AddressSpace::restart`]
//!   (power cycle) and [`crate::AddressSpace::detach`] — and *verified* on
//!   re-attach, so corruption is caught before any read returns garbage;
//! - a [`scrub`](crate::pool::PoolStore::scrub) pass re-verifies sealed
//!   pages on demand, the background patrol read of real devices;
//! - the pool header itself is versioned (magic, format version, size,
//!   header CRC) and validated by [`crate::alloc::Region::open`].
//!
//! Detection degrades gracefully instead of panicking: a failed page
//! quarantines its pool ([`crate::pool::PoolStore::quarantine`]) so normal
//! access returns [`crate::HeapError::MediaCorruption`], while the salvage
//! path ([`crate::alloc::Region::salvage`]) re-walks allocator block
//! headers/footers to enumerate what is still intact.
//!
//! The CRC32 is hand-rolled (reflected polynomial `0xEDB88320`, the
//! IEEE/zlib one) per the workspace's zero-dependency policy.

use crate::addr::PoolId;
use std::collections::HashMap;

/// Current on-media pool format version, stored in the pool header and
/// checked on open. Version 1 was the unversioned PR-3 layout; version 2
/// added the versioned header word itself.
pub const FORMAT_VERSION: u32 = 2;

/// Whether the pool store maintains per-page checksums.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No sidecar: writes are cheapest, media decay is silent. Kept for
    /// the CRC-overhead baseline measurement.
    Off,
    /// CRC32 sidecar per page, sealed at quiesce points and verified on
    /// attach (the default).
    #[default]
    Crc,
}

const CRC_POLY: u32 = 0xEDB8_8320;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE, reflected) of `bytes`.
///
/// # Examples
///
/// ```
/// use utpr_heap::integrity::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[inline]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// A pool's CRC sidecar: page number → checksum of the page as last sealed.
#[derive(Clone, Debug, Default)]
pub struct PageCrcs {
    map: HashMap<u64, u32>,
}

impl PageCrcs {
    /// An empty sidecar.
    pub fn new() -> Self {
        PageCrcs::default()
    }

    /// Records `page`'s checksum.
    pub fn seal(&mut self, page: u64, crc: u32) {
        self.map.insert(page, crc);
    }

    /// The sealed checksum of `page`, if it has one.
    #[inline]
    pub fn get(&self, page: u64) -> Option<u32> {
        self.map.get(&page).copied()
    }

    /// Sealed page numbers, sorted (deterministic verification order).
    pub fn sealed_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.map.keys().copied().collect();
        pages.sort_unstable();
        pages
    }

    /// Number of sealed pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is sealed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every sealed checksum.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Per-page outcome of one scrub visit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageVerdict {
    /// Checksum matched; no action needed.
    Clean,
    /// Checksum matched but the page was past its refresh age, so it was
    /// preventively rewritten (reprogrammed in place), resetting its decay
    /// clock before the decay window could expire.
    Repaired,
    /// Checksum mismatched: the page's pool is quarantined and must go
    /// through the salvage path.
    Quarantined,
}

/// Classifies sealed pages against their sidecar checksums — the single
/// verdict kernel shared by [`crate::pool::PoolStore::scrub`] and the
/// online scrubber ([`crate::scrub::Scrubber`]), so both paths agree on
/// what "clean / repaired / quarantined" means.
///
/// `pages` yields `(page_number, sealed_crc, page_bytes)` — `None` bytes
/// mean the page was never materialized and verifies as all-zero.
/// `refresh_due(page)` asks whether a *clean* page should be refreshed;
/// callers without age information pass `|_| false` and never see
/// [`PageVerdict::Repaired`]. The caller applies the verdicts (rewrite,
/// quarantine); this kernel only decides them.
pub fn classify_pages<'a, I, F>(pages: I, mut refresh_due: F) -> Vec<(u64, PageVerdict)>
where
    I: Iterator<Item = (u64, u32, Option<&'a [u8]>)>,
    F: FnMut(u64) -> bool,
{
    const ZERO_PAGE: [u8; crate::pagestore::PAGE_SIZE as usize] =
        [0u8; crate::pagestore::PAGE_SIZE as usize];
    pages
        .map(|(page, sealed, bytes)| {
            let actual = crc32(bytes.unwrap_or(&ZERO_PAGE));
            let verdict = if actual != sealed {
                PageVerdict::Quarantined
            } else if refresh_due(page) {
                PageVerdict::Repaired
            } else {
                PageVerdict::Clean
            };
            (page, verdict)
        })
        .collect()
}

/// Result of scrubbing one pool.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolScrub {
    /// Sealed pages whose checksums were re-verified.
    pub pages_scanned: u64,
    /// Bytes covered by the scan.
    pub bytes_scanned: u64,
    /// First page that failed verification, if any (the pool is then
    /// quarantined).
    pub corrupt_page: Option<u64>,
    /// Per-page verdict of every sealed page visited, in page order.
    pub verdicts: Vec<(u64, PageVerdict)>,
}

/// Result of scrubbing a whole pool store.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Pools visited.
    pub pools: u64,
    /// Sealed pages verified across all pools.
    pub pages_scanned: u64,
    /// Bytes covered by the scan.
    pub bytes_scanned: u64,
    /// Every `(pool, page)` that failed verification; those pools are now
    /// quarantined.
    pub corrupt: Vec<(PoolId, u64)>,
    /// Per-page verdicts across all pools, in (pool, page) order.
    pub verdicts: Vec<(PoolId, u64, PageVerdict)>,
}

impl ScrubReport {
    /// True when every verified page matched its sealed checksum.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip_in_a_page() {
        let mut page = vec![0u8; 4096];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let sealed = crc32(&page);
        for probe in [0usize, 1, 511, 4095] {
            for bit in 0..8 {
                page[probe] ^= 1 << bit;
                assert_ne!(crc32(&page), sealed, "flip at {probe}:{bit} undetected");
                page[probe] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&page), sealed);
    }

    #[test]
    fn classify_pages_issues_all_three_verdicts() {
        let good = vec![7u8; 4096];
        let bad = vec![8u8; 4096];
        let pages = vec![
            (0u64, crc32(&good), Some(good.as_slice())), // clean
            (1u64, crc32(&good), Some(good.as_slice())), // clean but stale -> repaired
            (2u64, crc32(&good), Some(bad.as_slice())),  // mismatch -> quarantined
            (3u64, crc32(&[0u8; 4096]), None),           // unmaterialized verifies as zero
        ];
        let verdicts = classify_pages(pages.into_iter(), |p| p == 1);
        assert_eq!(
            verdicts,
            vec![
                (0, PageVerdict::Clean),
                (1, PageVerdict::Repaired),
                (2, PageVerdict::Quarantined),
                (3, PageVerdict::Clean),
            ]
        );
    }

    #[test]
    fn sidecar_round_trips_and_orders_pages() {
        let mut s = PageCrcs::new();
        assert!(s.is_empty());
        s.seal(9, 0xAA);
        s.seal(2, 0xBB);
        s.seal(9, 0xCC); // reseal overwrites
        assert_eq!(s.get(9), Some(0xCC));
        assert_eq!(s.get(3), None);
        assert_eq!(s.sealed_pages(), vec![2, 9]);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }
}
