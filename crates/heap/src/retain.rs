//! Time-based retention model: a modelled media clock plus per-page
//! age/write-count accounting (DESIGN.md §13).
//!
//! Real NVM cells decay: the probability that a cell has lost its value
//! grows with the time since it was last programmed, and endurance wear
//! grows with the number of programs. Persistent-data retention models
//! (Wang & Tuck) fold both into per-page state the controller maintains
//! anyway. This module is the deterministic analogue:
//!
//! * [`WearTable`] — an llfree-style compact page-state table: one small
//!   record per page (`writes`, `last_rewrite` tick), flat-indexed by page
//!   number, living *alongside* the data planes (next to
//!   [`crate::shard::SharedPool`]'s stripes for the shared heap, inside
//!   [`crate::space::AddressSpace`] for local pools) — never inside the
//!   persistent image itself.
//! * A **media clock** in ticks. The clock only ever advances from
//!   modelled work units ([`RetentionConfig::work_per_tick`]) or explicit
//!   tick counts — never from wall time — so every decay outcome is a pure
//!   function of `(seed, schedule)` and replays bit-identically under
//!   `UTPR_QC_SEED`.
//! * [`decay_draw`] — the seeded per-(page, tick) flip lottery whose
//!   probability is `age_since_last_rewrite × rate`, the decay law
//!   [`crate::FaultPlan::with_decay`] configures.
//!
//! Flips strike only *sealed cold* pages: a page with a CRC sidecar entry
//! and no dirty bit. Hot (dirty) pages are modelled as freshly programmed
//! — their cells have no age to decay — and unsealed pages have no
//! reference checksum against which corruption could ever be *detected*,
//! so injecting there would only test the oracle, not the system.

use crate::faults::splitmix64;
use crate::pagestore::PAGE_SIZE;

/// Probability scale of the decay lottery: rates are parts-per-billion of
/// flip probability per tick of page age.
pub const DECAY_SCALE: u64 = 1_000_000_000;

/// Mechanical knobs of the retention machinery (the decay *law* — seed and
/// rate — travels in [`crate::FaultPlan::with_decay`] instead, so one plan
/// describes the whole fault model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetentionConfig {
    /// A dirty page colder than this many ticks (no rewrite for
    /// `seal_lag` ticks) is sealed — checksummed into the CRC sidecar and
    /// its dirty bit cleared — at the next clock tick, modelling the
    /// controller checkpointing quiesced lines.
    pub seal_lag: u64,
    /// Modelled work units (cycles) per media-clock tick.
    pub work_per_tick: u64,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        RetentionConfig { seal_lag: 2, work_per_tick: 1 << 20 }
    }
}

/// Per-page wear/age record: 16 bytes, flat-indexed — the compact
/// page-state-table shape (llfree keeps its per-frame counters in exactly
/// such a flat side array).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageWear {
    /// Program (write) operations that touched the page — endurance wear.
    pub writes: u64,
    /// Media-clock tick of the last program; age = now − this.
    pub last_rewrite: u64,
}

/// The compact page-state table plus the media clock it is aged against.
#[derive(Clone, Debug)]
pub struct WearTable {
    tick: u64,
    pages: Vec<PageWear>,
}

impl WearTable {
    /// A table over `pages` zero-aged, zero-worn pages at tick 0.
    #[must_use]
    pub fn new(pages: usize) -> WearTable {
        WearTable { tick: 0, pages: vec![PageWear::default(); pages] }
    }

    /// Current media-clock tick.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the clock to `tick` (monotone; lower values are ignored).
    pub fn advance_to(&mut self, tick: u64) {
        self.tick = self.tick.max(tick);
    }

    /// Pages tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the table tracks no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Records one program of `page` at the current tick (out-of-range
    /// pages are ignored — the table is sized from the pool geometry).
    pub fn note_write(&mut self, page: u64) {
        if let Some(w) = self.pages.get_mut(page as usize) {
            w.writes += 1;
            w.last_rewrite = self.tick;
        }
    }

    /// The wear record of `page` (default record when out of range).
    #[must_use]
    pub fn wear(&self, page: u64) -> PageWear {
        self.pages.get(page as usize).copied().unwrap_or_default()
    }

    /// Ticks since `page` was last programmed.
    #[must_use]
    pub fn age(&self, page: u64) -> u64 {
        self.tick.saturating_sub(self.wear(page).last_rewrite)
    }

    /// Sorts `pages` oldest-first (stalest `last_rewrite` first, page
    /// number breaking ties) — the patrol order of the online scrubber.
    pub fn oldest_first(&self, pages: &mut [u64]) {
        pages.sort_by_key(|&p| (self.wear(p).last_rewrite, p));
    }

    /// Flat copy of the per-page write counts (the wear-aware allocator
    /// scores candidate blocks against this without holding the table's
    /// lock across the free-list walk).
    #[must_use]
    pub fn write_counts(&self) -> Vec<u64> {
        self.pages.iter().map(|w| w.writes).collect()
    }

    /// Wear histogram summary over the pages that saw any write at all.
    #[must_use]
    pub fn stats(&self) -> WearStats {
        let mut s = WearStats::default();
        for w in &self.pages {
            if w.writes == 0 {
                continue;
            }
            s.pages += 1;
            s.total += w.writes;
            s.min = if s.pages == 1 { w.writes } else { s.min.min(w.writes) };
            s.max = s.max.max(w.writes);
        }
        s
    }
}

/// Summary of the write-count histogram over worn (written) pages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WearStats {
    /// Pages with at least one write.
    pub pages: u64,
    /// Minimum writes among worn pages.
    pub min: u64,
    /// Maximum writes among worn pages.
    pub max: u64,
    /// Total writes across worn pages.
    pub total: u64,
}

impl WearStats {
    /// Mean writes per worn page.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.total as f64 / self.pages as f64
        }
    }

    /// Histogram flatness as max/mean — 1.0 is a perfectly level wear
    /// profile, large values mean a few pages soak up the endurance
    /// budget. (Report-only: never folded into checksums.)
    #[must_use]
    pub fn flatness(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            1.0
        } else {
            self.max as f64 / mean
        }
    }
}

/// The decay lottery for one `(page, tick)` cell: flips with probability
/// `min(age × ppb, DECAY_SCALE) / DECAY_SCALE`, positions drawn from the
/// same hash. Pure in its arguments — the whole retention fault model
/// replays from `(seed, schedule)`.
///
/// Returns `Some((in_page_offset, bit))` when the page decays this tick.
#[must_use]
pub fn decay_draw(seed: u64, page: u64, tick: u64, age: u64, ppb: u64) -> Option<(u64, u8)> {
    let threshold = age.saturating_mul(ppb).min(DECAY_SCALE);
    if threshold == 0 {
        return None;
    }
    let h = splitmix64(
        seed ^ splitmix64(page.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tick.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)),
    );
    if h % DECAY_SCALE >= threshold {
        return None;
    }
    let in_page = splitmix64(h) % PAGE_SIZE;
    let bit = (splitmix64(h ^ 0x5c) % 8) as u8;
    Some((in_page, bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_table_tracks_writes_and_age() {
        let mut w = WearTable::new(4);
        w.note_write(1);
        w.advance_to(10);
        w.note_write(1);
        w.note_write(3);
        w.advance_to(25);
        assert_eq!(w.wear(1).writes, 2);
        assert_eq!(w.wear(1).last_rewrite, 10);
        assert_eq!(w.age(1), 15);
        assert_eq!(w.age(0), 25, "never-written pages age from tick 0");
        assert_eq!(w.wear(99), PageWear::default(), "out of range is inert");
        w.note_write(99); // ignored, no panic
        let mut pages = vec![3, 0, 1];
        w.oldest_first(&mut pages);
        assert_eq!(pages, vec![0, 1, 3], "stalest rewrite first, page breaks ties");
    }

    #[test]
    fn wear_stats_summarize_only_worn_pages() {
        let mut w = WearTable::new(8);
        for _ in 0..6 {
            w.note_write(2);
        }
        w.note_write(5);
        let s = w.stats();
        assert_eq!((s.pages, s.min, s.max, s.total), (2, 1, 6, 7));
        assert!((s.mean() - 3.5).abs() < 1e-9);
        assert!((s.flatness() - 6.0 / 3.5).abs() < 1e-9);
        assert_eq!(WearTable::new(3).stats(), WearStats::default());
        assert!((WearStats::default().flatness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decay_draw_is_deterministic_and_age_monotone() {
        // Zero age or zero rate never flips.
        assert_eq!(decay_draw(1, 0, 5, 0, 1_000), None);
        assert_eq!(decay_draw(1, 0, 5, 1_000, 0), None);
        // Same arguments, same outcome.
        for page in 0..64 {
            assert_eq!(decay_draw(9, page, 77, 500, 1024), decay_draw(9, page, 77, 500, 1024));
        }
        // At threshold saturation every page flips.
        let (off, bit) = decay_draw(3, 7, 1, u64::MAX, u64::MAX).expect("saturated");
        assert!(off < PAGE_SIZE);
        assert!(bit < 8);
        // Flip frequency grows with age: count flips over many cells.
        let count = |age: u64| {
            (0..4_000u64)
                .filter(|&p| decay_draw(42, p, 123, age, 1_000_000).is_some())
                .count()
        };
        let (young, old) = (count(10), count(400));
        assert!(young < old, "age must raise flip probability ({young} vs {old})");
        // Rough calibration: p = age*ppb/1e9 => 400*1e6/1e9 = 0.4.
        assert!((old as f64 / 4_000.0 - 0.4).abs() < 0.05, "old rate {old}");
    }
}
