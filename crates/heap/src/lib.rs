//! # utpr-heap — simulated NVM/DRAM memory substrate
//!
//! This crate models the memory system underneath *user-transparent
//! persistent references* (Ye et al., ISCA 2021): a 48-bit virtual address
//! space split into a DRAM half and an NVM half (bit 47), persistent memory
//! object pools that attach at OS-chosen (and changing) base addresses, and
//! allocators whose metadata lives inside the managed memory so that pools
//! are genuinely reopenable after a crash.
//!
//! The paper evaluates on real hardware plus the Sniper simulator; here the
//! whole memory system is simulated so that pool relocation, detach faults,
//! and crash restarts can be exercised deterministically in tests.
//!
//! ## Quick start
//!
//! ```
//! use utpr_heap::AddressSpace;
//!
//! let mut space = AddressSpace::new(42);
//! let pool = space.create_pool("accounts", 1 << 20)?;
//!
//! // Allocate persistently; the RelLoc stays valid across restarts.
//! let loc = space.pmalloc(pool, 64)?;
//! let va = space.ra2va(loc)?;
//! space.write_u64(va, 123)?;
//!
//! space.restart();               // crash: DRAM gone, pools survive
//! space.open_pool("accounts")?;  // re-attach (likely at a new base)
//! let va_after = space.ra2va(loc)?;
//! assert_eq!(space.read_u64(va_after)?, 123);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

pub mod addr;
pub mod alloc;
pub mod error;
pub mod faults;
pub mod integrity;
pub mod lookaside;
pub mod pagestore;
pub mod pool;
pub mod retain;
pub mod scrub;
pub mod shard;
pub mod space;
pub mod txn;

pub use addr::{PoolId, RelLoc, VirtAddr};
pub use alloc::{Region, SalvageBlock, SalvageReport, SalvageStats};
pub use error::{HeapError, Result};
pub use faults::{crash_and_recover, inject_bitflips, select_points, FaultPlan, GateVerdict, Recovery};
pub use integrity::{classify_pages, crc32, IntegrityMode, PageVerdict, PoolScrub, ScrubReport, FORMAT_VERSION};
pub use retain::{decay_draw, PageWear, RetentionConfig, WearStats, WearTable, DECAY_SCALE};
pub use scrub::{ScrubConfig, ScrubStats, Scrubber};
pub use pagestore::PageStore;
pub use pool::{PoolImage, PoolStore};
pub use shard::{SharedPool, SlabId};
pub use lookaside::TransStats;
pub use txn::{UndoLog, MAX_LOG_SLOTS};
pub use space::{AddressSpace, Attachment, FlushModel};
