//! Sparse byte storage backing simulated memory.
//!
//! Both the DRAM half of the address space and each persistent pool are
//! backed by a [`PageStore`]: a sparse map from page number to a fixed-size
//! page of bytes. Pages materialize on first write, so a multi-gigabyte
//! region costs memory proportional to the bytes actually touched.
//!
//! This sits on the hottest path of the whole tree — every simulated load
//! and store of every benchmark run funnels through it — so the layout is
//! tuned for the common case: pages live in a slab arena (`Vec<Box<[u8]>>`)
//! with a `HashMap` from page number to slab slot, and a one-entry
//! last-page memo lets consecutive accesses to the same page (the
//! overwhelmingly common pattern: a node's fields, the allocator header,
//! a stack frame) skip the hash probe entirely. `read_u64`/`write_u64`
//! additionally take an in-page fast path that avoids the generic
//! multi-page copy loop whenever the word does not straddle a page
//! boundary.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Size of a backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sentinel page number marking the last-page memo invalid. No reachable
/// access maps to it: offsets near `u64::MAX` would need a page number of
/// `u64::MAX / PAGE_SIZE`, far below this.
const NO_PAGE: u64 = u64::MAX;

/// Sparse, zero-initialized byte storage indexed by absolute offsets.
///
/// Reads of never-written bytes return zero, mirroring zero-filled demand
/// paging.
///
/// # Examples
///
/// ```
/// use utpr_heap::pagestore::PageStore;
///
/// let mut s = PageStore::new();
/// s.write_u64(40, 0xdead_beef);
/// assert_eq!(s.read_u64(40), 0xdead_beef);
/// assert_eq!(s.read_u64(4096 * 10), 0);
/// ```
#[derive(Clone, Debug)]
pub struct PageStore {
    /// Page number -> slot in `slabs`. Probed once per page, and only when
    /// the memo misses.
    index: HashMap<u64, u32>,
    /// The materialized pages. Slots are never freed individually (only
    /// `clear` drops them), so memoized slot numbers stay valid.
    slabs: Vec<Box<[u8]>>,
    /// Slot -> page number, the reverse of `index` (kept so dirty-page and
    /// resident-page enumeration never walks the hash map).
    slot_pages: Vec<u64>,
    /// Per-slot dirty bitmap, maintained only while `track_dirty` is set.
    /// Slot `s` lives at bit `s % 64` of word `s / 64`.
    dirty: Vec<u64>,
    /// Whether writes mark their page dirty (the integrity layer's hook:
    /// one predictable branch on the write path when off).
    track_dirty: bool,
    /// Last page touched: `(page_no, slot)`. A `Cell` so read paths can
    /// refresh it through `&self`; the store stays `Send` (each simulated
    /// machine owns its memory privately) but is intentionally not `Sync`.
    last: Cell<(u64, u32)>,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PageStore {
            index: HashMap::new(),
            slabs: Vec::new(),
            slot_pages: Vec::new(),
            dirty: Vec::new(),
            track_dirty: false,
            last: Cell::new((NO_PAGE, 0)),
        }
    }

    /// Number of materialized pages (resident set, in pages).
    pub fn resident_pages(&self) -> usize {
        self.slabs.len()
    }

    /// Resident bytes actually held by the store.
    pub fn resident_bytes(&self) -> u64 {
        self.slabs.len() as u64 * PAGE_SIZE
    }

    /// Drops every page, returning the store to all-zero contents.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slabs.clear();
        self.slot_pages.clear();
        self.dirty.clear();
        self.last.set((NO_PAGE, 0));
    }

    // ---- integrity hooks ---------------------------------------------------

    /// Turns dirty-page tracking on or off. Enabling conservatively marks
    /// every already-resident page dirty (their checksums are unknown).
    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.track_dirty = on;
        if on {
            self.dirty.clear();
            self.dirty.resize(self.slabs.len().div_ceil(64), !0u64);
        } else {
            self.dirty.clear();
        }
    }

    /// Whether writes currently mark their page dirty.
    pub fn dirty_tracking(&self) -> bool {
        self.track_dirty
    }

    #[inline]
    fn mark_dirty(&mut self, slot: u32) {
        if self.track_dirty {
            let word = slot as usize / 64;
            if word >= self.dirty.len() {
                self.dirty.resize(word + 1, 0);
            }
            self.dirty[word] |= 1u64 << (slot % 64);
        }
    }

    /// Page numbers written since the last [`PageStore::clear_dirty`],
    /// sorted. Empty when tracking is off.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .dirty
            .iter()
            .enumerate()
            .flat_map(|(w, bits)| {
                let mut bits = *bits;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                })
            })
            .filter_map(|slot| self.slot_pages.get(slot).copied())
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Forgets all dirty marks (after the pages were checksummed).
    pub fn clear_dirty(&mut self) {
        for w in &mut self.dirty {
            *w = 0;
        }
    }

    /// Whether `page_no` is currently marked dirty. Always `false` when
    /// tracking is off or the page was never materialized.
    pub fn is_dirty(&self, page_no: u64) -> bool {
        let (last_no, last_slot) = self.last.get();
        let slot = if last_no == page_no {
            last_slot
        } else {
            match self.index.get(&page_no) {
                Some(&s) => s,
                None => return false,
            }
        };
        self.dirty
            .get(slot as usize / 64)
            .map_or(false, |w| w & (1u64 << (slot % 64)) != 0)
    }

    /// Forgets the dirty mark of just `page_no` (after that one page was
    /// resealed — the incremental counterpart of [`PageStore::clear_dirty`]).
    pub fn clear_dirty_page(&mut self, page_no: u64) {
        if let Some(&slot) = self.index.get(&page_no) {
            if let Some(w) = self.dirty.get_mut(slot as usize / 64) {
                *w &= !(1u64 << (slot % 64));
            }
        }
    }

    /// Every materialized page number, sorted.
    pub fn resident_page_numbers(&self) -> Vec<u64> {
        let mut pages = self.slot_pages.clone();
        pages.sort_unstable();
        pages
    }

    /// The raw bytes of page `page_no`, or `None` if never written.
    pub fn page_bytes(&self, page_no: u64) -> Option<&[u8]> {
        self.page(page_no)
    }

    /// Flips bit `bit` of the byte at `offset` — *without* marking the page
    /// dirty, so the integrity layer's sealed checksum goes stale, exactly
    /// as silent media decay would leave it. Returns `false` (no flip) when
    /// the page was never materialized.
    pub fn corrupt_bit(&mut self, offset: u64, bit: u8) -> bool {
        let Some(&slot) = self.index.get(&(offset / PAGE_SIZE)) else {
            return false;
        };
        self.slabs[slot as usize][(offset % PAGE_SIZE) as usize] ^= 1 << (bit % 8);
        true
    }

    /// The page backing `page_no`, or `None` if it was never written.
    /// Refreshes the last-page memo on an index hit.
    #[inline]
    fn page(&self, page_no: u64) -> Option<&[u8]> {
        let (last_no, last_slot) = self.last.get();
        if last_no == page_no {
            return Some(&self.slabs[last_slot as usize]);
        }
        let slot = *self.index.get(&page_no)?;
        self.last.set((page_no, slot));
        Some(&self.slabs[slot as usize])
    }

    /// The page backing `page_no`, materializing it zero-filled if absent.
    /// Every caller is a write path, so the page is marked dirty here.
    #[inline]
    fn page_mut(&mut self, page_no: u64) -> &mut [u8] {
        let (last_no, last_slot) = self.last.get();
        if last_no == page_no {
            self.mark_dirty(last_slot);
            return &mut self.slabs[last_slot as usize];
        }
        let slot = match self.index.entry(page_no) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let slot = u32::try_from(self.slabs.len()).expect("page count fits in u32");
                self.slabs.push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                self.slot_pages.push(page_no);
                *v.insert(slot)
            }
        };
        self.last.set((page_no, slot));
        self.mark_dirty(slot);
        &mut self.slabs[slot as usize]
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.page(page_no) {
                Some(p) => buf[done..done + take].copy_from_slice(&p[in_page..in_page + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
    }

    /// Writes `buf` starting at `offset`, materializing pages as needed.
    pub fn write(&mut self, offset: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            let page = self.page_mut(page_no);
            page[in_page..in_page + take].copy_from_slice(&buf[done..done + take]);
            done += take;
        }
    }

    /// Reads a little-endian `u64` at `offset`.
    #[inline]
    pub fn read_u64(&self, offset: u64) -> u64 {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 8 <= PAGE_SIZE as usize {
            return match self.page(offset / PAGE_SIZE) {
                Some(p) => u64::from_le_bytes(p[in_page..in_page + 8].try_into().unwrap()),
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `offset`.
    #[inline]
    pub fn write_u64(&mut self, offset: u64, value: u64) {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 8 <= PAGE_SIZE as usize {
            let page = self.page_mut(offset / PAGE_SIZE);
            page[in_page..in_page + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `offset`.
    #[inline]
    pub fn read_u32(&self, offset: u64) -> u32 {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 4 <= PAGE_SIZE as usize {
            return match self.page(offset / PAGE_SIZE) {
                Some(p) => u32::from_le_bytes(p[in_page..in_page + 4].try_into().unwrap()),
                None => 0,
            };
        }
        let mut b = [0u8; 4];
        self.read(offset, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `offset`.
    #[inline]
    pub fn write_u32(&mut self, offset: u64, value: u32) {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 4 <= PAGE_SIZE as usize {
            let page = self.page_mut(offset / PAGE_SIZE);
            page[in_page..in_page + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads one byte at `offset`.
    #[inline]
    pub fn read_u8(&self, offset: u64) -> u8 {
        match self.page(offset / PAGE_SIZE) {
            Some(p) => p[(offset % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte at `offset`.
    #[inline]
    pub fn write_u8(&mut self, offset: u64, value: u8) {
        self.page_mut(offset / PAGE_SIZE)[(offset % PAGE_SIZE) as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = PageStore::new();
        assert_eq!(s.read_u64(0), 0);
        assert_eq!(s.read_u64(123_456_789), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn round_trips_across_page_boundary() {
        let mut s = PageStore::new();
        let off = PAGE_SIZE - 3;
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        s.write(off, &data);
        let mut back = [0u8; 8];
        s.read(off, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn u64_round_trip_is_little_endian() {
        let mut s = PageStore::new();
        s.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(s.read_u8(16), 0x08);
        assert_eq!(s.read_u8(23), 0x01);
        assert_eq!(s.read_u64(16), 0x0102_0304_0506_0708);
    }

    #[test]
    fn u64_straddling_a_page_boundary_round_trips() {
        let mut s = PageStore::new();
        for delta in 1..8 {
            let off = PAGE_SIZE * 7 - delta;
            let v = 0xfeed_f00d_dead_beef_u64.rotate_left(delta as u32);
            s.write_u64(off, v);
            assert_eq!(s.read_u64(off), v, "straddle at -{delta}");
        }
    }

    #[test]
    fn u32_and_u8_accessors() {
        let mut s = PageStore::new();
        s.write_u32(4, 0xaabb_ccdd);
        assert_eq!(s.read_u32(4), 0xaabb_ccdd);
        s.write_u8(4, 0x11);
        assert_eq!(s.read_u32(4), 0xaabb_cc11);
    }

    #[test]
    fn clear_releases_pages() {
        let mut s = PageStore::new();
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 5, 2);
        assert_eq!(s.resident_pages(), 2);
        s.clear();
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read_u64(0), 0);
        // Memo must not resurrect dropped pages: re-write after clear.
        s.write_u64(0, 9);
        assert_eq!(s.read_u64(0), 9);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut s = PageStore::new();
        s.write(10, &[0xff; 16]);
        s.write(14, &[0x00; 4]);
        let mut b = [0u8; 16];
        s.read(10, &mut b);
        assert_eq!(&b[0..4], &[0xff; 4]);
        assert_eq!(&b[4..8], &[0x00; 4]);
        assert_eq!(&b[8..16], &[0xff; 8]);
    }

    #[test]
    fn memo_survives_interleaved_pages_and_clones() {
        let mut s = PageStore::new();
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 3, 2);
        // Alternate to force memo replacement both directions.
        for _ in 0..4 {
            assert_eq!(s.read_u64(0), 1);
            assert_eq!(s.read_u64(PAGE_SIZE * 3), 2);
        }
        let c = s.clone();
        assert_eq!(c.read_u64(0), 1);
        assert_eq!(c.read_u64(PAGE_SIZE * 3), 2);
    }

    #[test]
    fn store_is_send() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<PageStore>();
    }

    #[test]
    fn dirty_tracking_marks_both_memo_paths_and_clears() {
        let mut s = PageStore::new();
        s.write_u64(0, 1); // resident before tracking starts
        s.set_dirty_tracking(true);
        assert_eq!(s.dirty_pages(), vec![0], "pre-existing pages start dirty");
        s.clear_dirty();
        assert!(s.dirty_pages().is_empty());
        s.write_u64(PAGE_SIZE * 4, 2); // miss path
        s.write_u64(PAGE_SIZE * 4 + 8, 3); // memo-hit path
        s.write_u64(8, 4); // index-hit path
        assert_eq!(s.dirty_pages(), vec![0, 4]);
        s.clear_dirty();
        assert!(s.dirty_pages().is_empty());
        assert_eq!(s.resident_page_numbers(), vec![0, 4]);
    }

    #[test]
    fn reads_do_not_dirty_and_tracking_off_is_silent() {
        let mut s = PageStore::new();
        s.set_dirty_tracking(true);
        s.write_u64(0, 7);
        s.clear_dirty();
        let _ = s.read_u64(0);
        assert!(s.dirty_pages().is_empty(), "reads never dirty a page");
        s.set_dirty_tracking(false);
        s.write_u64(PAGE_SIZE, 9);
        assert!(s.dirty_pages().is_empty());
    }

    #[test]
    fn per_page_dirty_query_and_clear() {
        let mut s = PageStore::new();
        s.set_dirty_tracking(true);
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 2, 2);
        assert!(s.is_dirty(0));
        assert!(s.is_dirty(2));
        assert!(!s.is_dirty(1), "unmaterialized page is never dirty");
        s.clear_dirty_page(0);
        assert!(!s.is_dirty(0));
        assert!(s.is_dirty(2), "clearing one page leaves the other");
        assert_eq!(s.dirty_pages(), vec![2]);
        s.clear_dirty_page(99); // absent page: no-op, no panic
        s.set_dirty_tracking(false);
        assert!(!s.is_dirty(2), "tracking off reports clean");
    }

    #[test]
    fn corrupt_bit_flips_without_dirtying() {
        let mut s = PageStore::new();
        s.set_dirty_tracking(true);
        s.write_u64(16, 0b100);
        s.clear_dirty();
        assert!(s.corrupt_bit(16, 2));
        assert_eq!(s.read_u64(16), 0, "bit 2 flipped off");
        assert!(s.dirty_pages().is_empty(), "corruption is silent");
        assert!(!s.corrupt_bit(PAGE_SIZE * 99, 0), "absent page: no flip");
        assert!(s.page_bytes(0).is_some());
        assert!(s.page_bytes(99).is_none());
    }
}
