//! Sparse byte storage backing simulated memory.
//!
//! Both the DRAM half of the address space and each persistent pool are
//! backed by a [`PageStore`]: a sparse map from page number to a fixed-size
//! page of bytes. Pages materialize on first write, so a multi-gigabyte
//! region costs memory proportional to the bytes actually touched.

use std::collections::HashMap;

/// Size of a backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sparse, zero-initialized byte storage indexed by absolute offsets.
///
/// Reads of never-written bytes return zero, mirroring zero-filled demand
/// paging.
///
/// # Examples
///
/// ```
/// use utpr_heap::pagestore::PageStore;
///
/// let mut s = PageStore::new();
/// s.write_u64(40, 0xdead_beef);
/// assert_eq!(s.read_u64(40), 0xdead_beef);
/// assert_eq!(s.read_u64(4096 * 10), 0);
/// ```
#[derive(Clone, Default, Debug)]
pub struct PageStore {
    pages: HashMap<u64, Box<[u8]>>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PageStore { pages: HashMap::new() }
    }

    /// Number of materialized pages (resident set, in pages).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident bytes actually held by the store.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Drops every page, returning the store to all-zero contents.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    fn page_mut(&mut self, page_no: u64) -> &mut [u8] {
        self.pages
            .entry(page_no)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.pages.get(&page_no) {
                Some(p) => buf[done..done + take].copy_from_slice(&p[in_page..in_page + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
    }

    /// Writes `buf` starting at `offset`, materializing pages as needed.
    pub fn write(&mut self, offset: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            let page = self.page_mut(page_no);
            page[in_page..in_page + take].copy_from_slice(&buf[done..done + take]);
            done += take;
        }
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn read_u64(&self, offset: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `offset`.
    pub fn write_u64(&mut self, offset: u64, value: u64) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn read_u32(&self, offset: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(offset, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `offset`.
    pub fn write_u32(&mut self, offset: u64, value: u32) {
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads one byte at `offset`.
    pub fn read_u8(&self, offset: u64) -> u8 {
        let mut b = [0u8; 1];
        self.read(offset, &mut b);
        b[0]
    }

    /// Writes one byte at `offset`.
    pub fn write_u8(&mut self, offset: u64, value: u8) {
        self.write(offset, &[value]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = PageStore::new();
        assert_eq!(s.read_u64(0), 0);
        assert_eq!(s.read_u64(123_456_789), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn round_trips_across_page_boundary() {
        let mut s = PageStore::new();
        let off = PAGE_SIZE - 3;
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        s.write(off, &data);
        let mut back = [0u8; 8];
        s.read(off, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn u64_round_trip_is_little_endian() {
        let mut s = PageStore::new();
        s.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(s.read_u8(16), 0x08);
        assert_eq!(s.read_u8(23), 0x01);
        assert_eq!(s.read_u64(16), 0x0102_0304_0506_0708);
    }

    #[test]
    fn u32_and_u8_accessors() {
        let mut s = PageStore::new();
        s.write_u32(4, 0xaabb_ccdd);
        assert_eq!(s.read_u32(4), 0xaabb_ccdd);
        s.write_u8(4, 0x11);
        assert_eq!(s.read_u32(4), 0xaabb_cc11);
    }

    #[test]
    fn clear_releases_pages() {
        let mut s = PageStore::new();
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 5, 2);
        assert_eq!(s.resident_pages(), 2);
        s.clear();
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read_u64(0), 0);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut s = PageStore::new();
        s.write(10, &[0xff; 16]);
        s.write(14, &[0x00; 4]);
        let mut b = [0u8; 16];
        s.read(10, &mut b);
        assert_eq!(&b[0..4], &[0xff; 4]);
        assert_eq!(&b[4..8], &[0x00; 4]);
        assert_eq!(&b[8..16], &[0xff; 8]);
    }
}
