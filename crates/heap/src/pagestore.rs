//! Sparse byte storage backing simulated memory.
//!
//! Both the DRAM half of the address space and each persistent pool are
//! backed by a [`PageStore`]: a sparse map from page number to a fixed-size
//! page of bytes. Pages materialize on first write, so a multi-gigabyte
//! region costs memory proportional to the bytes actually touched.
//!
//! This sits on the hottest path of the whole tree — every simulated load
//! and store of every benchmark run funnels through it — so the layout is
//! tuned for the common case: pages live in a slab arena (`Vec<Box<[u8]>>`)
//! with a `HashMap` from page number to slab slot, and a one-entry
//! last-page memo lets consecutive accesses to the same page (the
//! overwhelmingly common pattern: a node's fields, the allocator header,
//! a stack frame) skip the hash probe entirely. `read_u64`/`write_u64`
//! additionally take an in-page fast path that avoids the generic
//! multi-page copy loop whenever the word does not straddle a page
//! boundary.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Size of a backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Sentinel page number marking the last-page memo invalid. No reachable
/// access maps to it: offsets near `u64::MAX` would need a page number of
/// `u64::MAX / PAGE_SIZE`, far below this.
const NO_PAGE: u64 = u64::MAX;

/// Sparse, zero-initialized byte storage indexed by absolute offsets.
///
/// Reads of never-written bytes return zero, mirroring zero-filled demand
/// paging.
///
/// # Examples
///
/// ```
/// use utpr_heap::pagestore::PageStore;
///
/// let mut s = PageStore::new();
/// s.write_u64(40, 0xdead_beef);
/// assert_eq!(s.read_u64(40), 0xdead_beef);
/// assert_eq!(s.read_u64(4096 * 10), 0);
/// ```
#[derive(Clone, Debug)]
pub struct PageStore {
    /// Page number -> slot in `slabs`. Probed once per page, and only when
    /// the memo misses.
    index: HashMap<u64, u32>,
    /// The materialized pages. Slots are never freed individually (only
    /// `clear` drops them), so memoized slot numbers stay valid.
    slabs: Vec<Box<[u8]>>,
    /// Last page touched: `(page_no, slot)`. A `Cell` so read paths can
    /// refresh it through `&self`; the store stays `Send` (each simulated
    /// machine owns its memory privately) but is intentionally not `Sync`.
    last: Cell<(u64, u32)>,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PageStore { index: HashMap::new(), slabs: Vec::new(), last: Cell::new((NO_PAGE, 0)) }
    }

    /// Number of materialized pages (resident set, in pages).
    pub fn resident_pages(&self) -> usize {
        self.slabs.len()
    }

    /// Resident bytes actually held by the store.
    pub fn resident_bytes(&self) -> u64 {
        self.slabs.len() as u64 * PAGE_SIZE
    }

    /// Drops every page, returning the store to all-zero contents.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slabs.clear();
        self.last.set((NO_PAGE, 0));
    }

    /// The page backing `page_no`, or `None` if it was never written.
    /// Refreshes the last-page memo on an index hit.
    #[inline]
    fn page(&self, page_no: u64) -> Option<&[u8]> {
        let (last_no, last_slot) = self.last.get();
        if last_no == page_no {
            return Some(&self.slabs[last_slot as usize]);
        }
        let slot = *self.index.get(&page_no)?;
        self.last.set((page_no, slot));
        Some(&self.slabs[slot as usize])
    }

    /// The page backing `page_no`, materializing it zero-filled if absent.
    #[inline]
    fn page_mut(&mut self, page_no: u64) -> &mut [u8] {
        let (last_no, last_slot) = self.last.get();
        if last_no == page_no {
            return &mut self.slabs[last_slot as usize];
        }
        let slot = match self.index.entry(page_no) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let slot = u32::try_from(self.slabs.len()).expect("page count fits in u32");
                self.slabs.push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                *v.insert(slot)
            }
        };
        self.last.set((page_no, slot));
        &mut self.slabs[slot as usize]
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            match self.page(page_no) {
                Some(p) => buf[done..done + take].copy_from_slice(&p[in_page..in_page + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
    }

    /// Writes `buf` starting at `offset`, materializing pages as needed.
    pub fn write(&mut self, offset: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - in_page).min(buf.len() - done);
            let page = self.page_mut(page_no);
            page[in_page..in_page + take].copy_from_slice(&buf[done..done + take]);
            done += take;
        }
    }

    /// Reads a little-endian `u64` at `offset`.
    #[inline]
    pub fn read_u64(&self, offset: u64) -> u64 {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 8 <= PAGE_SIZE as usize {
            return match self.page(offset / PAGE_SIZE) {
                Some(p) => u64::from_le_bytes(p[in_page..in_page + 8].try_into().unwrap()),
                None => 0,
            };
        }
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `offset`.
    #[inline]
    pub fn write_u64(&mut self, offset: u64, value: u64) {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 8 <= PAGE_SIZE as usize {
            let page = self.page_mut(offset / PAGE_SIZE);
            page[in_page..in_page + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `offset`.
    #[inline]
    pub fn read_u32(&self, offset: u64) -> u32 {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 4 <= PAGE_SIZE as usize {
            return match self.page(offset / PAGE_SIZE) {
                Some(p) => u32::from_le_bytes(p[in_page..in_page + 4].try_into().unwrap()),
                None => 0,
            };
        }
        let mut b = [0u8; 4];
        self.read(offset, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `offset`.
    #[inline]
    pub fn write_u32(&mut self, offset: u64, value: u32) {
        let in_page = (offset % PAGE_SIZE) as usize;
        if in_page + 4 <= PAGE_SIZE as usize {
            let page = self.page_mut(offset / PAGE_SIZE);
            page[in_page..in_page + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write(offset, &value.to_le_bytes());
    }

    /// Reads one byte at `offset`.
    #[inline]
    pub fn read_u8(&self, offset: u64) -> u8 {
        match self.page(offset / PAGE_SIZE) {
            Some(p) => p[(offset % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte at `offset`.
    #[inline]
    pub fn write_u8(&mut self, offset: u64, value: u8) {
        self.page_mut(offset / PAGE_SIZE)[(offset % PAGE_SIZE) as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = PageStore::new();
        assert_eq!(s.read_u64(0), 0);
        assert_eq!(s.read_u64(123_456_789), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn round_trips_across_page_boundary() {
        let mut s = PageStore::new();
        let off = PAGE_SIZE - 3;
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        s.write(off, &data);
        let mut back = [0u8; 8];
        s.read(off, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn u64_round_trip_is_little_endian() {
        let mut s = PageStore::new();
        s.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(s.read_u8(16), 0x08);
        assert_eq!(s.read_u8(23), 0x01);
        assert_eq!(s.read_u64(16), 0x0102_0304_0506_0708);
    }

    #[test]
    fn u64_straddling_a_page_boundary_round_trips() {
        let mut s = PageStore::new();
        for delta in 1..8 {
            let off = PAGE_SIZE * 7 - delta;
            let v = 0xfeed_f00d_dead_beef_u64.rotate_left(delta as u32);
            s.write_u64(off, v);
            assert_eq!(s.read_u64(off), v, "straddle at -{delta}");
        }
    }

    #[test]
    fn u32_and_u8_accessors() {
        let mut s = PageStore::new();
        s.write_u32(4, 0xaabb_ccdd);
        assert_eq!(s.read_u32(4), 0xaabb_ccdd);
        s.write_u8(4, 0x11);
        assert_eq!(s.read_u32(4), 0xaabb_cc11);
    }

    #[test]
    fn clear_releases_pages() {
        let mut s = PageStore::new();
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 5, 2);
        assert_eq!(s.resident_pages(), 2);
        s.clear();
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.read_u64(0), 0);
        // Memo must not resurrect dropped pages: re-write after clear.
        s.write_u64(0, 9);
        assert_eq!(s.read_u64(0), 9);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut s = PageStore::new();
        s.write(10, &[0xff; 16]);
        s.write(14, &[0x00; 4]);
        let mut b = [0u8; 16];
        s.read(10, &mut b);
        assert_eq!(&b[0..4], &[0xff; 4]);
        assert_eq!(&b[4..8], &[0x00; 4]);
        assert_eq!(&b[8..16], &[0xff; 8]);
    }

    #[test]
    fn memo_survives_interleaved_pages_and_clones() {
        let mut s = PageStore::new();
        s.write_u64(0, 1);
        s.write_u64(PAGE_SIZE * 3, 2);
        // Alternate to force memo replacement both directions.
        for _ in 0..4 {
            assert_eq!(s.read_u64(0), 1);
            assert_eq!(s.read_u64(PAGE_SIZE * 3), 2);
        }
        let c = s.clone();
        assert_eq!(c.read_u64(0), 1);
        assert_eq!(c.read_u64(PAGE_SIZE * 3), 2);
    }

    #[test]
    fn store_is_send() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<PageStore>();
    }
}
