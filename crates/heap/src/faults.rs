//! Deterministic crash/fault injection for the persistent heap.
//!
//! The paper's usage model presumes library calls are "enclosed in a
//! persistent transaction" (§VI) and that a crash may strike anywhere.
//! This module turns that assumption into a *measured* property: every
//! durable write to an NVM pool passes through a fault gate in
//! [`AddressSpace`], which counts write boundaries and — when armed — stops
//! the simulated process at a chosen boundary by raising
//! [`HeapError::CrashInjected`]. A sweep then enumerates *all* boundaries
//! of a workload (exhaustively at small scale, seeded-sampled at large
//! scale), simulates the crash, runs [`UndoLog::recover`], and checks the
//! caller's invariants against the recovered image.
//!
//! ## Fault model
//!
//! A [`FaultPlan`] describes one simulated failure:
//!
//! - **Clean crash** ([`FaultPlan::crash_at`]): the `k`-th durable write is
//!   suppressed and the process dies. Under the default eADR flush model
//!   the pool image at that instant *is* the durable state.
//! - **Torn crash** ([`FaultPlan::torn_at`]): the `k`-th durable write is
//!   applied and then the process dies. Under the ADR flush model
//!   ([`crate::space::FlushModel::Adr`]) every cache line written since the
//!   last fence is still volatile at that point; on restart each pending
//!   line drains at 8-byte-word granularity, with a seeded subset of words
//!   landing — the torn-write failure mode eADR platforms are sold to
//!   avoid.
//! - **Bit flips** ([`FaultPlan::with_bitflips`]): retention/media errors
//!   injected into the pool image between detach and re-attach
//!   ([`inject_bitflips`]). These corrupt bytes that were durably written
//!   long ago, which no write-ordering discipline can defend against —
//!   detecting them is the integrity layer's job ([`crate::integrity`]).
//! - **Retention decay** ([`FaultPlan::with_decay`]): time-dependent media
//!   errors injected *while the system runs*. The flip probability of a
//!   sealed cold page is a seeded function of the page's age since its
//!   last rewrite and a configurable decay rate (see
//!   [`crate::retain::decay_draw`]); flips fire at modelled media-clock
//!   ticks ([`AddressSpace::advance_media_clock`],
//!   [`crate::shard::SharedPool::note_work`]) — not just at
//!   [`crash_and_recover`].
//!
//! A *durable write boundary* is one hooked mutation of a pool: a data
//! word/byte-range store, an undo-log append word, a root-pointer store,
//! or one `pmalloc`/`pfree` (allocator metadata updates are modelled as
//! atomic — a single boundary — as if protected by their own micro-log).
//! A crash drops everything volatile: DRAM contents, the attachment table
//! (pools re-attach at new, seed-randomized bases), unfenced pending lines
//! under ADR, and any in-flight `ExecEnv` state such as the armed
//! [`UndoLog`] handle or deferred transactional frees. Pool images survive
//! (modulo tearing and injected flips).
//!
//! ## Determinism
//!
//! Everything is replayable: the workload derives from its own seeds, the
//! attach bases from the layout seed and restart generation, torn-word
//! lotteries and bit-flip positions from the plan's seeds, and sampled
//! sweeps from the sweep seed (`UTPR_QC_SEED` at the harness level).
//! A failure report therefore needs only `(seed, crash point)` to
//! reproduce bit-identically.

use crate::addr::PoolId;
use crate::error::{HeapError, Result};
use crate::pagestore::PAGE_SIZE;
use crate::space::AddressSpace;
use crate::txn::UndoLog;

/// One splitmix64 step — the deterministic hash used for torn-word
/// lotteries and bit-flip placement.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Verdict of consulting the gate for a *tearable* data write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum GateVerdict {
    /// The write lands normally.
    Proceed,
    /// Torn boundary: the write is applied (it was in flight when the
    /// power failed) and then the caller must raise
    /// [`FaultPlan::crash_error`] — the process is dead.
    TornCrash,
}

/// The fault plan every durable pool write consults.
///
/// Disabled by default (zero overhead beyond a branch). In *counting* mode
/// it numbers each write boundary; *armed* at `k` it lets exactly `k`
/// writes land and fires at the `k`-th boundary — and at every boundary
/// after it, so a workload that swallows the first error still cannot
/// mutate durable state "after death". [`FaultPlan::crash_at`] suppresses
/// the `k`-th write, [`FaultPlan::torn_at`] lets it land in flight, and
/// [`FaultPlan::with_bitflips`] schedules media decay for the recovery
/// path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    enabled: bool,
    writes: u64,
    crash_at: Option<u64>,
    /// When armed, the boundary write is applied (left in flight) instead
    /// of suppressed, and pending ADR lines drain by seeded word lottery.
    torn: bool,
    torn_seed: u64,
    bitflip_seed: u64,
    bitflip_count: u64,
    decay_seed: u64,
    /// Per-tick flip probability gradient in parts-per-billion per tick of
    /// page age: a page of age `a` ticks flips this clock tick with
    /// probability `min(a * decay_ppb, 1e9) / 1e9`. Zero disables decay.
    decay_ppb: u64,
    tripped: bool,
}

impl FaultPlan {
    /// The default plan: gate disabled, nothing counted.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// Counting mode: number every durable write boundary, never trip.
    pub fn counting() -> Self {
        FaultPlan { enabled: true, ..FaultPlan::default() }
    }

    /// Armed mode: allow exactly `k` durable writes, then crash cleanly
    /// (the `k`-th write is suppressed).
    pub fn crash_at(k: u64) -> Self {
        FaultPlan { enabled: true, crash_at: Some(k), ..FaultPlan::default() }
    }

    /// Armed mode with tearing: the `k`-th durable write is *applied* and
    /// the process then dies, leaving the write (and every unfenced line)
    /// in flight. On the next [`AddressSpace::restart`] under the ADR
    /// flush model, each pending line drains per-word by a lottery seeded
    /// from `seed` — some new words land, some revert.
    pub fn torn_at(k: u64, seed: u64) -> Self {
        FaultPlan { enabled: true, crash_at: Some(k), torn: true, torn_seed: seed, ..FaultPlan::default() }
    }

    /// Adds retention errors to the plan: [`crash_and_recover`] flips
    /// `count` seeded bits in the pool image after the restart, before the
    /// pool is re-attached — modelling media decay while "powered off".
    pub fn with_bitflips(mut self, seed: u64, count: u64) -> Self {
        self.bitflip_seed = seed;
        self.bitflip_count = count;
        self
    }

    /// Adds execution-time retention decay to the plan: while a media
    /// clock advances ([`AddressSpace::advance_media_clock`] for local
    /// pools, [`crate::shard::SharedPool::note_work`] for shared ones),
    /// every sealed cold page rolls a seeded die per tick whose flip
    /// probability grows linearly with the page's age since last rewrite —
    /// `ppb` parts-per-billion per tick of age. Unlike
    /// [`FaultPlan::with_bitflips`], these flips land *during execution*,
    /// racing live traffic and the online scrubber.
    pub fn with_decay(mut self, seed: u64, ppb: u64) -> Self {
        self.decay_seed = seed;
        self.decay_ppb = ppb;
        self
    }

    /// The scheduled retention decay, if any: `(seed, ppb_per_tick_of_age)`.
    pub fn decay(&self) -> Option<(u64, u64)> {
        (self.decay_ppb > 0).then_some((self.decay_seed, self.decay_ppb))
    }

    /// Durable write boundaries observed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// True once the armed crash point has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// True while the gate is counting or armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The scheduled bit flips, if any: `(seed, count)`.
    pub fn bitflips(&self) -> Option<(u64, u64)> {
        (self.bitflip_count > 0).then_some((self.bitflip_seed, self.bitflip_count))
    }

    /// The seed for the per-word drain lottery, when this is a torn plan.
    /// `None` means a pending line drains nothing (clean power loss: every
    /// unfenced store is simply gone).
    pub fn torn_drain_seed(&self) -> Option<u64> {
        self.torn.then_some(self.torn_seed)
    }

    /// The error a fired boundary raises.
    pub fn crash_error(&self) -> HeapError {
        HeapError::CrashInjected { writes: self.writes }
    }

    /// Consulted by [`AddressSpace`] before each *atomic* durable write
    /// (allocator metadata, root pointer): the write either fully lands or
    /// — on the armed boundary, torn or not — never happens.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] at and after the armed point.
    #[inline]
    pub fn gate(&mut self) -> Result<()> {
        match self.gate_tearable()? {
            GateVerdict::Proceed => Ok(()),
            GateVerdict::TornCrash => Err(self.crash_error()),
        }
    }

    /// Consulted by [`AddressSpace`] before each *tearable* durable data
    /// write. [`GateVerdict::TornCrash`] instructs the caller to apply the
    /// write and then raise [`FaultPlan::crash_error`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] when the write must be
    /// suppressed: at the armed boundary of a clean-crash plan, and at
    /// every boundary after any plan has tripped.
    #[inline]
    pub fn gate_tearable(&mut self) -> Result<GateVerdict> {
        if !self.enabled {
            return Ok(GateVerdict::Proceed);
        }
        if self.tripped {
            return Err(self.crash_error());
        }
        if self.crash_at == Some(self.writes) {
            self.tripped = true;
            return if self.torn { Ok(GateVerdict::TornCrash) } else { Err(self.crash_error()) };
        }
        self.writes += 1;
        Ok(GateVerdict::Proceed)
    }
}

/// What [`crash_and_recover`] found and did.
#[derive(Clone, Copy, Debug)]
pub struct Recovery {
    /// The re-opened pool's id.
    pub pool: PoolId,
    /// Whether a torn transaction was rolled back.
    pub rolled_back: bool,
    /// Durable writes that had landed when the crash fired.
    pub writes_before_crash: u64,
    /// Bit flips injected into the pool image before re-attach.
    pub bitflips_injected: u64,
}

/// Simulates the crash a tripped plan models, then runs recovery: restarts
/// the address space (DRAM lost, pools detached; under ADR the pending
/// lines drain per the plan — see [`FaultPlan::torn_at`]), disarms the
/// gate, injects any scheduled bit flips, re-opens `pool_name` (which
/// CRC-verifies the image when integrity is on), and rolls back any torn
/// transaction.
///
/// # Errors
///
/// Propagates pool-open and recovery failures — including
/// [`HeapError::MediaCorruption`] when injected bit flips are detected at
/// re-attach — and returns [`HeapError::CorruptRegion`] if an undo log is
/// still active *after* recovery (recovery must always disarm the log).
pub fn crash_and_recover(space: &mut AddressSpace, pool_name: &str) -> Result<Recovery> {
    let plan = *space.faults();
    let writes_before_crash = plan.writes();
    // Restart while the plan is still installed: the drain of pending ADR
    // lines consults its torn-word lottery seed.
    space.restart();
    space.set_faults(FaultPlan::disabled());
    let mut bitflips_injected = 0;
    if let Some((seed, count)) = plan.bitflips() {
        if let Ok(id) = space.pool_store().id_of(pool_name) {
            bitflips_injected = inject_bitflips(space, id, seed, count)?;
        }
    }
    let pool = space.open_pool(pool_name)?;
    let rolled_back = UndoLog::recover(space, pool)?;
    if let Ok(log) = UndoLog::open(space, pool) {
        if log.is_active(space)? {
            return Err(HeapError::CorruptRegion("undo log still active after recovery"));
        }
    }
    Ok(Recovery { pool, rolled_back, writes_before_crash, bitflips_injected })
}

/// Flips `count` seeded bits across the resident pages of `pool`'s image,
/// modelling NVM retention errors. Deterministic in `(seed, image shape)`.
/// Returns the number of flips applied (0 when the pool has no resident
/// pages).
///
/// The flips bypass dirty tracking: the integrity layer's CRC sidecar must
/// *not* learn about them, exactly as a real controller never re-checksums
/// decayed media. Inject after a seal point ([`AddressSpace::restart`] or
/// [`AddressSpace::detach`]) for the flips to be detectable on re-attach.
///
/// # Errors
///
/// Returns [`HeapError::NoSuchPool`] for unknown ids.
pub fn inject_bitflips(space: &mut AddressSpace, pool: PoolId, seed: u64, count: u64) -> Result<u64> {
    let img = space.pool_store_mut().peek_mut(pool)?;
    let pages = img.data().resident_page_numbers();
    if pages.is_empty() {
        return Ok(0);
    }
    let mut applied = 0;
    for i in 0..count {
        let h = splitmix64(seed ^ splitmix64(i.wrapping_mul(0x51_7cc1_b727_220a)));
        let page = pages[(h % pages.len() as u64) as usize];
        let in_page = splitmix64(h) % PAGE_SIZE;
        let bit = (splitmix64(h ^ 0xff) % 8) as u8;
        if img.data_mut().corrupt_bit(page * PAGE_SIZE + in_page, bit) {
            applied += 1;
        }
    }
    Ok(applied)
}

/// Picks the crash points to test for a workload with `total` durable
/// write boundaries: every point in `0..total` when `total <=
/// exhaustive_limit`, otherwise `samples` distinct seeded points (always
/// including the first and last boundary — the edges are where log-arming
/// and commit-ordering bugs live). The result is sorted and deduplicated,
/// and depends only on the arguments.
pub fn select_points(total: u64, exhaustive_limit: u64, samples: u64, seed: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    if total <= exhaustive_limit || samples >= total {
        return (0..total).collect();
    }
    let mut points = Vec::with_capacity(samples as usize + 2);
    points.push(0);
    points.push(total - 1);
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    while (points.len() as u64) < samples.max(2) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        points.push(splitmix64(x) % total);
        points.sort_unstable();
        points.dedup();
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RelLoc;
    use crate::space::FlushModel;

    fn setup() -> (AddressSpace, PoolId, RelLoc) {
        let mut space = AddressSpace::new(17);
        let pool = space.create_pool("faults", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 64).unwrap();
        (space, pool, loc)
    }

    #[test]
    fn disabled_gate_is_transparent() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        for i in 0..10 {
            space.write_u64(va, i).unwrap();
        }
        assert_eq!(space.faults().writes(), 0);
    }

    #[test]
    fn counting_numbers_every_durable_write() {
        let (mut space, pool, loc) = setup();
        space.set_faults(FaultPlan::counting());
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 1).unwrap(); // 1 boundary
        space.pmalloc(pool, 32).unwrap(); // 1 boundary (atomic alloc)
        space.set_pool_root(pool, 7).unwrap(); // 1 boundary
        assert_eq!(space.faults().writes(), 3);
        // DRAM traffic is not durable and not counted.
        let d = space.malloc(64).unwrap();
        space.write_u64(d, 9).unwrap();
        assert_eq!(space.faults().writes(), 3);
    }

    #[test]
    fn armed_gate_crashes_at_exact_boundary_and_stays_dead() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.set_faults(FaultPlan::crash_at(2));
        space.write_u64(va, 1).unwrap();
        space.write_u64(va.add(8), 2).unwrap();
        let err = space.write_u64(va.add(16), 3);
        assert!(matches!(err, Err(HeapError::CrashInjected { writes: 2 })));
        // Every later durable write keeps failing: the process is dead.
        assert!(matches!(space.write_u64(va, 4), Err(HeapError::CrashInjected { .. })));
        assert!(space.faults().tripped());
        // The first two writes landed, the third did not.
        space.set_faults(FaultPlan::disabled());
        assert_eq!(space.read_u64(va).unwrap(), 1);
        assert_eq!(space.read_u64(va.add(8)).unwrap(), 2);
        assert_eq!(space.read_u64(va.add(16)).unwrap(), 0);
    }

    #[test]
    fn crash_at_zero_fails_the_very_first_durable_write() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.set_faults(FaultPlan::crash_at(0));
        assert!(matches!(
            space.write_u64(va, 1),
            Err(HeapError::CrashInjected { writes: 0 })
        ));
        assert!(space.faults().tripped());
        space.set_faults(FaultPlan::disabled());
        assert_eq!(space.read_u64(va).unwrap(), 0, "nothing landed");
    }

    #[test]
    fn recovery_after_zero_landed_writes_is_a_clean_noop() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        space.set_faults(FaultPlan::crash_at(0));
        // The very first durable write of the transaction dies; the log
        // never armed, so recovery has nothing to do.
        let err = log.run(&mut space, |space, txn| {
            txn.log_word(space, loc)?;
            let va = space.ra2va(loc)?;
            space.write_u64(va, 55)
        });
        assert!(matches!(err, Err(HeapError::CrashInjected { writes: 0 })));
        let rec = crash_and_recover(&mut space, "faults").unwrap();
        assert_eq!(rec.writes_before_crash, 0);
        assert!(!rec.rolled_back, "nothing landed, nothing to roll back");
        let va = space.ra2va(loc).unwrap();
        assert_eq!(space.read_u64(va).unwrap(), 100);
    }

    #[test]
    fn torn_boundary_applies_the_in_flight_write_then_dies() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.set_faults(FaultPlan::torn_at(1, 99));
        space.write_u64(va, 1).unwrap();
        // Boundary 1 fires torn: the write is applied before the error.
        assert!(matches!(
            space.write_u64(va.add(8), 2),
            Err(HeapError::CrashInjected { writes: 1 })
        ));
        assert!(space.faults().tripped());
        assert!(matches!(space.write_u64(va, 3), Err(HeapError::CrashInjected { .. })));
        space.set_faults(FaultPlan::disabled());
        // Under eADR (default) the in-flight write is simply durable.
        assert_eq!(space.read_u64(va.add(8)).unwrap(), 2);
    }

    #[test]
    fn adr_restart_drains_pending_lines_by_seeded_word_lottery() {
        // Write a full 64-byte line without fencing, tear, and check the
        // drained line is a per-word mix of old and new — deterministically.
        let images: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let (mut space, _, loc) = setup();
                space.set_flush_model(FlushModel::Adr);
                let va = space.ra2va(loc).unwrap();
                for w in 0..8 {
                    space.write_u64(va.add(w * 8), 0xAAAA).unwrap();
                }
                space.fence(); // old durable state: all 0xAAAA
                space.set_faults(FaultPlan::torn_at(7, 0xD5EED));
                for w in 0..8 {
                    let _ = space.write_u64(va.add(w * 8), 0xBBBB);
                }
                let rec = crash_and_recover(&mut space, "faults").unwrap();
                assert_eq!(rec.writes_before_crash, 7);
                let va = space.ra2va(loc).unwrap();
                (0..8).map(|w| space.read_u64(va.add(w * 8)).unwrap()).collect()
            })
            .collect();
        assert_eq!(images[0], images[1], "drain is deterministic in the seed");
        assert!(images[0].iter().all(|&v| v == 0xAAAA || v == 0xBBBB));
        assert!(images[0].contains(&0xAAAA) || images[0].contains(&0xBBBB));
    }

    #[test]
    fn adr_restart_without_tearing_reverts_unfenced_lines() {
        let (mut space, _, loc) = setup();
        space.set_flush_model(FlushModel::Adr);
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 0x11).unwrap();
        space.fence();
        space.write_u64(va, 0x22).unwrap(); // never fenced
        space.restart();
        space.open_pool("faults").unwrap();
        let va = space.ra2va(loc).unwrap();
        assert_eq!(space.read_u64(va).unwrap(), 0x11, "unfenced store lost");
    }

    #[test]
    fn crash_and_recover_rolls_back_torn_transaction() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();

        // Count the transaction's boundaries first (read mid-transaction,
        // before the commit adds its own writes).
        space.set_faults(FaultPlan::counting());
        let mut total = 0;
        log.run(&mut space, |space, txn| {
            txn.log_word(space, loc)?;
            let va = space.ra2va(loc)?;
            space.write_u64(va, 55)?;
            total = space.faults().writes();
            Ok(())
        })
        .unwrap();
        assert!(total >= 4, "begin(2) + log_word(3) + store(1), got {total}");
        space.write_u64(space.ra2va(loc).unwrap(), 100).unwrap();

        // Crash at every boundary of the same transaction; the word must
        // recover to either the old (rolled back) or new (committed) value.
        // Every k lands inside the body, so the closure always crashes out
        // before `run` could commit — and `run` skips the abort on an
        // injected crash, leaving the torn log for recovery.
        for k in 0..total {
            space.set_faults(FaultPlan::crash_at(k));
            let log = UndoLog::open(&space, pool).unwrap();
            let _ = log.run(&mut space, |space, txn| {
                txn.log_word(space, loc)?;
                let va = space.ra2va(loc)?;
                space.write_u64(va, 55)
            });
            let rec = crash_and_recover(&mut space, "faults").unwrap();
            assert_eq!(rec.pool, pool);
            let va = space.ra2va(loc).unwrap();
            assert_eq!(space.read_u64(va).unwrap(), 100, "crash point {k}");
            let log = UndoLog::open(&space, pool).unwrap();
            assert!(!log.is_active(&space).unwrap(), "log disarmed after recovery");
            // Reset for the next iteration (the value never committed).
        }
    }

    #[test]
    fn torn_sweep_of_one_transaction_recovers_old_or_new() {
        // Same transaction as above, but under ADR with tearing at every
        // boundary: the fence discipline of the undo log must keep the
        // recovered word at exactly old-or-committed, never garbage.
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        space.set_flush_model(FlushModel::Adr);

        space.set_faults(FaultPlan::counting());
        let mut total = 0;
        log.run(&mut space, |space, txn| {
            txn.log_word(space, loc)?;
            let va = space.ra2va(loc)?;
            space.write_u64(va, 55)?;
            total = space.faults().writes();
            Ok(())
        })
        .unwrap();
        space.set_faults(FaultPlan::disabled());
        log.run(&mut space, |space, txn| {
            txn.log_word(space, loc)?;
            let va = space.ra2va(loc)?;
            space.write_u64(va, 100)
        })
        .unwrap();

        // total counts up to the last data store; also sweep the commit's
        // boundaries (two flag words).
        for k in 0..total + 2 {
            space.set_faults(FaultPlan::torn_at(k, k ^ 0xBEEF));
            let log = UndoLog::open(&space, pool).unwrap();
            let crashed = log
                .run(&mut space, |space, txn| {
                    txn.log_word(space, loc)?;
                    let va = space.ra2va(loc)?;
                    space.write_u64(va, 55)
                })
                .is_err();
            let _ = crash_and_recover(&mut space, "faults").unwrap();
            let va = space.ra2va(loc).unwrap();
            let got = space.read_u64(va).unwrap();
            assert!(got == 100 || got == 55, "crash point {k}: got {got:#x}");
            if got == 55 {
                assert!(crashed, "new value without a commit implies a late tear");
            }
            // Restore the old value for the next round.
            let log = UndoLog::open(&space, pool).unwrap();
            log.run(&mut space, |space, txn| {
                txn.log_word(space, loc)?;
                let va = space.ra2va(loc)?;
                space.write_u64(va, 100)
            })
            .unwrap();
        }
    }

    #[test]
    fn recovery_after_commit_keeps_new_values() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.run(&mut space, |space, txn| {
            txn.log_word(space, loc)?;
            space.write_u64(va, 55)
        })
        .unwrap();
        // Crash strictly after commit: nothing to roll back.
        space.set_faults(FaultPlan::counting());
        let rec = crash_and_recover(&mut space, "faults").unwrap();
        assert!(!rec.rolled_back);
        let va = space.ra2va(loc).unwrap();
        assert_eq!(space.read_u64(va).unwrap(), 55);
    }

    #[test]
    fn bitflips_inject_deterministically_and_are_detected() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 0xFACE).unwrap();
        space.restart(); // seal the CRC sidecar
        let flipped = inject_bitflips(&mut space, pool, 7, 4).unwrap();
        assert!(flipped > 0);
        let err = space.open_pool("faults");
        assert!(
            matches!(err, Err(HeapError::MediaCorruption { .. })),
            "sealed flip must be detected, got {err:?}"
        );
    }

    #[test]
    fn plan_carries_bitflips_through_crash_and_recover() {
        let (mut space, _pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 1).unwrap();
        space.set_faults(FaultPlan::crash_at(0).with_bitflips(3, 2));
        assert!(space.write_u64(va, 2).is_err());
        let err = crash_and_recover(&mut space, "faults");
        match err {
            Err(HeapError::MediaCorruption { .. }) => {}
            other => panic!("expected MediaCorruption at re-attach, got {other:?}"),
        }
    }

    #[test]
    fn select_points_exhaustive_below_limit() {
        assert_eq!(select_points(5, 10, 3, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(select_points(0, 10, 3, 1), Vec::<u64>::new());
        // samples >= total also degrades to exhaustive.
        assert_eq!(select_points(4, 2, 8, 1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_points_sampled_is_seeded_sorted_and_bounded() {
        let a = select_points(10_000, 100, 64, 42);
        let b = select_points(10_000, 100, 64, 42);
        let c = select_points(10_000, 100, 64, 43);
        assert_eq!(a, b, "same seed, same points");
        assert_ne!(a, c, "different seed, different points");
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(a.iter().all(|&p| p < 10_000));
        assert_eq!(a[0], 0, "first boundary always covered");
        assert_eq!(*a.last().unwrap(), 9_999, "last boundary always covered");
    }

    #[test]
    fn clone_of_space_clones_gate_state() {
        let (mut space, _, loc) = setup();
        space.set_faults(FaultPlan::counting());
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 1).unwrap();
        let snapshot = space.clone();
        assert_eq!(snapshot.faults().writes(), 1);
    }
}
