//! Deterministic crash/fault injection for the persistent heap.
//!
//! The paper's usage model presumes library calls are "enclosed in a
//! persistent transaction" (§VI) and that a crash may strike anywhere.
//! This module turns that assumption into a *measured* property: every
//! durable write to an NVM pool passes through a fault gate in
//! [`AddressSpace`], which counts write boundaries and — when armed — stops
//! the simulated process at a chosen boundary by raising
//! [`HeapError::CrashInjected`]. A sweep then enumerates *all* boundaries
//! of a workload (exhaustively at small scale, seeded-sampled at large
//! scale), simulates the crash, runs [`UndoLog::recover`], and checks the
//! caller's invariants against the recovered image.
//!
//! ## Fault model
//!
//! - The simulated pool is byte-durable at every step (a write-through /
//!   eADR persistence domain), so "the state at crash point `k`" is exactly
//!   the pool image after `k` durable writes.
//! - A *durable write boundary* is one hooked mutation of a pool: a data
//!   word/byte-range store, an undo-log append word, a root-pointer store,
//!   or one `pmalloc`/`pfree` (allocator metadata updates are modelled as
//!   atomic — a single boundary — as if protected by their own micro-log).
//! - A crash drops everything volatile: DRAM contents, the attachment
//!   table (pools re-attach at new, seed-randomized bases), and any
//!   in-flight `ExecEnv` state such as the armed [`UndoLog`] handle or
//!   deferred transactional frees. Pool images survive verbatim.
//! - Recovery is exactly what a restarted process would run: re-open the
//!   pool, then [`UndoLog::recover`] rolls a torn transaction back.
//!
//! ## Determinism
//!
//! Everything is replayable: the workload derives from its own seeds, the
//! attach bases from the layout seed and restart generation, and sampled
//! sweeps from the sweep seed (`UTPR_QC_SEED` at the harness level).
//! A failure report therefore needs only `(seed, crash point)` to
//! reproduce bit-identically.

use crate::addr::PoolId;
use crate::error::{HeapError, Result};
use crate::space::AddressSpace;
use crate::txn::UndoLog;

/// The fault gate every durable pool write consults.
///
/// Disabled by default (zero overhead beyond a branch). In *counting* mode
/// it numbers each write boundary; *armed* at `k` it lets exactly `k`
/// writes land and raises [`HeapError::CrashInjected`] at the `k`-th
/// boundary — and at every boundary after it, so a workload that swallows
/// the first error still cannot mutate durable state "after death".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultState {
    enabled: bool,
    writes: u64,
    crash_at: Option<u64>,
    tripped: bool,
}

impl FaultState {
    /// The default state: gate disabled, nothing counted.
    pub fn disabled() -> Self {
        FaultState::default()
    }

    /// Counting mode: number every durable write boundary, never trip.
    pub fn counting() -> Self {
        FaultState { enabled: true, ..FaultState::default() }
    }

    /// Armed mode: allow exactly `k` durable writes, then crash.
    pub fn crash_at(k: u64) -> Self {
        FaultState { enabled: true, crash_at: Some(k), ..FaultState::default() }
    }

    /// Durable write boundaries observed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// True once the armed crash point has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// True while the gate is counting or armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Consulted by [`AddressSpace`] immediately *before* each durable
    /// write; `Err` means the write must not happen.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] at and after the armed point.
    #[inline]
    pub fn gate(&mut self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.tripped || self.crash_at == Some(self.writes) {
            self.tripped = true;
            return Err(HeapError::CrashInjected { writes: self.writes });
        }
        self.writes += 1;
        Ok(())
    }
}

/// What [`crash_and_recover`] found and did.
#[derive(Clone, Copy, Debug)]
pub struct Recovery {
    /// The re-opened pool's id.
    pub pool: PoolId,
    /// Whether a torn transaction was rolled back.
    pub rolled_back: bool,
    /// Durable writes that had landed when the crash fired.
    pub writes_before_crash: u64,
}

/// Simulates the crash a tripped gate models, then runs recovery: disarms
/// the gate, restarts the address space (DRAM lost, pools detached and
/// re-attached at fresh seed-randomized bases), re-opens `pool_name`, and
/// rolls back any torn transaction.
///
/// # Errors
///
/// Propagates pool-open and recovery failures, and returns
/// [`HeapError::CorruptRegion`] if an undo log is still active *after*
/// recovery (recovery must always disarm the log).
pub fn crash_and_recover(space: &mut AddressSpace, pool_name: &str) -> Result<Recovery> {
    let writes_before_crash = space.faults().writes();
    space.set_faults(FaultState::disabled());
    space.restart();
    let pool = space.open_pool(pool_name)?;
    let rolled_back = UndoLog::recover(space, pool)?;
    if let Ok(log) = UndoLog::open(space, pool) {
        if log.is_active(space)? {
            return Err(HeapError::CorruptRegion("undo log still active after recovery"));
        }
    }
    Ok(Recovery { pool, rolled_back, writes_before_crash })
}

/// Picks the crash points to test for a workload with `total` durable
/// write boundaries: every point in `0..total` when `total <=
/// exhaustive_limit`, otherwise `samples` distinct seeded points (always
/// including the first and last boundary — the edges are where log-arming
/// and commit-ordering bugs live). The result is sorted and deduplicated,
/// and depends only on the arguments.
pub fn select_points(total: u64, exhaustive_limit: u64, samples: u64, seed: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    if total <= exhaustive_limit || samples >= total {
        return (0..total).collect();
    }
    let mut points = Vec::with_capacity(samples as usize + 2);
    points.push(0);
    points.push(total - 1);
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    while (points.len() as u64) < samples.max(2) {
        // splitmix64 step, reduced onto the boundary range.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        points.push(z % total);
        points.sort_unstable();
        points.dedup();
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RelLoc;

    fn setup() -> (AddressSpace, PoolId, RelLoc) {
        let mut space = AddressSpace::new(17);
        let pool = space.create_pool("faults", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 64).unwrap();
        (space, pool, loc)
    }

    #[test]
    fn disabled_gate_is_transparent() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        for i in 0..10 {
            space.write_u64(va, i).unwrap();
        }
        assert_eq!(space.faults().writes(), 0);
    }

    #[test]
    fn counting_numbers_every_durable_write() {
        let (mut space, pool, loc) = setup();
        space.set_faults(FaultState::counting());
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 1).unwrap(); // 1 boundary
        space.pmalloc(pool, 32).unwrap(); // 1 boundary (atomic alloc)
        space.set_pool_root(pool, 7).unwrap(); // 1 boundary
        assert_eq!(space.faults().writes(), 3);
        // DRAM traffic is not durable and not counted.
        let d = space.malloc(64).unwrap();
        space.write_u64(d, 9).unwrap();
        assert_eq!(space.faults().writes(), 3);
    }

    #[test]
    fn armed_gate_crashes_at_exact_boundary_and_stays_dead() {
        let (mut space, _, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.set_faults(FaultState::crash_at(2));
        space.write_u64(va, 1).unwrap();
        space.write_u64(va.add(8), 2).unwrap();
        let err = space.write_u64(va.add(16), 3);
        assert!(matches!(err, Err(HeapError::CrashInjected { writes: 2 })));
        // Every later durable write keeps failing: the process is dead.
        assert!(matches!(space.write_u64(va, 4), Err(HeapError::CrashInjected { .. })));
        assert!(space.faults().tripped());
        // The first two writes landed, the third did not.
        space.set_faults(FaultState::disabled());
        assert_eq!(space.read_u64(va).unwrap(), 1);
        assert_eq!(space.read_u64(va.add(8)).unwrap(), 2);
        assert_eq!(space.read_u64(va.add(16)).unwrap(), 0);
    }

    #[test]
    fn crash_and_recover_rolls_back_torn_transaction() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();

        // Count the transaction's boundaries first.
        space.set_faults(FaultState::counting());
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, loc).unwrap();
        space.write_u64(space.ra2va(loc).unwrap(), 55).unwrap();
        let total = space.faults().writes();
        assert!(total >= 4, "begin(2) + log_word(3) + store(1), got {total}");
        log.commit(&mut space).unwrap();
        space.write_u64(space.ra2va(loc).unwrap(), 100).unwrap();

        // Crash at every boundary of the same transaction; the word must
        // recover to either the old (rolled back) or new (committed) value.
        for k in 0..total {
            space.set_faults(FaultState::crash_at(k));
            let log = UndoLog::open(&space, pool).unwrap();
            let _ = log
                .begin(&mut space)
                .and_then(|()| log.log_word(&mut space, loc))
                .and_then(|()| {
                    let va = space.ra2va(loc)?;
                    space.write_u64(va, 55)
                });
            let rec = crash_and_recover(&mut space, "faults").unwrap();
            assert_eq!(rec.pool, pool);
            let va = space.ra2va(loc).unwrap();
            assert_eq!(space.read_u64(va).unwrap(), 100, "crash point {k}");
            let log = UndoLog::open(&space, pool).unwrap();
            assert!(!log.is_active(&space).unwrap(), "log disarmed after recovery");
            // Reset for the next iteration (the value never committed).
        }
    }

    #[test]
    fn recovery_after_commit_keeps_new_values() {
        let (mut space, pool, loc) = setup();
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 100).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, loc).unwrap();
        space.write_u64(va, 55).unwrap();
        log.commit(&mut space).unwrap();
        // Crash strictly after commit: nothing to roll back.
        space.set_faults(FaultState::counting());
        let rec = crash_and_recover(&mut space, "faults").unwrap();
        assert!(!rec.rolled_back);
        let va = space.ra2va(loc).unwrap();
        assert_eq!(space.read_u64(va).unwrap(), 55);
    }

    #[test]
    fn select_points_exhaustive_below_limit() {
        assert_eq!(select_points(5, 10, 3, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(select_points(0, 10, 3, 1), Vec::<u64>::new());
        // samples >= total also degrades to exhaustive.
        assert_eq!(select_points(4, 2, 8, 1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_points_sampled_is_seeded_sorted_and_bounded() {
        let a = select_points(10_000, 100, 64, 42);
        let b = select_points(10_000, 100, 64, 42);
        let c = select_points(10_000, 100, 64, 43);
        assert_eq!(a, b, "same seed, same points");
        assert_ne!(a, c, "different seed, different points");
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(a.iter().all(|&p| p < 10_000));
        assert_eq!(a[0], 0, "first boundary always covered");
        assert_eq!(*a.last().unwrap(), 9_999, "last boundary always covered");
    }

    #[test]
    fn clone_of_space_clones_gate_state() {
        let (mut space, _, loc) = setup();
        space.set_faults(FaultState::counting());
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, 1).unwrap();
        let snapshot = space.clone();
        assert_eq!(snapshot.faults().writes(), 1);
    }
}
