//! Persistent undo-log transactions — the crash-consistency mechanism the
//! paper's usage model presumes (§I, §VI: a library call may be "enclosed
//! in a persistent transaction in the application code", with logging
//! inserted by the application's compiler).
//!
//! The log lives *inside the pool it protects*, so it survives crashes with
//! the data: a reserved header slot points at a log area of
//! `(offset, old value)` records plus an active flag. `begin` arms the log,
//! every update logs the old word first (undo logging), `commit` disarms
//! it, and [`UndoLog::recover`] rolls back a torn transaction after a
//! crash.
//!
//! Write ordering *is* enforced by fences: every log-arming step ends with
//! an [`AddressSpace::fence`]. Under the default eADR flush model those
//! fences are free (every store is already durable); under
//! [`crate::space::FlushModel::Adr`] they are what keeps recovery sound —
//! a log entry is fenced durable *before* the count word publishes it, and
//! the count is fenced *before* the caller's data write, so a torn
//! power-loss drain can never leave a published entry with garbage bytes
//! (see the DESIGN.md media-fault model section).

use crate::addr::{PoolId, RelLoc};
use crate::error::{HeapError, Result};
use crate::space::AddressSpace;

/// Pool-header slot holding the log area's intra-pool offset (0 = no log).
/// Slots 0x00–0x2f are used by the allocator (`crate::alloc`); 0x30 is
/// reserved for the transaction log.
const HDR_LOG_SLOT: u64 = 0x30;

const LOG_ACTIVE: u64 = 0;
const LOG_COUNT: u64 = 8;
const LOG_CAPACITY: u64 = 16;
const LOG_ENTRIES: u64 = 24;
/// Bytes per entry: target offset + old value.
const ENTRY_SIZE: u64 = 16;

/// First word of a log *directory* area. A plain log's first word is its
/// active flag (0 or 1), so the magic doubles as the format discriminator:
/// whatever `HDR_LOG_SLOT` points at, reading one word tells us which shape
/// we are looking at.
const DIR_MAGIC: u64 = u64::from_le_bytes(*b"UTPRLOGD");
const DIR_NSLOTS: u64 = 8;
const DIR_SLOTS: u64 = 16;

/// Maximum per-pool undo logs (one per worker thread, typically).
pub const MAX_LOG_SLOTS: u64 = 16;

/// What the pool's `HDR_LOG_SLOT` currently points at.
enum LogHeader {
    /// No log allocated yet.
    None,
    /// A single plain log area (the original single-threaded format).
    Plain(u64),
    /// A slot directory of independent logs.
    Dir(u64),
}

/// Handle to a pool's undo log.
///
/// # Examples
///
/// ```
/// use utpr_heap::{AddressSpace, UndoLog};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("bank", 1 << 20)?;
/// let acct = space.pmalloc(pool, 16)?;
/// let va = space.ra2va(acct)?;
/// space.write_u64(va, 100)?;
///
/// let log = UndoLog::ensure(&mut space, pool, 64)?;
/// log.run(&mut space, |space, txn| {
///     txn.log_word(space, acct)?;    // record old value first
///     let va = space.ra2va(acct)?;
///     space.write_u64(va, 40)        // then mutate
/// })?;                               // durable: 40
/// assert_eq!(space.read_u64(space.ra2va(acct)?)?, 40);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UndoLog {
    pool: PoolId,
    /// Intra-pool offset of the log area.
    base: u64,
    capacity: u64,
}

impl UndoLog {
    /// Returns the pool's log, allocating one with room for `capacity`
    /// entries if the pool has none yet.
    ///
    /// Equivalent to [`UndoLog::ensure_slot`] with slot 0 — and as long as
    /// only slot 0 is ever used, the on-pool format stays the original
    /// single plain log area, with no directory indirection.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures; [`HeapError::BadPoolSize`] when
    /// `capacity` is zero.
    pub fn ensure(space: &mut AddressSpace, pool: PoolId, capacity: u64) -> Result<UndoLog> {
        Self::ensure_slot(space, pool, capacity, 0)
    }

    /// Returns the pool's log in directory slot `slot`, allocating it (and
    /// the slot directory, on first use of a nonzero slot) as needed.
    ///
    /// Each slot is an independent undo log, so N worker threads can each
    /// run transactions against one shared pool without sharing a log —
    /// provided each thread sticks to its own slot. Slot materialization
    /// itself is *not* thread-safe: harnesses pre-create every slot they
    /// need while still single-threaded.
    ///
    /// Installing the directory migrates an existing plain log into slot 0,
    /// so handles obtained before the upgrade stay valid.
    ///
    /// # Errors
    ///
    /// - [`HeapError::BadPoolSize`] when `capacity` is zero;
    /// - [`HeapError::CorruptRegion`] when `slot >= MAX_LOG_SLOTS`;
    /// - allocation failures.
    pub fn ensure_slot(
        space: &mut AddressSpace,
        pool: PoolId,
        capacity: u64,
        slot: u64,
    ) -> Result<UndoLog> {
        if capacity == 0 {
            return Err(HeapError::BadPoolSize(0));
        }
        if slot >= MAX_LOG_SLOTS {
            return Err(HeapError::CorruptRegion("log slot out of range"));
        }
        let header = Self::header(space, pool)?;
        if slot == 0 {
            match header {
                LogHeader::Plain(base) => return Self::at(space, pool, base),
                LogHeader::None => {
                    // Keep the original format: a lone slot-0 log is a plain
                    // log area published straight from the header slot.
                    let base = Self::alloc_log(space, pool, capacity)?;
                    space.pool_write_u64(pool, HDR_LOG_SLOT, base)?;
                    space.fence();
                    return Ok(UndoLog { pool, base, capacity });
                }
                LogHeader::Dir(_) => {}
            }
        }
        let dir = match header {
            LogHeader::Dir(dir) => dir,
            other => Self::install_dir(space, pool, &other)?,
        };
        let ptr_off = dir + DIR_SLOTS + slot * 8;
        let existing = space.pool_read_u64(pool, ptr_off)?;
        if existing != 0 {
            return Self::at(space, pool, existing);
        }
        let base = Self::alloc_log(space, pool, capacity)?;
        space.pool_write_u64(pool, ptr_off, base)?;
        space.fence();
        Ok(UndoLog { pool, base, capacity })
    }

    /// Reads the header slot and classifies what it points at.
    fn header(space: &AddressSpace, pool: PoolId) -> Result<LogHeader> {
        let hdr = space.pool_read_u64(pool, HDR_LOG_SLOT)?;
        if hdr == 0 {
            return Ok(LogHeader::None);
        }
        // A plain log's first word is its active flag (0/1); the magic
        // cannot collide with it.
        if space.pool_read_u64(pool, hdr)? == DIR_MAGIC {
            Ok(LogHeader::Dir(hdr))
        } else {
            Ok(LogHeader::Plain(hdr))
        }
    }

    /// Builds a handle onto an existing log area at `base`.
    fn at(space: &AddressSpace, pool: PoolId, base: u64) -> Result<UndoLog> {
        let capacity = space.pool_read_u64(pool, base + LOG_CAPACITY)?;
        Ok(UndoLog { pool, base, capacity })
    }

    /// Allocates and initializes a log area, returning its intra-pool
    /// offset — *without* publishing it anywhere.
    ///
    /// Layout: `[active][count][capacity][entries...]`. Each init store is
    /// its own durable boundary; the init fields are fenced durable before
    /// the caller's publishing store, so a crash (or torn drain) mid-init
    /// leaves the pool without the new log rather than pointing at a
    /// half-initialized area.
    fn alloc_log(space: &mut AddressSpace, pool: PoolId, capacity: u64) -> Result<u64> {
        let bytes = LOG_ENTRIES + capacity * ENTRY_SIZE;
        let loc = space.pmalloc(pool, bytes)?;
        let base = u64::from(loc.offset);
        space.pool_write_u64(pool, base + LOG_ACTIVE, 0)?;
        space.pool_write_u64(pool, base + LOG_COUNT, 0)?;
        space.pool_write_u64(pool, base + LOG_CAPACITY, capacity)?;
        space.fence();
        Ok(base)
    }

    /// Allocates a slot directory, migrating an existing plain log into
    /// slot 0, and publishes it from the header slot. Returns the
    /// directory's intra-pool offset.
    fn install_dir(space: &mut AddressSpace, pool: PoolId, prior: &LogHeader) -> Result<u64> {
        let bytes = DIR_SLOTS + MAX_LOG_SLOTS * 8;
        let loc = space.pmalloc(pool, bytes)?;
        let dir = u64::from(loc.offset);
        space.pool_write_u64(pool, dir, DIR_MAGIC)?;
        space.pool_write_u64(pool, dir + DIR_NSLOTS, MAX_LOG_SLOTS)?;
        // pmalloc'd memory may hold stale bytes — zero every slot word
        // explicitly before the directory becomes reachable.
        for slot in 0..MAX_LOG_SLOTS {
            space.pool_write_u64(pool, dir + DIR_SLOTS + slot * 8, 0)?;
        }
        if let LogHeader::Plain(base) = prior {
            space.pool_write_u64(pool, dir + DIR_SLOTS, *base)?;
        }
        // The directory contents are fenced durable before the header-slot
        // store swings the pool over to the new format.
        space.fence();
        space.pool_write_u64(pool, HDR_LOG_SLOT, dir)?;
        space.fence();
        Ok(dir)
    }

    /// Opens the pool's existing slot-0 log (after a restart).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] when the pool has no log.
    pub fn open(space: &AddressSpace, pool: PoolId) -> Result<UndoLog> {
        Self::open_slot(space, pool, 0)
    }

    /// Opens the existing log in directory slot `slot` (after a restart).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] when the pool has no log, the
    /// slot is out of range, or the slot was never materialized.
    pub fn open_slot(space: &AddressSpace, pool: PoolId, slot: u64) -> Result<UndoLog> {
        if slot >= MAX_LOG_SLOTS {
            return Err(HeapError::CorruptRegion("log slot out of range"));
        }
        match Self::header(space, pool)? {
            LogHeader::None => Err(HeapError::CorruptRegion("pool has no transaction log")),
            LogHeader::Plain(base) if slot == 0 => Self::at(space, pool, base),
            LogHeader::Plain(_) => Err(HeapError::CorruptRegion("pool log has no slot directory")),
            LogHeader::Dir(dir) => {
                let base = space.pool_read_u64(pool, dir + DIR_SLOTS + slot * 8)?;
                if base == 0 {
                    return Err(HeapError::CorruptRegion("log slot is empty"));
                }
                Self::at(space, pool, base)
            }
        }
    }

    fn read(&self, space: &AddressSpace, off: u64) -> Result<u64> {
        space.pool_read_u64(self.pool, self.base + off)
    }

    fn write(&self, space: &mut AddressSpace, off: u64, v: u64) -> Result<()> {
        // Routed through the gated accessor: every log word — append, count
        // bump, active flip — is an individually crashable boundary.
        space.pool_write_u64(self.pool, self.base + off, v)
    }

    /// The log area's intra-pool offset (for address-level instrumentation).
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    /// The pool this log protects.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// True while a transaction is open (or was torn by a crash).
    ///
    /// # Errors
    ///
    /// Propagates pool lookup failures.
    pub fn is_active(&self, space: &AddressSpace) -> Result<bool> {
        Ok(self.read(space, LOG_ACTIVE)? != 0)
    }

    /// Number of logged words in the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates pool lookup failures.
    pub fn len(&self, space: &AddressSpace) -> Result<u64> {
        self.read(space, LOG_COUNT)
    }

    /// True when no words are logged.
    ///
    /// # Errors
    ///
    /// Propagates pool lookup failures.
    pub fn is_empty(&self, space: &AddressSpace) -> Result<bool> {
        Ok(self.len(space)? == 0)
    }

    /// Runs `body` inside a transaction: `begin`, then the closure, then
    /// `commit` on `Ok` — or rollback on `Err`, so callers can no longer
    /// leak an armed log on the error path. Prefer this over raw
    /// [`UndoLog::begin`]/[`UndoLog::commit`].
    ///
    /// An injected crash ([`HeapError::CrashInjected`]) skips the rollback:
    /// a real crash kills the process before any abort could run, and the
    /// torn log is exactly what [`UndoLog::recover`] is for.
    ///
    /// # Errors
    ///
    /// Propagates `begin`/`commit` failures and the closure's error.
    ///
    /// # Examples
    ///
    /// ```
    /// use utpr_heap::{AddressSpace, UndoLog};
    ///
    /// let mut space = AddressSpace::new(1);
    /// let pool = space.create_pool("bank", 1 << 20)?;
    /// let acct = space.pmalloc(pool, 16)?;
    /// let log = UndoLog::ensure(&mut space, pool, 64)?;
    /// log.run(&mut space, |space, txn| {
    ///     txn.log_word(space, acct)?;
    ///     let va = space.ra2va(acct)?;
    ///     space.write_u64(va, 40)
    /// })?;
    /// # Ok::<(), utpr_heap::HeapError>(())
    /// ```
    pub fn run<T, F>(&self, space: &mut AddressSpace, body: F) -> Result<T>
    where
        F: FnOnce(&mut AddressSpace, &UndoLog) -> Result<T>,
    {
        self.begin(space)?;
        match body(space, self) {
            Ok(value) => {
                self.commit(space)?;
                Ok(value)
            }
            Err(e) => {
                if !matches!(e, HeapError::CrashInjected { .. }) {
                    self.abort(space)?;
                }
                Err(e)
            }
        }
    }

    /// Opens a transaction.
    ///
    /// Prefer the closure-scoped [`UndoLog::run`], which cannot leak an
    /// armed log; raw `begin`/`commit`/`abort` remain (hidden from docs)
    /// only for callers that must hold a transaction open across
    /// non-lexical scopes, such as state-machine tests.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] if one is already open
    /// (transactions do not nest).
    #[doc(hidden)]
    pub fn begin(&self, space: &mut AddressSpace) -> Result<()> {
        if self.is_active(space)? {
            return Err(HeapError::CorruptRegion("transaction already active"));
        }
        self.write(space, LOG_COUNT, 0)?;
        self.write(space, LOG_ACTIVE, 1)?;
        space.fence();
        Ok(())
    }

    /// Records the current value of the word at `target` so a crash before
    /// commit rolls it back. Call *before* overwriting — undo logging.
    ///
    /// # Errors
    ///
    /// - [`HeapError::CorruptRegion`] when no transaction is open;
    /// - [`HeapError::OutOfMemory`] when the log is full.
    pub fn log_word(&self, space: &mut AddressSpace, target: RelLoc) -> Result<()> {
        if target.pool != self.pool {
            return Err(HeapError::NoSuchPool(target.pool));
        }
        if !self.is_active(space)? {
            return Err(HeapError::CorruptRegion("log_word outside a transaction"));
        }
        let count = self.read(space, LOG_COUNT)?;
        if count >= self.capacity {
            return Err(HeapError::OutOfMemory { requested: ENTRY_SIZE });
        }
        let old = space.pool_read_u64(self.pool, u64::from(target.offset))?;
        let slot = LOG_ENTRIES + count * ENTRY_SIZE;
        self.write(space, slot, u64::from(target.offset))?;
        self.write(space, slot + 8, old)?;
        // The entry must be durable before the count word publishes it —
        // otherwise a torn drain could publish an entry with garbage bytes
        // and recovery would "restore" garbage.
        space.fence();
        self.write(space, LOG_COUNT, count + 1)?;
        space.fence();
        Ok(())
    }

    /// Commits: the new values become the durable state.
    ///
    /// Prefer [`UndoLog::run`], which pairs this with `begin` automatically.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] when no transaction is open.
    #[doc(hidden)]
    pub fn commit(&self, space: &mut AddressSpace) -> Result<()> {
        if !self.is_active(space)? {
            return Err(HeapError::CorruptRegion("commit outside a transaction"));
        }
        // The transaction's data writes must be durable before the active
        // flag clears — a cleared flag with drained-away data would be a
        // committed transaction that silently lost its writes.
        space.fence();
        self.write(space, LOG_ACTIVE, 0)?;
        self.write(space, LOG_COUNT, 0)?;
        space.fence();
        Ok(())
    }

    /// Aborts the open transaction, rolling every logged word back.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] when no transaction is open.
    #[doc(hidden)]
    pub fn abort(&self, space: &mut AddressSpace) -> Result<()> {
        if !self.is_active(space)? {
            return Err(HeapError::CorruptRegion("abort outside a transaction"));
        }
        self.rollback(space)
    }

    /// Crash recovery: rolls back every torn transaction the pool carries —
    /// the single plain log, or each materialized directory slot in turn.
    /// Returns whether any rollback happened.
    ///
    /// Slots belong to different (dead) worker threads, so their torn
    /// transactions touched disjoint words and the slot-order replay is
    /// safe.
    ///
    /// # Errors
    ///
    /// Propagates pool lookup failures.
    pub fn recover(space: &mut AddressSpace, pool: PoolId) -> Result<bool> {
        let bases: Vec<u64> = match Self::header(space, pool)? {
            LogHeader::None => return Ok(false),
            LogHeader::Plain(base) => vec![base],
            LogHeader::Dir(dir) => {
                let nslots = space.pool_read_u64(pool, dir + DIR_NSLOTS)?.min(MAX_LOG_SLOTS);
                let mut v = Vec::new();
                for slot in 0..nslots {
                    let base = space.pool_read_u64(pool, dir + DIR_SLOTS + slot * 8)?;
                    if base != 0 {
                        v.push(base);
                    }
                }
                v
            }
        };
        let mut any = false;
        for base in bases {
            let log = Self::at(space, pool, base)?;
            if log.is_active(space)? {
                log.rollback(space)?;
                any = true;
            }
        }
        Ok(any)
    }

    fn rollback(&self, space: &mut AddressSpace) -> Result<()> {
        let count = self.read(space, LOG_COUNT)?;
        // A count the capacity cannot hold means the log words themselves
        // are damaged (e.g. a torn or decayed count word that slipped past
        // the CRC layer). Surface it rather than replaying garbage.
        if count > self.capacity {
            return Err(HeapError::CorruptRegion("log count exceeds capacity"));
        }
        // Newest-first: later writes may overwrite earlier logged words.
        for i in (0..count).rev() {
            let slot = LOG_ENTRIES + i * ENTRY_SIZE;
            let offset = self.read(space, slot)?;
            let old = self.read(space, slot + 8)?;
            space.pool_write_u64(self.pool, offset, old)?;
        }
        self.write(space, LOG_ACTIVE, 0)?;
        self.write(space, LOG_COUNT, 0)?;
        // Fence the restorations and the disarm together: without it, a
        // second power loss right after recovery would drain the rollback
        // itself away.
        space.fence();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddressSpace, PoolId, RelLoc, RelLoc) {
        let mut space = AddressSpace::new(5);
        let pool = space.create_pool("txn", 1 << 20).unwrap();
        let a = space.pmalloc(pool, 16).unwrap();
        let b = space.pmalloc(pool, 16).unwrap();
        let va = space.ra2va(a).unwrap();
        let vb = space.ra2va(b).unwrap();
        space.write_u64(va, 100).unwrap();
        space.write_u64(vb, 50).unwrap();
        (space, pool, a, b)
    }

    fn read(space: &AddressSpace, loc: RelLoc) -> u64 {
        space.read_u64(space.ra2va(loc).unwrap()).unwrap()
    }

    fn write(space: &mut AddressSpace, loc: RelLoc, v: u64) {
        let va = space.ra2va(loc).unwrap();
        space.write_u64(va, v).unwrap();
    }

    #[test]
    fn committed_transfer_is_durable_across_crash() {
        let (mut space, pool, a, b) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, a).unwrap();
        write(&mut space, a, 70);
        log.log_word(&mut space, b).unwrap();
        write(&mut space, b, 80);
        log.commit(&mut space).unwrap();

        space.restart();
        space.open_pool("txn").unwrap();
        assert!(!UndoLog::recover(&mut space, pool).unwrap(), "nothing to roll back");
        assert_eq!(read(&space, a), 70);
        assert_eq!(read(&space, b), 80);
    }

    #[test]
    fn torn_transfer_rolls_back_on_recovery() {
        let (mut space, pool, a, b) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, a).unwrap();
        write(&mut space, a, 70); // debit done...
        log.log_word(&mut space, b).unwrap();
        // ...crash before the credit and before commit.
        space.restart();
        space.open_pool("txn").unwrap();
        assert!(UndoLog::recover(&mut space, pool).unwrap(), "rollback expected");
        assert_eq!(read(&space, a), 100, "debit undone");
        assert_eq!(read(&space, b), 50, "credit never applied");
        // The pool is usable for a fresh transaction.
        let log = UndoLog::open(&space, pool).unwrap();
        log.begin(&mut space).unwrap();
        log.commit(&mut space).unwrap();
    }

    #[test]
    fn abort_rolls_back_immediately() {
        let (mut space, pool, a, _) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, a).unwrap();
        write(&mut space, a, 1);
        log.abort(&mut space).unwrap();
        assert_eq!(read(&space, a), 100);
        assert!(!log.is_active(&space).unwrap());
    }

    #[test]
    fn rollback_applies_newest_first() {
        let (mut space, pool, a, _) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        log.begin(&mut space).unwrap();
        // Log the same word twice with an intermediate update.
        log.log_word(&mut space, a).unwrap(); // old = 100
        write(&mut space, a, 200);
        log.log_word(&mut space, a).unwrap(); // old = 200
        write(&mut space, a, 300);
        log.abort(&mut space).unwrap();
        assert_eq!(read(&space, a), 100, "reverse order restores the first value");
    }

    #[test]
    fn misuse_is_rejected() {
        let (mut space, pool, a, _) = setup();
        let log = UndoLog::ensure(&mut space, pool, 2).unwrap();
        assert!(log.log_word(&mut space, a).is_err(), "no txn open");
        assert!(log.commit(&mut space).is_err());
        log.begin(&mut space).unwrap();
        assert!(log.begin(&mut space).is_err(), "no nesting");
        // Capacity 2: the third log_word overflows.
        log.log_word(&mut space, a).unwrap();
        log.log_word(&mut space, a).unwrap();
        assert!(matches!(
            log.log_word(&mut space, a),
            Err(HeapError::OutOfMemory { .. })
        ));
        log.commit(&mut space).unwrap();
    }

    #[test]
    fn run_commits_on_ok_and_rolls_back_on_err() {
        let (mut space, pool, a, b) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        let sum = log
            .run(&mut space, |space, txn| {
                txn.log_word(space, a)?;
                let va = space.ra2va(a)?;
                space.write_u64(va, 70)?;
                txn.log_word(space, b)?;
                let vb = space.ra2va(b)?;
                space.write_u64(vb, 80)?;
                Ok(70 + 80)
            })
            .unwrap();
        assert_eq!(sum, 150);
        assert!(!log.is_active(&space).unwrap());
        assert_eq!(read(&space, a), 70);
        assert_eq!(read(&space, b), 80);

        // Err path: the debit is rolled back, the log is disarmed.
        let err = log.run(&mut space, |space, txn| {
            txn.log_word(space, a)?;
            let va = space.ra2va(a)?;
            space.write_u64(va, 0)?;
            Err::<(), _>(HeapError::OutOfMemory { requested: 1 })
        });
        assert!(matches!(err, Err(HeapError::OutOfMemory { .. })));
        assert!(!log.is_active(&space).unwrap());
        assert_eq!(read(&space, a), 70, "rolled back to pre-txn value");
    }

    #[test]
    fn run_leaves_log_armed_on_injected_crash() {
        let (mut space, pool, a, _) = setup();
        let log = UndoLog::ensure(&mut space, pool, 16).unwrap();
        space.set_faults(crate::faults::FaultPlan::crash_at(4));
        let err = log.run(&mut space, |space, txn| {
            txn.log_word(space, a)?;
            let va = space.ra2va(a)?;
            space.write_u64(va, 7)
        });
        assert!(matches!(err, Err(HeapError::CrashInjected { .. })));
        // No abort ran: the torn log is recovery's job, as after a real
        // crash. (It may or may not be armed depending on the point.)
        space.set_faults(crate::faults::FaultPlan::disabled());
        UndoLog::recover(&mut space, pool).unwrap();
        assert!(!log.is_active(&space).unwrap());
        assert_eq!(read(&space, a), 100);
    }

    #[test]
    fn ensure_is_idempotent_and_open_finds_it() {
        let (mut space, pool, _, _) = setup();
        let l1 = UndoLog::ensure(&mut space, pool, 8).unwrap();
        let l2 = UndoLog::ensure(&mut space, pool, 8).unwrap();
        assert_eq!(l1.base, l2.base);
        let l3 = UndoLog::open(&space, pool).unwrap();
        assert_eq!(l1.base, l3.base);
        assert_eq!(l3.capacity, 8);
    }

    #[test]
    fn foreign_pool_word_rejected() {
        let (mut space, pool, _, _) = setup();
        let other = space.create_pool("other", 1 << 20).unwrap();
        let foreign = space.pmalloc(other, 16).unwrap();
        let log = UndoLog::ensure(&mut space, pool, 8).unwrap();
        log.begin(&mut space).unwrap();
        assert!(matches!(
            log.log_word(&mut space, foreign),
            Err(HeapError::NoSuchPool(_))
        ));
    }

    #[test]
    fn capacity_survives_crash_mid_transaction() {
        // A torn transaction must not corrupt the stored capacity: after
        // recovery the log accepts exactly `capacity` entries again.
        let (mut space, pool, a, _) = setup();
        let log = UndoLog::ensure(&mut space, pool, 3).unwrap();
        log.begin(&mut space).unwrap();
        log.log_word(&mut space, a).unwrap();
        write(&mut space, a, 7);
        space.restart();
        space.open_pool("txn").unwrap();
        assert!(UndoLog::recover(&mut space, pool).unwrap());
        let reopened = UndoLog::open(&space, pool).unwrap();
        assert_eq!(read(&space, a), 100, "torn write rolled back");
        reopened.begin(&mut space).unwrap();
        for _ in 0..3 {
            reopened.log_word(&mut space, a).unwrap();
        }
        assert!(matches!(
            reopened.log_word(&mut space, a),
            Err(HeapError::OutOfMemory { .. })
        ));
        reopened.commit(&mut space).unwrap();
    }

    #[test]
    fn lone_slot_zero_keeps_the_plain_format() {
        let (mut space, pool, _, _) = setup();
        let l1 = UndoLog::ensure_slot(&mut space, pool, 8, 0).unwrap();
        let l2 = UndoLog::ensure(&mut space, pool, 8).unwrap();
        assert_eq!(l1.base, l2.base, "slot 0 and plain ensure are the same log");
        // The header points straight at the log area — no directory.
        let hdr = space.pool_read_u64(pool, HDR_LOG_SLOT).unwrap();
        assert_eq!(hdr, l1.base);
        assert_ne!(space.pool_read_u64(pool, hdr).unwrap(), DIR_MAGIC);
    }

    #[test]
    fn second_slot_installs_directory_and_migrates_slot_zero() {
        let (mut space, pool, a, _) = setup();
        let plain = UndoLog::ensure(&mut space, pool, 8).unwrap();
        let slot1 = UndoLog::ensure_slot(&mut space, pool, 4, 1).unwrap();
        assert_ne!(plain.base, slot1.base);
        // The plain log migrated into slot 0; old handles and `open` both
        // still resolve to it.
        let hdr = space.pool_read_u64(pool, HDR_LOG_SLOT).unwrap();
        assert_eq!(space.pool_read_u64(pool, hdr).unwrap(), DIR_MAGIC);
        assert_eq!(UndoLog::open(&space, pool).unwrap().base, plain.base);
        assert_eq!(UndoLog::open_slot(&space, pool, 0).unwrap().base, plain.base);
        assert_eq!(UndoLog::open_slot(&space, pool, 1).unwrap().base, slot1.base);
        assert_eq!(UndoLog::open_slot(&space, pool, 1).unwrap().capacity, 4);
        // The migrated handle still runs transactions.
        plain
            .run(&mut space, |space, txn| {
                txn.log_word(space, a)?;
                let va = space.ra2va(a)?;
                space.write_u64(va, 7)
            })
            .unwrap();
        assert_eq!(read(&space, a), 7);
        // ensure_slot is idempotent per slot.
        assert_eq!(UndoLog::ensure_slot(&mut space, pool, 9, 1).unwrap().base, slot1.base);
        // Unmaterialized slots stay closed.
        assert!(UndoLog::open_slot(&space, pool, 2).is_err());
        assert!(UndoLog::ensure_slot(&mut space, pool, 4, MAX_LOG_SLOTS).is_err());
    }

    #[test]
    fn recovery_rolls_back_every_active_slot() {
        let (mut space, pool, a, b) = setup();
        let l0 = UndoLog::ensure_slot(&mut space, pool, 8, 0).unwrap();
        let l1 = UndoLog::ensure_slot(&mut space, pool, 8, 1).unwrap();
        // Two worker threads each tear a transaction on disjoint words.
        l0.begin(&mut space).unwrap();
        l0.log_word(&mut space, a).unwrap();
        write(&mut space, a, 1);
        l1.begin(&mut space).unwrap();
        l1.log_word(&mut space, b).unwrap();
        write(&mut space, b, 2);
        space.restart();
        space.open_pool("txn").unwrap();
        assert!(UndoLog::recover(&mut space, pool).unwrap(), "rollbacks expected");
        assert_eq!(read(&space, a), 100, "slot 0 rolled back");
        assert_eq!(read(&space, b), 50, "slot 1 rolled back");
        assert!(!UndoLog::open_slot(&space, pool, 0).unwrap().is_active(&space).unwrap());
        assert!(!UndoLog::open_slot(&space, pool, 1).unwrap().is_active(&space).unwrap());
        assert!(!UndoLog::recover(&mut space, pool).unwrap(), "second pass is a no-op");
    }

    #[test]
    fn rollback_rejects_implausible_count_instead_of_replaying() {
        let (mut space, pool, a, _b) = setup();
        let log = UndoLog::ensure(&mut space, pool, 8).unwrap();
        // Forge a mid-crash image whose count word decayed past the
        // capacity — replaying it would scatter garbage over the pool.
        space.pool_write_u64(pool, log.base + LOG_ACTIVE, 1).unwrap();
        space.pool_write_u64(pool, log.base + LOG_COUNT, 99).unwrap();
        let err = UndoLog::recover(&mut space, pool).unwrap_err();
        assert!(matches!(err, HeapError::CorruptRegion("log count exceeds capacity")));
        assert_eq!(read(&space, a), 100, "no replay happened");
    }
}
