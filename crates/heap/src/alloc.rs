//! A boundary-tag free-list allocator whose metadata lives *inside* the
//! simulated memory it manages.
//!
//! Keeping the header, footer, and free-list links in the managed region is
//! what makes persistent pools genuinely reopenable: after a simulated crash
//! or a detach/re-attach at a different base address, [`Region::open`]
//! recovers the allocator state from the bytes of the pool alone, exactly as
//! a PMDK-style persistent allocator must.
//!
//! Layout (offsets relative to the region base):
//!
//! ```text
//! 0x00  magic            "UTPRHEAP"
//! 0x08  region size      bytes
//! 0x10  free-list head   block offset, 0 = empty
//! 0x18  allocated bytes  statistic
//! 0x20  allocation count statistic
//! 0x28  root object      user-settable persistent root (like pmemobj root)
//! 0x40  first block
//! ```
//!
//! Each block starts with a `u64` header `size | allocated_bit` and ends
//! with an identical footer so that `free` can coalesce with its neighbours
//! in O(1). Free blocks store `next`/`prev` free-list links in their payload.

use crate::error::{HeapError, Result};

/// Memory a [`Region`] manages: 8-byte loads and stores at region-relative
/// offsets. Implemented by pool backing stores and the DRAM half.
pub trait MemWords {
    /// Reads the `u64` at region-relative `offset`.
    fn read_word(&self, offset: u64) -> u64;
    /// Writes the `u64` at region-relative `offset`.
    fn write_word(&mut self, offset: u64, value: u64);
}

impl MemWords for crate::pagestore::PageStore {
    fn read_word(&self, offset: u64) -> u64 {
        self.read_u64(offset)
    }
    fn write_word(&mut self, offset: u64, value: u64) {
        self.write_u64(offset, value)
    }
}

const MAGIC: u64 = u64::from_le_bytes(*b"UTPRHEAP");
const OFF_MAGIC: u64 = 0x00;
const OFF_SIZE: u64 = 0x08;
const OFF_FREE_HEAD: u64 = 0x10;
const OFF_ALLOC_BYTES: u64 = 0x18;
const OFF_ALLOC_COUNT: u64 = 0x20;
const OFF_ROOT: u64 = 0x28;
const FIRST_BLOCK: u64 = 0x40;

const ALLOCATED: u64 = 1;
const SIZE_MASK: u64 = !0xf;
/// Smallest block: header + two links + footer.
const MIN_BLOCK: u64 = 32;
/// Header + footer overhead per block.
const OVERHEAD: u64 = 16;

/// Handle to an allocator-managed region of simulated memory.
///
/// The handle itself holds only the region size; all mutable state lives in
/// the managed memory, which is passed to each call. Payload offsets returned
/// by [`Region::alloc`] are 8-byte aligned.
///
/// # Examples
///
/// ```
/// use utpr_heap::alloc::Region;
/// use utpr_heap::pagestore::PageStore;
///
/// let mut mem = PageStore::new();
/// let region = Region::format(&mut mem, 1 << 16).unwrap();
/// let a = region.alloc(&mut mem, 64).unwrap();
/// let b = region.alloc(&mut mem, 64).unwrap();
/// assert_ne!(a, b);
/// region.free(&mut mem, a).unwrap();
/// // Reopen from raw bytes, as after a crash:
/// let reopened = Region::open(&mem).unwrap();
/// assert_eq!(reopened.size(), region.size());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    size: u64,
}

impl Region {
    /// Formats `mem` as an empty region of `size` bytes and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadPoolSize`] if `size` is smaller than the
    /// minimum viable region or not 16-byte aligned.
    pub fn format<M: MemWords>(mem: &mut M, size: u64) -> Result<Region> {
        if size < FIRST_BLOCK + MIN_BLOCK || size % 16 != 0 {
            return Err(HeapError::BadPoolSize(size));
        }
        mem.write_word(OFF_MAGIC, MAGIC);
        mem.write_word(OFF_SIZE, size);
        mem.write_word(OFF_ALLOC_BYTES, 0);
        mem.write_word(OFF_ALLOC_COUNT, 0);
        mem.write_word(OFF_ROOT, 0);
        let block_size = size - FIRST_BLOCK;
        let region = Region { size };
        region.set_header(mem, FIRST_BLOCK, block_size, false);
        mem.write_word(OFF_FREE_HEAD, FIRST_BLOCK);
        region.set_links(mem, FIRST_BLOCK, 0, 0);
        Ok(region)
    }

    /// Opens an already-formatted region, validating its header.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] when the magic or size field is
    /// implausible.
    pub fn open<M: MemWords>(mem: &M) -> Result<Region> {
        if mem.read_word(OFF_MAGIC) != MAGIC {
            return Err(HeapError::CorruptRegion("bad magic"));
        }
        let size = mem.read_word(OFF_SIZE);
        if size < FIRST_BLOCK + MIN_BLOCK {
            return Err(HeapError::CorruptRegion("implausible size"));
        }
        Ok(Region { size })
    }

    /// Total region size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently handed out to live allocations (payloads only).
    pub fn allocated_bytes<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ALLOC_BYTES)
    }

    /// Number of live allocations.
    pub fn allocation_count<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ALLOC_COUNT)
    }

    /// Reads the user root-object word (a persistent entry point, like
    /// `pmemobj_root`). Zero when never set.
    pub fn root<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ROOT)
    }

    /// Stores the user root-object word.
    pub fn set_root<M: MemWords>(&self, mem: &mut M, value: u64) {
        mem.write_word(OFF_ROOT, value)
    }

    // ---- block primitives -------------------------------------------------

    fn header(&self, mem: &impl MemWords, block: u64) -> (u64, bool) {
        let h = mem.read_word(block);
        (h & SIZE_MASK, h & ALLOCATED != 0)
    }

    fn set_header<M: MemWords>(&self, mem: &mut M, block: u64, size: u64, allocated: bool) {
        let word = size | if allocated { ALLOCATED } else { 0 };
        mem.write_word(block, word);
        mem.write_word(block + size - 8, word);
    }

    fn links(&self, mem: &impl MemWords, block: u64) -> (u64, u64) {
        (mem.read_word(block + 8), mem.read_word(block + 16))
    }

    fn set_links<M: MemWords>(&self, mem: &mut M, block: u64, next: u64, prev: u64) {
        mem.write_word(block + 8, next);
        mem.write_word(block + 16, prev);
    }

    fn unlink<M: MemWords>(&self, mem: &mut M, block: u64) {
        let (next, prev) = self.links(mem, block);
        if prev == 0 {
            mem.write_word(OFF_FREE_HEAD, next);
        } else {
            mem.write_word(prev + 8, next);
        }
        if next != 0 {
            mem.write_word(next + 16, prev);
        }
    }

    fn push_front<M: MemWords>(&self, mem: &mut M, block: u64) {
        let head = mem.read_word(OFF_FREE_HEAD);
        self.set_links(mem, block, head, 0);
        if head != 0 {
            mem.write_word(head + 16, block);
        }
        mem.write_word(OFF_FREE_HEAD, block);
    }

    // ---- public alloc/free ------------------------------------------------

    /// Allocates `size` bytes and returns the payload offset.
    ///
    /// The payload is zeroed for freshly split blocks only in the sense that
    /// never-written backing memory reads zero; recycled blocks retain stale
    /// bytes, as a real allocator's do.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when no free block can satisfy the
    /// request.
    pub fn alloc<M: MemWords>(&self, mem: &mut M, size: u64) -> Result<u64> {
        let need = ((size + OVERHEAD + 15) & !15).max(MIN_BLOCK);
        let mut cursor = mem.read_word(OFF_FREE_HEAD);
        while cursor != 0 {
            let (bsize, allocated) = self.header(mem, cursor);
            debug_assert!(!allocated, "allocated block on free list");
            if bsize >= need {
                self.unlink(mem, cursor);
                if bsize - need >= MIN_BLOCK {
                    // Split: keep the front for the allocation, free the rest.
                    let rest = cursor + need;
                    self.set_header(mem, rest, bsize - need, false);
                    self.push_front(mem, rest);
                    self.set_header(mem, cursor, need, true);
                } else {
                    self.set_header(mem, cursor, bsize, true);
                }
                let (final_size, _) = self.header(mem, cursor);
                mem.write_word(
                    OFF_ALLOC_BYTES,
                    mem.read_word(OFF_ALLOC_BYTES) + (final_size - OVERHEAD),
                );
                mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) + 1);
                return Ok(cursor + 8);
            }
            cursor = self.links(mem, cursor).0;
        }
        Err(HeapError::OutOfMemory { requested: size })
    }

    /// Frees the allocation whose payload starts at `payload`, coalescing
    /// with free neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadFree`] when `payload` is not the start of a
    /// live allocation.
    pub fn free<M: MemWords>(&self, mem: &mut M, payload: u64) -> Result<()> {
        if payload < FIRST_BLOCK + 8 || payload >= self.size || payload % 8 != 0 {
            return Err(HeapError::BadFree(payload));
        }
        let mut block = payload - 8;
        let (mut size, allocated) = self.header(mem, block);
        if !allocated || size < MIN_BLOCK || block + size > self.size {
            return Err(HeapError::BadFree(payload));
        }
        mem.write_word(OFF_ALLOC_BYTES, mem.read_word(OFF_ALLOC_BYTES) - (size - OVERHEAD));
        mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) - 1);

        // Coalesce with the following block.
        let next = block + size;
        if next < self.size {
            let (nsize, nalloc) = self.header(mem, next);
            if !nalloc {
                self.unlink(mem, next);
                size += nsize;
            }
        }
        // Coalesce with the preceding block via its footer.
        if block > FIRST_BLOCK {
            let pfoot = mem.read_word(block - 8);
            if pfoot & ALLOCATED == 0 {
                let psize = pfoot & SIZE_MASK;
                let prev = block - psize;
                self.unlink(mem, prev);
                block = prev;
                size += psize;
            }
        }
        self.set_header(mem, block, size, false);
        self.push_front(mem, block);
        Ok(())
    }

    /// Walks every block and checks structural invariants. Returns the number
    /// of blocks. Intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] describing the first violated
    /// invariant.
    pub fn validate<M: MemWords>(&self, mem: &M) -> Result<usize> {
        let mut cursor = FIRST_BLOCK;
        let mut blocks = 0usize;
        let mut free_bytes = 0u64;
        let mut prev_free = false;
        while cursor < self.size {
            let (size, allocated) = self.header(mem, cursor);
            if size < MIN_BLOCK || size % 16 != 0 || cursor + size > self.size {
                return Err(HeapError::CorruptRegion("bad block size"));
            }
            let footer = mem.read_word(cursor + size - 8);
            if footer != mem.read_word(cursor) {
                return Err(HeapError::CorruptRegion("footer mismatch"));
            }
            if !allocated {
                if prev_free {
                    return Err(HeapError::CorruptRegion("adjacent free blocks"));
                }
                free_bytes += size;
            }
            prev_free = !allocated;
            cursor += size;
            blocks += 1;
        }
        if cursor != self.size {
            return Err(HeapError::CorruptRegion("blocks do not tile region"));
        }
        // Free list must reach exactly the free bytes counted by the walk.
        let mut listed = 0u64;
        let mut f = mem.read_word(OFF_FREE_HEAD);
        let mut hops = 0usize;
        while f != 0 {
            let (size, allocated) = self.header(mem, f);
            if allocated {
                return Err(HeapError::CorruptRegion("allocated block on free list"));
            }
            listed += size;
            f = self.links(mem, f).0;
            hops += 1;
            if hops > blocks {
                return Err(HeapError::CorruptRegion("free list cycle"));
            }
        }
        if listed != free_bytes {
            return Err(HeapError::CorruptRegion("free list misses blocks"));
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::PageStore;

    fn setup(size: u64) -> (PageStore, Region) {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, size).unwrap();
        (mem, region)
    }

    #[test]
    fn format_rejects_tiny_or_unaligned() {
        let mut mem = PageStore::new();
        assert!(matches!(Region::format(&mut mem, 16), Err(HeapError::BadPoolSize(_))));
        assert!(matches!(Region::format(&mut mem, 4097), Err(HeapError::BadPoolSize(_))));
    }

    #[test]
    fn alloc_free_roundtrip_and_coalesce() {
        let (mut mem, r) = setup(1 << 16);
        let a = r.alloc(&mut mem, 100).unwrap();
        let b = r.alloc(&mut mem, 100).unwrap();
        let c = r.alloc(&mut mem, 100).unwrap();
        assert_eq!(r.allocation_count(&mem), 3);
        r.free(&mut mem, b).unwrap();
        r.free(&mut mem, a).unwrap();
        r.free(&mut mem, c).unwrap();
        assert_eq!(r.allocation_count(&mem), 0);
        assert_eq!(r.allocated_bytes(&mem), 0);
        // Full coalescing: a single free block spanning the region.
        assert_eq!(r.validate(&mem).unwrap(), 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, r) = setup(1 << 16);
        let mut offs = Vec::new();
        for i in 0..40u64 {
            let p = r.alloc(&mut mem, 24 + i * 8).unwrap();
            mem.write_word(p, i);
            offs.push((p, i));
        }
        for (p, i) in &offs {
            assert_eq!(mem.read_word(*p), *i);
        }
        r.validate(&mem).unwrap();
    }

    #[test]
    fn oom_when_exhausted() {
        let (mut mem, r) = setup(4096);
        let mut live = Vec::new();
        loop {
            match r.alloc(&mut mem, 128) {
                Ok(p) => live.push(p),
                Err(HeapError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(!live.is_empty());
        // Freeing one makes room again.
        r.free(&mut mem, live.pop().unwrap()).unwrap();
        r.alloc(&mut mem, 128).unwrap();
    }

    #[test]
    fn bad_free_detected() {
        let (mut mem, r) = setup(1 << 14);
        assert!(matches!(r.free(&mut mem, 0), Err(HeapError::BadFree(_))));
        assert!(matches!(r.free(&mut mem, 13), Err(HeapError::BadFree(_))));
        let a = r.alloc(&mut mem, 64).unwrap();
        r.free(&mut mem, a).unwrap();
        // Double free: header no longer marked allocated.
        assert!(matches!(r.free(&mut mem, a), Err(HeapError::BadFree(_))));
    }

    #[test]
    fn reopen_preserves_state() {
        let (mut mem, r) = setup(1 << 14);
        let a = r.alloc(&mut mem, 64).unwrap();
        r.set_root(&mut mem, a);
        let r2 = Region::open(&mem).unwrap();
        assert_eq!(r2.size(), r.size());
        assert_eq!(r2.root(&mem), a);
        assert_eq!(r2.allocation_count(&mem), 1);
        // The reopened handle can free the old allocation.
        r2.free(&mut mem, a).unwrap();
        assert_eq!(r2.allocation_count(&mem), 0);
    }

    #[test]
    fn open_rejects_garbage() {
        let mem = PageStore::new();
        assert!(matches!(Region::open(&mem), Err(HeapError::CorruptRegion(_))));
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (mut mem, r) = setup(1 << 14);
        let big = r.alloc(&mut mem, 4096).unwrap();
        r.free(&mut mem, big).unwrap();
        // Allocate small out of the coalesced region; remainder must be valid.
        let _small = r.alloc(&mut mem, 16).unwrap();
        r.validate(&mem).unwrap();
    }

    #[test]
    fn stress_random_alloc_free() {
        let (mut mem, r) = setup(1 << 18);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000 {
            if next() % 3 != 0 || live.is_empty() {
                let size = next() % 200 + 1;
                if let Ok(p) = r.alloc(&mut mem, size) {
                    let tag = next();
                    mem.write_word(p, tag);
                    live.push((p, tag));
                }
            } else {
                let idx = (next() as usize) % live.len();
                let (p, tag) = live.swap_remove(idx);
                assert_eq!(mem.read_word(p), tag, "clobbered at step {step}");
                r.free(&mut mem, p).unwrap();
            }
        }
        r.validate(&mem).unwrap();
        for (p, tag) in live {
            assert_eq!(mem.read_word(p), tag);
            r.free(&mut mem, p).unwrap();
        }
        assert_eq!(r.validate(&mem).unwrap(), 1);
    }
}
