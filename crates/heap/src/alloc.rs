//! A boundary-tag free-list allocator whose metadata lives *inside* the
//! simulated memory it manages.
//!
//! Keeping the header, footer, and free-list links in the managed region is
//! what makes persistent pools genuinely reopenable: after a simulated crash
//! or a detach/re-attach at a different base address, [`Region::open`]
//! recovers the allocator state from the bytes of the pool alone, exactly as
//! a PMDK-style persistent allocator must.
//!
//! Layout (offsets relative to the region base):
//!
//! ```text
//! 0x00  magic            "UTPRHEAP"
//! 0x08  region size      bytes
//! 0x10  free-list head   block offset, 0 = empty
//! 0x18  allocated bytes  statistic
//! 0x20  allocation count statistic
//! 0x28  root object      user-settable persistent root (like pmemobj root)
//! 0x38  version + CRC    low 32: format version, high 32: header CRC32
//! 0x40  first block
//! ```
//!
//! The header CRC covers only the *immutable* header fields (magic, size,
//! version), so it never needs rewriting on the hot path; mutable words
//! (free head, statistics, root) are covered by the page-level sidecar in
//! [`crate::integrity`] instead.
//!
//! Each block starts with a `u64` header `size | allocated_bit` and ends
//! with an identical footer so that `free` can coalesce with its neighbours
//! in O(1). Free blocks store `next`/`prev` free-list links in their payload.

use crate::error::{HeapError, Result};
use crate::integrity::{crc32, FORMAT_VERSION};

/// Memory a [`Region`] manages: 8-byte loads and stores at region-relative
/// offsets. Implemented by pool backing stores and the DRAM half.
pub trait MemWords {
    /// Reads the `u64` at region-relative `offset`.
    fn read_word(&self, offset: u64) -> u64;
    /// Writes the `u64` at region-relative `offset`.
    fn write_word(&mut self, offset: u64, value: u64);
}

impl MemWords for crate::pagestore::PageStore {
    #[inline]
    fn read_word(&self, offset: u64) -> u64 {
        self.read_u64(offset)
    }
    #[inline]
    fn write_word(&mut self, offset: u64, value: u64) {
        self.write_u64(offset, value)
    }
}

const MAGIC: u64 = u64::from_le_bytes(*b"UTPRHEAP");
const OFF_MAGIC: u64 = 0x00;
const OFF_SIZE: u64 = 0x08;
const OFF_FREE_HEAD: u64 = 0x10;
const OFF_ALLOC_BYTES: u64 = 0x18;
const OFF_ALLOC_COUNT: u64 = 0x20;
const OFF_ROOT: u64 = 0x28;
/// Low 32 bits: format version; high 32 bits: CRC32 of the immutable
/// header fields. (0x30 is reserved for the transaction log pointer.)
const OFF_VERSION: u64 = 0x38;
const FIRST_BLOCK: u64 = 0x40;

const ALLOCATED: u64 = 1;
const SIZE_MASK: u64 = !0xf;
/// Smallest block: header + two links + footer.
const MIN_BLOCK: u64 = 32;
/// Header + footer overhead per block.
const OVERHEAD: u64 = 16;

/// CRC32 of the immutable header fields (magic, size, format version).
fn header_crc(size: u64) -> u32 {
    let mut bytes = [0u8; 20];
    bytes[..8].copy_from_slice(&MAGIC.to_le_bytes());
    bytes[8..16].copy_from_slice(&size.to_le_bytes());
    bytes[16..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    crc32(&bytes)
}

/// One block the salvage walk found intact (header and footer agree and
/// the block lies fully inside the region).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SalvageBlock {
    /// Region-relative payload offset (what `alloc` returned for it).
    pub payload: u64,
    /// Payload bytes.
    pub size: u64,
    /// Whether the block was marked allocated.
    pub allocated: bool,
}

/// What [`Region::salvage`] recovered from a damaged region.
#[derive(Clone, Debug, Default)]
pub struct SalvageReport {
    /// Every structurally-intact block, in address order.
    pub blocks: Vec<SalvageBlock>,
    /// Bytes covered by intact blocks (headers included).
    pub intact_bytes: u64,
    /// Bytes skipped because no plausible block explained them.
    pub lost_bytes: u64,
    /// Number of times the walk lost block framing and had to re-sync.
    pub resyncs: u64,
}

/// Recovered-vs-lost accounting of one salvage pass — the single summary
/// both the corruption bench and the online scrubber report, so the two
/// paths can never drift apart on what "recovered" means.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalvageStats {
    /// Structurally-intact blocks the walk recovered.
    pub blocks_recovered: u64,
    /// Recovered blocks that were live allocations (payloads a caller may
    /// still hold offsets into).
    pub allocated_recovered: u64,
    /// Bytes covered by intact blocks (headers included).
    pub intact_bytes: u64,
    /// Bytes written off because no plausible block explained them.
    pub lost_bytes: u64,
    /// Times the walk lost block framing and had to re-sync.
    pub resyncs: u64,
}

impl SalvageStats {
    /// Accumulates another pass into this one (the scrubber sums stats
    /// across repair episodes).
    pub fn merge(&mut self, other: &SalvageStats) {
        self.blocks_recovered += other.blocks_recovered;
        self.allocated_recovered += other.allocated_recovered;
        self.intact_bytes += other.intact_bytes;
        self.lost_bytes += other.lost_bytes;
        self.resyncs += other.resyncs;
    }
}

impl SalvageReport {
    /// The recovered-vs-lost summary of this pass.
    #[must_use]
    pub fn stats(&self) -> SalvageStats {
        SalvageStats {
            blocks_recovered: self.blocks.len() as u64,
            allocated_recovered: self.blocks.iter().filter(|b| b.allocated).count() as u64,
            intact_bytes: self.intact_bytes,
            lost_bytes: self.lost_bytes,
            resyncs: self.resyncs,
        }
    }
}

/// Handle to an allocator-managed region of simulated memory.
///
/// The handle itself holds only the region size; all mutable state lives in
/// the managed memory, which is passed to each call. Payload offsets returned
/// by [`Region::alloc`] are 8-byte aligned.
///
/// # Examples
///
/// ```
/// use utpr_heap::alloc::Region;
/// use utpr_heap::pagestore::PageStore;
///
/// let mut mem = PageStore::new();
/// let region = Region::format(&mut mem, 1 << 16).unwrap();
/// let a = region.alloc(&mut mem, 64).unwrap();
/// let b = region.alloc(&mut mem, 64).unwrap();
/// assert_ne!(a, b);
/// region.free(&mut mem, a).unwrap();
/// // Reopen from raw bytes, as after a crash:
/// let reopened = Region::open(&mem).unwrap();
/// assert_eq!(reopened.size(), region.size());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    size: u64,
}

impl Region {
    /// Formats `mem` as an empty region of `size` bytes and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadPoolSize`] if `size` is smaller than the
    /// minimum viable region or not 16-byte aligned.
    pub fn format<M: MemWords>(mem: &mut M, size: u64) -> Result<Region> {
        if size < FIRST_BLOCK + MIN_BLOCK || size % 16 != 0 {
            return Err(HeapError::BadPoolSize(size));
        }
        mem.write_word(OFF_MAGIC, MAGIC);
        mem.write_word(OFF_SIZE, size);
        mem.write_word(OFF_ALLOC_BYTES, 0);
        mem.write_word(OFF_ALLOC_COUNT, 0);
        mem.write_word(OFF_ROOT, 0);
        let crc = header_crc(size);
        mem.write_word(OFF_VERSION, u64::from(FORMAT_VERSION) | (u64::from(crc) << 32));
        let block_size = size - FIRST_BLOCK;
        let region = Region { size };
        region.set_header(mem, FIRST_BLOCK, block_size, false);
        mem.write_word(OFF_FREE_HEAD, FIRST_BLOCK);
        region.set_links(mem, FIRST_BLOCK, 0, 0);
        Ok(region)
    }

    /// Opens an already-formatted region, validating its versioned header
    /// (magic, size plausibility, format version, header CRC) and then the
    /// full allocator structure — free-list links and block header/footer
    /// agreement — so a damaged pool is rejected with a typed error instead
    /// of handing out overlapping or out-of-bounds allocations later.
    ///
    /// # Errors
    ///
    /// - [`HeapError::BadPoolHeader`] when a header field is rejected;
    /// - [`HeapError::CorruptRegion`] when the block walk or free list
    ///   violates an invariant (see [`Region::validate`]). Use
    ///   [`Region::salvage`] to enumerate what survives in such a region.
    pub fn open<M: MemWords>(mem: &M) -> Result<Region> {
        if mem.read_word(OFF_MAGIC) != MAGIC {
            return Err(HeapError::BadPoolHeader { reason: "bad magic" });
        }
        let size = mem.read_word(OFF_SIZE);
        if size < FIRST_BLOCK + MIN_BLOCK {
            return Err(HeapError::BadPoolHeader { reason: "implausible size" });
        }
        if size % 16 != 0 {
            return Err(HeapError::BadPoolHeader { reason: "unaligned size" });
        }
        let vword = mem.read_word(OFF_VERSION);
        let version = (vword & 0xffff_ffff) as u32;
        if version != FORMAT_VERSION {
            return Err(HeapError::BadPoolHeader { reason: "unsupported format version" });
        }
        if (vword >> 32) as u32 != header_crc(size) {
            return Err(HeapError::BadPoolHeader { reason: "header checksum mismatch" });
        }
        let region = Region { size };
        region.validate(mem)?;
        Ok(region)
    }

    /// Builds a handle for a region of `size` bytes without validating
    /// anything — for constructors that must hold a handle before
    /// [`Region::format`] can run (the striped shared pool, whose word
    /// device borrows the owning struct). The caller must format or open
    /// the memory before using the handle.
    pub(crate) fn from_size_unchecked(size: u64) -> Region {
        Region { size }
    }

    /// Total region size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently handed out to live allocations (payloads only).
    pub fn allocated_bytes<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ALLOC_BYTES)
    }

    /// Number of live allocations.
    pub fn allocation_count<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ALLOC_COUNT)
    }

    /// Reads the user root-object word (a persistent entry point, like
    /// `pmemobj_root`). Zero when never set.
    pub fn root<M: MemWords>(&self, mem: &M) -> u64 {
        mem.read_word(OFF_ROOT)
    }

    /// Stores the user root-object word.
    pub fn set_root<M: MemWords>(&self, mem: &mut M, value: u64) {
        mem.write_word(OFF_ROOT, value)
    }

    // ---- block primitives -------------------------------------------------

    #[inline]
    fn header(&self, mem: &impl MemWords, block: u64) -> (u64, bool) {
        let h = mem.read_word(block);
        (h & SIZE_MASK, h & ALLOCATED != 0)
    }

    #[inline]
    fn set_header<M: MemWords>(&self, mem: &mut M, block: u64, size: u64, allocated: bool) {
        let word = size | if allocated { ALLOCATED } else { 0 };
        mem.write_word(block, word);
        mem.write_word(block + size - 8, word);
    }

    #[inline]
    fn links(&self, mem: &impl MemWords, block: u64) -> (u64, u64) {
        (mem.read_word(block + 8), mem.read_word(block + 16))
    }

    #[inline]
    fn set_links<M: MemWords>(&self, mem: &mut M, block: u64, next: u64, prev: u64) {
        mem.write_word(block + 8, next);
        mem.write_word(block + 16, prev);
    }

    fn unlink<M: MemWords>(&self, mem: &mut M, block: u64) {
        let (next, prev) = self.links(mem, block);
        if prev == 0 {
            mem.write_word(OFF_FREE_HEAD, next);
        } else {
            mem.write_word(prev + 8, next);
        }
        if next != 0 {
            mem.write_word(next + 16, prev);
        }
    }

    fn push_front<M: MemWords>(&self, mem: &mut M, block: u64) {
        let head = mem.read_word(OFF_FREE_HEAD);
        self.set_links(mem, block, head, 0);
        if head != 0 {
            mem.write_word(head + 16, block);
        }
        mem.write_word(OFF_FREE_HEAD, block);
    }

    // ---- public alloc/free ------------------------------------------------

    /// Allocates `size` bytes and returns the payload offset.
    ///
    /// The payload is zeroed for freshly split blocks only in the sense that
    /// never-written backing memory reads zero; recycled blocks retain stale
    /// bytes, as a real allocator's do.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when no free block can satisfy the
    /// request.
    pub fn alloc<M: MemWords>(&self, mem: &mut M, size: u64) -> Result<u64> {
        let need = ((size + OVERHEAD + 15) & !15).max(MIN_BLOCK);
        let mut cursor = mem.read_word(OFF_FREE_HEAD);
        while cursor != 0 {
            let (bsize, allocated) = self.header(mem, cursor);
            debug_assert!(!allocated, "allocated block on free list");
            if bsize >= need {
                self.unlink(mem, cursor);
                if bsize - need >= MIN_BLOCK {
                    // Split: keep the front for the allocation, free the rest.
                    let rest = cursor + need;
                    self.set_header(mem, rest, bsize - need, false);
                    self.push_front(mem, rest);
                    self.set_header(mem, cursor, need, true);
                } else {
                    self.set_header(mem, cursor, bsize, true);
                }
                let (final_size, _) = self.header(mem, cursor);
                mem.write_word(
                    OFF_ALLOC_BYTES,
                    mem.read_word(OFF_ALLOC_BYTES) + (final_size - OVERHEAD),
                );
                mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) + 1);
                return Ok(cursor + 8);
            }
            cursor = self.links(mem, cursor).0;
        }
        Err(HeapError::OutOfMemory { requested: size })
    }

    /// Wear-aware variant of [`Region::alloc`]: walks the *whole* free
    /// list and takes the fitting block whose pages score lowest under
    /// `page_score` (ties broken by lowest address, so the choice is
    /// deterministic). The score of a block is the maximum score over the
    /// pages its span touches — a block is only as fresh as its most-worn
    /// page.
    ///
    /// This is the wear-leveling ablation: with `page_score` returning the
    /// page's write count, allocation steers new data toward low-wear
    /// pages at the cost of an O(free blocks) walk instead of first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when no free block can satisfy
    /// the request.
    pub fn alloc_scored<M: MemWords, F: Fn(u64) -> u64>(
        &self,
        mem: &mut M,
        size: u64,
        page_score: F,
    ) -> Result<u64> {
        let need = Region::block_need(size);
        let mut cursor = mem.read_word(OFF_FREE_HEAD);
        let mut best: Option<(u64, u64, u64)> = None; // (score, block, bsize)
        while cursor != 0 {
            let (bsize, allocated) = self.header(mem, cursor);
            debug_assert!(!allocated, "allocated block on free list");
            if bsize >= need {
                let first = cursor / crate::pagestore::PAGE_SIZE;
                let last = (cursor + need - 1) / crate::pagestore::PAGE_SIZE;
                let score = (first..=last).map(&page_score).max().unwrap_or(0);
                if best.map_or(true, |(s, b, _)| score < s || (score == s && cursor < b)) {
                    best = Some((score, cursor, bsize));
                }
            }
            cursor = self.links(mem, cursor).0;
        }
        let Some((_, block, bsize)) = best else {
            return Err(HeapError::OutOfMemory { requested: size });
        };
        self.unlink(mem, block);
        if bsize - need >= MIN_BLOCK {
            let rest = block + need;
            self.set_header(mem, rest, bsize - need, false);
            self.push_front(mem, rest);
            self.set_header(mem, block, need, true);
        } else {
            self.set_header(mem, block, bsize, true);
        }
        let (final_size, _) = self.header(mem, block);
        mem.write_word(OFF_ALLOC_BYTES, mem.read_word(OFF_ALLOC_BYTES) + (final_size - OVERHEAD));
        mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) + 1);
        Ok(block + 8)
    }

    /// Total block bytes (header + footer + alignment padding) the
    /// allocator uses for a payload of `size` — the same rounding
    /// [`Region::alloc`] applies.
    pub(crate) fn block_need(size: u64) -> u64 {
        ((size + OVERHEAD + 15) & !15).max(MIN_BLOCK)
    }

    /// Minimum legal block size: a carve must never leave a remainder
    /// smaller than this.
    pub(crate) const fn min_block() -> u64 {
        MIN_BLOCK
    }

    /// The `(block start, block size)` of the live allocation whose payload
    /// starts at `payload` — for layers (the slab carver) that manage whole
    /// blocks rather than payloads.
    pub(crate) fn block_of<M: MemWords>(&self, mem: &M, payload: u64) -> (u64, u64) {
        let block = payload - 8;
        let (size, _) = self.header(mem, block);
        (block, size)
    }

    /// Splits the *allocated* block of `avail` bytes starting at `block`
    /// into an allocated front block of exactly `need` bytes and an
    /// allocated remainder, rewriting boundary tags so the block tiling
    /// invariant checked by [`Region::validate`] holds and either piece
    /// can later be passed to [`Region::free`] on its own.
    ///
    /// This is the arena-carve primitive of the multicore layer
    /// ([`crate::shard::SharedPool`]): a thread subdivides a privately
    /// leased block without touching the shared free list. It writes tags
    /// only; the caller must follow up with [`Region::note_split`] under
    /// whatever lock serialises the stats words.
    ///
    /// Requires `need <= avail` and `avail - need >= MIN_BLOCK`; hand the
    /// whole block out unsplit otherwise.
    pub(crate) fn carve_front<M: MemWords>(&self, mem: &mut M, block: u64, avail: u64, need: u64) {
        debug_assert!(need >= MIN_BLOCK && need % 16 == 0, "carve of {need} bytes");
        debug_assert!(need <= avail && avail - need >= MIN_BLOCK, "carve leaves a sliver");
        self.set_header(mem, block, need, true);
        self.set_header(mem, block + need, avail - need, true);
    }

    /// Accounts for one [`Region::carve_front`] split: the carve turned one
    /// allocated block into two, so the live-allocation count rises by one
    /// and the accounted payload bytes shrink by one block's overhead.
    /// With this adjustment, freeing every piece individually balances the
    /// ALLOC_BYTES/ALLOC_COUNT books exactly.
    pub(crate) fn note_split<M: MemWords>(&self, mem: &mut M) {
        mem.write_word(OFF_ALLOC_BYTES, mem.read_word(OFF_ALLOC_BYTES) - OVERHEAD);
        mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) + 1);
    }

    /// Frees the allocation whose payload starts at `payload`, coalescing
    /// with free neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadFree`] when `payload` is not the start of a
    /// live allocation.
    pub fn free<M: MemWords>(&self, mem: &mut M, payload: u64) -> Result<()> {
        if payload < FIRST_BLOCK + 8 || payload >= self.size || payload % 8 != 0 {
            return Err(HeapError::BadFree(payload));
        }
        let mut block = payload - 8;
        let (mut size, allocated) = self.header(mem, block);
        if !allocated || size < MIN_BLOCK || block + size > self.size {
            return Err(HeapError::BadFree(payload));
        }
        mem.write_word(OFF_ALLOC_BYTES, mem.read_word(OFF_ALLOC_BYTES) - (size - OVERHEAD));
        mem.write_word(OFF_ALLOC_COUNT, mem.read_word(OFF_ALLOC_COUNT) - 1);

        // Coalesce with the following block.
        let next = block + size;
        if next < self.size {
            let (nsize, nalloc) = self.header(mem, next);
            if !nalloc {
                self.unlink(mem, next);
                size += nsize;
            }
        }
        // Coalesce with the preceding block via its footer.
        if block > FIRST_BLOCK {
            let pfoot = mem.read_word(block - 8);
            if pfoot & ALLOCATED == 0 {
                let psize = pfoot & SIZE_MASK;
                let prev = block - psize;
                self.unlink(mem, prev);
                block = prev;
                size += psize;
            }
        }
        self.set_header(mem, block, size, false);
        self.push_front(mem, block);
        Ok(())
    }

    /// Walks every block and checks structural invariants. Returns the number
    /// of blocks. Intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] describing the first violated
    /// invariant.
    pub fn validate<M: MemWords>(&self, mem: &M) -> Result<usize> {
        let mut cursor = FIRST_BLOCK;
        let mut blocks = 0usize;
        let mut free_bytes = 0u64;
        let mut prev_free = false;
        while cursor < self.size {
            let (size, allocated) = self.header(mem, cursor);
            if size < MIN_BLOCK || size % 16 != 0 || cursor + size > self.size {
                return Err(HeapError::CorruptRegion("bad block size"));
            }
            let footer = mem.read_word(cursor + size - 8);
            if footer != mem.read_word(cursor) {
                return Err(HeapError::CorruptRegion("footer mismatch"));
            }
            if !allocated {
                if prev_free {
                    return Err(HeapError::CorruptRegion("adjacent free blocks"));
                }
                free_bytes += size;
            }
            prev_free = !allocated;
            cursor += size;
            blocks += 1;
        }
        if cursor != self.size {
            return Err(HeapError::CorruptRegion("blocks do not tile region"));
        }
        // Free list must reach exactly the free bytes counted by the walk.
        let mut listed = 0u64;
        let mut f = mem.read_word(OFF_FREE_HEAD);
        let mut hops = 0usize;
        while f != 0 {
            let (size, allocated) = self.header(mem, f);
            if allocated {
                return Err(HeapError::CorruptRegion("allocated block on free list"));
            }
            listed += size;
            f = self.links(mem, f).0;
            hops += 1;
            if hops > blocks {
                return Err(HeapError::CorruptRegion("free list cycle"));
            }
        }
        if listed != free_bytes {
            return Err(HeapError::CorruptRegion("free list misses blocks"));
        }
        Ok(blocks)
    }

    /// Best-effort enumeration of intact blocks in a region that may be
    /// damaged — the degraded-mode counterpart of [`Region::validate`].
    ///
    /// The walk starts at the first block and trusts a header only when it
    /// is plausible (size ≥ minimum, 16-byte aligned, in bounds) *and* its
    /// footer agrees. On disagreement it drops to a 16-byte-step forward
    /// scan until block framing re-syncs, accounting the skipped span as
    /// lost. The cursor strictly increases, so the walk always terminates
    /// and never panics, whatever the bytes contain.
    ///
    /// `size_hint` is used when the region's own size field is implausible
    /// (e.g. the header page is what got damaged); pass the pool size.
    pub fn salvage<M: MemWords>(mem: &M, size_hint: u64) -> SalvageReport {
        let stored = mem.read_word(OFF_SIZE);
        let plausible =
            stored >= FIRST_BLOCK + MIN_BLOCK && stored % 16 == 0 && (size_hint == 0 || stored <= size_hint);
        let size = if plausible { stored } else { size_hint };
        let mut report = SalvageReport::default();
        if size < FIRST_BLOCK + MIN_BLOCK {
            return report;
        }
        let probe = Region { size };
        let intact = |block: u64| -> Option<(u64, bool)> {
            let (bsize, allocated) = probe.header(mem, block);
            if bsize < MIN_BLOCK || bsize % 16 != 0 || block + bsize > size {
                return None;
            }
            (mem.read_word(block + bsize - 8) == mem.read_word(block)).then_some((bsize, allocated))
        };
        let mut cursor = FIRST_BLOCK;
        let mut lost_from: Option<u64> = None;
        while cursor + MIN_BLOCK <= size {
            match intact(cursor) {
                Some((bsize, allocated)) => {
                    if let Some(from) = lost_from.take() {
                        report.lost_bytes += cursor - from;
                        report.resyncs += 1;
                    }
                    report.blocks.push(SalvageBlock {
                        payload: cursor + 8,
                        size: bsize - OVERHEAD,
                        allocated,
                    });
                    report.intact_bytes += bsize;
                    cursor += bsize;
                }
                None => {
                    lost_from.get_or_insert(cursor);
                    cursor += 16;
                }
            }
        }
        if let Some(from) = lost_from {
            report.lost_bytes += size - from;
            report.resyncs += 1;
        } else {
            report.lost_bytes += size.saturating_sub(cursor.max(FIRST_BLOCK));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::PageStore;

    fn setup(size: u64) -> (PageStore, Region) {
        let mut mem = PageStore::new();
        let region = Region::format(&mut mem, size).unwrap();
        (mem, region)
    }

    #[test]
    fn format_rejects_tiny_or_unaligned() {
        let mut mem = PageStore::new();
        assert!(matches!(Region::format(&mut mem, 16), Err(HeapError::BadPoolSize(_))));
        assert!(matches!(Region::format(&mut mem, 4097), Err(HeapError::BadPoolSize(_))));
    }

    #[test]
    fn alloc_free_roundtrip_and_coalesce() {
        let (mut mem, r) = setup(1 << 16);
        let a = r.alloc(&mut mem, 100).unwrap();
        let b = r.alloc(&mut mem, 100).unwrap();
        let c = r.alloc(&mut mem, 100).unwrap();
        assert_eq!(r.allocation_count(&mem), 3);
        r.free(&mut mem, b).unwrap();
        r.free(&mut mem, a).unwrap();
        r.free(&mut mem, c).unwrap();
        assert_eq!(r.allocation_count(&mem), 0);
        assert_eq!(r.allocated_bytes(&mem), 0);
        // Full coalescing: a single free block spanning the region.
        assert_eq!(r.validate(&mem).unwrap(), 1);
    }

    #[test]
    fn carve_front_preserves_tiling_and_books() {
        let (mut mem, r) = setup(1 << 16);
        // Lease one large block, then carve three payloads off its front
        // the way the arena layer does.
        let lease_payload = r.alloc(&mut mem, 1024 - OVERHEAD).unwrap();
        let lease = lease_payload - 8;
        let mut cursor = lease;
        let mut avail = 1024u64;
        let mut payloads = Vec::new();
        for size in [40u64, 100, 64] {
            let need = Region::block_need(size);
            r.carve_front(&mut mem, cursor, avail, need);
            r.note_split(&mut mem);
            payloads.push(cursor + 8);
            cursor += need;
            avail -= need;
        }
        // The carved pieces plus the allocated remainder tile the lease and
        // the whole region still validates.
        r.validate(&mem).unwrap();
        assert_eq!(r.allocation_count(&mem), 4, "lease split into 3 + remainder");
        // Every piece frees individually; books return to zero.
        for p in payloads {
            r.free(&mut mem, p).unwrap();
        }
        r.free(&mut mem, cursor + 8).unwrap(); // the remainder block
        assert_eq!(r.allocation_count(&mem), 0);
        assert_eq!(r.allocated_bytes(&mem), 0);
        assert_eq!(r.validate(&mem).unwrap(), 1, "full coalesce after carve frees");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, r) = setup(1 << 16);
        let mut offs = Vec::new();
        for i in 0..40u64 {
            let p = r.alloc(&mut mem, 24 + i * 8).unwrap();
            mem.write_word(p, i);
            offs.push((p, i));
        }
        for (p, i) in &offs {
            assert_eq!(mem.read_word(*p), *i);
        }
        r.validate(&mem).unwrap();
    }

    #[test]
    fn oom_when_exhausted() {
        let (mut mem, r) = setup(4096);
        let mut live = Vec::new();
        loop {
            match r.alloc(&mut mem, 128) {
                Ok(p) => live.push(p),
                Err(HeapError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(!live.is_empty());
        // Freeing one makes room again.
        r.free(&mut mem, live.pop().unwrap()).unwrap();
        r.alloc(&mut mem, 128).unwrap();
    }

    #[test]
    fn bad_free_detected() {
        let (mut mem, r) = setup(1 << 14);
        assert!(matches!(r.free(&mut mem, 0), Err(HeapError::BadFree(_))));
        assert!(matches!(r.free(&mut mem, 13), Err(HeapError::BadFree(_))));
        let a = r.alloc(&mut mem, 64).unwrap();
        r.free(&mut mem, a).unwrap();
        // Double free: header no longer marked allocated.
        assert!(matches!(r.free(&mut mem, a), Err(HeapError::BadFree(_))));
    }

    #[test]
    fn reopen_preserves_state() {
        let (mut mem, r) = setup(1 << 14);
        let a = r.alloc(&mut mem, 64).unwrap();
        r.set_root(&mut mem, a);
        let r2 = Region::open(&mem).unwrap();
        assert_eq!(r2.size(), r.size());
        assert_eq!(r2.root(&mem), a);
        assert_eq!(r2.allocation_count(&mem), 1);
        // The reopened handle can free the old allocation.
        r2.free(&mut mem, a).unwrap();
        assert_eq!(r2.allocation_count(&mem), 0);
    }

    #[test]
    fn open_rejects_garbage() {
        let mem = PageStore::new();
        assert!(matches!(
            Region::open(&mem),
            Err(HeapError::BadPoolHeader { reason: "bad magic" })
        ));
    }

    #[test]
    fn open_rejects_wrong_version_and_header_crc() {
        let (mut mem, _r) = setup(1 << 14);
        let vword = mem.read_word(OFF_VERSION);
        // Wrong version, CRC untouched.
        mem.write_word(OFF_VERSION, (vword & !0xffff_ffff) | u64::from(FORMAT_VERSION + 1));
        assert!(matches!(
            Region::open(&mem),
            Err(HeapError::BadPoolHeader { reason: "unsupported format version" })
        ));
        // Right version, flipped CRC bit.
        mem.write_word(OFF_VERSION, vword ^ (1 << 40));
        assert!(matches!(
            Region::open(&mem),
            Err(HeapError::BadPoolHeader { reason: "header checksum mismatch" })
        ));
        // A size that disagrees with the CRC'd size is also caught.
        mem.write_word(OFF_VERSION, vword);
        mem.write_word(OFF_SIZE, 1 << 13);
        assert!(matches!(
            Region::open(&mem),
            Err(HeapError::BadPoolHeader { reason: "header checksum mismatch" })
        ));
    }

    #[test]
    fn open_rejects_corrupt_block_structure_with_reason() {
        let (mut mem, r) = setup(1 << 14);
        let a = r.alloc(&mut mem, 64).unwrap();
        // Smash the block header: footer no longer agrees.
        mem.write_word(a - 8, (MIN_BLOCK * 4) | ALLOCATED);
        match Region::open(&mem) {
            Err(HeapError::CorruptRegion(reason)) => assert!(!reason.is_empty()),
            other => panic!("expected CorruptRegion, got {other:?}"),
        }
    }

    #[test]
    fn salvage_on_healthy_region_finds_every_block_and_loses_nothing() {
        let (mut mem, r) = setup(1 << 14);
        let a = r.alloc(&mut mem, 64).unwrap();
        let _b = r.alloc(&mut mem, 64).unwrap();
        r.free(&mut mem, a).unwrap();
        let blocks = r.validate(&mem).unwrap();
        let report = Region::salvage(&mem, 1 << 14);
        assert_eq!(report.blocks.len(), blocks);
        assert_eq!(report.lost_bytes, 0);
        assert_eq!(report.resyncs, 0);
        assert_eq!(report.intact_bytes, (1 << 14) - FIRST_BLOCK);
        let allocated: Vec<u64> =
            report.blocks.iter().filter(|b| b.allocated).map(|b| b.payload).collect();
        assert!(allocated.contains(&_b));
        assert!(!allocated.contains(&a));
    }

    #[test]
    fn salvage_resyncs_past_a_smashed_block() {
        let (mut mem, r) = setup(1 << 14);
        let mut payloads = Vec::new();
        for _ in 0..6 {
            payloads.push(r.alloc(&mut mem, 48).unwrap());
        }
        // Destroy the second block's header word entirely.
        mem.write_word(payloads[1] - 8, 0xdead_beef_dead_beef);
        assert!(Region::open(&mem).is_err(), "validation must reject it");
        let report = Region::salvage(&mem, 1 << 14);
        let found: Vec<u64> =
            report.blocks.iter().filter(|b| b.allocated).map(|b| b.payload).collect();
        for (i, p) in payloads.iter().enumerate() {
            if i == 1 {
                assert!(!found.contains(p), "smashed block cannot be trusted");
            } else {
                assert!(found.contains(p), "block {i} should survive");
            }
        }
        assert!(report.lost_bytes > 0);
        assert!(report.resyncs >= 1);
    }

    #[test]
    fn salvage_never_panics_on_garbage_and_respects_the_hint() {
        let mut mem = PageStore::new();
        // Pure noise, no header at all.
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..512 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write_word(i * 8, x);
        }
        let report = Region::salvage(&mem, 4096);
        assert!(report.intact_bytes + report.lost_bytes <= 4096);
        // Zero hint and garbage size field: nothing to walk.
        let empty = Region::salvage(&PageStore::new(), 0);
        assert!(empty.blocks.is_empty());
    }

    #[test]
    fn salvage_stats_summarize_the_report() {
        let (mut mem, r) = setup(1 << 14);
        let a = r.alloc(&mut mem, 64).unwrap();
        let _b = r.alloc(&mut mem, 64).unwrap();
        r.free(&mut mem, a).unwrap();
        let report = Region::salvage(&mem, 1 << 14);
        let stats = report.stats();
        assert_eq!(stats.blocks_recovered, report.blocks.len() as u64);
        assert_eq!(stats.allocated_recovered, 1, "only _b is still live");
        assert_eq!(stats.intact_bytes, report.intact_bytes);
        assert_eq!(stats.lost_bytes, 0);
        let mut sum = SalvageStats::default();
        sum.merge(&stats);
        sum.merge(&stats);
        assert_eq!(sum.blocks_recovered, 2 * stats.blocks_recovered);
        assert_eq!(sum.intact_bytes, 2 * stats.intact_bytes);
    }

    #[test]
    fn alloc_scored_prefers_low_wear_pages_and_stays_valid() {
        let (mut mem, r) = setup(1 << 16);
        // Build a fragmented free list: allocate a run, free every other
        // block so freed holes sit at known pages.
        let mut payloads = Vec::new();
        for _ in 0..24 {
            payloads.push(r.alloc(&mut mem, 2000).unwrap());
        }
        for p in payloads.iter().step_by(2) {
            r.free(&mut mem, *p).unwrap();
        }
        // Score pages by number: low pages are "worn", high pages fresh.
        let chosen = r.alloc_scored(&mut mem, 1000, |page| u64::MAX - page).unwrap();
        // The chosen block must sit in the highest-page (lowest-score)
        // fitting hole: higher than any other freed payload.
        for p in payloads.iter().step_by(2) {
            assert!(chosen >= *p, "scored alloc took {chosen:#x}, worn hole at {p:#x}");
        }
        r.validate(&mem).unwrap();
        // Uniform scores degrade to lowest-address (deterministic) choice
        // and the books stay balanced against plain alloc/free.
        let flat = r.alloc_scored(&mut mem, 1000, |_| 0).unwrap();
        assert!(flat < chosen);
        r.free(&mut mem, chosen).unwrap();
        r.free(&mut mem, flat).unwrap();
        r.validate(&mem).unwrap();
        // OOM surfaces identically.
        assert!(matches!(
            r.alloc_scored(&mut mem, 1 << 20, |p| p),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (mut mem, r) = setup(1 << 14);
        let big = r.alloc(&mut mem, 4096).unwrap();
        r.free(&mut mem, big).unwrap();
        // Allocate small out of the coalesced region; remainder must be valid.
        let _small = r.alloc(&mut mem, 16).unwrap();
        r.validate(&mem).unwrap();
    }

    #[test]
    fn stress_random_alloc_free() {
        let (mut mem, r) = setup(1 << 18);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000 {
            if next() % 3 != 0 || live.is_empty() {
                let size = next() % 200 + 1;
                if let Ok(p) = r.alloc(&mut mem, size) {
                    let tag = next();
                    mem.write_word(p, tag);
                    live.push((p, tag));
                }
            } else {
                let idx = (next() as usize) % live.len();
                let (p, tag) = live.swap_remove(idx);
                assert_eq!(mem.read_word(p), tag, "clobbered at step {step}");
                r.free(&mut mem, p).unwrap();
            }
        }
        r.validate(&mem).unwrap();
        for (p, tag) in live {
            assert_eq!(mem.read_word(p), tag);
            r.free(&mut mem, p).unwrap();
        }
        assert_eq!(r.validate(&mem).unwrap(), 1);
    }
}
