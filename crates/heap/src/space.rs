//! The simulated process address space: a DRAM half with a volatile heap and
//! an NVM half into which persistent pools are attached.
//!
//! This is the substrate underneath user-transparent persistent references:
//! `va2ra`/`ra2va` translate between virtual addresses and pool-relative
//! locations using the attachment table, the analogue of the kernel VATB /
//! POTB tables the paper's hardware walks on POLB/VALB misses.

use crate::addr::{PoolId, RelLoc, VirtAddr, DRAM_BASE, NVM_BASE, NVM_END};
use crate::alloc::{MemWords, Region};
use crate::error::{HeapError, Result};
use crate::faults::{splitmix64, FaultPlan, GateVerdict};
use crate::integrity::IntegrityMode;
use crate::lookaside::TransCache;
pub use crate::lookaside::TransStats;
use crate::pagestore::{PageStore, PAGE_SIZE};
use crate::pool::PoolStore;
use crate::retain::decay_draw;
use crate::shard::{Arena, SharedPool, SlabId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Default size of the volatile (DRAM) heap region.
pub const DEFAULT_DRAM_HEAP: u64 = 256 << 20;

/// Alignment at which pools are attached into the NVM half.
pub const ATTACH_ALIGN: u64 = 1 << 20;

/// Cache-line granularity of the persistence domain under ADR.
pub const LINE_SIZE: u64 = 64;

/// What the platform guarantees about CPU caches at power loss
/// (paper §II discusses both persistence domains).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushModel {
    /// Extended ADR: caches are in the persistence domain, every store is
    /// durable the moment it retires. The PR-3 model, still the default.
    #[default]
    Eadr,
    /// Plain ADR: only the memory controller is protected. A store is
    /// durable only after its cache line is flushed and fenced
    /// ([`AddressSpace::fence`]); at power loss, unfenced lines drain
    /// unpredictably — all-old on a clean crash, a per-word seeded mix
    /// under a torn plan ([`FaultPlan::torn_at`]).
    Adr,
}

/// A `MemWords` view of a page store shifted by a base offset, used to run
/// the region allocator over the DRAM heap.
struct Shifted<'a> {
    store: &'a mut PageStore,
    base: u64,
}

impl MemWords for Shifted<'_> {
    fn read_word(&self, offset: u64) -> u64 {
        self.store.read_u64(self.base + offset)
    }
    fn write_word(&mut self, offset: u64, value: u64) {
        self.store.write_u64(self.base + offset, value)
    }
}

/// One attached pool: its base virtual address and size, the unit the
/// paper's VALB caches (base, size, id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attachment {
    /// Pool id.
    pub pool: PoolId,
    /// Base virtual address in the NVM half.
    pub base: VirtAddr,
    /// Pool size in bytes.
    pub size: u64,
}

/// The simulated process address space.
///
/// Owns the DRAM page store, a volatile heap allocator, the persistent
/// [`PoolStore`] device, and the table of current pool attachments.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("data", 1 << 20)?;
/// let loc = space.pmalloc(pool, 64)?;
/// let va = space.ra2va(loc)?;
/// space.write_u64(va, 7)?;
/// assert_eq!(space.read_u64(va)?, 7);
/// assert_eq!(space.va2ra(va)?, loc);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    dram: PageStore,
    dram_region: Region,
    store: PoolStore,
    /// base VA -> attachment, ordered for containing-range lookup.
    attach_by_base: BTreeMap<u64, Attachment>,
    attach_by_pool: HashMap<PoolId, Attachment>,
    /// Seed for deterministic-but-varied attach base selection.
    layout_seed: u64,
    /// Monotonic counter mixed into base selection.
    attach_counter: u64,
    /// Number of restarts performed, for diagnostics.
    generation: u64,
    /// Fault-injection gate consulted before every durable pool write
    /// ([`crate::faults`]). Disabled by default.
    faults: FaultPlan,
    /// Persistence-domain model. Under [`FlushModel::Adr`], written lines
    /// are volatile until fenced.
    flush_model: FlushModel,
    /// Unfenced lines: `(pool, line offset)` → the line's *durable* bytes
    /// (the pool image itself holds the newest bytes). Ordered so the
    /// power-loss drain is deterministic. Always empty under eADR.
    pending: BTreeMap<(PoolId, u64), [u8; LINE_SIZE as usize]>,
    /// Fence events issued (ADR accounting).
    fences: u64,
    /// Lines flushed to durability (ADR accounting).
    lines_flushed: u64,
    /// Group-commit window: while set, [`AddressSpace::fence`] records the
    /// event in `fences_elided` instead of issuing it, deferring durability
    /// to the next [`AddressSpace::persist_point`]. Sound only while nothing
    /// written inside the window has been acknowledged externally (the
    /// crash-resilient-objects criterion: un-acked work may be dropped
    /// whole). Volatile — a restart clears it.
    defer_fences: bool,
    /// Fence events elided by an open group-commit window.
    fences_elided: u64,
    /// Software POLB/VALB in front of the translation walks
    /// ([`crate::lookaside`]). Generation-stamped: any mutation that can
    /// move, remove, or quarantine an attachment bumps its epoch — a
    /// *per-pool* epoch for single-pool lifecycle events (attach, detach,
    /// destroy), the global one for space-wide events.
    trans: TransCache,
    /// Shared (multicore) pools adopted into this space, by id. Their data
    /// lives in the [`SharedPool`]'s striped device, not in `store`; the
    /// id is merely *reserved* there ([`PoolStore::reserve`]) so the
    /// registry and lookasides stay dense.
    shared: HashMap<PoolId, Arc<SharedPool>>,
    /// Per-pool allocation arenas over adopted shared pools: the
    /// thread-private leaf of the llfree-style split (this space being one
    /// worker's shard).
    arenas: HashMap<PoolId, Arena>,
    /// Media-clock tick for *local* pools (shared pools keep their own
    /// clock in [`SharedPool::note_work`]). Advanced only by
    /// [`AddressSpace::advance_media_clock`], never by wall time.
    media_tick: u64,
    /// When this clock first observed `(pool, page)` sealed — the local
    /// pools' age approximation (they carry no wear table; see
    /// [`AddressSpace::advance_media_clock`]).
    seal_ticks: HashMap<(PoolId, u64), u64>,
}

impl AddressSpace {
    /// Creates an address space with the default DRAM heap size.
    ///
    /// `layout_seed` controls where pools get attached; different seeds model
    /// the OS mapping pools at different addresses across runs (paper §II).
    pub fn new(layout_seed: u64) -> Self {
        Self::with_dram_heap(layout_seed, DEFAULT_DRAM_HEAP)
    }

    /// Creates an address space with a DRAM heap of `heap_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `heap_size` is not a valid allocator region size.
    pub fn with_dram_heap(layout_seed: u64, heap_size: u64) -> Self {
        let mut dram = PageStore::new();
        let dram_region = {
            let mut view = Shifted { store: &mut dram, base: DRAM_BASE };
            Region::format(&mut view, heap_size).expect("valid dram heap size")
        };
        AddressSpace {
            dram,
            dram_region,
            store: PoolStore::new(),
            attach_by_base: BTreeMap::new(),
            attach_by_pool: HashMap::new(),
            layout_seed,
            attach_counter: 0,
            generation: 0,
            faults: FaultPlan::disabled(),
            flush_model: FlushModel::default(),
            pending: BTreeMap::new(),
            fences: 0,
            lines_flushed: 0,
            defer_fences: false,
            fences_elided: 0,
            trans: TransCache::new(),
            shared: HashMap::new(),
            arenas: HashMap::new(),
            media_tick: 0,
            seal_ticks: HashMap::new(),
        }
    }

    // ---- software lookasides ----------------------------------------------

    /// Turns the software translation lookasides (sPOLB/sVALB) on or off.
    /// They are on by default; disabling forces every translation through
    /// the registry probe / BTree walk (the cache-off baseline the
    /// equivalence properties compare against).
    pub fn set_translation_cache(&mut self, on: bool) {
        self.trans.set_enabled(on);
    }

    /// Whether the software translation lookasides are enabled.
    pub fn translation_cache_enabled(&self) -> bool {
        self.trans.enabled()
    }

    /// The translation-cache generation. Any event that can invalidate a
    /// cached translation (attach, detach, restart, destroy, integrity
    /// switches, escape-hatch device access) advances it; higher-level
    /// caches stamp their entries against this clock too.
    #[inline]
    pub fn translation_epoch(&self) -> u64 {
        self.trans.epoch()
    }

    /// Hit/miss counters for the software lookasides. Host-side
    /// diagnostics only: these never feed the simulated cycle model,
    /// events, or checksums.
    pub fn trans_stats(&self) -> TransStats {
        self.trans.stats()
    }

    /// Zeroes the lookaside hit/miss counters (cached entries stay valid).
    pub fn reset_trans_stats(&self) {
        self.trans.reset_stats()
    }

    /// The fault-injection gate's current state.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replaces the fault-injection gate (arm, start counting, disarm).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The local-pool media-clock tick (see
    /// [`AddressSpace::advance_media_clock`]).
    pub fn media_tick(&self) -> u64 {
        self.media_tick
    }

    /// Advances the local-pool media clock by `ticks` and runs the decay
    /// lottery of [`FaultPlan::with_decay`] over every sealed cold page of
    /// every *local* pool — retention decay striking while the system
    /// runs, not just at [`crate::faults::crash_and_recover`]. Adopted
    /// shared pools are untouched; their clock is
    /// [`SharedPool::note_work`]. Returns the number of flips injected
    /// (each leaves the page's sealed checksum stale — silent until a
    /// verify/scrub pass catches it).
    ///
    /// Age approximation (deliberate simplification, DESIGN.md §13):
    /// local pools carry no wear table, so a page starts aging when this
    /// clock first *observes* it sealed, and going dirty resets its
    /// tracking. Ages are therefore lower bounds; the shared-pool plane is
    /// the precise model.
    pub fn advance_media_clock(&mut self, ticks: u64) -> u64 {
        let Some((seed, ppb)) = self.faults.decay() else {
            self.media_tick += ticks;
            return 0;
        };
        let mut injected = 0u64;
        for _ in 0..ticks {
            self.media_tick += 1;
            let t = self.media_tick;
            let ids: Vec<PoolId> = self.store.iter().map(|(id, _, _)| id).collect();
            for id in ids {
                let Ok(img) = self.store.peek_mut(id) else { continue };
                for page in img.crcs().sealed_pages() {
                    if img.data().is_dirty(page) {
                        self.seal_ticks.remove(&(id, page));
                        continue;
                    }
                    let born = *self.seal_ticks.entry((id, page)).or_insert(t);
                    let pool_seed = seed ^ splitmix64(u64::from(id.raw()) << 1 | 1);
                    if let Some((off, bit)) = decay_draw(pool_seed, page, t, t - born, ppb) {
                        if img.data_mut().corrupt_bit(page * PAGE_SIZE + off, bit) {
                            injected += 1;
                        }
                    }
                }
            }
        }
        injected
    }

    // ---- flush model -------------------------------------------------------

    /// The current persistence-domain model.
    pub fn flush_model(&self) -> FlushModel {
        self.flush_model
    }

    /// Switches the persistence-domain model. Moving from ADR to eADR
    /// implicitly fences (lines in flight become durable).
    pub fn set_flush_model(&mut self, model: FlushModel) {
        if model == FlushModel::Eadr {
            self.lines_flushed += self.pending.len() as u64;
            self.pending.clear();
        }
        self.flush_model = model;
    }

    /// Flush + store fence: every written line becomes durable. A no-op
    /// under eADR apart from the event count. The barrier is machine-wide:
    /// adopted shared pools drain their (cross-thread) pending lines too,
    /// which is what keeps the allocator's fence-first discipline sound
    /// when the metadata lives in a [`SharedPool`].
    pub fn fence(&mut self) {
        if self.defer_fences {
            self.fences_elided += 1;
            return;
        }
        self.fences += 1;
        self.lines_flushed += self.pending.len() as u64;
        self.pending.clear();
        if !self.shared.is_empty() {
            for sp in self.shared.values() {
                self.lines_flushed += sp.drain_all();
            }
        }
    }

    // ---- group-commit window ----------------------------------------------

    /// Opens (`true`) or closes (`false`) a group-commit window. While
    /// open, [`AddressSpace::fence`] counts the event as elided instead of
    /// issuing it: written lines stay pending (ADR) and adopted shared
    /// pools are not drained. Closing the window does **not** fence —
    /// callers issue the batch's single real barrier through
    /// [`AddressSpace::persist_point`].
    ///
    /// The elision is sound exactly when nothing written inside the window
    /// is externally acknowledged before the persist point: a crash inside
    /// the window then loses the batch *whole* (all its lines are still
    /// pending and revert together), which is indistinguishable from
    /// crashing before the batch started.
    pub fn set_fence_deferral(&mut self, on: bool) {
        self.defer_fences = on;
    }

    /// Whether a group-commit window is currently open.
    pub fn fence_deferral(&self) -> bool {
        self.defer_fences
    }

    /// Fence events elided by group-commit windows so far.
    pub fn fences_elided(&self) -> u64 {
        self.fences_elided
    }

    /// Group-commit persist point: issues the batch's one real barrier,
    /// bypassing (but not closing) an open deferral window. Local pending
    /// lines drain here and every adopted [`SharedPool`] runs its own
    /// [`SharedPool::persist_point`], so the pool-side group-commit
    /// counters advance too. Returns the number of lines made durable.
    pub fn persist_point(&mut self) -> u64 {
        self.fences += 1;
        let mut drained = self.pending.len() as u64;
        self.lines_flushed += drained;
        self.pending.clear();
        for sp in self.shared.values() {
            let n = sp.persist_point();
            self.lines_flushed += n;
            drained += n;
        }
        drained
    }

    /// Flushes the single line containing intra-pool offset `off` of
    /// `pool` (a targeted `clwb`), without a fence-wide drain. Routes to
    /// the pool's own pending buffer for adopted shared pools.
    pub fn flush_line(&mut self, pool: PoolId, off: u64) {
        if let Some(sp) = self.shared_route(pool) {
            if sp.flush_line(off) {
                self.lines_flushed += 1;
            }
            return;
        }
        if self.pending.remove(&(pool, off / LINE_SIZE * LINE_SIZE)).is_some() {
            self.lines_flushed += 1;
        }
    }

    /// Fence events issued so far.
    pub fn fence_count(&self) -> u64 {
        self.fences
    }

    /// Lines flushed to durability so far (ADR accounting).
    pub fn lines_flushed(&self) -> u64 {
        self.lines_flushed
    }

    /// Lines currently written but not yet fenced.
    pub fn pending_lines(&self) -> usize {
        self.pending.len()
    }

    /// Under ADR, snapshots the durable bytes of every line overlapped by
    /// `[off, off + len)` in `pool` before a write lands there. Must be
    /// called *before* the write mutates the image.
    #[inline]
    fn stage_lines(pending: &mut BTreeMap<(PoolId, u64), [u8; LINE_SIZE as usize]>,
                   img: &crate::pool::PoolImage,
                   pool: PoolId,
                   off: u64,
                   len: u64) {
        if len == 0 {
            return;
        }
        let first = off / LINE_SIZE * LINE_SIZE;
        let last = (off + len - 1) / LINE_SIZE * LINE_SIZE;
        let mut line = first;
        loop {
            pending.entry((pool, line)).or_insert_with(|| {
                let mut old = [0u8; LINE_SIZE as usize];
                img.data().read(line, &mut old);
                old
            });
            if line >= last {
                break;
            }
            line += LINE_SIZE;
        }
    }

    // ---- integrity ---------------------------------------------------------

    /// The pool device's integrity mode.
    pub fn integrity(&self) -> IntegrityMode {
        self.store.integrity()
    }

    /// Switches the pool device's integrity mode (see
    /// [`PoolStore::set_integrity`]).
    pub fn set_integrity(&mut self, mode: IntegrityMode) {
        self.trans.bump();
        self.store.set_integrity(mode);
    }

    /// The persistent device holding pool images.
    pub fn pool_store(&self) -> &PoolStore {
        &self.store
    }

    /// Mutable access to the persistent device (used by in-pool services
    /// such as the transaction log that write below the allocator).
    ///
    /// Writes through this handle bypass the fault gate; prefer
    /// [`AddressSpace::pool_write_u64`] for anything that should count as a
    /// durable write boundary.
    ///
    /// Taking this handle bumps the translation-cache epoch: quarantine,
    /// release, reseal, and salvage all go through it, and each must
    /// invalidate the software lookasides. Every caller is a cold
    /// recovery/diagnostic path, so the conservative bump costs nothing on
    /// the hot path.
    pub fn pool_store_mut(&mut self) -> &mut PoolStore {
        self.trans.bump();
        &mut self.store
    }

    /// Reads the `u64` at intra-pool offset `off` in pool `id`, without
    /// going through address translation (for in-pool services such as the
    /// undo log, which must work while the pool is detached conceptually).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] for unknown ids.
    #[inline]
    pub fn pool_read_u64(&self, id: PoolId, off: u64) -> Result<u64> {
        if let Some(sp) = self.shared_checked(id)? {
            return Ok(sp.read_u64(off));
        }
        Ok(self.store.get(id)?.data().read_u64(off))
    }

    /// One branch on the empty map in the (single-threaded) common case;
    /// the lookup only happens while some shared pool is adopted.
    #[inline]
    fn shared_route(&self, id: PoolId) -> Option<&Arc<SharedPool>> {
        if self.shared.is_empty() {
            None
        } else {
            self.shared.get(&id)
        }
    }

    /// [`AddressSpace::shared_route`] for guarded data/allocation paths:
    /// a quarantined shared pool (a sealed checksum failed — see
    /// [`SharedPool::quarantined_page`]) refuses normal access until
    /// salvage releases it, mirroring the local-pool quarantine in
    /// [`crate::pool::PoolStore`]. Maintenance paths (fence/drain, scrub,
    /// salvage, detach) keep using the unguarded route.
    #[inline]
    fn shared_checked(&self, id: PoolId) -> Result<Option<&Arc<SharedPool>>> {
        match self.shared_route(id) {
            Some(sp) => match sp.quarantined_page() {
                Some(page) => Err(HeapError::MediaCorruption { pool: id, page }),
                None => Ok(Some(sp)),
            },
            None => Ok(None),
        }
    }

    /// Writes the `u64` at intra-pool offset `off` in pool `id` — one
    /// durable write boundary: the fault gate is consulted first, so undo
    /// log appends and flag flips are individually crashable.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] for unknown ids and
    /// [`HeapError::CrashInjected`] when an armed fault point fires.
    #[inline]
    pub fn pool_write_u64(&mut self, id: PoolId, off: u64, value: u64) -> Result<()> {
        if let Some(sp) = self.shared_checked(id)? {
            // Shared pools gate on the pool-wide plan (armed boundaries
            // crash cleanly) and stage the line in the *pool's* machine-
            // wide pending buffer — caches are coherent, so the ADR state
            // must be shared by every thread, not split per space.
            return sp.write_u64_stage(off, value);
        }
        let img = self.store.get_mut(id)?;
        let verdict = self.faults.gate_tearable()?;
        if self.flush_model == FlushModel::Adr {
            Self::stage_lines(&mut self.pending, img, id, off, 8);
        }
        img.data_mut().write_u64(off, value);
        match verdict {
            GateVerdict::Proceed => Ok(()),
            // The in-flight write landed in the cache; the process is dead.
            GateVerdict::TornCrash => Err(self.faults.crash_error()),
        }
    }

    /// Atomic compare-and-swap on the word at `va`. Returns
    /// `(swapped, old value)`. For adopted shared pools the whole
    /// read-compare-write is atomic under the pool's flush-plane lock and
    /// a *successful* swap is one durable write boundary (staged under
    /// ADR); a failed CAS is just a load. DRAM and local (single-threaded)
    /// pools get the plain read/compare/write equivalent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::write_u64`].
    pub fn cas_u64(&mut self, va: VirtAddr, expected: u64, new: u64) -> Result<(bool, u64)> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.locate(va)?;
            if let Some(sp) = self.shared_checked(loc.pool)? {
                return sp.cas_u64(loc.offset.into(), expected, new);
            }
            let cur = self.store.get(loc.pool)?.data().read_u64(loc.offset.into());
            if cur != expected {
                return Ok((false, cur));
            }
            self.pool_write_u64(loc.pool, loc.offset.into(), new)?;
            Ok((true, cur))
        } else {
            let cur = self.dram.read_u64(va.raw());
            if cur == expected {
                self.dram.write_u64(va.raw(), new);
            }
            Ok((cur == expected, cur))
        }
    }

    /// Abandons every shared-pool arena's current lease *without*
    /// returning it to the central free list — the block stays tagged
    /// allocated and leaks, exactly like lease remainders at
    /// [`AddressSpace::restart`]. Called when this shard's worker dies to
    /// an injected crash mid-transaction: the lease's carve state may
    /// contain unflushed line bytes, and handing the remainder back would
    /// let a later [`AddressSpace::bind_arena_slab`] re-carve bytes whose
    /// durable image disagrees with the allocator books. Returns how many
    /// leases were dropped.
    pub fn abandon_arena_leases(&mut self) -> usize {
        let mut dropped = 0;
        for arena in self.arenas.values_mut() {
            if arena.abandon().is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of restarts this space has gone through.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes materialized by this address space: the DRAM half's resident
    /// pages plus every pool image on the device. The memory-footprint
    /// counterpart of the cycle counters — benchmark reports include it so
    /// footprint regressions are as visible as runtime ones.
    pub fn resident_bytes(&self) -> u64 {
        self.dram.resident_bytes() + self.store.resident_bytes()
    }

    // ---- pool lifecycle ----------------------------------------------------

    /// Creates a pool on the device and attaches it, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates creation errors ([`HeapError::PoolExists`],
    /// [`HeapError::BadPoolSize`]) and attach errors.
    pub fn create_pool(&mut self, name: &str, size: u64) -> Result<PoolId> {
        let id = self.store.create(name, size)?;
        self.attach(id)?;
        Ok(id)
    }

    /// Opens an existing pool by name, attaching it if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPoolName`] when the pool does not exist.
    pub fn open_pool(&mut self, name: &str) -> Result<PoolId> {
        let id = self.store.id_of(name)?;
        if !self.attach_by_pool.contains_key(&id) {
            self.attach(id)?;
        }
        Ok(id)
    }

    fn pick_base(&mut self, size: u64) -> Result<u64> {
        // Deterministic splitmix-style hash over (seed, counter); retry on
        // collision with existing attachments.
        for _ in 0..4096 {
            self.attach_counter += 1;
            let mut x = self
                .layout_seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(self.attach_counter)
                .wrapping_add(self.generation.wrapping_mul(0xbf58476d1ce4e5b9));
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^= x >> 31;
            let span = NVM_END - NVM_BASE - size;
            let base = NVM_BASE + (x % (span / ATTACH_ALIGN)) * ATTACH_ALIGN;
            let end = base + size;
            // Overlap check against neighbours in the base-ordered map.
            let prev_ok = self
                .attach_by_base
                .range(..=base)
                .next_back()
                .map_or(true, |(b, a)| b + a.size <= base);
            let next_ok = self
                .attach_by_base
                .range(base..)
                .next()
                .map_or(true, |(b, _)| *b >= end);
            if prev_ok && next_ok {
                return Ok(base);
            }
        }
        Err(HeapError::NoAddressSpace)
    }

    /// Attaches a pool at a fresh base address, first verifying its image:
    /// sealed pages are checked against the CRC sidecar (a mismatch
    /// quarantines the pool) and the allocator header and structure are
    /// validated ([`Region::open`]).
    ///
    /// # Errors
    ///
    /// - [`HeapError::NoSuchPool`] for unknown ids;
    /// - [`HeapError::MediaCorruption`] when the pool is quarantined or a
    ///   sealed page fails its checksum;
    /// - [`HeapError::BadPoolHeader`] / [`HeapError::CorruptRegion`] when
    ///   header or allocator validation fails.
    ///
    /// Attaching an already-attached pool is a no-op returning its current
    /// attachment.
    pub fn attach(&mut self, id: PoolId) -> Result<Attachment> {
        if let Some(a) = self.attach_by_pool.get(&id) {
            return Ok(*a);
        }
        let img = self.store.get(id)?; // quarantine-guarded
        if let Some(page) = img.verify_sealed() {
            self.store.quarantine(id, page);
            return Err(HeapError::MediaCorruption { pool: id, page });
        }
        Region::open(img.data())?;
        let size = img.size();
        let base = self.pick_base(size)?;
        let att = Attachment { pool: id, base: VirtAddr::new(base), size };
        self.attach_by_base.insert(base, att);
        self.attach_by_pool.insert(id, att);
        // New *per-pool* epoch (a re-attach lands at a new base, so every
        // older cached translation for this pool is wrong — but only for
        // this pool: other pools' entries stay hot), then eagerly install
        // the fresh attachment in the sPOLB under it.
        self.trans.bump_pool(id.raw());
        self.trans.install_pool(id.raw(), base, size);
        Ok(att)
    }

    /// Adopts a [`SharedPool`] into this space: reserves a pool id for its
    /// name ([`PoolStore::reserve`]), picks a private base address, and
    /// routes all data/allocation/root traffic for that id to the shared
    /// striped device. Each worker thread adopts the same `Arc` into its
    /// own space shard; bases (and hence VAs) differ per shard, which is
    /// why persistent pointers are stored pool-relative.
    ///
    /// Adopting the same shared pool twice is a no-op returning its id.
    ///
    /// # Errors
    ///
    /// - [`HeapError::PoolExists`] when the name belongs to a materialised
    ///   local pool;
    /// - [`HeapError::NoAddressSpace`] when no base can be found.
    pub fn adopt_shared(&mut self, sp: &Arc<SharedPool>) -> Result<PoolId> {
        if let Some((&id, _)) = self.shared.iter().find(|(_, p)| Arc::ptr_eq(p, sp)) {
            return Ok(id);
        }
        let id = self.store.reserve(sp.name())?;
        let size = sp.size();
        let base = self.pick_base(size)?;
        let att = Attachment { pool: id, base: VirtAddr::new(base), size };
        self.attach_by_base.insert(base, att);
        self.attach_by_pool.insert(id, att);
        self.shared.insert(id, Arc::clone(sp));
        self.arenas.insert(id, Arena::default());
        self.trans.bump_pool(id.raw());
        self.trans.install_pool(id.raw(), base, size);
        Ok(id)
    }

    /// The shared pool behind `id`, when `id` was adopted via
    /// [`AddressSpace::adopt_shared`].
    pub fn shared_pool(&self, id: PoolId) -> Option<&Arc<SharedPool>> {
        self.shared.get(&id)
    }

    /// Whether `id` routes to a shared pool in this space.
    pub fn is_shared(&self, id: PoolId) -> bool {
        self.shared.contains_key(&id)
    }

    /// Binds this space's allocation arena for shared pool `id` to `slab`,
    /// so lease refills come from that slab's cursor instead of the
    /// central free list. Any current lease remainder is returned to the
    /// central allocator. One slab must be bound to at most one live
    /// arena — single ownership is what makes allocation offsets
    /// independent of thread timing.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when `id` is not an adopted
    /// shared pool.
    pub fn bind_arena_slab(&mut self, id: PoolId, slab: SlabId) -> Result<()> {
        let sp =
            Arc::clone(self.shared.get(&id).ok_or(HeapError::NoSuchPool(id))?);
        let arena = self.arenas.entry(id).or_default();
        let lease = arena.bind(Some(slab));
        sp.release_lease(lease)
    }

    /// Lease refills this space's arena for `id` has performed (the
    /// non-vacuity probe for the per-thread allocation path).
    pub fn arena_refills(&self, id: PoolId) -> u64 {
        self.arenas.get(&id).map_or(0, Arena::refills)
    }

    /// Detaches a pool: its data stays on the device but it loses its base
    /// address, so `ra2va` on its locations faults (paper Fig. 10). A
    /// graceful detach flushes the pool's in-flight lines (they become
    /// durable, not torn) and seals its CRC sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::PoolDetached`] when the pool is not attached.
    pub fn detach(&mut self, id: PoolId) -> Result<()> {
        let att = self.attach_by_pool.remove(&id).ok_or(HeapError::PoolDetached(id))?;
        self.attach_by_base.remove(&att.base.raw());
        // Per-pool epoch: detaching this pool must not flush the other
        // pools' (the other shards') hot translations.
        self.trans.bump_pool(id.raw());
        if let Some(sp) = self.shared.remove(&id) {
            // Graceful release of an adopted shared pool: hand the arena's
            // lease remainder back to the shared free list. The pool itself
            // stays alive for the other shards; the reserved id remains
            // valid for re-adoption.
            if let Some(mut arena) = self.arenas.remove(&id) {
                let lease = arena.bind(None);
                sp.release_lease(lease)?;
            }
            return Ok(());
        }
        let before = self.pending.len();
        self.pending.retain(|(pool, _), _| *pool != id);
        self.lines_flushed += (before - self.pending.len()) as u64;
        let _ = self.store.seal(id);
        Ok(())
    }

    /// Simulates a process restart (power cycle): DRAM contents are lost,
    /// the volatile heap is reformatted, and every pool is detached. Under
    /// [`FlushModel::Adr`], unfenced lines first *drain*: each reverts to
    /// its durable bytes — or, when the installed [`FaultPlan`] is a torn
    /// one, a seeded per-word subset of the new words lands instead. The
    /// resulting durable image is then sealed into the CRC sidecars, as an
    /// NVM controller checkpointing its metadata on power loss would.
    /// Pools must be reopened, and will generally land at different base
    /// addresses.
    pub fn restart(&mut self) {
        let torn_seed = self.faults.torn_drain_seed();
        let pending = std::mem::take(&mut self.pending);
        for ((pool, line), old) in pending {
            let Ok(img) = self.store.peek_mut(pool) else { continue };
            match torn_seed {
                None => {
                    // Clean power loss: the whole unfenced line is lost.
                    img.data_mut().write(line, &old);
                }
                Some(seed) => {
                    // Torn: an 8-byte-word lottery decides, per word,
                    // whether the in-flight value landed or the durable
                    // one survived.
                    for w in 0..(LINE_SIZE / 8) {
                        let h = splitmix64(
                            seed ^ splitmix64(u64::from(pool.raw()) ^ (line + w * 8)),
                        );
                        if h & 1 == 0 {
                            let at = (w * 8) as usize;
                            img.data_mut().write(line + w * 8, &old[at..at + 8]);
                        }
                    }
                }
            }
        }
        self.store.seal_all();
        self.generation += 1;
        self.dram.clear();
        let heap_size = self.dram_region.size();
        let mut view = Shifted { store: &mut self.dram, base: DRAM_BASE };
        self.dram_region = Region::format(&mut view, heap_size).expect("heap size unchanged");
        self.attach_by_base.clear();
        self.attach_by_pool.clear();
        // Adoptions die with the process. Arena lease remainders are *not*
        // returned — power loss leaks them exactly as a real persistent
        // allocator leaks thread-cached blocks until a recovery pass; the
        // block tiling stays valid, so validation and recovery see a
        // consistent (merely smaller) heap.
        self.shared.clear();
        self.arenas.clear();
        // An open group-commit window is volatile state; the batch it was
        // deferring died un-acked with the process.
        self.defer_fences = false;
        self.trans.bump();
    }

    /// Current attachment of `id`, if any.
    pub fn attachment(&self, id: PoolId) -> Option<Attachment> {
        self.attach_by_pool.get(&id).copied()
    }

    /// Snapshot of all attachments ordered by base address (the VATB view).
    pub fn attachments(&self) -> Vec<Attachment> {
        self.attach_by_base.values().copied().collect()
    }

    // ---- translation -------------------------------------------------------

    /// Translates a virtual address in the NVM half to a pool-relative
    /// location (`va2ra`).
    ///
    /// Served from the sVALB when it holds a current-epoch range containing
    /// `va`; misses fall through to the BTree containing-range walk, whose
    /// successful result refills the cache. Results and errors are
    /// bit-identical with the cache on or off.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NotInAnyPool`] when no attached pool contains
    /// the address.
    #[inline(always)]
    pub fn va2ra(&self, va: VirtAddr) -> Result<RelLoc> {
        if self.trans.enabled() {
            if let Some((pool, base, _)) = self.trans.lookup_va(va.raw()) {
                return Ok(RelLoc::new(PoolId::from_raw_trusted(pool), (va.raw() - base) as u32));
            }
        }
        self.va2ra_walk(va)
    }

    /// The sVALB miss path: the BTree containing-range walk (the software
    /// analogue of the kernel walking the VATB on a VALB miss).
    #[inline(never)]
    fn va2ra_walk(&self, va: VirtAddr) -> Result<RelLoc> {
        let (_, att) = self
            .attach_by_base
            .range(..=va.raw())
            .next_back()
            .ok_or(HeapError::NotInAnyPool(va))?;
        let delta = va.raw() - att.base.raw();
        if delta >= att.size {
            return Err(HeapError::NotInAnyPool(va));
        }
        if self.trans.enabled() {
            self.trans.fill_va(va.raw(), att.pool.raw(), att.base.raw(), att.size);
        }
        Ok(RelLoc::new(att.pool, delta as u32))
    }

    /// `va2ra` that never consults or fills the software lookasides — the
    /// oracle/debug flavour. Faultsweep oracles and raw peeks use this so
    /// they can never observe (or perturb) cache state.
    pub fn va2ra_uncached(&self, va: VirtAddr) -> Result<RelLoc> {
        let (_, att) = self
            .attach_by_base
            .range(..=va.raw())
            .next_back()
            .ok_or(HeapError::NotInAnyPool(va))?;
        let delta = va.raw() - att.base.raw();
        if delta >= att.size {
            return Err(HeapError::NotInAnyPool(va));
        }
        Ok(RelLoc::new(att.pool, delta as u32))
    }

    /// Translates a pool-relative location to its current virtual address
    /// (`ra2va`).
    ///
    /// Served from the dense sPOLB array when it holds a current-epoch
    /// entry for the pool; misses fall through to the registry probe,
    /// whose successful result refills the cache. Results and errors are
    /// bit-identical with the cache on or off (the cached entry carries
    /// the pool size, so `OffsetOutOfPool` still fires on the fast path).
    ///
    /// # Errors
    ///
    /// - [`HeapError::NoSuchPool`] for ids that never existed.
    /// - [`HeapError::PoolDetached`] when the pool has no base address.
    /// - [`HeapError::OffsetOutOfPool`] when the offset exceeds the pool.
    /// Validates that `loc` translates — the same error set, and the same
    /// error values, as [`Self::ra2va`] — without materializing the
    /// virtual address or touching the lookaside hit counters. The
    /// decoded interpreter's parity probe before pool-direct access: the
    /// address it would compute is discarded anyway.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Self::ra2va`].
    #[inline]
    pub fn ra_check(&self, loc: RelLoc) -> Result<()> {
        if self.trans.enabled() {
            if let Some((_, size)) = self.trans.lookup_pool_quiet(loc.pool.raw()) {
                if u64::from(loc.offset) >= size {
                    return Err(Self::offset_out_of_pool(loc, size));
                }
                return Ok(());
            }
        }
        self.ra2va_probe(loc).map(|_| ())
    }

    #[inline]
    pub fn ra2va(&self, loc: RelLoc) -> Result<VirtAddr> {
        if self.trans.enabled() {
            if let Some((base, size)) = self.trans.lookup_pool(loc.pool.raw()) {
                if u64::from(loc.offset) >= size {
                    return Err(Self::offset_out_of_pool(loc, size));
                }
                return Ok(VirtAddr::new(base).add(loc.offset.into()));
            }
        }
        self.ra2va_probe(loc)
    }

    /// The sPOLB miss path: the attachment-registry probe (the software
    /// analogue of the kernel walking the POTB on a POLB miss).
    #[inline(never)]
    fn ra2va_probe(&self, loc: RelLoc) -> Result<VirtAddr> {
        let att = match self.attach_by_pool.get(&loc.pool) {
            Some(a) => a,
            None => {
                // A lapsed shared-pool adoption is *detached* (the pool
                // still exists in the shared layer), not unknown.
                if !self.store.is_reserved(loc.pool) {
                    self.store.get(loc.pool)?;
                }
                return Err(HeapError::PoolDetached(loc.pool));
            }
        };
        if u64::from(loc.offset) >= att.size {
            return Err(Self::offset_out_of_pool(loc, att.size));
        }
        if self.trans.enabled() {
            self.trans.fill_pool(loc.pool.raw(), att.base.raw(), att.size);
        }
        Ok(att.base.add(loc.offset.into()))
    }

    /// `ra2va` that never consults or fills the software lookasides.
    pub fn ra2va_uncached(&self, loc: RelLoc) -> Result<VirtAddr> {
        let att = match self.attach_by_pool.get(&loc.pool) {
            Some(a) => a,
            None => {
                if !self.store.is_reserved(loc.pool) {
                    self.store.get(loc.pool)?;
                }
                return Err(HeapError::PoolDetached(loc.pool));
            }
        };
        if u64::from(loc.offset) >= att.size {
            return Err(Self::offset_out_of_pool(loc, att.size));
        }
        Ok(att.base.add(loc.offset.into()))
    }

    #[cold]
    fn offset_out_of_pool(loc: RelLoc, size: u64) -> HeapError {
        HeapError::OffsetOutOfPool { pool: loc.pool, offset: loc.offset.into(), size }
    }

    // ---- memory access -----------------------------------------------------

    #[inline]
    fn locate(&self, va: VirtAddr) -> Result<RelLoc> {
        self.va2ra(va)
    }

    /// Reads bytes at `va` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::Unmapped`] for null-page accesses and
    /// [`HeapError::NotInAnyPool`] for NVM addresses outside any pool.
    pub fn read(&self, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.locate(va)?;
            if let Some(sp) = self.shared_checked(loc.pool)? {
                sp.read_bytes(loc.offset.into(), buf);
                return Ok(());
            }
            let img = self.store.get(loc.pool)?;
            img.data().read(loc.offset.into(), buf);
        } else {
            self.dram.read(va.raw(), buf);
        }
        Ok(())
    }

    /// Writes `buf` at `va`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::read`].
    pub fn write(&mut self, va: VirtAddr, buf: &[u8]) -> Result<()> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.locate(va)?;
            if let Some(sp) = self.shared_checked(loc.pool)? {
                // Shared pools live in the eADR domain and gate on the
                // *pool-wide* plan: the boundary counter spans every
                // thread, like a machine-wide power failure would.
                sp.gate()?;
                sp.write_bytes(loc.offset.into(), buf);
                return Ok(());
            }
            let img = self.store.get_mut(loc.pool)?;
            let verdict = self.faults.gate_tearable()?;
            if self.flush_model == FlushModel::Adr {
                Self::stage_lines(&mut self.pending, img, loc.pool, loc.offset.into(), buf.len() as u64);
            }
            img.data_mut().write(loc.offset.into(), buf);
            if verdict == GateVerdict::TornCrash {
                // The in-flight write landed in the cache; the process is
                // dead and the line drains at restart.
                return Err(self.faults.crash_error());
            }
        } else {
            self.dram.write(va.raw(), buf);
        }
        Ok(())
    }

    /// Reads bytes at `va` without consulting or filling the software
    /// lookasides — the oracle/debug read path. Otherwise identical to
    /// [`AddressSpace::read`], including every error condition.
    pub fn read_uncached(&self, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.va2ra_uncached(va)?;
            if let Some(sp) = self.shared_checked(loc.pool)? {
                sp.read_bytes(loc.offset.into(), buf);
                return Ok(());
            }
            let img = self.store.get(loc.pool)?;
            img.data().read(loc.offset.into(), buf);
        } else {
            self.dram.read(va.raw(), buf);
        }
        Ok(())
    }

    /// Reads a `u64` at `va`.
    ///
    /// Specialized copy of [`AddressSpace::read`] for the word size every
    /// interpreter load uses: same checks, same errors, same translation
    /// (and thus the same lookaside counters), but the page store is hit
    /// with its aligned word accessor instead of a byte-buffer loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::read`].
    #[inline]
    pub fn read_u64(&self, va: VirtAddr) -> Result<u64> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.locate(va)?;
            if let Some(sp) = self.shared_checked(loc.pool)? {
                return Ok(sp.read_u64(loc.offset.into()));
            }
            Ok(self.store.get(loc.pool)?.data().read_u64(loc.offset.into()))
        } else {
            Ok(self.dram.read_u64(va.raw()))
        }
    }

    /// Reads a `u64` at `va` via [`AddressSpace::read_uncached`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::read`].
    pub fn read_u64_uncached(&self, va: VirtAddr) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_uncached(va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u64` at `va`.
    ///
    /// Specialized copy of [`AddressSpace::write`] for the word size —
    /// identical gate/staging/crash semantics, but the page store is hit
    /// with its aligned word accessor instead of a byte-buffer loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::read`].
    #[inline]
    pub fn write_u64(&mut self, va: VirtAddr, value: u64) -> Result<()> {
        if va.raw() < DRAM_BASE {
            return Err(HeapError::Unmapped(va));
        }
        if va.is_nvm_region() {
            let loc = self.locate(va)?;
            self.pool_write_u64(loc.pool, loc.offset.into(), value)
        } else {
            self.dram.write_u64(va.raw(), value);
            Ok(())
        }
    }

    // ---- allocation --------------------------------------------------------

    /// Allocates `size` bytes on the volatile heap (DRAM half).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn malloc(&mut self, size: u64) -> Result<VirtAddr> {
        let mut view = Shifted { store: &mut self.dram, base: DRAM_BASE };
        let off = self.dram_region.alloc(&mut view, size)?;
        Ok(VirtAddr::new(DRAM_BASE + off))
    }

    /// Frees a volatile allocation made by [`AddressSpace::malloc`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadFree`] for addresses that are not live
    /// volatile allocations.
    pub fn mfree(&mut self, va: VirtAddr) -> Result<()> {
        if va.is_nvm_region() || va.raw() < DRAM_BASE {
            return Err(HeapError::BadFree(va.raw()));
        }
        let mut view = Shifted { store: &mut self.dram, base: DRAM_BASE };
        self.dram_region.free(&mut view, va.raw() - DRAM_BASE)
    }

    /// Allocates `size` bytes inside pool `id` (`pmalloc`), returning the
    /// relocation-stable location.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] or [`HeapError::OutOfMemory`].
    pub fn pmalloc(&mut self, id: PoolId, size: u64) -> Result<RelLoc> {
        // The allocator fences before touching its metadata so that no
        // unfenced data line can share a pending snapshot with (and later
        // drain over) allocator words — its update is modelled as atomic.
        self.fence();
        if let Some(sp) = self.shared_checked(id)? {
            let sp = Arc::clone(sp);
            sp.gate()?;
            let arena = self.arenas.entry(id).or_default();
            let off = sp.arena_alloc(arena, size)?;
            return Ok(RelLoc::new(id, off as u32));
        }
        let img = self.store.get_mut(id)?;
        // One durable boundary per allocation (see `crate::faults`).
        self.faults.gate()?;
        let region = img.region();
        let off = region.alloc(img.data_mut(), size)?;
        Ok(RelLoc::new(id, off as u32))
    }

    /// Frees a persistent allocation made by [`AddressSpace::pmalloc`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] or [`HeapError::BadFree`].
    pub fn pfree(&mut self, loc: RelLoc) -> Result<()> {
        // Fence-first for the same reason as `pmalloc`.
        self.fence();
        if let Some(sp) = self.shared_checked(loc.pool)? {
            sp.gate()?;
            return sp.free_central(loc.offset.into());
        }
        let img = self.store.get_mut(loc.pool)?;
        // One durable boundary per free, mirroring `pmalloc`.
        self.faults.gate()?;
        let region = img.region();
        region.free(img.data_mut(), loc.offset.into())
    }

    /// Reads the root-object word of pool `id` (the durable entry point).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] for unknown ids.
    pub fn pool_root(&self, id: PoolId) -> Result<u64> {
        if let Some(sp) = self.shared_checked(id)? {
            return Ok(sp.root());
        }
        let img = self.store.get(id)?;
        Ok(img.region().root(img.data()))
    }

    /// Stores the root-object word of pool `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] for unknown ids.
    pub fn set_pool_root(&mut self, id: PoolId, value: u64) -> Result<()> {
        // Root publication orders after everything it points at.
        self.fence();
        if let Some(sp) = self.shared_checked(id)? {
            sp.gate()?;
            sp.set_root(value);
            return Ok(());
        }
        let img = self.store.get_mut(id)?;
        self.faults.gate()?;
        let region = img.region();
        region.set_root(img.data_mut(), value);
        Ok(())
    }

    /// Destroys a pool entirely (detach + remove from device).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] for unknown ids.
    pub fn destroy_pool(&mut self, id: PoolId) -> Result<()> {
        let _ = self.detach(id);
        self.trans.bump_pool(id.raw());
        self.store.destroy(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_heap_allocates_in_dram_half() {
        let mut s = AddressSpace::new(7);
        let a = s.malloc(128).unwrap();
        assert!(!a.is_nvm_region());
        s.write_u64(a, 99).unwrap();
        assert_eq!(s.read_u64(a).unwrap(), 99);
        s.mfree(a).unwrap();
    }

    #[test]
    fn pool_allocates_in_nvm_half() {
        let mut s = AddressSpace::new(7);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va = s.ra2va(loc).unwrap();
        assert!(va.is_nvm_region());
        s.write_u64(va, 5).unwrap();
        assert_eq!(s.read_u64(va).unwrap(), 5);
    }

    #[test]
    fn translation_round_trips() {
        let mut s = AddressSpace::new(3);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 256).unwrap();
        let va = s.ra2va(loc).unwrap();
        assert_eq!(s.va2ra(va).unwrap(), loc);
        let inner = va.add(200);
        assert_eq!(s.va2ra(inner).unwrap(), loc.add(200));
    }

    #[test]
    fn adopted_shared_pool_is_visible_from_every_shard() {
        let sp = SharedPool::create("twin", 2 << 20, 8).unwrap();
        let mut a = AddressSpace::new(1);
        let mut b = AddressSpace::new(2);
        let pa = a.adopt_shared(&sp).unwrap();
        let pb = b.adopt_shared(&sp).unwrap();
        assert!(a.is_shared(pa) && b.is_shared(pb));
        assert_eq!(a.adopt_shared(&sp).unwrap(), pa, "re-adoption is a no-op");

        // Allocate through shard A, write through its VA…
        let loc = a.pmalloc(pa, 64).unwrap();
        let va_a = a.ra2va(loc).unwrap();
        a.write_u64(va_a, 0xC0FFEE).unwrap();
        // …and read the same pool-relative location through shard B, whose
        // base differs (private layout seeds).
        let loc_b = RelLoc::new(pb, loc.offset);
        let va_b = b.ra2va(loc_b).unwrap();
        assert_ne!(va_a.raw(), va_b.raw(), "shards map the pool at different bases");
        assert_eq!(b.read_u64(va_b).unwrap(), 0xC0FFEE);

        // Roots are shared state too.
        a.set_pool_root(pa, 0x42).unwrap();
        assert_eq!(b.pool_root(pb).unwrap(), 0x42);

        // And pfree through the *other* shard works: the block lives in
        // the shared lower layer, not in either shard. Shard A's arena
        // still holds its lease remainder until A detaches gracefully.
        b.pfree(loc_b).unwrap();
        assert_eq!(sp.allocation_count(), 1, "only A's lease remainder is live");
        a.detach(pa).unwrap();
        assert_eq!(sp.allocation_count(), 0);
        sp.validate().unwrap();
    }

    #[test]
    fn detaching_one_pool_keeps_the_others_lookasides_hot() {
        let mut s = AddressSpace::new(9);
        let pa = s.create_pool("a", 1 << 20).unwrap();
        let pb = s.create_pool("b", 1 << 20).unwrap();
        let la = s.pmalloc(pa, 64).unwrap();
        let lb = s.pmalloc(pb, 64).unwrap();
        // Warm both pools' entries, then detach A.
        let _ = s.ra2va(la).unwrap();
        let vb = s.ra2va(lb).unwrap();
        let _ = s.va2ra(vb).unwrap();
        s.detach(pa).unwrap();
        s.reset_trans_stats();
        assert!(matches!(s.ra2va(la), Err(HeapError::PoolDetached(_))));
        assert_eq!(s.ra2va(lb).unwrap(), vb);
        assert_eq!(s.va2ra(vb).unwrap(), lb);
        let st = s.trans_stats();
        assert_eq!(st.spolb_hits, 1, "pool B's sPOLB entry survived A's detach");
        assert_eq!(st.svalb_hits, 1, "pool B's sVALB range survived A's detach");
    }

    #[test]
    fn shared_pool_detach_and_restart_drop_only_the_adoption() {
        let sp = SharedPool::create("drop", 1 << 20, 4).unwrap();
        let mut s = AddressSpace::new(4);
        let p = s.adopt_shared(&sp).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 31).unwrap();
        s.detach(p).unwrap();
        assert!(!s.is_shared(p));
        assert!(matches!(s.ra2va(loc), Err(HeapError::PoolDetached(_))));
        // The data survives in the shared layer; re-adoption sees it and
        // keeps the reserved id stable.
        assert_eq!(sp.read_u64(u64::from(loc.offset)), 31);
        let p2 = s.adopt_shared(&sp).unwrap();
        assert_eq!(p2, p, "reserved id is stable across re-adoption");
        assert_eq!(s.read_u64(s.ra2va(loc).unwrap()).unwrap(), 31);
        // A restart loses the adoption but never the shared data.
        s.restart();
        assert!(!s.is_shared(p));
        assert_eq!(sp.read_u64(u64::from(loc.offset)), 31);
        let p3 = s.adopt_shared(&sp).unwrap();
        assert_eq!(p3, p);
    }

    #[test]
    fn shared_pool_gates_on_the_pool_wide_plan() {
        let sp = SharedPool::create("gate", 1 << 20, 4).unwrap();
        let mut a = AddressSpace::new(6);
        let mut b = AddressSpace::new(7);
        let pa = a.adopt_shared(&sp).unwrap();
        let pb = b.adopt_shared(&sp).unwrap();
        let loc = a.pmalloc(pa, 64).unwrap();
        let va_a = a.ra2va(loc).unwrap();
        let vb = b.ra2va(RelLoc::new(pb, loc.offset)).unwrap();
        // Arm AFTER the allocation: 2 more durable writes, then death —
        // counted across both shards because the plan lives in the pool.
        sp.set_faults(FaultPlan::crash_at(2));
        a.write_u64(va_a, 1).unwrap();
        b.write_u64(vb, 2).unwrap();
        let err = a.write_u64(va_a, 3).unwrap_err();
        assert!(matches!(err, HeapError::CrashInjected { writes: 2 }));
        // Every shard is dead once the machine-wide plan has tripped.
        assert!(b.write_u64(vb, 4).is_err());
        assert_eq!(sp.read_u64(u64::from(loc.offset)), 2, "suppressed writes never landed");
    }

    #[test]
    fn va2ra_rejects_foreign_addresses() {
        let mut s = AddressSpace::new(3);
        let _p = s.create_pool("p", 1 << 20).unwrap();
        let stray = VirtAddr::new(NVM_BASE + 1);
        // Either unattached or out of range; both are NotInAnyPool unless the
        // pool happened to land exactly at NVM_BASE.
        if s.va2ra(stray).is_ok() {
            // astronomically unlikely with the chosen seed; assert layout
            let att = s.attachments()[0];
            assert_eq!(att.base.raw(), NVM_BASE);
        }
        let dram_va = VirtAddr::new(DRAM_BASE + 8);
        assert!(matches!(s.va2ra(dram_va), Err(HeapError::NotInAnyPool(_))));
    }

    #[test]
    fn detach_faults_ra2va_and_data_survives_reattach() {
        let mut s = AddressSpace::new(11);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va1 = s.ra2va(loc).unwrap();
        s.write_u64(va1, 1234).unwrap();
        s.detach(p).unwrap();
        assert!(matches!(s.ra2va(loc), Err(HeapError::PoolDetached(_))));
        assert!(matches!(s.read_u64(va1), Err(HeapError::NotInAnyPool(_))));
        let att = s.attach(p).unwrap();
        let va2 = s.ra2va(loc).unwrap();
        assert_eq!(va2.raw() - att.base.raw(), u64::from(loc.offset));
        assert_eq!(s.read_u64(va2).unwrap(), 1234);
    }

    #[test]
    fn restart_loses_dram_keeps_pools_relocates() {
        let mut s = AddressSpace::new(5);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va1 = s.ra2va(loc).unwrap();
        s.write_u64(va1, 77).unwrap();
        let d = s.malloc(64).unwrap();
        s.write_u64(d, 88).unwrap();

        s.restart();
        // DRAM content gone; heap reusable.
        assert_eq!(s.read_u64(d).unwrap(), 0);
        let _ = s.malloc(64).unwrap();
        // Pool must be reopened; relative location still resolves.
        let p2 = s.open_pool("p").unwrap();
        assert_eq!(p2, p);
        let va2 = s.ra2va(loc).unwrap();
        assert_eq!(s.read_u64(va2).unwrap(), 77);
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn restarts_usually_relocate_pools() {
        let mut s = AddressSpace::new(5);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let base1 = s.attachment(p).unwrap().base;
        s.restart();
        s.open_pool("p").unwrap();
        let base2 = s.attachment(p).unwrap().base;
        assert_ne!(base1, base2, "bases should differ across generations");
    }

    #[test]
    fn null_page_is_unmapped() {
        let mut s = AddressSpace::new(1);
        assert!(matches!(s.read_u64(VirtAddr::new(0)), Err(HeapError::Unmapped(_))));
        assert!(matches!(s.write_u64(VirtAddr::new(8), 1), Err(HeapError::Unmapped(_))));
    }

    #[test]
    fn multiple_pools_do_not_overlap() {
        let mut s = AddressSpace::new(9);
        for i in 0..32 {
            s.create_pool(&format!("p{i}"), 1 << 20).unwrap();
        }
        let atts = s.attachments();
        for w in atts.windows(2) {
            assert!(w[0].base.raw() + w[0].size <= w[1].base.raw());
        }
    }

    #[test]
    fn offset_out_of_pool_detected() {
        let mut s = AddressSpace::new(2);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let bad = RelLoc::new(p, (1 << 20) + 8);
        assert!(matches!(s.ra2va(bad), Err(HeapError::OffsetOutOfPool { .. })));
    }

    #[test]
    fn pool_root_survives_restart() {
        let mut s = AddressSpace::new(4);
        let p = s.create_pool("p", 1 << 20).unwrap();
        s.set_pool_root(p, 0xfeed).unwrap();
        s.restart();
        s.open_pool("p").unwrap();
        assert_eq!(s.pool_root(p).unwrap(), 0xfeed);
    }

    #[test]
    fn adr_fence_accounting_tracks_pending_lines() {
        let mut s = AddressSpace::new(21);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 256).unwrap();
        s.set_flush_model(FlushModel::Adr);
        let fences0 = s.fence_count();
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 1).unwrap();
        s.write_u64(va.add(8), 2).unwrap(); // same line
        s.write_u64(va.add(128), 3).unwrap(); // different line
        assert_eq!(s.pending_lines(), 2);
        s.flush_line(p, u64::from(loc.offset) + 128);
        assert_eq!(s.pending_lines(), 1);
        s.fence();
        assert_eq!(s.pending_lines(), 0);
        assert_eq!(s.fence_count(), fences0 + 1);
        assert_eq!(s.lines_flushed(), 2);
        // Under eADR nothing ever pends.
        s.set_flush_model(FlushModel::Eadr);
        s.write_u64(va, 9).unwrap();
        assert_eq!(s.pending_lines(), 0);
    }

    #[test]
    fn fence_deferral_elides_until_persist_point() {
        let mut s = AddressSpace::new(22);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 256).unwrap();
        s.set_flush_model(FlushModel::Adr);
        let va = s.ra2va(loc).unwrap();
        let fences0 = s.fence_count();

        s.set_fence_deferral(true);
        assert!(s.fence_deferral());
        s.write_u64(va, 1).unwrap();
        s.fence(); // elided: line must stay pending
        s.write_u64(va.add(128), 2).unwrap();
        s.fence();
        assert_eq!(s.fences_elided(), 2);
        assert_eq!(s.fence_count(), fences0, "no real fence inside the window");
        assert_eq!(s.pending_lines(), 2, "deferred fences leave lines in flight");

        // The persist point bypasses the (still open) window.
        let drained = s.persist_point();
        assert_eq!(drained, 2);
        assert_eq!(s.pending_lines(), 0);
        assert_eq!(s.fence_count(), fences0 + 1, "one real barrier for the batch");
        assert!(s.fence_deferral(), "persist point does not close the window");
        s.set_fence_deferral(false);
        s.fence();
        assert_eq!(s.fence_count(), fences0 + 2);
        assert_eq!(s.fences_elided(), 2, "closed window stops eliding");
    }

    #[test]
    fn restart_drops_open_deferral_window() {
        let mut s = AddressSpace::new(27);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        s.set_flush_model(FlushModel::Adr);
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 0x5a).unwrap();
        s.set_fence_deferral(true);
        s.fence(); // elided — the write is still volatile at the crash
        s.restart();
        assert!(!s.fence_deferral(), "window is volatile state");
        s.open_pool("p").unwrap();
        let va = s.ra2va(loc).unwrap();
        assert_eq!(s.read_u64(va).unwrap(), 0, "un-persisted batch lost whole");
    }

    #[test]
    fn detach_flushes_and_seals_so_reattach_verifies() {
        let mut s = AddressSpace::new(23);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        s.set_flush_model(FlushModel::Adr);
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 0x77).unwrap();
        s.detach(p).unwrap();
        assert_eq!(s.pending_lines(), 0, "graceful detach flushes in-flight lines");
        s.attach(p).unwrap();
        let va = s.ra2va(loc).unwrap();
        assert_eq!(s.read_u64(va).unwrap(), 0x77, "the unfenced write was flushed, not lost");
    }

    #[test]
    fn cached_translations_hit_and_match_uncached() {
        let mut s = AddressSpace::new(31);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        s.reset_trans_stats();
        let va = s.ra2va(loc).unwrap();
        assert_eq!(s.ra2va(loc).unwrap(), va, "second lookup identical");
        assert_eq!(s.trans_stats().spolb_hits, 2, "eager install hits at once");
        let _ = s.va2ra(va).unwrap(); // miss fills the sVALB
        assert_eq!(s.va2ra(va).unwrap(), loc);
        assert_eq!(s.trans_stats().svalb_hits, 1);
        assert_eq!(s.ra2va_uncached(loc).unwrap(), va);
        assert_eq!(s.va2ra_uncached(va).unwrap(), loc);
    }

    #[test]
    fn reattach_at_new_base_never_serves_stale_translations() {
        let mut s = AddressSpace::new(37);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va1 = s.ra2va(loc).unwrap();
        s.write_u64(va1, 0xCAFE).unwrap();
        let _ = s.va2ra(va1).unwrap(); // warm the sVALB
        s.detach(p).unwrap();
        assert!(matches!(s.ra2va(loc), Err(HeapError::PoolDetached(_))));
        assert!(matches!(s.va2ra(va1), Err(HeapError::NotInAnyPool(_))));
        let att = s.attach(p).unwrap();
        let va2 = s.ra2va(loc).unwrap();
        assert_ne!(va2, va1, "relocated");
        assert_eq!(va2.raw(), att.base.raw() + u64::from(loc.offset));
        assert_eq!(s.va2ra(va2).unwrap(), loc);
        assert!(matches!(s.va2ra(va1), Err(HeapError::NotInAnyPool(_))), "old VA stays dead");
        assert_eq!(s.read_u64(va2).unwrap(), 0xCAFE);
    }

    #[test]
    fn quarantine_through_escape_hatch_invalidates_caches() {
        let mut s = AddressSpace::new(41);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 7).unwrap();
        let bumps_before = s.trans_stats().epoch_bumps;
        s.pool_store_mut().quarantine(p, 0);
        assert!(s.trans_stats().epoch_bumps > bumps_before);
        // Translation still resolves (the attachment exists) but the access
        // itself faults on the quarantined device — cached or not.
        assert_eq!(s.va2ra(va).unwrap(), loc);
        assert!(matches!(s.read_u64(va), Err(HeapError::MediaCorruption { .. })));
        assert!(matches!(s.read_u64_uncached(va), Err(HeapError::MediaCorruption { .. })));
        s.pool_store_mut().release(p);
        assert_eq!(s.read_u64(va).unwrap(), 7);
    }

    #[test]
    fn disabled_cache_takes_slow_path_with_identical_results() {
        let mut s = AddressSpace::new(43);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        s.set_translation_cache(false);
        assert!(!s.translation_cache_enabled());
        s.reset_trans_stats();
        let va = s.ra2va(loc).unwrap();
        assert_eq!(s.va2ra(va).unwrap(), loc);
        let stats = s.trans_stats();
        assert_eq!(stats.spolb_hits + stats.spolb_misses, 0, "cache untouched");
        assert_eq!(stats.svalb_hits + stats.svalb_misses, 0);
        s.set_translation_cache(true);
        assert_eq!(s.ra2va(loc).unwrap(), va);
    }

    #[test]
    fn uncached_reads_leave_no_cache_trace() {
        let mut s = AddressSpace::new(47);
        let p = s.create_pool("p", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 0xABCD).unwrap();
        s.reset_trans_stats();
        assert_eq!(s.read_u64_uncached(va).unwrap(), 0xABCD);
        assert_eq!(s.va2ra_uncached(va).unwrap(), loc);
        assert_eq!(s.ra2va_uncached(loc).unwrap(), va);
        let stats = s.trans_stats();
        assert_eq!(stats.spolb_hits + stats.spolb_misses, 0);
        assert_eq!(stats.svalb_hits + stats.svalb_misses, 0);
    }

    #[test]
    fn destroy_pool_removes_everything() {
        let mut s = AddressSpace::new(4);
        let p = s.create_pool("p", 1 << 20).unwrap();
        s.destroy_pool(p).unwrap();
        assert!(s.attachment(p).is_none());
        assert!(s.pool_store().get(p).is_err());
    }

    #[test]
    fn media_clock_decays_sealed_local_pages_and_scrub_catches_it() {
        use crate::integrity::PageVerdict;

        let mut s = AddressSpace::new(11);
        s.pool_store_mut().set_integrity(IntegrityMode::Crc);
        let p = s.create_pool("decay", 1 << 20).unwrap();
        let loc = s.pmalloc(p, 8192).unwrap();
        let va = s.ra2va(loc).unwrap();
        for i in 0..1024u64 {
            s.write_u64(va.add(i * 8), i ^ 0x5a5a).unwrap();
        }
        s.pool_store_mut().seal_all();

        // Without a decay law the clock advances but nothing flips.
        assert_eq!(s.advance_media_clock(5), 0);
        assert_eq!(s.media_tick(), 5);
        assert!(s.pool_store_mut().scrub_all().corrupt.is_empty());

        // With a hot law, sealed cold pages lose the lottery while the
        // system runs — not just at crash_and_recover — and the patrol
        // scrub detects every flip, quarantining the pool.
        s.set_faults(FaultPlan::disabled().with_decay(0xD00D, 50_000_000));
        let injected = s.advance_media_clock(40);
        assert!(injected > 0, "hot decay law flips sealed pages");
        assert_eq!(s.media_tick(), 45);
        let report = s.pool_store_mut().scrub_all();
        assert!(report.corrupt.iter().any(|(id, _)| *id == p));
        assert!(report
            .verdicts
            .iter()
            .any(|(id, _, v)| *id == p && *v == PageVerdict::Quarantined));
    }

    #[test]
    fn quarantined_shared_pool_gates_guarded_ops_with_media_corruption() {
        use crate::retain::RetentionConfig;
        use crate::scrub::{ScrubConfig, Scrubber};

        let sp = SharedPool::create("qguard", 1 << 20, 4).unwrap();
        sp.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 100 });
        let mut s = AddressSpace::new(13);
        let p = s.adopt_shared(&sp).unwrap();
        let loc = s.pmalloc(p, 64).unwrap();
        let va = s.ra2va(loc).unwrap();
        s.write_u64(va, 7).unwrap();
        sp.note_work(100 * 3); // pages age past seal_lag and seal

        let page = u64::from(loc.offset) / PAGE_SIZE;
        assert!(sp.sealed_pages() > 0, "pages sealed cold after the lag");
        // Flip a bit on the sealed page away from our u64, then let a
        // full verify set the quarantine.
        assert!(sp.corrupt_bit(page * PAGE_SIZE + PAGE_SIZE - 8, 3));
        assert!(!sp.verify_all().is_empty());
        let bad = sp.quarantined_page().expect("verify quarantined the pool");

        // Every guarded route through the address space now refuses.
        match s.read_u64(va) {
            Err(HeapError::MediaCorruption { pool, page }) => {
                assert_eq!(pool, p);
                assert_eq!(page, bad);
            }
            other => panic!("expected MediaCorruption, got {other:?}"),
        }
        assert!(matches!(s.write_u64(va, 8), Err(HeapError::MediaCorruption { .. })));
        assert!(matches!(s.pmalloc(p, 32), Err(HeapError::MediaCorruption { .. })));
        assert!(matches!(s.pool_root(p), Err(HeapError::MediaCorruption { .. })));

        // Repair through the scrubber lifts the gate; the surviving data
        // (our u64 was elsewhere on the page) reads back intact.
        let mut sc = Scrubber::new(ScrubConfig::default());
        let pass = sc.repair(&sp);
        assert!(pass.blocks_recovered > 0);
        assert!(sp.quarantined_page().is_none());
        assert_eq!(s.read_u64(va).unwrap(), 7);
    }
}
