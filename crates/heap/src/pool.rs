//! Persistent memory object pools (PMOPs) and the simulated NVM device that
//! stores them.
//!
//! A pool is a named, fixed-size persistent region with its own allocator
//! (paper §II). Pools outlive processes: the [`PoolStore`] plays the role of
//! the NVM device, so pool contents survive [`crate::AddressSpace::restart`]
//! while everything in DRAM is lost.

use crate::addr::{PoolId, MAX_POOL_ID};
use crate::alloc::Region;
use crate::error::{HeapError, Result};
use crate::pagestore::PageStore;
use std::collections::HashMap;

/// Maximum pool size: intra-pool offsets must fit in 32 bits.
pub const MAX_POOL_SIZE: u64 = u32::MAX as u64 + 1;

/// A pool image as it exists on the simulated NVM device.
#[derive(Clone, Debug)]
pub struct PoolImage {
    name: String,
    size: u64,
    data: PageStore,
    region: Region,
}

impl PoolImage {
    /// Pool name (unique within a [`PoolStore`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pool size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The pool's internal allocator handle.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Immutable view of the pool's bytes.
    pub fn data(&self) -> &PageStore {
        &self.data
    }

    /// Mutable view of the pool's bytes.
    pub fn data_mut(&mut self) -> &mut PageStore {
        &mut self.data
    }
}

/// The simulated NVM device: a durable collection of pools indexed by id and
/// name.
///
/// # Examples
///
/// ```
/// use utpr_heap::pool::PoolStore;
///
/// let mut store = PoolStore::new();
/// let id = store.create("ledger", 1 << 20)?;
/// assert_eq!(store.get(id)?.name(), "ledger");
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct PoolStore {
    pools: HashMap<PoolId, PoolImage>,
    by_name: HashMap<String, PoolId>,
    next_id: u32,
}

impl PoolStore {
    /// Creates an empty device.
    pub fn new() -> Self {
        PoolStore { pools: HashMap::new(), by_name: HashMap::new(), next_id: 1 }
    }

    /// Creates and formats a new pool, returning its system-wide id.
    ///
    /// # Errors
    ///
    /// - [`HeapError::PoolExists`] if the name is taken.
    /// - [`HeapError::BadPoolSize`] if `size` is zero, unaligned, or exceeds
    ///   the 32-bit offset range.
    pub fn create(&mut self, name: &str, size: u64) -> Result<PoolId> {
        if self.by_name.contains_key(name) {
            return Err(HeapError::PoolExists(name.to_string()));
        }
        if size == 0 || size > MAX_POOL_SIZE {
            return Err(HeapError::BadPoolSize(size));
        }
        if self.next_id > MAX_POOL_ID {
            return Err(HeapError::NoAddressSpace);
        }
        let mut data = PageStore::new();
        let region = Region::format(&mut data, size)?;
        let id = PoolId::new(self.next_id);
        self.next_id += 1;
        self.pools.insert(id, PoolImage { name: name.to_string(), size, data, region });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks a pool up by name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPoolName`] when absent.
    pub fn id_of(&self, name: &str) -> Result<PoolId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| HeapError::NoSuchPoolName(name.to_string()))
    }

    /// Immutable access to a pool image.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn get(&self, id: PoolId) -> Result<&PoolImage> {
        self.pools.get(&id).ok_or(HeapError::NoSuchPool(id))
    }

    /// Mutable access to a pool image.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn get_mut(&mut self, id: PoolId) -> Result<&mut PoolImage> {
        self.pools.get_mut(&id).ok_or(HeapError::NoSuchPool(id))
    }

    /// Permanently destroys a pool and frees its name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn destroy(&mut self, id: PoolId) -> Result<()> {
        let image = self.pools.remove(&id).ok_or(HeapError::NoSuchPool(id))?;
        self.by_name.remove(&image.name);
        Ok(())
    }

    /// Iterates over `(id, name, size)` of every pool on the device.
    pub fn iter(&self) -> impl Iterator<Item = (PoolId, &str, u64)> + '_ {
        self.pools.iter().map(|(id, img)| (*id, img.name.as_str(), img.size))
    }

    /// Number of pools on the device.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Bytes actually materialized across every pool image (resident set,
    /// as opposed to the sum of declared pool sizes).
    pub fn resident_bytes(&self) -> u64 {
        self.pools.values().map(|img| img.data.resident_bytes()).sum()
    }

    /// True when the device holds no pools.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut s = PoolStore::new();
        let a = s.create("a", 1 << 16).unwrap();
        let b = s.create("b", 1 << 16).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.id_of("a").unwrap(), a);
        assert_eq!(s.get(b).unwrap().name(), "b");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = PoolStore::new();
        s.create("a", 1 << 16).unwrap();
        assert!(matches!(s.create("a", 1 << 16), Err(HeapError::PoolExists(_))));
    }

    #[test]
    fn bad_sizes_rejected() {
        let mut s = PoolStore::new();
        assert!(matches!(s.create("z", 0), Err(HeapError::BadPoolSize(0))));
        assert!(matches!(s.create("z", MAX_POOL_SIZE + 16), Err(HeapError::BadPoolSize(_))));
    }

    #[test]
    fn destroy_releases_name() {
        let mut s = PoolStore::new();
        let a = s.create("a", 1 << 16).unwrap();
        s.destroy(a).unwrap();
        assert!(s.get(a).is_err());
        // Name can be reused; the id cannot (ids are never recycled).
        let a2 = s.create("a", 1 << 16).unwrap();
        assert_ne!(a, a2);
    }

    #[test]
    fn pool_allocator_works_through_store() {
        let mut s = PoolStore::new();
        let id = s.create("p", 1 << 16).unwrap();
        let img = s.get_mut(id).unwrap();
        let region = img.region();
        let off = region.alloc(img.data_mut(), 64).unwrap();
        img.data_mut().write_u64(off, 42);
        assert_eq!(s.get(id).unwrap().data().read_u64(off), 42);
    }
}
