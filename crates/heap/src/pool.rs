//! Persistent memory object pools (PMOPs) and the simulated NVM device that
//! stores them.
//!
//! A pool is a named, fixed-size persistent region with its own allocator
//! (paper §II). Pools outlive processes: the [`PoolStore`] plays the role of
//! the NVM device, so pool contents survive [`crate::AddressSpace::restart`]
//! while everything in DRAM is lost.

use crate::addr::{PoolId, MAX_POOL_ID};
use crate::alloc::Region;
use crate::error::{HeapError, Result};
use crate::integrity::{
    classify_pages, crc32, IntegrityMode, PageCrcs, PageVerdict, PoolScrub, ScrubReport,
};
use crate::pagestore::{PageStore, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Maximum pool size: intra-pool offsets must fit in 32 bits.
pub const MAX_POOL_SIZE: u64 = u32::MAX as u64 + 1;

/// A pool image as it exists on the simulated NVM device.
#[derive(Clone, Debug)]
pub struct PoolImage {
    name: String,
    size: u64,
    data: PageStore,
    region: Region,
    /// Per-page CRC sidecar ([`crate::integrity`]): the out-of-band
    /// checksum area a controller would keep. Empty when integrity is off.
    crcs: PageCrcs,
}

impl PoolImage {
    /// Pool name (unique within a [`PoolStore`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pool size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The pool's internal allocator handle.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Immutable view of the pool's bytes.
    #[inline]
    pub fn data(&self) -> &PageStore {
        &self.data
    }

    /// Mutable view of the pool's bytes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut PageStore {
        &mut self.data
    }

    /// The pool's sealed CRC sidecar.
    pub fn crcs(&self) -> &PageCrcs {
        &self.crcs
    }

    /// Checksums every dirty page into the sidecar and clears the dirty
    /// set — the quiesce-point seal.
    fn seal(&mut self) {
        for page in self.data.dirty_pages() {
            if let Some(bytes) = self.data.page_bytes(page) {
                self.crcs.seal(page, crc32(bytes));
            }
        }
        self.data.clear_dirty();
    }

    /// Re-verifies every sealed, non-dirty page (a dirty page has
    /// legitimate unsealed writes, so its sealed checksum is stale by
    /// design). Returns the first page whose bytes no longer match their
    /// sealed checksum.
    pub fn verify_sealed(&self) -> Option<u64> {
        let dirty = self.data.dirty_pages();
        for page in self.crcs.sealed_pages() {
            if dirty.binary_search(&page).is_ok() {
                continue;
            }
            if let Some(bytes) = self.data.page_bytes(page) {
                if crc32(bytes) != self.crcs.get(page).expect("sealed page has a crc") {
                    return Some(page);
                }
            }
        }
        None
    }

    /// Recomputes the whole sidecar from the current bytes, accepting any
    /// damage as the new sealed state (the salvage path's last step).
    fn reseal(&mut self) {
        self.crcs.clear();
        for page in self.data.resident_page_numbers() {
            if let Some(bytes) = self.data.page_bytes(page) {
                self.crcs.seal(page, crc32(bytes));
            }
        }
        self.data.clear_dirty();
    }
}

/// The simulated NVM device: a durable collection of pools indexed by id and
/// name.
///
/// # Examples
///
/// ```
/// use utpr_heap::pool::PoolStore;
///
/// let mut store = PoolStore::new();
/// let id = store.create("ledger", 1 << 20)?;
/// assert_eq!(store.get(id)?.name(), "ledger");
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct PoolStore {
    /// Pool images, dense by raw id: `slots[id.raw()]`. Ids are handed out
    /// sequentially from 1 and never recycled, so slot 0 is permanently
    /// empty and a destroyed pool leaves a `None` hole. Dense indexing
    /// keeps [`PoolStore::get`] — which sits under every simulated memory
    /// access — to a bounds check and a discriminant test instead of a
    /// hash probe.
    slots: Vec<Option<PoolImage>>,
    by_name: HashMap<String, PoolId>,
    next_id: u32,
    /// Whether pools maintain CRC sidecars (default: they do).
    integrity: IntegrityMode,
    /// Pools with detected media corruption → first bad page. Normal
    /// access errors until [`PoolStore::release`]; ordered so diagnostics
    /// enumerate deterministically.
    quarantined: BTreeMap<PoolId, u64>,
    /// Ids reserved for adopted shared pools ([`PoolStore::reserve`]):
    /// their slots are permanently empty here, but translation must report
    /// them as *detached*, not unknown, once the adoption lapses.
    reserved: HashSet<u32>,
}

impl PoolStore {
    /// Creates an empty device.
    pub fn new() -> Self {
        PoolStore {
            slots: Vec::new(),
            by_name: HashMap::new(),
            next_id: 1,
            integrity: IntegrityMode::default(),
            quarantined: BTreeMap::new(),
            reserved: HashSet::new(),
        }
    }

    /// Live `(id, image)` pairs in id order.
    fn entries(&self) -> impl Iterator<Item = (PoolId, &PoolImage)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|img| (PoolId::new(i as u32), img)))
    }

    /// The device's integrity mode.
    pub fn integrity(&self) -> IntegrityMode {
        self.integrity
    }

    /// Switches integrity mode for this device and every existing pool.
    /// Turning CRC off drops all sidecars (the CRC-overhead baseline);
    /// turning it on marks everything dirty so the next seal covers it.
    pub fn set_integrity(&mut self, mode: IntegrityMode) {
        self.integrity = mode;
        let on = mode == IntegrityMode::Crc;
        for img in self.slots.iter_mut().flatten() {
            img.data.set_dirty_tracking(on);
            if !on {
                img.crcs.clear();
            }
        }
    }

    /// Creates and formats a new pool, returning its system-wide id.
    ///
    /// # Errors
    ///
    /// - [`HeapError::PoolExists`] if the name is taken.
    /// - [`HeapError::BadPoolSize`] if `size` is zero, unaligned, or exceeds
    ///   the 32-bit offset range.
    pub fn create(&mut self, name: &str, size: u64) -> Result<PoolId> {
        if self.by_name.contains_key(name) {
            return Err(HeapError::PoolExists(name.to_string()));
        }
        if size == 0 || size > MAX_POOL_SIZE {
            return Err(HeapError::BadPoolSize(size));
        }
        if self.next_id > MAX_POOL_ID {
            return Err(HeapError::NoAddressSpace);
        }
        let mut data = PageStore::new();
        data.set_dirty_tracking(self.integrity == IntegrityMode::Crc);
        let region = Region::format(&mut data, size)?;
        let id = PoolId::new(self.next_id);
        self.next_id += 1;
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx] =
            Some(PoolImage { name: name.to_string(), size, data, region, crcs: PageCrcs::new() });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Reserves a pool id for `name` *without* creating an image: the slot
    /// stays empty, so [`PoolStore::get`] and friends keep reporting
    /// [`HeapError::NoSuchPool`] for it. This is how an address space
    /// adopts a [`crate::shard::SharedPool`] — the shared pool owns its own
    /// pages, but its id must come from the same sequential namespace so
    /// the dense sPOLB array and the registry stay compact.
    ///
    /// Re-reserving an already-reserved name returns the same id (a shard
    /// re-adopting after a restart keeps its id stable).
    ///
    /// # Errors
    ///
    /// - [`HeapError::PoolExists`] if the name belongs to a *materialised*
    ///   pool.
    /// - [`HeapError::NoAddressSpace`] when the id space is exhausted.
    pub fn reserve(&mut self, name: &str) -> Result<PoolId> {
        if let Some(&id) = self.by_name.get(name) {
            let occupied =
                self.slots.get(id.raw() as usize).map_or(false, Option::is_some);
            if occupied {
                return Err(HeapError::PoolExists(name.to_string()));
            }
            return Ok(id);
        }
        if self.next_id > MAX_POOL_ID {
            return Err(HeapError::NoAddressSpace);
        }
        let id = PoolId::new(self.next_id);
        self.next_id += 1;
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.by_name.insert(name.to_string(), id);
        self.reserved.insert(id.raw());
        Ok(id)
    }

    /// Whether `id` is a reserved (shared-pool) id with no image behind it.
    pub fn is_reserved(&self, id: PoolId) -> bool {
        !self.reserved.is_empty() && self.reserved.contains(&id.raw())
    }

    /// Looks a pool up by name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPoolName`] when absent.
    pub fn id_of(&self, name: &str) -> Result<PoolId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| HeapError::NoSuchPoolName(name.to_string()))
    }

    #[inline]
    fn quarantine_guard(&self, id: PoolId) -> Result<()> {
        // One branch on the empty map in the common case; the lookup only
        // happens while some pool somewhere is quarantined.
        if !self.quarantined.is_empty() {
            if let Some(&page) = self.quarantined.get(&id) {
                return Err(HeapError::MediaCorruption { pool: id, page });
            }
        }
        Ok(())
    }

    /// Immutable access to a pool image.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown and
    /// [`HeapError::MediaCorruption`] when the pool is quarantined.
    #[inline]
    pub fn get(&self, id: PoolId) -> Result<&PoolImage> {
        self.quarantine_guard(id)?;
        match self.slots.get(id.raw() as usize) {
            Some(Some(img)) => Ok(img),
            _ => Err(HeapError::NoSuchPool(id)),
        }
    }

    /// Mutable access to a pool image.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown and
    /// [`HeapError::MediaCorruption`] when the pool is quarantined.
    #[inline]
    pub fn get_mut(&mut self, id: PoolId) -> Result<&mut PoolImage> {
        self.quarantine_guard(id)?;
        match self.slots.get_mut(id.raw() as usize) {
            Some(Some(img)) => Ok(img),
            _ => Err(HeapError::NoSuchPool(id)),
        }
    }

    /// Immutable access that bypasses quarantine — the salvage path's way
    /// in to a damaged pool.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn peek(&self, id: PoolId) -> Result<&PoolImage> {
        match self.slots.get(id.raw() as usize) {
            Some(Some(img)) => Ok(img),
            _ => Err(HeapError::NoSuchPool(id)),
        }
    }

    /// Mutable access that bypasses quarantine (salvage, fault injection).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn peek_mut(&mut self, id: PoolId) -> Result<&mut PoolImage> {
        match self.slots.get_mut(id.raw() as usize) {
            Some(Some(img)) => Ok(img),
            _ => Err(HeapError::NoSuchPool(id)),
        }
    }

    // ---- integrity lifecycle ----------------------------------------------

    /// Seals pool `id`: checksums its dirty pages into the sidecar. Called
    /// at quiesce points (restart, detach). No-op when integrity is off.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn seal(&mut self, id: PoolId) -> Result<()> {
        let img = self.peek_mut(id)?;
        if img.data.dirty_tracking() {
            img.seal();
        }
        Ok(())
    }

    /// Seals every pool on the device.
    pub fn seal_all(&mut self) {
        for img in self.slots.iter_mut().flatten() {
            if img.data.dirty_tracking() {
                img.seal();
            }
        }
    }

    /// Verifies pool `id` against its sealed checksums without side
    /// effects. Returns the first corrupt page, or `None` when clean
    /// (always `None` with integrity off).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn verify(&self, id: PoolId) -> Result<Option<u64>> {
        Ok(self.peek(id)?.verify_sealed())
    }

    /// Recomputes pool `id`'s entire sidecar from its current bytes,
    /// blessing any damage as the new sealed state. The salvage path calls
    /// this after harvesting so the pool can be released and re-attached.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn reseal(&mut self, id: PoolId) -> Result<()> {
        let img = self.peek_mut(id)?;
        if img.data.dirty_tracking() {
            img.reseal();
        }
        Ok(())
    }

    /// Scrubs pool `id`: re-verifies every sealed cold page (the patrol
    /// read), reporting a per-page [`PageVerdict`] through the same
    /// classification kernel the online scrubber uses
    /// ([`classify_pages`]). Dirty pages have legitimate unsealed writes —
    /// their sealed checksums are stale by design — and are skipped. On a
    /// mismatch the pool is quarantined and the report names the page.
    ///
    /// The device has no wear table, so no page is ever refresh-due here:
    /// verdicts are `Clean` or `Quarantined`; `Repaired` is issued only by
    /// the age-aware online scrubber ([`crate::scrub::Scrubber`]).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown. Detected
    /// corruption is reported, not raised — scrubbing a damaged pool is
    /// exactly the point.
    pub fn scrub(&mut self, id: PoolId) -> Result<PoolScrub> {
        let verdicts = {
            let img = self.peek(id)?;
            let dirty = img.data.dirty_pages();
            let cells = img.crcs.sealed_pages().into_iter().filter_map(|page| {
                if dirty.binary_search(&page).is_ok() {
                    return None;
                }
                let sealed = img.crcs.get(page).expect("sealed page has a crc");
                Some((page, sealed, img.data.page_bytes(page)))
            });
            classify_pages(cells, |_| false)
        };
        let scrub = PoolScrub {
            pages_scanned: verdicts.len() as u64,
            bytes_scanned: verdicts.len() as u64 * PAGE_SIZE,
            corrupt_page: verdicts
                .iter()
                .find(|(_, v)| *v == PageVerdict::Quarantined)
                .map(|(p, _)| *p),
            verdicts,
        };
        if let Some(page) = scrub.corrupt_page {
            self.quarantine(id, page);
        }
        Ok(scrub)
    }

    /// Scrubs every pool on the device, quarantining any that fail; the
    /// report carries every page's verdict in `(pool, page)` order.
    pub fn scrub_all(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let ids: Vec<PoolId> = self.entries().map(|(id, _)| id).collect();
        for id in ids {
            let scrub = self.scrub(id).expect("pool enumerated from the device");
            report.pools += 1;
            report.pages_scanned += scrub.pages_scanned;
            report.bytes_scanned += scrub.bytes_scanned;
            if let Some(page) = scrub.corrupt_page {
                report.corrupt.push((id, page));
            }
            report.verdicts.extend(scrub.verdicts.into_iter().map(|(p, v)| (id, p, v)));
        }
        report
    }

    // ---- quarantine --------------------------------------------------------

    /// Marks pool `id` quarantined with `page` as the first known-bad page:
    /// [`PoolStore::get`]/[`PoolStore::get_mut`] return
    /// [`HeapError::MediaCorruption`] until [`PoolStore::release`].
    pub fn quarantine(&mut self, id: PoolId, page: u64) {
        self.quarantined.entry(id).or_insert(page);
    }

    /// Whether pool `id` is quarantined.
    pub fn is_quarantined(&self, id: PoolId) -> bool {
        self.quarantined.contains_key(&id)
    }

    /// The first known-bad page of a quarantined pool.
    pub fn quarantine_info(&self, id: PoolId) -> Option<u64> {
        self.quarantined.get(&id).copied()
    }

    /// Lifts pool `id`'s quarantine (after salvage + reseal).
    pub fn release(&mut self, id: PoolId) {
        self.quarantined.remove(&id);
    }

    /// Permanently destroys a pool and frees its name.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NoSuchPool`] when the id is unknown.
    pub fn destroy(&mut self, id: PoolId) -> Result<()> {
        let image = self
            .slots
            .get_mut(id.raw() as usize)
            .and_then(Option::take)
            .ok_or(HeapError::NoSuchPool(id))?;
        self.by_name.remove(&image.name);
        self.quarantined.remove(&id);
        Ok(())
    }

    /// Iterates over `(id, name, size)` of every pool on the device, in
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (PoolId, &str, u64)> + '_ {
        self.entries().map(|(id, img)| (id, img.name.as_str(), img.size))
    }

    /// Number of pools on the device.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Bytes actually materialized across every pool image (resident set,
    /// as opposed to the sum of declared pool sizes).
    pub fn resident_bytes(&self) -> u64 {
        self.slots.iter().flatten().map(|img| img.data.resident_bytes()).sum()
    }

    /// True when the device holds no pools.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut s = PoolStore::new();
        let a = s.create("a", 1 << 16).unwrap();
        let b = s.create("b", 1 << 16).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.id_of("a").unwrap(), a);
        assert_eq!(s.get(b).unwrap().name(), "b");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = PoolStore::new();
        s.create("a", 1 << 16).unwrap();
        assert!(matches!(s.create("a", 1 << 16), Err(HeapError::PoolExists(_))));
    }

    #[test]
    fn reserve_hands_out_stable_empty_ids() {
        let mut s = PoolStore::new();
        let a = s.create("a", 1 << 16).unwrap();
        let r = s.reserve("shared").unwrap();
        assert_ne!(a, r, "reserved ids come from the same sequential namespace");
        assert!(matches!(s.get(r), Err(HeapError::NoSuchPool(_))), "no image behind it");
        assert_eq!(s.reserve("shared").unwrap(), r, "re-reserving is idempotent");
        assert_eq!(s.id_of("shared").unwrap(), r);
        assert!(matches!(s.reserve("a"), Err(HeapError::PoolExists(_))));
        assert!(matches!(s.create("shared", 1 << 16), Err(HeapError::PoolExists(_))));
        // The next real pool skips past the reserved id.
        let b = s.create("b", 1 << 16).unwrap();
        assert!(b.raw() > r.raw());
        assert_eq!(s.len(), 2, "reserved slots are not materialised pools");
    }

    #[test]
    fn bad_sizes_rejected() {
        let mut s = PoolStore::new();
        assert!(matches!(s.create("z", 0), Err(HeapError::BadPoolSize(0))));
        assert!(matches!(s.create("z", MAX_POOL_SIZE + 16), Err(HeapError::BadPoolSize(_))));
    }

    #[test]
    fn destroy_releases_name() {
        let mut s = PoolStore::new();
        let a = s.create("a", 1 << 16).unwrap();
        s.destroy(a).unwrap();
        assert!(s.get(a).is_err());
        // Name can be reused; the id cannot (ids are never recycled).
        let a2 = s.create("a", 1 << 16).unwrap();
        assert_ne!(a, a2);
    }

    #[test]
    fn pool_allocator_works_through_store() {
        let mut s = PoolStore::new();
        let id = s.create("p", 1 << 16).unwrap();
        let img = s.get_mut(id).unwrap();
        let region = img.region();
        let off = region.alloc(img.data_mut(), 64).unwrap();
        img.data_mut().write_u64(off, 42);
        assert_eq!(s.get(id).unwrap().data().read_u64(off), 42);
    }

    #[test]
    fn seal_then_verify_is_clean_and_catches_silent_decay() {
        let mut s = PoolStore::new();
        let id = s.create("p", 1 << 16).unwrap();
        s.get_mut(id).unwrap().data_mut().write_u64(256, 0xBEEF);
        s.seal(id).unwrap();
        assert_eq!(s.verify(id).unwrap(), None);
        // A legitimate (dirty) write does not trip verification...
        s.get_mut(id).unwrap().data_mut().write_u64(264, 1);
        assert_eq!(s.verify(id).unwrap(), None, "dirty pages are exempt");
        s.seal(id).unwrap();
        // ...but a silent flip under a sealed page does.
        assert!(s.peek_mut(id).unwrap().data_mut().corrupt_bit(256, 0));
        assert_eq!(s.verify(id).unwrap(), Some(0));
    }

    #[test]
    fn scrub_quarantines_and_release_restores_access() {
        let mut s = PoolStore::new();
        let id = s.create("p", 1 << 16).unwrap();
        let ok = s.create("ok", 1 << 16).unwrap();
        s.seal_all();
        s.peek_mut(id).unwrap().data_mut().corrupt_bit(8, 3);
        let report = s.scrub_all();
        assert_eq!(report.pools, 2);
        assert_eq!(report.corrupt, vec![(id, 0)]);
        assert_eq!(report.verdicts.len() as u64, report.pages_scanned, "every page gets a verdict");
        assert!(report.verdicts.contains(&(id, 0, PageVerdict::Quarantined)));
        assert!(
            report.verdicts.iter().all(|&(p, pg, v)| {
                v == if (p, pg) == (id, 0) { PageVerdict::Quarantined } else { PageVerdict::Clean }
            }),
            "exactly the flipped page is condemned: {:?}",
            report.verdicts
        );
        assert!(report.pages_scanned >= 2);
        assert_eq!(report.bytes_scanned, report.pages_scanned * PAGE_SIZE);
        assert!(s.is_quarantined(id));
        assert!(!s.is_quarantined(ok));
        assert!(matches!(s.get(id), Err(HeapError::MediaCorruption { page: 0, .. })));
        assert!(matches!(s.get_mut(id), Err(HeapError::MediaCorruption { .. })));
        assert!(s.get(ok).is_ok(), "healthy pools stay accessible");
        // Salvage path: peek works, reseal blesses the damage, release.
        assert!(s.peek(id).is_ok());
        s.reseal(id).unwrap();
        s.release(id);
        assert!(s.get(id).is_ok());
        assert!(s.scrub(id).unwrap().corrupt_page.is_none(), "resealed state is clean");
    }

    #[test]
    fn integrity_off_skips_sidecars_entirely() {
        let mut s = PoolStore::new();
        s.set_integrity(IntegrityMode::Off);
        let id = s.create("p", 1 << 16).unwrap();
        s.get_mut(id).unwrap().data_mut().write_u64(128, 5);
        s.seal_all();
        assert!(s.peek(id).unwrap().crcs().is_empty());
        s.peek_mut(id).unwrap().data_mut().corrupt_bit(128, 1);
        assert_eq!(s.verify(id).unwrap(), None, "decay is silent without CRC");
        // Turning integrity back on re-arms tracking for existing pools.
        s.set_integrity(IntegrityMode::Crc);
        s.seal(id).unwrap();
        assert!(!s.peek(id).unwrap().crcs().is_empty());
        assert_eq!(s.verify(id).unwrap(), None);
    }
}
