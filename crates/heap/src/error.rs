//! Error types for the simulated heap.

use crate::addr::{PoolId, VirtAddr};
use std::fmt;

/// Errors raised by the simulated memory system.
///
/// These correspond to the faults the paper's hardware raises (Table I lists
/// fault conditions for `load`/`storeD`/`storeP`) plus ordinary allocator
/// failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// Access touched a virtual address with no mapping behind it.
    Unmapped(VirtAddr),
    /// A pool id that was never created (or has been destroyed).
    NoSuchPool(PoolId),
    /// The pool exists in the persistent store but is not currently attached
    /// to the address space, so it has no base virtual address.
    PoolDetached(PoolId),
    /// A pool with this name already exists in the persistent store.
    PoolExists(String),
    /// No pool with this name exists in the persistent store.
    NoSuchPoolName(String),
    /// An intra-pool offset fell outside the pool.
    OffsetOutOfPool {
        /// Pool being accessed.
        pool: PoolId,
        /// Offending offset.
        offset: u64,
        /// Pool size in bytes.
        size: u64,
    },
    /// `va2ra` was asked to translate a virtual address that belongs to no
    /// attached pool.
    NotInAnyPool(VirtAddr),
    /// Allocation failed: the region cannot satisfy the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// `free` was given an address that is not an allocated block.
    BadFree(u64),
    /// A region was opened whose header is not a valid allocator header.
    CorruptRegion(&'static str),
    /// The integrity layer detected damaged media: a sealed page's CRC no
    /// longer matches its bytes ([`crate::integrity`]). The pool is
    /// quarantined; access it through the salvage path.
    MediaCorruption {
        /// Pool whose image is damaged.
        pool: PoolId,
        /// First page whose checksum failed.
        page: u64,
    },
    /// A pool's versioned header (magic, format version, size, header CRC)
    /// failed validation on open/attach.
    BadPoolHeader {
        /// Which header field was rejected.
        reason: &'static str,
    },
    /// Address-space exhaustion while attaching a pool.
    NoAddressSpace,
    /// Requested pool size is invalid (zero, too large, or unaligned).
    BadPoolSize(u64),
    /// A simulated crash fired at an armed fault-injection point
    /// ([`crate::faults`]): the durable write that would have happened next
    /// was suppressed and the "process" must stop. Carries the number of
    /// durable writes that landed before the crash — the crash-point index.
    CrashInjected {
        /// Durable writes completed before the crash.
        writes: u64,
    },
    /// The soundness criterion failed: the same workload computed different
    /// answers under different build variants (§VII-B). Raised by the
    /// benchmark harness instead of panicking so worker threads can report
    /// a divergence as data.
    ModeDivergence {
        /// Benchmark whose modes disagreed.
        benchmark: &'static str,
        /// Human-readable `mode=checksum` listing of the disagreement.
        details: String,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::Unmapped(a) => write!(f, "access to unmapped address {a}"),
            HeapError::NoSuchPool(p) => write!(f, "no such pool {p}"),
            HeapError::PoolDetached(p) => write!(f, "{p} is detached"),
            HeapError::PoolExists(n) => write!(f, "pool named {n:?} already exists"),
            HeapError::NoSuchPoolName(n) => write!(f, "no pool named {n:?}"),
            HeapError::OffsetOutOfPool { pool, offset, size } => {
                write!(f, "offset {offset:#x} outside {pool} of size {size:#x}")
            }
            HeapError::NotInAnyPool(a) => write!(f, "address {a} belongs to no pool"),
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            HeapError::BadFree(off) => write!(f, "free of non-allocated offset {off:#x}"),
            HeapError::CorruptRegion(why) => write!(f, "corrupt allocator region: {why}"),
            HeapError::MediaCorruption { pool, page } => {
                write!(f, "media corruption in {pool}: page {page} fails its checksum")
            }
            HeapError::BadPoolHeader { reason } => write!(f, "bad pool header: {reason}"),
            HeapError::NoAddressSpace => write!(f, "virtual address space exhausted"),
            HeapError::BadPoolSize(s) => write!(f, "invalid pool size {s:#x}"),
            HeapError::CrashInjected { writes } => {
                write!(f, "injected crash after {writes} durable writes")
            }
            HeapError::ModeDivergence { benchmark, details } => {
                write!(f, "modes disagree on {benchmark}: {details}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// Convenience alias used across the heap crate.
pub type Result<T> = std::result::Result<T, HeapError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples: Vec<HeapError> = vec![
            HeapError::Unmapped(VirtAddr::new(4)),
            HeapError::NoSuchPool(PoolId::new(7)),
            HeapError::PoolDetached(PoolId::new(1)),
            HeapError::PoolExists("x".into()),
            HeapError::NoSuchPoolName("y".into()),
            HeapError::OffsetOutOfPool { pool: PoolId::new(2), offset: 9, size: 8 },
            HeapError::NotInAnyPool(VirtAddr::new(8)),
            HeapError::OutOfMemory { requested: 64 },
            HeapError::BadFree(16),
            HeapError::CorruptRegion("bad magic"),
            HeapError::MediaCorruption { pool: PoolId::new(3), page: 5 },
            HeapError::BadPoolHeader { reason: "unsupported format version" },
            HeapError::NoAddressSpace,
            HeapError::BadPoolSize(0),
            HeapError::CrashInjected { writes: 12 },
            HeapError::ModeDivergence { benchmark: "RB", details: "hw=0x1, sw=0x2".into() },
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<HeapError>();
    }
}
