//! The shared lower layer of the multicore heap: a [`SharedPool`] is one
//! persistent pool whose backing pages, allocator metadata, and fault gate
//! are `Send + Sync`, so N worker threads — each owning a private
//! [`crate::AddressSpace`] shard — can attach and mutate it concurrently.
//!
//! The split follows the llfree-rs design: a thin, contended *lower layer*
//! owns the ground truth (striped page locks over the pool image, one
//! central boundary-tag allocator), while the fast paths live in
//! *per-thread leaf state* held by each worker's address space:
//!
//! - **Data plane** — reads and writes take only the lock of the stripe
//!   (page-interleaved, power-of-two many) that holds the touched page.
//!   Threads working disjoint pages never contend.
//! - **Allocation plane** — `pmalloc` is served from a thread-private
//!   *arena lease*: a block carved off the front of a slab (or of the
//!   central free list) that the owning thread subdivides with
//!   [`Region::carve_front`] without taking the central lock. Only lease
//!   *refills* and frees touch the central allocator.
//! - **Fault plane** — one [`FaultPlan`] guards the whole pool, so a
//!   crash boundary armed at `k` counts durable writes across *all*
//!   threads, exactly like a machine-wide power failure.
//!
//! Determinism: per-thread slab cursors make every allocation's offset a
//! function of (slab, thread-local op sequence) alone, never of cross-
//! thread timing — which is what lets the multi-threaded YCSB arm promise
//! bit-identical checksums per `(seed, thread count)` and lets the crash
//! sweeps replay under `UTPR_QC_SEED`. See DESIGN.md §10.
//!
//! Lock order (a level may only acquire locks from levels to its right):
//! `flush` → `faults` → `slabs` → `central` → `media` → stripe locks.
//! Stripe locks are leaves and are held one word/page at a time. The
//! `flush` mutex guards the ADR persistence plane
//! ([`SharedPool::write_u64_stage`], [`SharedPool::cas_u64`],
//! flush/fence/tag bookkeeping) and is never held across an allocator
//! call. The `media` mutex guards the retention plane (media clock, wear
//! table, CRC sidecar, decay books — see [`crate::retain`] and
//! DESIGN.md §13); routines holding it may briefly take stripe locks to
//! read or seal pages, never the reverse.

use crate::alloc::{MemWords, Region, SalvageReport};
use crate::error::Result;
use crate::faults::FaultPlan;
use crate::integrity::{classify_pages, crc32, PageCrcs, PageVerdict};
use crate::pagestore::{PageStore, PAGE_SIZE};
use crate::retain::{decay_draw, RetentionConfig, WearStats, WearTable};
use crate::space::{FlushModel, LINE_SIZE};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel for [`SharedPool`]'s quarantine word: no page quarantined.
const NO_QUARANTINE: u64 = u64::MAX;

/// Target bytes per arena lease. Small enough that a thread abandons
/// little on rebind, large enough that refills are rare on node-sized
/// allocations.
const LEASE_BYTES: u64 = 16 << 10;

/// Allocations whose block footprint exceeds this bypass the arena and go
/// straight to the central allocator.
const LARGE_CUTOFF: u64 = LEASE_BYTES / 4;

/// Handle to one slab: a large block carved out of the shared pool whose
/// remaining space is handed out as arena leases. Slabs are created
/// single-threaded at setup time and bound to one worker each
/// ([`crate::AddressSpace::bind_arena_slab`]), which is what keeps
/// allocation offsets independent of thread timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabId(u32);

/// Cursor state of one slab: the remaining tail `[cur, end)` is always a
/// single allocated block (or empty when `cur == end`).
#[derive(Clone, Copy, Debug)]
struct SlabState {
    cur: u64,
    end: u64,
}

/// A thread-private allocation arena over one shared pool: the current
/// lease (a block `[cur, end)` owned exclusively by this arena) plus the
/// slab it refills from. Held per adopted pool by each worker's
/// [`crate::AddressSpace`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Arena {
    /// The active lease block `[cur, end)`; `None` until the first refill.
    lease: Option<(u64, u64)>,
    /// Where refills come from; `None` falls back to the central allocator.
    slab: Option<SlabId>,
    /// Lease refills performed by this arena.
    refills: u64,
}

impl Arena {
    /// Rebinds the refill source, abandoning any current lease (its
    /// remainder is returned to the central free list by the caller).
    pub(crate) fn bind(&mut self, slab: Option<SlabId>) -> Option<(u64, u64)> {
        self.slab = slab;
        self.lease.take()
    }

    /// Abandons the current lease *without* returning it anywhere: the
    /// block stays tagged allocated and is simply leaked, exactly like
    /// lease remainders at [`crate::AddressSpace::restart`]. Used when a
    /// crashed worker's lease may hold unflushed carve state that must not
    /// be re-carved by a later [`crate::AddressSpace::bind_arena_slab`].
    pub(crate) fn abandon(&mut self) -> Option<(u64, u64)> {
        self.lease.take()
    }

    pub(crate) fn refills(&self) -> u64 {
        self.refills
    }
}

/// Persistence-domain state of one shared pool under [`FlushModel::Adr`]:
/// the machine-wide "cache" of lines written but not yet flushed. Unlike
/// the per-space pending map, this one is shared by every thread — caches
/// are coherent, so thread B staging a line thread A already dirtied must
/// see A's bytes as the *newest* and the pre-A bytes as the *durable*
/// image. One mutex guards the whole plane; it sits at the head of the
/// lock order (`flush` → `faults` → stripe locks) and is only ever taken
/// on data-plane writes, flushes, and fences.
#[derive(Clone, Debug, Default)]
struct FlushState {
    model: FlushModel,
    /// Unflushed lines: line offset → the line's durable bytes (the
    /// striped image holds the newest bytes). Ordered so power-loss
    /// drains are deterministic.
    pending: BTreeMap<u64, [u8; LINE_SIZE as usize]>,
    /// FliT-style per-word dirty tags: word offset → count of stores
    /// tagged but not yet persisted by their writer. A reader finding a
    /// tag must flush before depending on the word; an untagged word is
    /// provably persisted and the flush can be elided.
    tags: BTreeMap<u64, u32>,
    /// Lines made durable by explicit flush or fence drain.
    lines_drained: u64,
    /// Lines whose in-flight bytes were lost to a power cycle.
    lines_lost: u64,
    /// Pool-wide fence (full-drain) events.
    fences: u64,
}

/// Retention-plane state of one shared pool, present once
/// [`SharedPool::configure_retention`] has run: the media clock, the
/// llfree-style compact page-state table, the pool-wide CRC sidecar, and
/// the decay-flip books. It lives *alongside* the stripes, never inside
/// them — like the sidecar, it models controller metadata, not pool bytes.
#[derive(Clone, Debug)]
struct MediaState {
    cfg: RetentionConfig,
    wear: WearTable,
    crcs: PageCrcs,
    /// Modelled work units accumulated on the media clock.
    work: u64,
    /// The share of `work` attributed to scrub/maintenance traffic.
    scrub_work: u64,
    /// Decay flips injected into sealed cold pages so far.
    flips_injected: u64,
    /// Injected flips that a verify path has since caught. Two strikes on
    /// the same `(page, offset, bit)` annihilate — the CRC matches again
    /// and the pair is undetectable *by construction* — so zero silent
    /// corruption means `injected == detected + cancelled` once the final
    /// full verify has run.
    flips_detected: u64,
    /// Flips retired by pairwise annihilation (always even).
    flips_cancelled: u64,
    /// Outstanding flipped bits per page: `(offset-in-pool, bit)` of every
    /// injected-but-undetected strike.
    pending_flips: BTreeMap<u64, BTreeSet<(u64, u8)>>,
    /// Distinct pages the lottery has ever struck (monotone).
    pages_struck: BTreeSet<u64>,
}

/// One persistent pool shared by many address-space shards. See the
/// module docs for the layering and lock order.
#[derive(Debug)]
pub struct SharedPool {
    name: String,
    size: u64,
    /// Page-interleaved backing stores: page `p` lives in stripe
    /// `p & stripe_mask`. Each stripe's `PageStore` is sparse and indexed
    /// by absolute pool offset, so no address arithmetic changes.
    stripes: Box<[Mutex<PageStore>]>,
    stripe_mask: u64,
    /// The boundary-tag allocator over the striped words. `Region` itself
    /// is a stateless `Copy` handle; `central` serialises free-list and
    /// stats mutations.
    region: Region,
    central: Mutex<()>,
    slabs: Mutex<Vec<SlabState>>,
    faults: Mutex<FaultPlan>,
    flush: Mutex<FlushState>,
    /// Retention plane; `None` until [`SharedPool::configure_retention`].
    media: Mutex<Option<MediaState>>,
    /// Fast-path mirror of `media.is_some()`: one relaxed load keeps the
    /// hot write path free of the media mutex when retention is off.
    media_on: AtomicBool,
    /// First page whose sealed checksum failed verification
    /// ([`NO_QUARANTINE`] when none): shards refuse guarded access until
    /// [`SharedPool::release_quarantine`] after salvage.
    quarantine: AtomicU64,
    /// Whether central allocation prefers low-write-count pages (the
    /// wear-leveling ablation).
    wear_level: AtomicBool,
    refills: AtomicU64,
    central_allocs: AtomicU64,
    slab_overflows: AtomicU64,
    /// Batch persist barriers issued through [`SharedPool::persist_point`]
    /// (the serving layer's group commits), a subset of `flush.fences`.
    group_commits: AtomicU64,
}

// The whole point of the type: one pool, many threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedPool>();
};

/// `MemWords` view of a [`SharedPool`], locking the owning stripe per
/// word. Lets the single-threaded `Region` code run unchanged over the
/// striped device.
struct StripedWords<'a>(&'a SharedPool);

impl MemWords for StripedWords<'_> {
    #[inline]
    fn read_word(&self, offset: u64) -> u64 {
        self.0.read_u64(offset)
    }

    #[inline]
    fn write_word(&mut self, offset: u64, value: u64) {
        self.0.write_u64(offset, value)
    }
}

impl SharedPool {
    /// Creates and formats a shared pool of `size` bytes with `stripes`
    /// page-lock stripes (rounded up to a power of two, min 1).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadPoolSize`] for sizes the region format
    /// rejects.
    pub fn create(name: &str, size: u64, stripes: usize) -> Result<Arc<SharedPool>> {
        let n = stripes.max(1).next_power_of_two();
        let stripes: Box<[Mutex<PageStore>]> =
            (0..n).map(|_| Mutex::new(PageStore::new())).collect();
        let pool = SharedPool {
            name: name.to_string(),
            size,
            stripes,
            stripe_mask: (n - 1) as u64,
            // Placeholder until format validates the size below.
            region: Region::from_size_unchecked(size),
            central: Mutex::new(()),
            slabs: Mutex::new(Vec::new()),
            faults: Mutex::new(FaultPlan::disabled()),
            flush: Mutex::new(FlushState::default()),
            media: Mutex::new(None),
            media_on: AtomicBool::new(false),
            quarantine: AtomicU64::new(NO_QUARANTINE),
            wear_level: AtomicBool::new(false),
            refills: AtomicU64::new(0),
            central_allocs: AtomicU64::new(0),
            slab_overflows: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
        };
        Region::format(&mut StripedWords(&pool), size)?;
        Ok(Arc::new(pool))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn size(&self) -> u64 {
        self.size
    }

    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    // ---- data plane -------------------------------------------------------

    #[inline]
    fn stripe_for(&self, offset: u64) -> &Mutex<PageStore> {
        &self.stripes[((offset / PAGE_SIZE) & self.stripe_mask) as usize]
    }

    /// Reads `buf.len()` bytes at `offset`, splitting at page boundaries so
    /// each page is served under its own stripe lock.
    pub fn read_bytes(&self, mut offset: u64, mut buf: &mut [u8]) {
        while !buf.is_empty() {
            let in_page = (PAGE_SIZE - offset % PAGE_SIZE) as usize;
            let n = in_page.min(buf.len());
            self.stripe_for(offset).lock().unwrap().read(offset, &mut buf[..n]);
            offset += n as u64;
            buf = &mut buf[n..];
        }
    }

    /// Writes `buf` at `offset`, splitting at page boundaries.
    pub fn write_bytes(&self, mut offset: u64, mut buf: &[u8]) {
        if self.media_on.load(Ordering::Acquire) && !buf.is_empty() {
            self.media_note_write(offset, buf.len() as u64);
        }
        while !buf.is_empty() {
            let in_page = (PAGE_SIZE - offset % PAGE_SIZE) as usize;
            let n = in_page.min(buf.len());
            self.stripe_for(offset).lock().unwrap().write(offset, &buf[..n]);
            offset += n as u64;
            buf = &buf[n..];
        }
    }

    /// Reads the aligned word at `offset` (words never straddle pages).
    #[inline]
    pub fn read_u64(&self, offset: u64) -> u64 {
        debug_assert_eq!(offset % 8, 0, "unaligned word read at {offset:#x}");
        self.stripe_for(offset).lock().unwrap().read_u64(offset)
    }

    /// Writes the aligned word at `offset`.
    #[inline]
    pub fn write_u64(&self, offset: u64, value: u64) {
        debug_assert_eq!(offset % 8, 0, "unaligned word write at {offset:#x}");
        if self.media_on.load(Ordering::Acquire) {
            self.media_note_write(offset, 8);
        }
        self.stripe_for(offset).lock().unwrap().write_u64(offset, value)
    }

    // ---- fault plane ------------------------------------------------------

    /// Installs the pool-wide fault plan. One plan gates every thread's
    /// durable writes, so an armed boundary models a machine-wide power
    /// failure regardless of which thread trips it.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.faults.lock().unwrap() = plan;
    }

    /// Snapshot of the pool-wide fault plan.
    pub fn faults(&self) -> FaultPlan {
        *self.faults.lock().unwrap()
    }

    /// Consults the pool-wide gate for one atomic durable write.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] at and after the armed point.
    pub(crate) fn gate(&self) -> Result<()> {
        self.faults.lock().unwrap().gate()
    }

    // ---- persistence domain (ADR flush plane) -----------------------------

    /// The pool's persistence-domain model.
    pub fn flush_model(&self) -> FlushModel {
        self.flush.lock().unwrap().model
    }

    /// Switches the persistence-domain model. Moving to eADR implicitly
    /// fences: lines in flight become durable and every tag clears.
    pub fn set_flush_model(&self, model: FlushModel) {
        let mut fs = self.flush.lock().unwrap();
        if model == FlushModel::Eadr {
            fs.lines_drained += fs.pending.len() as u64;
            fs.pending.clear();
            fs.tags.clear();
        }
        fs.model = model;
    }

    /// Stage the durable bytes of `off`'s line before a write mutates the
    /// image. Must run under the flush lock, *before* the stripe write.
    fn stage_line(&self, fs: &mut FlushState, off: u64) {
        if fs.model != FlushModel::Adr {
            return;
        }
        let line = off / LINE_SIZE * LINE_SIZE;
        if !fs.pending.contains_key(&line) {
            let mut old = [0u8; LINE_SIZE as usize];
            self.read_bytes(line, &mut old);
            fs.pending.insert(line, old);
        }
    }

    /// One gated, durable-boundary word write on the data plane: under ADR
    /// the touched line is staged (its durable bytes snapshotted) before
    /// the image mutates, so a later [`SharedPool::power_cycle`] can revert
    /// it. Identical to [`SharedPool::write_u64`] plus a gate under eADR.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] when an armed fault point
    /// fires; the write does not land.
    pub fn write_u64_stage(&self, off: u64, value: u64) -> Result<()> {
        let mut fs = self.flush.lock().unwrap();
        self.gate()?;
        self.stage_line(&mut fs, off);
        self.write_u64(off, value);
        Ok(())
    }

    /// Compare-and-swap on the word at `off`. Returns `(swapped, old)`.
    /// The whole read-compare-write runs under the flush-plane lock, so it
    /// is atomic against every other staged write and CAS. Only a
    /// *successful* swap is a durable write boundary (and stages its line);
    /// a failed CAS is just a load.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CrashInjected`] when the gate fires on a
    /// would-succeed swap; the write does not land.
    pub fn cas_u64(&self, off: u64, expected: u64, new: u64) -> Result<(bool, u64)> {
        let mut fs = self.flush.lock().unwrap();
        let cur = self.read_u64(off);
        if cur != expected {
            return Ok((false, cur));
        }
        self.gate()?;
        self.stage_line(&mut fs, off);
        self.write_u64(off, new);
        Ok((true, cur))
    }

    /// Targeted `clwb`: makes the line containing `off` durable. Returns
    /// whether the line was actually pending.
    pub fn flush_line(&self, off: u64) -> bool {
        let mut fs = self.flush.lock().unwrap();
        let line = off / LINE_SIZE * LINE_SIZE;
        if fs.pending.remove(&line).is_some() {
            fs.lines_drained += 1;
            true
        } else {
            false
        }
    }

    /// FliT tag protocol: marks the word at `off` dirty (store side). The
    /// count nests so two in-flight stores need two completions.
    pub fn tag_word(&self, off: u64) {
        let mut fs = self.flush.lock().unwrap();
        *fs.tags.entry(off / 8 * 8).or_insert(0) += 1;
    }

    /// FliT tag protocol: the writer persisted the word; drop one tag.
    pub fn untag_word(&self, off: u64) {
        let mut fs = self.flush.lock().unwrap();
        let w = off / 8 * 8;
        if let Some(c) = fs.tags.get_mut(&w) {
            *c -= 1;
            if *c == 0 {
                fs.tags.remove(&w);
            }
        }
    }

    /// FliT tag protocol, load side: is the word possibly unpersisted?
    pub fn word_tagged(&self, off: u64) -> bool {
        self.flush.lock().unwrap().tags.contains_key(&(off / 8 * 8))
    }

    /// Pool-wide persist barrier: drains every pending line to durability
    /// (the flush half of an `sfence` issued by any thread — caches are
    /// machine-wide, so one thread's fence drains everyone's lines).
    /// Returns the number of lines drained.
    pub fn drain_all(&self) -> u64 {
        let mut fs = self.flush.lock().unwrap();
        let n = fs.pending.len() as u64;
        fs.lines_drained += n;
        fs.fences += 1;
        fs.pending.clear();
        n
    }

    /// Power loss: every unflushed line reverts to its durable bytes and
    /// all tags clear (the tag table is volatile). The crash sweeps call
    /// this on a tripped trial before recovery, exactly where
    /// [`crate::AddressSpace::restart`] drains per-space pending lines.
    pub fn power_cycle(&self) {
        let mut fs = self.flush.lock().unwrap();
        let pending = std::mem::take(&mut fs.pending);
        fs.lines_lost += pending.len() as u64;
        for (line, old) in pending {
            self.write_bytes(line, &old);
        }
        fs.tags.clear();
    }

    /// Lines currently written but not yet durable.
    pub fn pending_lines(&self) -> usize {
        self.flush.lock().unwrap().pending.len()
    }

    /// Lines made durable by flush or fence drain so far.
    pub fn lines_drained(&self) -> u64 {
        self.flush.lock().unwrap().lines_drained
    }

    /// Lines lost to power cycles so far.
    pub fn lines_lost(&self) -> u64 {
        self.flush.lock().unwrap().lines_lost
    }

    /// Pool-wide fence (full-drain) events so far.
    pub fn fence_count(&self) -> u64 {
        self.flush.lock().unwrap().fences
    }

    /// Batch persist entry point for group commit: one pool-wide barrier
    /// that makes everything a shard wrote for the current batch durable
    /// in a single drain. Counts as a fence *and* as a group commit, so
    /// `fences/op` and `group_commits/op` can be read off the same pool
    /// after a server run. Returns the number of lines drained.
    pub fn persist_point(&self) -> u64 {
        self.group_commits.fetch_add(1, Ordering::Relaxed);
        self.drain_all()
    }

    /// Batch persist barriers issued via [`SharedPool::persist_point`].
    pub fn group_commits(&self) -> u64 {
        self.group_commits.load(Ordering::Relaxed)
    }

    // ---- allocation plane -------------------------------------------------

    /// Central allocation: takes the central lock and runs the boundary-tag
    /// allocator. Returns the payload offset. Used for large requests,
    /// slab creation, and arena fallback.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the pool is exhausted.
    pub(crate) fn alloc_central(&self, size: u64) -> Result<u64> {
        let _g = self.central.lock().unwrap();
        // Wear-leveling ablation: copy the write counts out under the media
        // lock, then walk the free list scoring against the copy — scoring
        // inside the walk would re-take `media` per page.
        let counts = if self.wear_level.load(Ordering::Relaxed) {
            self.media.lock().unwrap().as_ref().map(|m| m.wear.write_counts())
        } else {
            None
        };
        let off = match counts {
            Some(c) => self.region.alloc_scored(&mut StripedWords(self), size, |p| {
                c.get(p as usize).copied().unwrap_or(0)
            })?,
            None => self.region.alloc(&mut StripedWords(self), size)?,
        };
        self.central_allocs.fetch_add(1, Ordering::Relaxed);
        Ok(off)
    }

    /// Frees the allocation at payload `offset` through the central
    /// allocator. Works for carved arena blocks too: every carve rewrites
    /// proper boundary tags, so each piece is an ordinary block.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadFree`] for offsets that are not live
    /// allocations.
    pub(crate) fn free_central(&self, offset: u64) -> Result<()> {
        let _g = self.central.lock().unwrap();
        self.region.free(&mut StripedWords(self), offset)
    }

    /// Central allocation for harnesses that drive the pool directly —
    /// the wear-churn ablation allocates and frees through this pair to
    /// exercise the scored (wear-leveling) allocator against first-fit.
    /// Same path slab refills take: scored toward low-write-count pages
    /// when [`SharedPool::set_wear_leveling`] is on.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc_raw(&self, size: u64) -> Result<u64> {
        self.alloc_central(size)
    }

    /// Frees an [`SharedPool::alloc_raw`] allocation.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadFree`] for offsets that are not live
    /// allocations.
    pub fn free_raw(&self, offset: u64) -> Result<()> {
        self.free_central(offset)
    }

    /// Carves a slab of `bytes` out of the central allocator. Call
    /// single-threaded at setup; bind each slab to exactly one worker.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the pool cannot hold it.
    pub fn carve_slab(&self, bytes: u64) -> Result<SlabId> {
        let payload = self.alloc_central(bytes)?;
        let (block, bsize) = self.region.block_of(&StripedWords(self), payload);
        let mut slabs = self.slabs.lock().unwrap();
        let id = SlabId(slabs.len() as u32);
        slabs.push(SlabState { cur: block, end: block + bsize });
        Ok(id)
    }

    /// Takes a lease of at least `min_need` bytes (target [`LEASE_BYTES`])
    /// off the front of `slab`, or from the central allocator when no slab
    /// is bound or the slab is exhausted. Returns the lease block bounds
    /// `[block, end)`; the block is tagged allocated and owned exclusively
    /// by the caller until subdivided or freed.
    fn lease(&self, slab: Option<SlabId>, min_need: u64) -> Result<(u64, u64)> {
        if let Some(SlabId(i)) = slab {
            let mut slabs = self.slabs.lock().unwrap();
            let st = &mut slabs[i as usize];
            let avail = st.end - st.cur;
            if avail >= min_need {
                let mut take = LEASE_BYTES.clamp(min_need, avail);
                if avail - take < Region::min_block() {
                    take = avail;
                }
                let block = st.cur;
                if take < avail {
                    self.region.carve_front(&mut StripedWords(self), block, avail, take);
                    let _g = self.central.lock().unwrap();
                    self.region.note_split(&mut StripedWords(self));
                }
                st.cur += take;
                self.refills.fetch_add(1, Ordering::Relaxed);
                return Ok((block, block + take));
            }
            drop(slabs);
            self.slab_overflows.fetch_add(1, Ordering::Relaxed);
        }
        // Central fallback: allocate a whole lease block.
        let want = LEASE_BYTES.max(min_need);
        let payload = self.alloc_central(want - Region::min_block().min(16))?;
        let (block, bsize) = self.region.block_of(&StripedWords(self), payload);
        self.refills.fetch_add(1, Ordering::Relaxed);
        Ok((block, block + bsize))
    }

    /// Serves one `pmalloc` of `size` bytes from `arena`, refilling its
    /// lease as needed. Returns the payload offset. This is the per-thread
    /// fast path: when the lease has room, no shared lock beyond the
    /// touched stripes is taken (plus the short central section for split
    /// accounting).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when neither the lease, the
    /// bound slab, nor the central allocator can satisfy the request.
    pub(crate) fn arena_alloc(&self, arena: &mut Arena, size: u64) -> Result<u64> {
        let need = Region::block_need(size);
        if need > LARGE_CUTOFF {
            return self.alloc_central(size);
        }
        loop {
            if let Some((block, end)) = arena.lease {
                let avail = end - block;
                if need <= avail {
                    if avail - need >= Region::min_block() {
                        self.region.carve_front(&mut StripedWords(self), block, avail, need);
                        {
                            let _g = self.central.lock().unwrap();
                            self.region.note_split(&mut StripedWords(self));
                        }
                        arena.lease = Some((block + need, end));
                    } else {
                        // Tail too small to split: hand out the whole block.
                        arena.lease = None;
                    }
                    return Ok(block + 8);
                }
                // Lease too small for this request: return the remainder to
                // the central free list and refill.
                arena.lease = None;
                self.free_central(block + 8)?;
            }
            arena.lease = Some(self.lease(arena.slab, need)?);
            arena.refills += 1;
        }
    }

    /// Returns an abandoned lease remainder (from [`Arena::bind`]) to the
    /// central free list.
    pub(crate) fn release_lease(&self, lease: Option<(u64, u64)>) -> Result<()> {
        match lease {
            Some((block, _)) => self.free_central(block + 8),
            None => Ok(()),
        }
    }

    // ---- media/retention plane --------------------------------------------

    /// Turns the retention plane on: builds the wear table from the pool
    /// geometry, enables per-stripe dirty tracking (already-resident pages
    /// start dirty — their checksums are unknown), and starts the media
    /// clock at tick 0. The decay *law* (seed, rate) comes separately from
    /// [`SharedPool::set_faults`] with [`FaultPlan::with_decay`].
    pub fn configure_retention(&self, cfg: RetentionConfig) {
        let pages = (self.size / PAGE_SIZE) as usize + 1;
        for stripe in self.stripes.iter() {
            stripe.lock().unwrap().set_dirty_tracking(true);
        }
        *self.media.lock().unwrap() = Some(MediaState {
            cfg,
            wear: WearTable::new(pages),
            crcs: PageCrcs::new(),
            work: 0,
            scrub_work: 0,
            flips_injected: 0,
            flips_detected: 0,
            flips_cancelled: 0,
            pending_flips: BTreeMap::new(),
            pages_struck: BTreeSet::new(),
        });
        self.media_on.store(true, Ordering::Release);
    }

    /// Whether the retention plane is active.
    pub fn retention_enabled(&self) -> bool {
        self.media_on.load(Ordering::Acquire)
    }

    /// Whether central allocation prefers low-write-count pages.
    pub fn wear_leveling(&self) -> bool {
        self.wear_level.load(Ordering::Relaxed)
    }

    /// Switches the wear-leveling allocation policy (the ablation knob;
    /// requires the retention plane for scores, no-op steering otherwise).
    pub fn set_wear_leveling(&self, on: bool) {
        self.wear_level.store(on, Ordering::Relaxed);
    }

    /// Write-path hook: wear accounting plus the *cold-write verify*.
    /// Mutating a sealed, clean page first patrol-reads it, so a decayed
    /// cell cannot be silently re-blessed when the overwritten page is
    /// eventually resealed. Detection is infallible bookkeeping
    /// (quarantine + flip accounting); the write itself proceeds and the
    /// *next* guarded shard operation surfaces the error.
    fn media_note_write(&self, offset: u64, len: u64) {
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return };
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            if let Some(sealed) = m.crcs.get(page) {
                let stripe = self.stripe_for(page * PAGE_SIZE).lock().unwrap();
                let cold = !stripe.is_dirty(page);
                let clean = stripe.page_bytes(page).map_or(true, |b| crc32(b) == sealed);
                drop(stripe);
                if cold && !clean {
                    Self::note_detection(&self.quarantine, m, page);
                }
            }
            m.wear.note_write(page);
        }
    }

    /// Books one decay strike at `(page, off, bit)`. A strike on a bit
    /// that is already flipped annihilates the pair: the page's CRC
    /// matches again, so neither flip can ever be detected — they are
    /// retired to the `cancelled` column instead.
    fn note_strike(m: &mut MediaState, page: u64, off: u64, bit: u8) {
        m.flips_injected += 1;
        m.pages_struck.insert(page);
        let bits = m.pending_flips.entry(page).or_default();
        if bits.remove(&(off, bit)) {
            m.flips_cancelled += 2;
            if bits.is_empty() {
                m.pending_flips.remove(&page);
            }
        } else {
            bits.insert((off, bit));
        }
    }

    /// Books one detected corruption: flips on `page` move from the
    /// undetected to the detected column and the pool quarantines on the
    /// first bad page (later detections keep the original).
    fn note_detection(quarantine: &AtomicU64, m: &mut MediaState, page: u64) {
        m.flips_detected += m.pending_flips.remove(&page).map_or(0, |bits| bits.len() as u64);
        let _ = quarantine.compare_exchange(NO_QUARANTINE, page, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Advances the media clock by `units` of modelled mutator work.
    /// Returns the clock tick afterwards. Each elapsed tick runs the
    /// controller maintenance pass: quiesced dirty pages seal
    /// (checksummed into the sidecar), then the decay lottery of
    /// [`FaultPlan::with_decay`] strikes sealed cold pages.
    pub fn note_work(&self, units: u64) -> u64 {
        self.advance_work(units, false)
    }

    /// [`SharedPool::note_work`] for scrubber traffic: same clock, but the
    /// units are booked to the scrub-overhead column.
    pub fn note_scrub_work(&self, units: u64) -> u64 {
        self.advance_work(units, true)
    }

    fn advance_work(&self, units: u64, scrub: bool) -> u64 {
        if !self.media_on.load(Ordering::Acquire) {
            return 0;
        }
        // Copy the decay law out first: `faults` precedes `media` in the
        // lock order and must never be taken underneath it.
        let decay = self.faults.lock().unwrap().decay();
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return 0 };
        m.work += units;
        if scrub {
            m.scrub_work += units;
        }
        let target = m.work / m.cfg.work_per_tick;
        while m.wear.tick() < target {
            let t = m.wear.tick() + 1;
            m.wear.advance_to(t);
            self.seal_cold_pages(m);
            if let Some((seed, ppb)) = decay {
                self.inject_decay(m, seed, ppb);
            }
        }
        m.wear.tick()
    }

    /// Seals every dirty page that has quiesced for `seal_lag` ticks:
    /// checksum into the sidecar, dirty bit cleared. Sealing is *not* a
    /// reprogram — the cells keep the age of their last write.
    fn seal_cold_pages(&self, m: &mut MediaState) {
        let now = m.wear.tick();
        for stripe in self.stripes.iter() {
            let mut ps = stripe.lock().unwrap();
            for page in ps.dirty_pages() {
                if now.saturating_sub(m.wear.wear(page).last_rewrite) < m.cfg.seal_lag {
                    continue;
                }
                if let Some(bytes) = ps.page_bytes(page) {
                    let crc = crc32(bytes);
                    m.crcs.seal(page, crc);
                    ps.clear_dirty_page(page);
                }
            }
        }
    }

    /// The per-tick decay lottery over sealed cold pages: a page of age
    /// `a` flips a pseudorandom bit with probability `a × ppb / 1e9`.
    /// Flips bypass dirty tracking — silent until a verify path catches
    /// them.
    fn inject_decay(&self, m: &mut MediaState, seed: u64, ppb: u64) {
        let t = m.wear.tick();
        for page in m.crcs.sealed_pages() {
            let age = m.wear.age(page);
            let Some((off, bit)) = decay_draw(seed, page, t, age, ppb) else {
                continue;
            };
            let mut ps = self.stripe_for(page * PAGE_SIZE).lock().unwrap();
            if ps.is_dirty(page) {
                continue; // re-dirtied since sealing: modelled as freshly hot
            }
            if ps.corrupt_bit(page * PAGE_SIZE + off, bit) {
                Self::note_strike(m, page, off, bit);
            }
        }
    }

    /// One patrol-scrub batch: visits up to `limit` sealed cold pages
    /// oldest-first, verifies each against its sealed checksum, rewrites
    /// (reprograms in place, resetting its decay age) any clean page whose
    /// age has reached `refresh_age`, and quarantines on mismatch. Returns
    /// the per-page verdicts, sharing the verdict kernel
    /// ([`classify_pages`]) with [`crate::pool::PoolStore::scrub`].
    pub fn scrub_batch(&self, limit: usize, refresh_age: u64) -> Vec<(u64, PageVerdict)> {
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return Vec::new() };
        let mut pages = m.crcs.sealed_pages();
        m.wear.oldest_first(&mut pages);
        let mut cells: Vec<(u64, u32, Option<Vec<u8>>)> = Vec::new();
        for page in pages {
            if cells.len() >= limit {
                break;
            }
            let sealed = m.crcs.get(page).expect("sealed page has a crc");
            let ps = self.stripe_for(page * PAGE_SIZE).lock().unwrap();
            if ps.is_dirty(page) {
                continue; // went hot again; the next seal re-covers it
            }
            cells.push((page, sealed, ps.page_bytes(page).map(<[u8]>::to_vec)));
        }
        let verdicts = {
            let wear = &m.wear;
            classify_pages(cells.iter().map(|(p, c, b)| (*p, *c, b.as_deref())), |p| {
                wear.age(p) >= refresh_age
            })
        };
        for (page, v) in &verdicts {
            match v {
                // Reprogram in place: same bytes, fresh cells — the decay
                // age resets and the endurance wear accrues.
                PageVerdict::Repaired => m.wear.note_write(*page),
                PageVerdict::Quarantined => Self::note_detection(&self.quarantine, m, *page),
                PageVerdict::Clean => {}
            }
        }
        verdicts
    }

    /// Verifies every sealed cold page against its sidecar checksum,
    /// quarantining and accounting each mismatch. Returns the failed
    /// pages. This is the full patrol pass the repair flow runs *before*
    /// resealing, so no stale flip can be blessed.
    pub fn verify_all(&self) -> Vec<u64> {
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return Vec::new() };
        let mut bad = Vec::new();
        for page in m.crcs.sealed_pages() {
            let sealed = m.crcs.get(page).expect("sealed page has a crc");
            let ps = self.stripe_for(page * PAGE_SIZE).lock().unwrap();
            if ps.is_dirty(page) {
                continue;
            }
            let clean = ps.page_bytes(page).map_or(true, |b| crc32(b) == sealed);
            drop(ps);
            if !clean {
                Self::note_detection(&self.quarantine, m, page);
                bad.push(page);
            }
        }
        bad
    }

    /// Seals every dirty resident page *now*, regardless of quiesce age —
    /// the flush before a final verify or audit. Safe against blessing:
    /// decay never strikes dirty pages, and a flip predating the page's
    /// re-dirtying was already caught by the cold-write verify.
    pub fn seal_all_now(&self) {
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return };
        for stripe in self.stripes.iter() {
            let mut ps = stripe.lock().unwrap();
            for page in ps.dirty_pages() {
                if let Some(bytes) = ps.page_bytes(page) {
                    let crc = crc32(bytes);
                    m.crcs.seal(page, crc);
                    ps.clear_dirty_page(page);
                }
            }
        }
    }

    /// Re-checksums every resident page at its *current* contents and
    /// clears all dirty state — the post-salvage blessing that makes the
    /// repaired image the new ground truth. Each page counts as one
    /// reprogram (full-pool rewrite) in the wear table. Call only after
    /// [`SharedPool::verify_all`] has routed every stale flip through
    /// detection; resealing first would hide them.
    pub fn reseal_all(&self) {
        let mut guard = self.media.lock().unwrap();
        let Some(m) = guard.as_mut() else { return };
        for stripe in self.stripes.iter() {
            let mut ps = stripe.lock().unwrap();
            for page in ps.resident_page_numbers() {
                if let Some(bytes) = ps.page_bytes(page) {
                    let crc = crc32(bytes);
                    m.crcs.seal(page, crc);
                    ps.clear_dirty_page(page);
                    m.wear.note_write(page);
                }
            }
        }
    }

    /// Best-effort block enumeration over the (possibly damaged) pool —
    /// [`Region::salvage`] over the striped words, quiesced against the
    /// allocator via the central lock.
    pub fn salvage(&self) -> SalvageReport {
        let _g = self.central.lock().unwrap();
        Region::salvage(&StripedWords(self), self.size)
    }

    /// The first page whose verification failed, while the pool is
    /// quarantined.
    pub fn quarantined_page(&self) -> Option<u64> {
        let q = self.quarantine.load(Ordering::Acquire);
        (q != NO_QUARANTINE).then_some(q)
    }

    /// Lifts the quarantine after salvage + reseal.
    pub fn release_quarantine(&self) {
        self.quarantine.store(NO_QUARANTINE, Ordering::Release);
    }

    /// Flips bit `bit` of the byte at `offset` without dirtying its page —
    /// the targeted fault-injection hook of the crash/race tests. Booked
    /// as an injected flip when the retention plane is on, so the
    /// zero-silent-corruption invariant (`injected == detected`) covers
    /// hand-planted corruption too.
    pub fn corrupt_bit(&self, offset: u64, bit: u8) -> bool {
        let mut guard = self.media.lock().unwrap();
        let flipped = self.stripe_for(offset).lock().unwrap().corrupt_bit(offset, bit);
        if flipped {
            if let Some(m) = guard.as_mut() {
                Self::note_strike(m, offset / PAGE_SIZE, offset % PAGE_SIZE, bit);
            }
        }
        flipped
    }

    /// Current media-clock tick (0 when the retention plane is off).
    pub fn media_tick(&self) -> u64 {
        self.media.lock().unwrap().as_ref().map_or(0, |m| m.wear.tick())
    }

    /// `(total, scrub)` modelled work units on the media clock.
    pub fn media_work(&self) -> (u64, u64) {
        self.media.lock().unwrap().as_ref().map_or((0, 0), |m| (m.work, m.scrub_work))
    }

    /// `(injected, detected, cancelled)` decay-flip counters. Cancelled
    /// pairs (same bit struck twice) are undetectable by construction, so
    /// the zero-silent invariant is `injected == detected + cancelled`
    /// after a final full verify.
    pub fn media_flips(&self) -> (u64, u64, u64) {
        self.media
            .lock()
            .unwrap()
            .as_ref()
            .map_or((0, 0, 0), |m| (m.flips_injected, m.flips_detected, m.flips_cancelled))
    }

    /// Sealed pages currently covered by the sidecar.
    pub fn sealed_pages(&self) -> u64 {
        self.media.lock().unwrap().as_ref().map_or(0, |m| m.crcs.len() as u64)
    }

    /// Resident (materialized) pages across all stripes — the set a
    /// [`SharedPool::reseal_all`] reprograms, and hence the page count a
    /// repair's modelled cost scales with.
    pub fn resident_pages(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap().resident_page_numbers().len() as u64)
            .sum()
    }

    /// Distinct pages the decay lottery has struck so far.
    pub fn flipped_pages(&self) -> u64 {
        self.media.lock().unwrap().as_ref().map_or(0, |m| m.pages_struck.len() as u64)
    }

    /// Debug view of still-undetected flips: for each page with pending
    /// (injected, never detected, never annihilated) flips, `(page, bits
    /// pending, sealed crc present, dirty, resident)`. Empty after a clean
    /// final verify — anything left here names the page a silent flip is
    /// hiding on.
    pub fn pending_flip_debug(&self) -> Vec<(u64, usize, bool, bool, bool)> {
        let guard = self.media.lock().unwrap();
        let Some(m) = guard.as_ref() else { return Vec::new() };
        m.pending_flips
            .iter()
            .map(|(page, bits)| {
                let ps = self.stripe_for(page * PAGE_SIZE).lock().unwrap();
                (
                    *page,
                    bits.len(),
                    m.crcs.get(*page).is_some(),
                    ps.is_dirty(*page),
                    ps.page_bytes(*page).is_some(),
                )
            })
            .collect()
    }

    /// Wear-histogram summary over written pages.
    pub fn wear_stats(&self) -> WearStats {
        self.media.lock().unwrap().as_ref().map_or_else(WearStats::default, |m| m.wear.stats())
    }

    // ---- roots, stats, maintenance ---------------------------------------

    /// The pool's persistent root word.
    pub fn root(&self) -> u64 {
        self.region.root(&StripedWords(self))
    }

    /// Sets the pool's persistent root word.
    pub fn set_root(&self, value: u64) {
        self.region.set_root(&mut StripedWords(self), value)
    }

    /// Lease refills served (slab or central) across all arenas.
    pub fn refills(&self) -> u64 {
        self.refills.load(Ordering::Relaxed)
    }

    /// Central allocator entries (large allocs, slab creation, fallbacks).
    pub fn central_allocs(&self) -> u64 {
        self.central_allocs.load(Ordering::Relaxed)
    }

    /// Times a bound slab was exhausted and a lease fell back to central.
    pub fn slab_overflows(&self) -> u64 {
        self.slab_overflows.load(Ordering::Relaxed)
    }

    /// Live allocations according to the pool's persistent books.
    pub fn allocation_count(&self) -> u64 {
        self.region.allocation_count(&StripedWords(self))
    }

    /// Full structural validation of the block tiling and free list.
    /// Quiesce writers first — validation walks the whole region.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::CorruptRegion`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<usize> {
        let _g = self.central.lock().unwrap();
        self.region.validate(&StripedWords(self))
    }

    /// Host bytes resident across all stripes.
    pub fn resident_bytes(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().unwrap().resident_bytes()).sum()
    }

    /// Deep copy of the pool — pages, slab cursors, counters, fault plan.
    /// The crash sweeps run every trial against a fresh snapshot so armed
    /// runs never contaminate the base image. Quiesce writers first: each
    /// stripe is copied under its own lock, so a concurrent writer could
    /// leave a cross-stripe torn cut (serial schedule drivers never do).
    pub fn snapshot(&self) -> Arc<SharedPool> {
        let stripes: Box<[Mutex<PageStore>]> =
            self.stripes.iter().map(|s| Mutex::new(s.lock().unwrap().clone())).collect();
        Arc::new(SharedPool {
            name: self.name.clone(),
            size: self.size,
            stripes,
            stripe_mask: self.stripe_mask,
            region: self.region,
            central: Mutex::new(()),
            slabs: Mutex::new(self.slabs.lock().unwrap().clone()),
            faults: Mutex::new(*self.faults.lock().unwrap()),
            flush: Mutex::new(self.flush.lock().unwrap().clone()),
            media: Mutex::new(self.media.lock().unwrap().clone()),
            media_on: AtomicBool::new(self.media_on.load(Ordering::Acquire)),
            quarantine: AtomicU64::new(self.quarantine.load(Ordering::Acquire)),
            wear_level: AtomicBool::new(self.wear_level.load(Ordering::Relaxed)),
            refills: AtomicU64::new(self.refills()),
            central_allocs: AtomicU64::new(self.central_allocs()),
            slab_overflows: AtomicU64::new(self.slab_overflows()),
            group_commits: AtomicU64::new(self.group_commits()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HeapError;

    #[test]
    fn create_formats_a_valid_region() {
        let p = SharedPool::create("shared", 4 << 20, 8).unwrap();
        assert_eq!(p.stripes(), 8);
        assert_eq!(p.validate().unwrap(), 1, "one free block spans the fresh pool");
        assert_eq!(p.allocation_count(), 0);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        let p = SharedPool::create("s", 1 << 20, 7).unwrap();
        assert_eq!(p.stripes(), 8);
        let p1 = SharedPool::create("s", 1 << 20, 0).unwrap();
        assert_eq!(p1.stripes(), 1);
    }

    #[test]
    fn central_alloc_free_roundtrip() {
        let p = SharedPool::create("c", 1 << 20, 4).unwrap();
        let a = p.alloc_central(100).unwrap();
        let b = p.alloc_central(2000).unwrap();
        p.write_u64(a, 7);
        p.write_u64(b, 9);
        assert_eq!(p.read_u64(a), 7);
        assert_eq!(p.read_u64(b), 9);
        p.free_central(a).unwrap();
        p.free_central(b).unwrap();
        assert_eq!(p.allocation_count(), 0);
        assert_eq!(p.validate().unwrap(), 1);
    }

    #[test]
    fn byte_io_crosses_page_and_stripe_boundaries() {
        let p = SharedPool::create("b", 1 << 20, 4).unwrap();
        let off = PAGE_SIZE * 3 - 5; // straddles pages 2 and 3 → two stripes
        let data: Vec<u8> = (0..32).collect();
        p.write_bytes(off, &data);
        let mut back = vec![0u8; 32];
        p.read_bytes(off, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn arena_allocs_carve_leases_and_free_cleanly() {
        let p = SharedPool::create("a", 4 << 20, 8).unwrap();
        let slab = p.carve_slab(256 << 10).unwrap();
        let mut arena = Arena::default();
        arena.bind(Some(slab));
        let mut payloads = Vec::new();
        for i in 0..200u64 {
            let off = p.arena_alloc(&mut arena, 48 + (i % 5) * 16).unwrap();
            p.write_u64(off, i);
            payloads.push((off, i));
        }
        assert!(arena.refills() > 0, "200 node allocs must refill the lease");
        assert_eq!(p.refills(), arena.refills());
        assert_eq!(p.slab_overflows(), 0);
        for (off, i) in &payloads {
            assert_eq!(p.read_u64(*off), *i, "payloads are disjoint");
        }
        p.validate().unwrap();
        // Every carved piece frees like an ordinary block.
        for (off, _) in payloads {
            p.free_central(off).unwrap();
        }
        let rest = arena.bind(None);
        p.release_lease(rest).unwrap();
    }

    #[test]
    fn persist_point_drains_and_counts_group_commits() {
        let p = SharedPool::create("gc", 1 << 20, 4).unwrap();
        p.set_flush_model(FlushModel::Adr);
        let off = p.alloc_raw(256).unwrap();
        p.write_u64_stage(off, 1).unwrap();
        p.write_u64_stage(off + 128, 2).unwrap();
        assert_eq!(p.pending_lines(), 2);
        let f0 = p.fence_count();
        assert_eq!(p.persist_point(), 2, "batch barrier drains every line");
        assert_eq!(p.pending_lines(), 0);
        assert_eq!(p.group_commits(), 1);
        assert_eq!(p.fence_count(), f0 + 1, "a group commit is also a fence");
        p.drain_all();
        assert_eq!(p.group_commits(), 1, "plain fences are not group commits");
    }

    #[test]
    fn large_requests_bypass_the_arena() {
        let p = SharedPool::create("l", 4 << 20, 4).unwrap();
        let mut arena = Arena::default();
        let off = p.arena_alloc(&mut arena, LARGE_CUTOFF + 1).unwrap();
        assert_eq!(arena.refills(), 0, "no lease involved");
        assert_eq!(p.central_allocs(), 1);
        p.free_central(off).unwrap();
    }

    #[test]
    fn arena_without_slab_leases_from_central() {
        let p = SharedPool::create("nc", 1 << 20, 4).unwrap();
        let mut arena = Arena::default();
        let off = p.arena_alloc(&mut arena, 64).unwrap();
        p.write_u64(off, 0xfeed);
        assert_eq!(p.read_u64(off), 0xfeed);
        assert!(p.central_allocs() >= 1, "lease came from the central allocator");
    }

    #[test]
    fn parallel_arena_writers_do_not_interfere() {
        let p = SharedPool::create("mt", 16 << 20, 16).unwrap();
        const THREADS: u64 = 4;
        const PER: u64 = 300;
        let slabs: Vec<SlabId> =
            (0..THREADS).map(|_| p.carve_slab(256 << 10).unwrap()).collect();
        let offs: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let p = &p;
                    let slab = slabs[t as usize];
                    s.spawn(move || {
                        let mut arena = Arena::default();
                        arena.bind(Some(slab));
                        (0..PER)
                            .map(|i| {
                                let off = p.arena_alloc(&mut arena, 64).unwrap();
                                p.write_u64(off, t << 32 | i);
                                off
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All payloads distinct and intact after the join.
        let mut seen = std::collections::HashSet::new();
        for (t, thread_offs) in offs.iter().enumerate() {
            for (i, off) in thread_offs.iter().enumerate() {
                assert!(seen.insert(*off), "payload {off:#x} handed out twice");
                assert_eq!(p.read_u64(*off), (t as u64) << 32 | i as u64);
            }
        }
        assert_eq!(p.slab_overflows(), 0);
        p.validate().unwrap();
    }

    #[test]
    fn slab_cursors_make_offsets_thread_timing_independent() {
        // Same per-slab allocation script on two pools, different thread
        // interleavings simulated by executing serially in different
        // orders: offsets must be identical because each slab's cursor
        // only depends on its own history.
        let run = |order: &[usize]| -> Vec<Vec<u64>> {
            let p = SharedPool::create("det", 8 << 20, 8).unwrap();
            let slabs: Vec<SlabId> = (0..3).map(|_| p.carve_slab(64 << 10).unwrap()).collect();
            let mut arenas: Vec<Arena> = slabs
                .iter()
                .map(|s| {
                    let mut a = Arena::default();
                    a.bind(Some(*s));
                    a
                })
                .collect();
            let mut out = vec![Vec::new(); 3];
            for &who in order {
                let off = p.arena_alloc(&mut arenas[who], 80).unwrap();
                out[who].push(off);
            }
            out
        };
        let a = run(&[0, 0, 1, 2, 1, 0, 2, 2, 1, 0]);
        let b = run(&[2, 2, 2, 1, 1, 1, 0, 0, 0, 0]);
        assert_eq!(a, b, "offsets depend only on per-slab history, not interleaving");
    }

    #[test]
    fn snapshot_is_independent_of_the_original() {
        let p = SharedPool::create("snap", 1 << 20, 4).unwrap();
        let a = p.alloc_central(64).unwrap();
        p.write_u64(a, 111);
        p.set_root(a);
        let snap = p.snapshot();
        p.write_u64(a, 222);
        let b = p.alloc_central(64).unwrap();
        assert_eq!(snap.read_u64(a), 111, "snapshot kept the old value");
        assert_eq!(snap.root(), a);
        assert_eq!(snap.allocation_count(), 1, "b was allocated after the snapshot");
        let c = snap.alloc_central(64).unwrap();
        assert_eq!(b, c, "snapshot's allocator state matches the cut point");
        snap.validate().unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn retention_clock_seals_then_decay_flips_are_detected_not_silent() {
        let p = SharedPool::create("ret", 1 << 20, 4).unwrap();
        p.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 100 });
        // Aggressive decay so a short soak reliably flips something.
        p.set_faults(FaultPlan::disabled().with_decay(7, 50_000_000));
        let a = p.alloc_central(PAGE_SIZE * 4).unwrap();
        for i in 0..64u64 {
            p.write_u64(a + i * 8, i);
        }
        assert_eq!(p.media_tick(), 0);
        let tick = p.note_work(100 * 40);
        assert_eq!(tick, 40, "clock advances from work units alone");
        assert!(p.sealed_pages() > 0, "quiesced dirty pages must seal");
        let (injected, detected, cancelled) = p.media_flips();
        assert!(injected > 0, "aged sealed pages must decay at 5%/tick/age");
        assert_eq!(detected, 0, "nothing has verified yet");
        assert!(p.quarantined_page().is_none());
        let bad = p.verify_all();
        assert!(!bad.is_empty());
        let (injected2, detected2, cancelled2) = p.media_flips();
        assert_eq!(injected2, injected, "verification injects nothing");
        assert_eq!(cancelled2, cancelled, "verification cancels nothing");
        assert_eq!(detected2 + cancelled2, injected2, "full verify catches every live flip");
        assert_eq!(p.quarantined_page(), Some(bad[0]));
        p.release_quarantine();
        assert!(p.quarantined_page().is_none());
    }

    #[test]
    fn cold_write_verify_catches_a_stale_flip_before_reseal_blesses_it() {
        let p = SharedPool::create("cw", 1 << 20, 2).unwrap();
        p.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 10 });
        let a = p.alloc_central(256).unwrap();
        p.write_u64(a, 0xfeed);
        p.note_work(100); // seal everything quiesced
        assert!(p.sealed_pages() > 0);
        assert!(p.corrupt_bit(a, 3), "plant a silent flip on the sealed page");
        let (injected, detected, _) = p.media_flips();
        assert_eq!((injected, detected), (1, 0));
        // A mutator overwrites the decayed page: the cold-write verify must
        // fire before the write can lead to a blessed reseal.
        p.write_u64(a + 8, 1);
        let (_, detected, _) = p.media_flips();
        assert_eq!(detected, 1, "cold-write verify caught the flip");
        assert!(p.quarantined_page().is_some());
        // Repair flow: verify_all (nothing new), salvage, reseal, release.
        assert!(p.verify_all().is_empty(), "page went dirty; nothing else stale");
        let report = p.salvage();
        assert!(report.stats().blocks_recovered > 0);
        p.reseal_all();
        p.release_quarantine();
        // The blessed image is ground truth again: full verify is clean.
        assert!(p.verify_all().is_empty());
        let (i2, d2, c2) = p.media_flips();
        assert_eq!(i2, d2 + c2, "zero silent corruption invariant");
    }

    #[test]
    fn scrub_batch_refreshes_old_pages_and_resets_their_age() {
        let p = SharedPool::create("scrub", 1 << 20, 4).unwrap();
        p.configure_retention(RetentionConfig { seal_lag: 1, work_per_tick: 10 });
        let a = p.alloc_central(PAGE_SIZE * 2).unwrap();
        p.write_u64(a, 1);
        p.note_work(10 * 30); // 30 ticks: seal, then age
        let worn_before = p.wear_stats().total;
        let verdicts = p.scrub_batch(64, 5);
        assert!(!verdicts.is_empty());
        assert!(
            verdicts.iter().all(|(_, v)| *v == PageVerdict::Repaired),
            "every clean page is past the refresh age: {verdicts:?}"
        );
        assert!(p.wear_stats().total > worn_before, "refresh reprograms cells");
        // Immediately after refresh every page is young again.
        let verdicts2 = p.scrub_batch(64, 5);
        assert!(verdicts2.iter().all(|(_, v)| *v == PageVerdict::Clean), "{verdicts2:?}");
        // A planted flip turns the verdict into Quarantined.
        p.corrupt_bit(a, 0);
        let verdicts3 = p.scrub_batch(64, u64::MAX);
        assert!(verdicts3.iter().any(|(_, v)| *v == PageVerdict::Quarantined));
        let (i, d, c) = p.media_flips();
        assert_eq!((i, d, c), (1, 1, 0));
    }

    #[test]
    fn scrub_work_is_booked_separately_and_snapshot_carries_the_plane() {
        let p = SharedPool::create("book", 1 << 20, 2).unwrap();
        p.configure_retention(RetentionConfig::default());
        p.set_wear_leveling(true);
        p.note_work(1000);
        p.note_scrub_work(250);
        assert_eq!(p.media_work(), (1250, 250));
        let a = p.alloc_central(64).unwrap(); // scored path with media on
        p.write_u64(a, 9);
        let snap = p.snapshot();
        assert!(snap.retention_enabled());
        assert!(snap.wear_leveling());
        assert_eq!(snap.media_work(), (1250, 250));
        snap.note_work(100);
        assert_eq!(p.media_work(), (1250, 250), "snapshot is independent");
    }

    #[test]
    fn wear_leveling_flattens_churn_wear() {
        // Alloc/free churn with rewrites: first-fit reuses the freshly
        // freed low-address holes over and over, concentrating wear;
        // the scored allocator steers each refill toward the pages with
        // the lowest write counts. Identical churn pattern (same LCG
        // stream), only the placement policy differs. The endurance
        // claim is about *peak* wear (the most-worn cell dies first) —
        // max/mean flatness would reward concentration, since spreading
        // writes over more pages dilutes the mean while the allocator's
        // metadata page pins the max.
        let peak = |leveling: bool| {
            let p = SharedPool::create(if leveling { "wl-on" } else { "wl-off" }, 1 << 20, 2)
                .unwrap();
            p.configure_retention(RetentionConfig::default());
            p.set_wear_leveling(leveling);
            let mut slots: Vec<u64> =
                (0..24).map(|_| p.alloc_raw(PAGE_SIZE / 2).unwrap()).collect();
            let mut rng = 0x2545_f491_4f6c_dd1du64;
            for _ in 0..40 {
                for slot in &mut slots {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if rng >> 63 == 1 {
                        p.free_raw(*slot).unwrap();
                        *slot = p.alloc_raw(PAGE_SIZE / 2).unwrap();
                        for w in 0..PAGE_SIZE / 16 {
                            p.write_u64(*slot + w * 8, rng ^ w);
                        }
                    }
                }
            }
            p.wear_stats().max
        };
        let (level, first_fit) = (peak(true), peak(false));
        assert!(
            level < first_fit,
            "scored allocation must cut peak wear: {level} vs {first_fit}"
        );
    }

    #[test]
    fn shared_fault_gate_counts_across_users() {
        let p = SharedPool::create("f", 1 << 20, 2).unwrap();
        p.set_faults(FaultPlan::crash_at(3));
        assert!(p.gate().is_ok());
        assert!(p.gate().is_ok());
        assert!(p.gate().is_ok());
        let err = p.gate().unwrap_err();
        assert!(matches!(err, HeapError::CrashInjected { writes: 3 }));
        // Tripped plans stay dead for every subsequent gate.
        assert!(p.gate().is_err());
        assert!(p.faults().tripped());
    }
}
