//! Virtual addresses and pool-relative locations.
//!
//! The paper divides the 48-bit virtual address space of a process into two
//! equal halves: addresses with bit 47 clear live on DRAM, addresses with
//! bit 47 set live on NVM (paper Fig. 2). Persistent pointers are *relative*:
//! a 31-bit pool id plus a 32-bit intra-pool offset.

use std::fmt;

/// Number of virtual-address bits modelled (x86-64 canonical lower half).
pub const VA_BITS: u32 = 48;

/// Bit that selects the NVM half of the virtual address space.
pub const NVM_REGION_BIT: u64 = 1 << 47;

/// Mask of all valid virtual-address bits.
pub const VA_MASK: u64 = (1 << VA_BITS) - 1;

/// Lowest usable DRAM address. Page zero is kept unmapped so that a null
/// pointer can never alias a valid object.
pub const DRAM_BASE: u64 = 0x1_0000;

/// Exclusive upper bound of the DRAM half.
pub const DRAM_END: u64 = NVM_REGION_BIT;

/// Lowest address of the NVM half.
pub const NVM_BASE: u64 = NVM_REGION_BIT;

/// Exclusive upper bound of the NVM half.
pub const NVM_END: u64 = 1 << VA_BITS;

/// A virtual address inside the simulated 48-bit address space.
///
/// `VirtAddr` is a plain transparent wrapper: it may point anywhere,
/// including unmapped memory. Mapping validity is checked by
/// [`crate::AddressSpace`] on access, mirroring a real MMU.
///
/// # Examples
///
/// ```
/// use utpr_heap::addr::{VirtAddr, NVM_BASE};
///
/// let a = VirtAddr::new(0x1000);
/// assert!(!a.is_nvm_region());
/// assert!(VirtAddr::new(NVM_BASE).is_nvm_region());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value has bits above the 48-bit
    /// canonical range set.
    #[inline]
    pub fn new(raw: u64) -> Self {
        debug_assert!(raw <= VA_MASK, "address {raw:#x} exceeds 48-bit space");
        VirtAddr(raw)
    }

    /// The raw 64-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True when bit 47 is set, i.e. the address falls in the NVM half of
    /// the address space.
    #[inline]
    pub fn is_nvm_region(self) -> bool {
        self.0 & NVM_REGION_BIT != 0
    }

    /// Address advanced by `delta` bytes.
    #[inline]
    pub fn add(self, delta: u64) -> Self {
        VirtAddr(self.0.wrapping_add(delta) & VA_MASK)
    }

    /// Address moved back by `delta` bytes.
    #[inline]
    pub fn sub(self, delta: u64) -> Self {
        VirtAddr(self.0.wrapping_sub(delta) & VA_MASK)
    }

    /// Byte distance `self - other` (may be negative).
    #[inline]
    pub fn offset_from(self, other: VirtAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }

    /// True for address zero (the conventional null).
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr::new(raw)
    }
}

/// Identifier of a persistent memory object pool (PMOP).
///
/// Pool ids are system-wide unique and at most 31 bits wide so that they fit
/// the relative-pointer encoding (bit 63 flag + 31-bit id + 32-bit offset).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(u32);

/// Maximum representable pool id (31 bits).
pub const MAX_POOL_ID: u32 = (1 << 31) - 1;

impl PoolId {
    /// Creates a pool id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not fit in 31 bits.
    #[inline]
    pub fn new(id: u32) -> Self {
        assert!(id <= MAX_POOL_ID, "pool id {id} exceeds 31 bits");
        PoolId(id)
    }

    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Crate-internal constructor for values already known to be valid ids
    /// (e.g. read back out of the translation caches, which only ever hold
    /// ids that went through [`PoolId::new`]): skips the range assert so
    /// the translation fast path carries no panic edge.
    #[inline(always)]
    pub(crate) fn from_raw_trusted(id: u32) -> Self {
        debug_assert!(id <= MAX_POOL_ID);
        PoolId(id)
    }
}

impl fmt::Debug for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PoolId({})", self.0)
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool#{}", self.0)
    }
}

/// A location inside a pool: the persistent, relocation-stable form of an
/// address (31-bit pool id + 32-bit offset).
///
/// # Examples
///
/// ```
/// use utpr_heap::addr::{PoolId, RelLoc};
///
/// let loc = RelLoc::new(PoolId::new(3), 0x40);
/// assert_eq!(loc.offset, 0x40);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelLoc {
    /// Owning pool.
    pub pool: PoolId,
    /// Byte offset from the pool base.
    pub offset: u32,
}

impl RelLoc {
    /// Creates a pool-relative location.
    #[inline]
    pub fn new(pool: PoolId, offset: u32) -> Self {
        RelLoc { pool, offset }
    }

    /// Location advanced by `delta` bytes within the same pool.
    #[inline]
    pub fn add(self, delta: u32) -> Self {
        RelLoc { pool: self.pool, offset: self.offset.wrapping_add(delta) }
    }
}

impl fmt::Display for RelLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.pool, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_split_follows_bit_47() {
        assert!(!VirtAddr::new(0).is_nvm_region());
        assert!(!VirtAddr::new(DRAM_END - 1).is_nvm_region());
        assert!(VirtAddr::new(NVM_BASE).is_nvm_region());
        assert!(VirtAddr::new(NVM_END - 1).is_nvm_region());
    }

    #[test]
    fn arithmetic_wraps_within_48_bits() {
        let a = VirtAddr::new(VA_MASK);
        assert_eq!(a.add(1).raw(), 0);
        let b = VirtAddr::new(0);
        assert_eq!(b.sub(1).raw(), VA_MASK);
    }

    #[test]
    fn offset_from_is_signed() {
        let a = VirtAddr::new(0x2000);
        let b = VirtAddr::new(0x1000);
        assert_eq!(a.offset_from(b), 0x1000);
        assert_eq!(b.offset_from(a), -0x1000);
    }

    #[test]
    #[should_panic(expected = "31 bits")]
    fn pool_id_rejects_wide_values() {
        let _ = PoolId::new(1 << 31);
    }

    #[test]
    fn rel_loc_add_wraps_offset() {
        let l = RelLoc::new(PoolId::new(1), u32::MAX);
        assert_eq!(l.add(1).offset, 0);
    }

    #[test]
    fn null_detection() {
        assert!(VirtAddr::new(0).is_null());
        assert!(!VirtAddr::new(8).is_null());
    }
}
