//! The harness testing itself, end to end through the public macro API:
//! planted failing properties must shrink to their minimal counterexample,
//! reports must carry everything needed to replay, and generation must be
//! bit-stable for a fixed seed.

use std::panic;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use utpr_qc::gen::SampleTree;
use utpr_qc::prelude::*;
use utpr_qc::rng::Rng;
use utpr_qc::runner::{base_seed, DEFAULT_SEED};

fn failure_message(run: impl FnOnce()) -> String {
    let payload = panic::catch_unwind(panic::AssertUnwindSafe(run))
        .expect_err("planted property must fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        payload.downcast_ref::<&str>().map(ToString::to_string).unwrap_or_default()
    }
}

/// A planted scalar failure (`x < 500` over `0..10_000`) shrinks to the
/// exact boundary, 500, and the report carries the replay seed.
#[test]
fn planted_scalar_failure_shrinks_to_boundary() {
    let msg = failure_message(|| {
        for_all("selftest::scalar", Config::cases(128), 0u64..10_000, |x| {
            prop_assert!(x < 500, "{x} crossed the boundary");
            Ok(())
        });
    });
    assert!(msg.contains("shrunk input"), "{msg}");
    assert!(msg.contains(": 500"), "not minimal: {msg}");
    assert!(msg.contains("UTPR_QC_SEED="), "no replay seed: {msg}");
    assert!(msg.contains("crossed the boundary"), "original error lost: {msg}");
}

/// A planted vector failure (`len < 5`) shrinks to the minimal witness:
/// exactly five elements, all at the generator's origin.
#[test]
fn planted_vec_failure_shrinks_to_minimal_witness() {
    let msg = failure_message(|| {
        for_all(
            "selftest::vector",
            Config::cases(128),
            collection::vec(0u64..1_000, 1..60),
            |v| {
                prop_assert!(v.len() < 5);
                Ok(())
            },
        );
    });
    assert!(msg.contains("[0, 0, 0, 0, 0]"), "not minimal: {msg}");
}

/// Shrinking also minimises through `prop_map` and `one_of!` arms: a
/// mapped/unioned step sequence shrinks to one offending element.
#[test]
fn planted_union_failure_shrinks_through_map() {
    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Step {
        Get(u64),
        Put(u64),
    }
    let gen = collection::vec(
        one_of![
            3 => (0u64..100).prop_map(Step::Get),
            1 => (0u64..100).prop_map(Step::Put),
        ],
        1..40,
    );
    let msg = failure_message(|| {
        for_all("selftest::union", Config::cases(256), gen, |steps| {
            prop_assert!(!steps.iter().any(|s| matches!(s, Step::Put(_))));
            Ok(())
        });
    });
    assert!(msg.contains("[Put(0)]"), "not minimal: {msg}");
}

/// The macro surface runs every case: a counting property sees exactly
/// `cases` executions.
#[test]
fn props_macro_runs_every_case() {
    static RUNS: AtomicU32 = AtomicU32::new(0);
    props! {
        #![cases(96)]
        fn counting(_x in any::<u64>()) {
            RUNS.fetch_add(1, Ordering::Relaxed);
        }
    }
    counting();
    assert_eq!(RUNS.load(Ordering::Relaxed), 96);
}

/// Same seed, same data: two full generation passes produce identical
/// values, and the distribution actually spans the requested range.
#[test]
fn generation_is_seeded_stable_and_spread() {
    let gen = collection::vec((0u64..1_000, any::<bool>()), 1..50);
    let pass = |seed: u64| -> Vec<Vec<(u64, bool)>> {
        let mut rng = Rng::new(seed);
        (0..64).map(|_| gen.tree(&mut rng).current()).collect()
    };
    let a = pass(99);
    let b = pass(99);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let c = pass(100);
    assert_ne!(a, c, "different seeds should diverge");

    // Distribution sanity: the samples cover low, middle and high thirds.
    let flat: Vec<u64> = a.iter().flatten().map(|(k, _)| *k).collect();
    assert!(flat.iter().any(|k| *k < 333));
    assert!(flat.iter().any(|k| (333..666).contains(k)));
    assert!(flat.iter().any(|k| *k >= 666));
}

/// `UTPR_QC_SEED` overrides the base seed and changes the generated
/// stream; without it the documented default applies. (Env mutation is
/// process-global, so both directions are probed in one test, serialised
/// behind a lock against any future env-touching test.)
#[test]
fn env_seed_overrides_default() {
    static ENV_LOCK: Mutex<()> = Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap();

    assert_eq!(base_seed(), DEFAULT_SEED);
    // SAFETY: serialised by ENV_LOCK; no other thread reads the variable
    // concurrently in this test binary.
    unsafe { std::env::set_var("UTPR_QC_SEED", "0xABCDEF") };
    let overridden = base_seed();
    unsafe { std::env::set_var("UTPR_QC_SEED", "12345") };
    let decimal = base_seed();
    unsafe { std::env::remove_var("UTPR_QC_SEED") };

    assert_eq!(overridden, 0xABCDEF);
    assert_eq!(decimal, 12345);
    assert_eq!(base_seed(), DEFAULT_SEED);
}
