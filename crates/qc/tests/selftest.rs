//! The harness testing itself, end to end through the public macro API:
//! planted failing properties must shrink to their minimal counterexample,
//! reports must carry everything needed to replay, and generation must be
//! bit-stable for a fixed seed.

use std::panic;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use utpr_qc::gen::SampleTree;
use utpr_qc::prelude::*;
use utpr_qc::rng::Rng;
use utpr_qc::runner::{base_seed, DEFAULT_SEED};

fn failure_message(run: impl FnOnce()) -> String {
    let payload = panic::catch_unwind(panic::AssertUnwindSafe(run))
        .expect_err("planted property must fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        payload.downcast_ref::<&str>().map(ToString::to_string).unwrap_or_default()
    }
}

/// A planted scalar failure (`x < 500` over `0..10_000`) shrinks to the
/// exact boundary, 500, and the report carries the replay seed.
#[test]
fn planted_scalar_failure_shrinks_to_boundary() {
    let msg = failure_message(|| {
        for_all("selftest::scalar", Config::cases(128), 0u64..10_000, |x| {
            prop_assert!(x < 500, "{x} crossed the boundary");
            Ok(())
        });
    });
    assert!(msg.contains("shrunk input"), "{msg}");
    assert!(msg.contains(": 500"), "not minimal: {msg}");
    assert!(msg.contains("UTPR_QC_SEED="), "no replay seed: {msg}");
    assert!(msg.contains("crossed the boundary"), "original error lost: {msg}");
}

/// A planted vector failure (`len < 5`) shrinks to the minimal witness:
/// exactly five elements, all at the generator's origin.
#[test]
fn planted_vec_failure_shrinks_to_minimal_witness() {
    let msg = failure_message(|| {
        for_all(
            "selftest::vector",
            Config::cases(128),
            collection::vec(0u64..1_000, 1..60),
            |v| {
                prop_assert!(v.len() < 5);
                Ok(())
            },
        );
    });
    assert!(msg.contains("[0, 0, 0, 0, 0]"), "not minimal: {msg}");
}

/// Shrinking also minimises through `prop_map` and `one_of!` arms: a
/// mapped/unioned step sequence shrinks to one offending element.
#[test]
fn planted_union_failure_shrinks_through_map() {
    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Step {
        Get(u64),
        Put(u64),
    }
    let gen = collection::vec(
        one_of![
            3 => (0u64..100).prop_map(Step::Get),
            1 => (0u64..100).prop_map(Step::Put),
        ],
        1..40,
    );
    let msg = failure_message(|| {
        for_all("selftest::union", Config::cases(256), gen, |steps| {
            prop_assert!(!steps.iter().any(|s| matches!(s, Step::Put(_))));
            Ok(())
        });
    });
    assert!(msg.contains("[Put(0)]"), "not minimal: {msg}");
}

/// The macro surface runs every case: a counting property sees exactly
/// `cases` executions.
#[test]
fn props_macro_runs_every_case() {
    static RUNS: AtomicU32 = AtomicU32::new(0);
    props! {
        #![cases(96)]
        fn counting(_x in any::<u64>()) {
            RUNS.fetch_add(1, Ordering::Relaxed);
        }
    }
    counting();
    assert_eq!(RUNS.load(Ordering::Relaxed), 96);
}

/// Same seed, same data: two full generation passes produce identical
/// values, and the distribution actually spans the requested range.
#[test]
fn generation_is_seeded_stable_and_spread() {
    let gen = collection::vec((0u64..1_000, any::<bool>()), 1..50);
    let pass = |seed: u64| -> Vec<Vec<(u64, bool)>> {
        let mut rng = Rng::new(seed);
        (0..64).map(|_| gen.tree(&mut rng).current()).collect()
    };
    let a = pass(99);
    let b = pass(99);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let c = pass(100);
    assert_ne!(a, c, "different seeds should diverge");

    // Distribution sanity: the samples cover low, middle and high thirds.
    let flat: Vec<u64> = a.iter().flatten().map(|(k, _)| *k).collect();
    assert!(flat.iter().any(|k| *k < 333));
    assert!(flat.iter().any(|k| (333..666).contains(k)));
    assert!(flat.iter().any(|k| *k >= 666));
}

/// `UTPR_QC_SEED` overrides the base seed and changes the generated
/// stream; without it the documented default applies. (Env mutation is
/// process-global, so both directions are probed in one test, serialised
/// behind a lock against any future env-touching test.)
#[test]
fn env_seed_overrides_default() {
    static ENV_LOCK: Mutex<()> = Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap();

    assert_eq!(base_seed(), DEFAULT_SEED);
    // SAFETY: serialised by ENV_LOCK; no other thread reads the variable
    // concurrently in this test binary.
    unsafe { std::env::set_var("UTPR_QC_SEED", "0xABCDEF") };
    let overridden = base_seed();
    unsafe { std::env::set_var("UTPR_QC_SEED", "12345") };
    let decimal = base_seed();
    unsafe { std::env::remove_var("UTPR_QC_SEED") };

    assert_eq!(overridden, 0xABCDEF);
    assert_eq!(decimal, 12345);
    assert_eq!(base_seed(), DEFAULT_SEED);
}

// ---- linearizability checker self-tests ------------------------------------
//
// The checker is itself an oracle, so it gets the same treatment as the
// shrinker above: randomly generated *known-good* histories must always be
// accepted, and planted corruptions of those same histories must always be
// rejected — with a non-vacuity guard proving each corruption really
// changed an observable result rather than rewriting a no-op.

use std::collections::BTreeMap;
use utpr_qc::linear::{check, History, KvOp};

/// Applies `op` to the model and returns the result a sequential run
/// would have recorded.
fn model_apply(model: &mut BTreeMap<u64, u64>, op: KvOp) -> Option<u64> {
    match op {
        KvOp::Insert(k, v) => model.insert(k, v),
        KvOp::Remove(k) => model.remove(&k),
        KvOp::Get(k) => model.get(&k).copied(),
    }
}

fn op_gen() -> impl Gen<Tree: SampleTree<Value = KvOp>> {
    (0u64..4, 0u64..6, 0u64..1_000).prop_map(|(kind, k, v)| match kind {
        0 | 1 => KvOp::Insert(k, v),
        2 => KvOp::Get(k),
        _ => KvOp::Remove(k),
    })
}

/// Every sequentially executed history — each op completed before the
/// next begins, results taken from the model — is trivially
/// linearizable, across interleaved "threads".
#[test]
fn checker_accepts_generated_sequential_histories() {
    for_all(
        "selftest::linear-good",
        Config::cases(64),
        collection::vec(op_gen(), 1..24),
        |ops| {
            let mut hist = History::new();
            let mut model = BTreeMap::new();
            for (i, &op) in ops.iter().enumerate() {
                let id = hist.begin((i % 3) as u32, op);
                hist.complete(id, model_apply(&mut model, op));
            }
            prop_assert!(
                check(&hist).is_ok(),
                "sequential history refused: {:?}",
                check(&hist)
            );
            Ok(())
        },
    );
}

/// Corrupting one completed op's recorded result must flip the verdict.
/// Vacuity guard: the corruption is skipped (and the case discarded as
/// trivially passing) unless it changes the result another value could
/// legitimately have produced — i.e. the planted value differs from the
/// recorded one and from every value the key ever held.
#[test]
fn checker_rejects_planted_result_corruption() {
    let corrupted = AtomicU32::new(0);
    for_all(
        "selftest::linear-bad",
        Config::cases(64),
        (collection::vec(op_gen(), 1..24), 0u64..24),
        |(ops, victim)| {
            let mut hist = History::new();
            let mut model = BTreeMap::new();
            let mut results = Vec::new();
            for (i, &op) in ops.iter().enumerate() {
                let id = hist.begin((i % 3) as u32, op);
                let r = model_apply(&mut model, op);
                hist.complete(id, r);
                results.push((id, r));
            }
            let (id, honest) = results[(victim as usize) % results.len()];
            // A value no op in this history ever wrote: honest results are
            // either None or < 1_000, so 0xBAD_0000 can never be produced
            // by any linearization — the corruption is guaranteed real.
            let planted = Some(0xBAD_0000u64);
            assert_ne!(honest, planted, "vacuous corruption");
            hist.corrupt_result(id, planted);
            corrupted.fetch_add(1, Ordering::Relaxed);
            prop_assert!(
                check(&hist).is_err(),
                "corrupted result at op {id} went undetected"
            );
            Ok(())
        },
    );
    assert!(
        corrupted.load(Ordering::Relaxed) >= 64,
        "non-vacuity: every case must plant a corruption"
    );
}

/// A genuinely concurrent overlap is accepted in both completion orders
/// (commuting histories), while an impossible read is rejected — the
/// fixed known-good/known-bad pair guarding against a checker that
/// accepts or rejects everything.
#[test]
fn checker_known_good_and_known_bad_fixed_points() {
    // Two overlapping inserts on different keys, then reads of both.
    let mut good = History::new();
    let a = good.begin(0, KvOp::Insert(1, 10));
    let b = good.begin(1, KvOp::Insert(2, 20));
    good.complete(b, None);
    good.complete(a, None);
    let ra = good.begin(0, KvOp::Get(1));
    good.complete(ra, Some(10));
    let rb = good.begin(1, KvOp::Get(2));
    good.complete(rb, Some(20));
    assert!(check(&good).is_ok(), "{:?}", check(&good));

    // Same shape, but the read returns a value never written anywhere.
    let mut bad = History::new();
    let a = bad.begin(0, KvOp::Insert(1, 10));
    bad.complete(a, None);
    let r = bad.begin(1, KvOp::Get(1));
    bad.complete(r, Some(99));
    assert!(check(&bad).is_err(), "phantom read accepted");
}
