//! Durable-linearizability checking for concurrent key→value histories.
//!
//! A history is a set of operations, each with an *invocation* stamp, an
//! optional *response* stamp + result, and the thread that issued it.
//! [`check`] runs a Wing & Gong-style search: it tries to order the
//! operations into a legal sequential execution of a `BTreeMap` model
//! such that
//!
//! * every **completed** operation's recorded result matches what the
//!   model returns at its chosen linearization point,
//! * the order respects real time — if `a` responded before `b` was
//!   invoked, `a` linearizes before `b`,
//! * **pending** operations (invoked, never responded — e.g. cut off by
//!   a crash) may linearize with any effect *or be dropped entirely*.
//!
//! That last rule is exactly Izraelevitz et al.'s *durable
//! linearizability* once the caller appends the post-recovery audit to
//! the crashed history: recovered reads are ordinary completed
//! operations whose invocations follow every pre-crash response, so the
//! search accepts the history iff the surviving state is a legal cut of
//! the crashed execution.
//!
//! The search memoizes failed `(linearized-set, model-state)` pairs, the
//! standard Wing & Gong pruning; histories here are bounded by the
//! seeded schedules that produce them (≤ [`MAX_OPS`] operations), where
//! the exponential worst case is irrelevant.

use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};

/// Hard cap on checkable history size (the linearized set is a `u128`
/// bit mask).
pub const MAX_OPS: usize = 128;

/// One key→value operation kind with its arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Insert-or-update; returns the previous value.
    Insert(u64, u64),
    /// Remove; returns the removed value.
    Remove(u64),
    /// Lookup; returns the current value.
    Get(u64),
}

/// One operation record in a history.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Issuing thread (diagnostic only; real-time order comes from the
    /// stamps).
    pub thread: u32,
    /// The operation.
    pub op: KvOp,
    /// `Some(result)` for completed operations, `None` while pending
    /// (invoked but never responded — crashed mid-flight).
    pub result: Option<Option<u64>>,
    /// Invocation stamp.
    pub invoke: u64,
    /// Response stamp; `u64::MAX` while pending.
    pub ret: u64,
}

impl OpRecord {
    fn is_pending(&self) -> bool {
        self.result.is_none()
    }
}

/// An append-only operation history with a monotonic stamp clock.
#[derive(Clone, Debug, Default)]
pub struct History {
    ops: Vec<OpRecord>,
    clock: u64,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> History {
        History::default()
    }

    /// Records an invocation; returns the op's index for [`complete`].
    ///
    /// [`complete`]: History::complete
    pub fn begin(&mut self, thread: u32, op: KvOp) -> usize {
        let stamp = self.clock;
        self.clock += 1;
        self.ops.push(OpRecord { thread, op, result: None, invoke: stamp, ret: u64::MAX });
        self.ops.len() - 1
    }

    /// Records the response of a previously begun op.
    ///
    /// # Panics
    ///
    /// Panics when the op already completed.
    pub fn complete(&mut self, id: usize, result: Option<u64>) {
        let stamp = self.clock;
        self.clock += 1;
        let op = &mut self.ops[id];
        assert!(op.is_pending(), "op {id} completed twice");
        op.result = Some(result);
        op.ret = stamp;
    }

    /// The recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Operations still pending (no response recorded).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.ops.iter().filter(|o| o.is_pending()).count()
    }

    /// Overwrites a completed op's recorded result, keeping its stamps.
    /// Test support for checker self-tests: plants a response the real
    /// execution never produced, which [`check`] must then refuse.
    ///
    /// # Panics
    ///
    /// Panics when the op is still pending (corrupting a pending op is
    /// vacuous — pending results are unconstrained by definition).
    pub fn corrupt_result(&mut self, id: usize, result: Option<u64>) {
        let op = &mut self.ops[id];
        assert!(!op.is_pending(), "op {id} has no result to corrupt");
        op.result = Some(result);
    }
}

fn apply(model: &mut BTreeMap<u64, u64>, op: KvOp) -> Option<u64> {
    match op {
        KvOp::Insert(k, v) => model.insert(k, v),
        KvOp::Remove(k) => model.remove(&k),
        KvOp::Get(k) => model.get(&k).copied(),
    }
}

fn state_hash(model: &BTreeMap<u64, u64>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (k, v) in model {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    h.finish()
}

/// Checks a history for (durable) linearizability against the
/// `BTreeMap` sequential specification.
///
/// On success returns one witness linearization: the op indices in
/// linearized order (dropped pending ops are absent). On failure returns
/// a diagnostic naming the first operation no extension could place.
///
/// # Errors
///
/// `Err(report)` when no legal linearization exists.
///
/// # Panics
///
/// Panics when the history exceeds [`MAX_OPS`].
pub fn check(history: &History) -> Result<Vec<usize>, String> {
    let ops = history.ops();
    let n = ops.len();
    assert!(n <= MAX_OPS, "history of {n} ops exceeds MAX_OPS={MAX_OPS}");
    let completed_mask: u128 =
        ops.iter().enumerate().filter(|(_, o)| !o.is_pending()).fold(0, |m, (i, _)| m | 1 << i);

    let mut memo: HashSet<(u128, u64)> = HashSet::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Undo values for backtracking: what the key held before the op.
    let mut undo: Vec<(u64, Option<u64>)> = Vec::with_capacity(n);
    let mut best_placed = 0usize;
    let mut blocked_at: Option<usize> = None;

    fn dfs(
        ops: &[OpRecord],
        completed_mask: u128,
        mask: u128,
        model: &mut BTreeMap<u64, u64>,
        memo: &mut HashSet<(u128, u64)>,
        order: &mut Vec<usize>,
        undo: &mut Vec<(u64, Option<u64>)>,
        best_placed: &mut usize,
        blocked_at: &mut Option<usize>,
    ) -> bool {
        if mask & completed_mask == completed_mask {
            return true; // every completed op placed; pending rest dropped
        }
        if !memo.insert((mask, state_hash(model))) {
            return false;
        }
        // Earliest response among unplaced ops bounds who may go next.
        let min_ret = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, o)| o.ret)
            .min()
            .unwrap_or(u64::MAX);
        for i in 0..ops.len() {
            if mask & (1 << i) != 0 || ops[i].invoke > min_ret {
                continue;
            }
            let o = &ops[i];
            let key = match o.op {
                KvOp::Insert(k, _) | KvOp::Remove(k) | KvOp::Get(k) => k,
            };
            let before = model.get(&key).copied();
            let got = apply(model, o.op);
            let consistent = match o.result {
                Some(expected) => got == expected,
                None => true, // pending: any effect is acceptable
            };
            if consistent {
                order.push(i);
                undo.push((key, before));
                if order.len() > *best_placed {
                    *best_placed = order.len();
                    *blocked_at = None;
                }
                if dfs(
                    ops,
                    completed_mask,
                    mask | 1 << i,
                    model,
                    memo,
                    order,
                    undo,
                    best_placed,
                    blocked_at,
                ) {
                    return true;
                }
                order.pop();
                let (k, prev) = undo.pop().expect("undo underflow");
                match prev {
                    Some(v) => {
                        model.insert(k, v);
                    }
                    None => {
                        model.remove(&k);
                    }
                }
            } else if order.len() == *best_placed && blocked_at.is_none() {
                *blocked_at = Some(i);
            }
        }
        false
    }

    if dfs(
        ops,
        completed_mask,
        0,
        &mut model,
        &mut memo,
        &mut order,
        &mut undo,
        &mut best_placed,
        &mut blocked_at,
    ) {
        Ok(order)
    } else {
        let culprit = blocked_at
            .map(|i| {
                let o = &ops[i];
                format!(
                    "op {i} (thread {}, {:?} -> {:?}, invoke {}, ret {}) fits no extension",
                    o.thread,
                    o.op,
                    o.result,
                    o.invoke,
                    if o.ret == u64::MAX { "pending".into() } else { o.ret.to_string() },
                )
            })
            .unwrap_or_else(|| "no operation can linearize first".into());
        Err(format!(
            "history of {} ops ({} pending) is not linearizable: placed {best_placed}, then {culprit}",
            ops.len(),
            history.pending(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential executions are trivially linearizable.
    #[test]
    fn sequential_history_passes() {
        let mut h = History::new();
        let mut model = BTreeMap::new();
        for (op, _) in [
            (KvOp::Insert(1, 10), 0),
            (KvOp::Insert(2, 20), 0),
            (KvOp::Get(1), 0),
            (KvOp::Remove(1), 0),
            (KvOp::Get(1), 0),
            (KvOp::Insert(2, 21), 0),
        ] {
            let id = h.begin(0, op);
            h.complete(id, apply(&mut model, op));
        }
        let order = check(&h).expect("sequential history must pass");
        assert_eq!(order.len(), 6);
        assert!(order.windows(2).all(|w| w[0] < w[1]), "sequential order is the witness");
    }

    /// Two overlapping ops may linearize in either order.
    #[test]
    fn overlapping_ops_commute() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(5, 50));
        let b = h.begin(1, KvOp::Get(5));
        h.complete(b, Some(50)); // get observed the insert...
        h.complete(a, None);
        check(&h).expect("get may linearize after the overlapping insert");

        let mut h2 = History::new();
        let a = h2.begin(0, KvOp::Insert(5, 50));
        let b = h2.begin(1, KvOp::Get(5));
        h2.complete(b, None); // ...or before it
        h2.complete(a, None);
        check(&h2).expect("get may linearize before the overlapping insert");
    }

    /// A read of a value that was never written can't linearize.
    #[test]
    fn phantom_read_fails() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(1, 10));
        h.complete(a, None);
        let b = h.begin(1, KvOp::Get(1));
        h.complete(b, Some(999));
        let err = check(&h).unwrap_err();
        assert!(err.contains("not linearizable"), "{err}");
    }

    /// Real-time order is enforced: a get invoked AFTER a remove
    /// responded must not see the removed value.
    #[test]
    fn stale_read_after_remove_fails() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(7, 70));
        h.complete(a, None);
        let b = h.begin(0, KvOp::Remove(7));
        h.complete(b, Some(70));
        let c = h.begin(1, KvOp::Get(7));
        h.complete(c, Some(70)); // stale: remove already responded
        check(&h).unwrap_err();
    }

    /// The same stale read passes when it OVERLAPS the remove.
    #[test]
    fn concurrent_read_during_remove_passes() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(7, 70));
        h.complete(a, None);
        let c = h.begin(1, KvOp::Get(7)); // invoked before the remove responds
        let b = h.begin(0, KvOp::Remove(7));
        h.complete(b, Some(70));
        h.complete(c, Some(70));
        check(&h).expect("overlapping read may linearize before the remove");
    }

    /// Pending ops may be dropped (crashed before taking effect)…
    #[test]
    fn pending_op_dropped() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(3, 30));
        h.complete(a, None);
        h.begin(1, KvOp::Insert(3, 31)); // never responds
        let c = h.begin(0, KvOp::Get(3));
        h.complete(c, Some(30)); // crash cut the update: old value visible
        check(&h).expect("pending update may be dropped");
    }

    /// …or included (its effect became durable before the crash).
    #[test]
    fn pending_op_included() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(3, 30));
        h.complete(a, None);
        h.begin(1, KvOp::Insert(3, 31)); // never responds
        let c = h.begin(0, KvOp::Get(3));
        h.complete(c, Some(31)); // crash landed after the update's stores
        check(&h).expect("pending update may be included");
    }

    /// But a completed op's effect can never be lost: durable
    /// linearizability rejects losing an acknowledged insert.
    #[test]
    fn lost_acknowledged_insert_fails() {
        let mut h = History::new();
        let a = h.begin(0, KvOp::Insert(9, 90));
        h.complete(a, None);
        let c = h.begin(0, KvOp::Get(9)); // post-recovery audit read
        h.complete(c, None); // the insert vanished
        check(&h).unwrap_err();
    }

    #[test]
    fn memoization_handles_wide_histories() {
        // 3 threads × 8 sequentially-consistent ops each, heavily
        // overlapped: passes and terminates fast thanks to the memo.
        let mut h = History::new();
        let mut ids = Vec::new();
        for round in 0..8u64 {
            for t in 0..3u32 {
                let k = u64::from(t);
                ids.push((h.begin(t, KvOp::Insert(k, round)), round));
            }
            for _ in 0..3 {
                let (id, round) = ids.remove(0);
                h.complete(id, round.checked_sub(1));
            }
        }
        check(&h).expect("per-key independent threads linearize");
    }
}
