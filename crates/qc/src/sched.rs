//! Seeded interleaving schedules for concurrency harnesses.
//!
//! Real thread timing is non-deterministic, which would make concurrent
//! crash sweeps unreplayable. The explorer sidesteps that: each logical
//! thread contributes a *script* of operations, and a [`schedule`] decides
//! the global interleaving up front — round-robin for the canonical fair
//! ordering, or seeded-random to explore skewed ones. A driver then
//! executes the scripts *serially* in schedule order, so any failure
//! replays exactly from the `(seed, policy, counts)` triple — the same
//! `UTPR_QC_SEED` contract as the property runner ([`crate::runner`]).

//!
//! For *real*-thread harnesses whose interleavings happen mid-operation
//! (the lock-free indexes), [`Turnstile`] serializes N OS threads at
//! explicit yield points and hands the baton around with the same seeded
//! determinism: the grant sequence depends only on `(seed, program)`,
//! never on host timing.

use crate::rng::Rng;
use std::sync::{Condvar, Mutex};

/// How the per-thread scripts are interleaved into one global order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Cyclic fair order: thread 0, 1, …, N-1, 0, 1, … (skipping threads
    /// whose script is exhausted).
    RoundRobin,
    /// Seeded-random pick among non-exhausted threads; distinct seeds
    /// explore distinct interleavings, the same seed replays bit-for-bit.
    Seeded(u64),
}

/// Builds an interleaving: a vector of thread ids in which thread `t`
/// appears exactly `counts[t]` times, in script order (a schedule permutes
/// *across* threads, never within one thread's script).
///
/// # Panics
///
/// Panics when `counts` is empty.
///
/// # Examples
///
/// ```
/// use utpr_qc::sched::{schedule, Policy};
///
/// let order = schedule(Policy::RoundRobin, &[2, 2]);
/// assert_eq!(order, vec![0, 1, 0, 1]);
///
/// let a = schedule(Policy::Seeded(7), &[3, 3, 3]);
/// let b = schedule(Policy::Seeded(7), &[3, 3, 3]);
/// assert_eq!(a, b, "same seed, same interleaving");
/// ```
#[must_use]
pub fn schedule(policy: Policy, counts: &[u64]) -> Vec<u32> {
    assert!(!counts.is_empty(), "schedule over zero threads");
    let total: u64 = counts.iter().sum();
    let mut remaining = counts.to_vec();
    let mut order = Vec::with_capacity(total as usize);
    match policy {
        Policy::RoundRobin => {
            let mut t = 0usize;
            while order.len() < total as usize {
                if remaining[t] > 0 {
                    remaining[t] -= 1;
                    order.push(t as u32);
                }
                t = (t + 1) % counts.len();
            }
        }
        Policy::Seeded(seed) => {
            let mut rng = Rng::new(seed);
            let mut left = total;
            while left > 0 {
                // Weighted pick by remaining script length, so long scripts
                // are not starved to the tail of the schedule.
                let mut pick = rng.below(left);
                for (t, r) in remaining.iter_mut().enumerate() {
                    if pick < *r {
                        *r -= 1;
                        left -= 1;
                        order.push(t as u32);
                        break;
                    }
                    pick -= *r;
                }
            }
        }
    }
    order
}

/// Steps through a schedule, tracking each thread's position in its own
/// script: yields `(thread, index_within_script)` pairs.
///
/// # Examples
///
/// ```
/// use utpr_qc::sched::{schedule, steps, Policy};
///
/// let order = schedule(Policy::RoundRobin, &[2, 1]);
/// let s: Vec<(u32, u64)> = steps(&order).collect();
/// assert_eq!(s, vec![(0, 0), (1, 0), (0, 1)]);
/// ```
pub fn steps(order: &[u32]) -> impl Iterator<Item = (u32, u64)> + '_ {
    let threads = order.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut cursor = vec![0u64; threads];
    order.iter().map(move |&t| {
        let i = cursor[t as usize];
        cursor[t as usize] += 1;
        (t, i)
    })
}

/// The machine crashed (another thread tripped a fault gate): unwind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crashed;

struct TsState {
    rng: Rng,
    current: usize,
    active: Vec<bool>,
    crashed: bool,
    grants: u64,
}

impl TsState {
    /// Hands the baton to a seeded-random active thread (possibly the
    /// current one again).
    fn pass(&mut self) {
        let n = self.active.iter().filter(|a| **a).count() as u64;
        if n == 0 {
            return;
        }
        let mut pick = self.rng.below(n);
        for (t, a) in self.active.iter().enumerate() {
            if *a {
                if pick == 0 {
                    self.current = t;
                    self.grants += 1;
                    return;
                }
                pick -= 1;
            }
        }
    }
}

/// Deterministic turnstile for N real threads: exactly one thread runs
/// between two yield points, and the grant order is drawn from a seeded
/// RNG over the still-active threads.
///
/// Protocol: every shared-memory access in the workload is preceded by
/// [`Turnstile::yield_point`]; a thread leaving the workload (normally
/// or by unwinding) calls [`Turnstile::finish`]; a thread observing a
/// machine-wide fault calls [`Turnstile::crash`], which makes every
/// other thread's next yield return `Err(Crashed)`.
///
/// Because the baton is passed *inside* the yield — before the caller
/// blocks — the schedule is a pure function of the seed and the
/// workload's own control flow: replaying the same seed replays the
/// same interleaving, CAS winners included, on any host.
pub struct Turnstile {
    state: Mutex<TsState>,
    cv: Condvar,
}

impl Turnstile {
    /// A turnstile over `threads` participants, all initially active.
    #[must_use]
    pub fn new(threads: usize, seed: u64) -> Turnstile {
        assert!(threads > 0, "turnstile over zero threads");
        let mut st = TsState {
            rng: Rng::new(seed ^ 0x7572_6e73_7469_6c65), // "urnstile"
            current: 0,
            active: vec![true; threads],
            crashed: false,
            grants: 0,
        };
        st.pass();
        Turnstile { state: Mutex::new(st), cv: Condvar::new() }
    }

    /// Blocks until thread `t` is granted the next step. If `t` already
    /// holds the baton, it is re-drawn first (this is the interleaving
    /// point).
    ///
    /// # Errors
    ///
    /// `Err(Crashed)` once [`crash`](Turnstile::crash) was called: the
    /// caller must unwind its operation and [`finish`](Turnstile::finish).
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock (a worker panicked mid-step).
    pub fn yield_point(&self, t: usize) -> Result<(), Crashed> {
        let mut st = self.state.lock().expect("turnstile poisoned");
        if st.crashed {
            return Err(Crashed);
        }
        if st.current == t {
            st.pass();
            self.cv.notify_all();
        }
        while st.current != t {
            if st.crashed {
                return Err(Crashed);
            }
            st = self.cv.wait(st).expect("turnstile poisoned");
        }
        if st.crashed {
            return Err(Crashed);
        }
        Ok(())
    }

    /// Retires thread `t` (normal completion or post-crash unwind) and
    /// hands the baton on if `t` held it.
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock.
    pub fn finish(&self, t: usize) {
        let mut st = self.state.lock().expect("turnstile poisoned");
        st.active[t] = false;
        if st.current == t {
            st.pass();
        }
        self.cv.notify_all();
    }

    /// Declares a machine-wide crash: every waiter (and every later
    /// yield) returns `Err(Crashed)`.
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock.
    pub fn crash(&self) {
        let mut st = self.state.lock().expect("turnstile poisoned");
        st.crashed = true;
        self.cv.notify_all();
    }

    /// Whether a crash was declared.
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("turnstile poisoned").crashed
    }

    /// Baton grants so far (a deterministic logical clock).
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.state.lock().expect("turnstile poisoned").grants
    }

    /// Threads that have not yet [`finish`](Turnstile::finish)ed. A
    /// background participant (e.g. a patrol scrubber) polls this to
    /// retire once every mutator is done — without it, the scrubber
    /// would spin on its yield point forever.
    ///
    /// # Panics
    ///
    /// Panics on a poisoned lock.
    #[must_use]
    pub fn active_count(&self) -> usize {
        let st = self.state.lock().expect("turnstile poisoned");
        st.active.iter().filter(|a| **a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn histogram(order: &[u32], threads: usize) -> Vec<u64> {
        let mut h = vec![0u64; threads];
        for &t in order {
            h[t as usize] += 1;
        }
        h
    }

    #[test]
    fn every_policy_conserves_the_scripts() {
        let counts = [5u64, 0, 3, 9];
        for policy in [Policy::RoundRobin, Policy::Seeded(1), Policy::Seeded(0xDEAD)] {
            let order = schedule(policy, &counts);
            assert_eq!(histogram(&order, counts.len()), counts.to_vec(), "{policy:?}");
        }
    }

    #[test]
    fn round_robin_is_cyclic_and_skips_exhausted() {
        assert_eq!(schedule(Policy::RoundRobin, &[3, 1]), vec![0, 1, 0, 0]);
        assert_eq!(schedule(Policy::RoundRobin, &[1, 2, 2]), vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn seeded_schedules_replay_and_differ_across_seeds() {
        let counts = [20u64, 20, 20, 20];
        let base = schedule(Policy::Seeded(0), &counts);
        assert_eq!(base, schedule(Policy::Seeded(0), &counts), "replayable");
        let mut any_different = false;
        for seed in 1..8 {
            if schedule(Policy::Seeded(seed), &counts) != base {
                any_different = true;
            }
        }
        assert!(any_different, "seeds must explore distinct interleavings");
    }

    /// Runs `threads` workers over a shared log under a turnstile;
    /// returns the observed step order.
    fn turnstile_trace(threads: usize, steps_per_thread: usize, seed: u64) -> Vec<usize> {
        let ts = Arc::new(Turnstile::new(threads, seed));
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..threads {
                let (ts, log) = (Arc::clone(&ts), Arc::clone(&log));
                s.spawn(move || {
                    for _ in 0..steps_per_thread {
                        if ts.yield_point(t).is_err() {
                            break;
                        }
                        log.lock().unwrap().push(t);
                    }
                    ts.finish(t);
                });
            }
        });
        Arc::try_unwrap(log).unwrap().into_inner().unwrap()
    }

    #[test]
    fn turnstile_serializes_and_replays() {
        let a = turnstile_trace(4, 25, 9);
        assert_eq!(a.len(), 100, "every step ran");
        for t in 0..4 {
            assert_eq!(a.iter().filter(|&&x| x == t).count(), 25, "thread {t} ran fully");
        }
        let b = turnstile_trace(4, 25, 9);
        assert_eq!(a, b, "same seed, same interleaving, any host timing");
        let c = turnstile_trace(4, 25, 10);
        assert_ne!(a, c, "different seeds explore different interleavings");
    }

    #[test]
    fn turnstile_crash_stops_every_thread() {
        let ts = Arc::new(Turnstile::new(3, 1));
        let stopped = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for t in 0..3usize {
                let (ts, stopped) = (Arc::clone(&ts), Arc::clone(&stopped));
                s.spawn(move || {
                    for i in 0..10_000 {
                        if ts.yield_point(t).is_err() {
                            *stopped.lock().unwrap() += 1;
                            break;
                        }
                        if t == 1 && i == 5 {
                            ts.crash(); // thread 1 trips the gate mid-run
                            *stopped.lock().unwrap() += 1;
                            break;
                        }
                    }
                    ts.finish(t);
                });
            }
        });
        assert!(ts.crashed());
        assert_eq!(*stopped.lock().unwrap(), 3, "all threads observed the crash");
    }

    #[test]
    fn steps_tracks_per_thread_positions() {
        let order = schedule(Policy::Seeded(3), &[4, 4]);
        let mut seen = vec![Vec::new(), Vec::new()];
        for (t, i) in steps(&order) {
            seen[t as usize].push(i);
        }
        assert_eq!(seen[0], vec![0, 1, 2, 3], "script order preserved");
        assert_eq!(seen[1], vec![0, 1, 2, 3]);
    }
}
