//! Seeded interleaving schedules for concurrency harnesses.
//!
//! Real thread timing is non-deterministic, which would make concurrent
//! crash sweeps unreplayable. The explorer sidesteps that: each logical
//! thread contributes a *script* of operations, and a [`schedule`] decides
//! the global interleaving up front — round-robin for the canonical fair
//! ordering, or seeded-random to explore skewed ones. A driver then
//! executes the scripts *serially* in schedule order, so any failure
//! replays exactly from the `(seed, policy, counts)` triple — the same
//! `UTPR_QC_SEED` contract as the property runner ([`crate::runner`]).

use crate::rng::Rng;

/// How the per-thread scripts are interleaved into one global order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Cyclic fair order: thread 0, 1, …, N-1, 0, 1, … (skipping threads
    /// whose script is exhausted).
    RoundRobin,
    /// Seeded-random pick among non-exhausted threads; distinct seeds
    /// explore distinct interleavings, the same seed replays bit-for-bit.
    Seeded(u64),
}

/// Builds an interleaving: a vector of thread ids in which thread `t`
/// appears exactly `counts[t]` times, in script order (a schedule permutes
/// *across* threads, never within one thread's script).
///
/// # Panics
///
/// Panics when `counts` is empty.
///
/// # Examples
///
/// ```
/// use utpr_qc::sched::{schedule, Policy};
///
/// let order = schedule(Policy::RoundRobin, &[2, 2]);
/// assert_eq!(order, vec![0, 1, 0, 1]);
///
/// let a = schedule(Policy::Seeded(7), &[3, 3, 3]);
/// let b = schedule(Policy::Seeded(7), &[3, 3, 3]);
/// assert_eq!(a, b, "same seed, same interleaving");
/// ```
#[must_use]
pub fn schedule(policy: Policy, counts: &[u64]) -> Vec<u32> {
    assert!(!counts.is_empty(), "schedule over zero threads");
    let total: u64 = counts.iter().sum();
    let mut remaining = counts.to_vec();
    let mut order = Vec::with_capacity(total as usize);
    match policy {
        Policy::RoundRobin => {
            let mut t = 0usize;
            while order.len() < total as usize {
                if remaining[t] > 0 {
                    remaining[t] -= 1;
                    order.push(t as u32);
                }
                t = (t + 1) % counts.len();
            }
        }
        Policy::Seeded(seed) => {
            let mut rng = Rng::new(seed);
            let mut left = total;
            while left > 0 {
                // Weighted pick by remaining script length, so long scripts
                // are not starved to the tail of the schedule.
                let mut pick = rng.below(left);
                for (t, r) in remaining.iter_mut().enumerate() {
                    if pick < *r {
                        *r -= 1;
                        left -= 1;
                        order.push(t as u32);
                        break;
                    }
                    pick -= *r;
                }
            }
        }
    }
    order
}

/// Steps through a schedule, tracking each thread's position in its own
/// script: yields `(thread, index_within_script)` pairs.
///
/// # Examples
///
/// ```
/// use utpr_qc::sched::{schedule, steps, Policy};
///
/// let order = schedule(Policy::RoundRobin, &[2, 1]);
/// let s: Vec<(u32, u64)> = steps(&order).collect();
/// assert_eq!(s, vec![(0, 0), (1, 0), (0, 1)]);
/// ```
pub fn steps(order: &[u32]) -> impl Iterator<Item = (u32, u64)> + '_ {
    let threads = order.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut cursor = vec![0u64; threads];
    order.iter().map(move |&t| {
        let i = cursor[t as usize];
        cursor[t as usize] += 1;
        (t, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(order: &[u32], threads: usize) -> Vec<u64> {
        let mut h = vec![0u64; threads];
        for &t in order {
            h[t as usize] += 1;
        }
        h
    }

    #[test]
    fn every_policy_conserves_the_scripts() {
        let counts = [5u64, 0, 3, 9];
        for policy in [Policy::RoundRobin, Policy::Seeded(1), Policy::Seeded(0xDEAD)] {
            let order = schedule(policy, &counts);
            assert_eq!(histogram(&order, counts.len()), counts.to_vec(), "{policy:?}");
        }
    }

    #[test]
    fn round_robin_is_cyclic_and_skips_exhausted() {
        assert_eq!(schedule(Policy::RoundRobin, &[3, 1]), vec![0, 1, 0, 0]);
        assert_eq!(schedule(Policy::RoundRobin, &[1, 2, 2]), vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn seeded_schedules_replay_and_differ_across_seeds() {
        let counts = [20u64, 20, 20, 20];
        let base = schedule(Policy::Seeded(0), &counts);
        assert_eq!(base, schedule(Policy::Seeded(0), &counts), "replayable");
        let mut any_different = false;
        for seed in 1..8 {
            if schedule(Policy::Seeded(seed), &counts) != base {
                any_different = true;
            }
        }
        assert!(any_different, "seeds must explore distinct interleavings");
    }

    #[test]
    fn steps_tracks_per_thread_positions() {
        let order = schedule(Policy::Seeded(3), &[4, 4]);
        let mut seen = vec![Vec::new(), Vec::new()];
        for (t, i) in steps(&order) {
            seen[t as usize].push(i);
        }
        assert_eq!(seen[0], vec![0, 1, 2, 3], "script order preserved");
        assert_eq!(seen[1], vec![0, 1, 2, 3]);
    }
}
