//! Deterministic PRNG for the harness: xoshiro256** seeded through
//! splitmix64, the same construction the workload generators use. The
//! harness carries its own copy so `utpr-qc` depends on nothing — not even
//! other workspace crates — and can be lifted out wholesale.

/// xoshiro256** by Blackman & Vigna — fast, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// One splitmix64 step; also used to mix seeds and case indices into
/// independent streams.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string; gives every property its own stable stream.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl Rng {
    /// Seeds the generator (any seed is fine; the expansion never yields an
    /// all-zero state).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(x)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` (Lemire multiply-shift).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
