//! Micro-benchmark harness replacing criterion: per-function calibration,
//! a warmup window, then fixed-count sampling with median / p95 / min
//! reporting plus exact nearest-rank p50/p99/p999 (the tail percentiles
//! the serving-layer latency reports need). The API mirrors the slice of
//! criterion the workspace used (`bench_function` + `Bencher::iter`), so
//! benches port mechanically. [`nearest_rank`] is public: the load
//! harness feeds it latency sample vectors directly.
//!
//! Tuning knobs (environment):
//! - `UTPR_QC_BENCH_SAMPLES` — samples per function (default 30).
//! - `UTPR_QC_BENCH_WARMUP_MS` — warmup window per function (default 80).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary for one benchmarked function, in nanoseconds per
/// iteration.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name as passed to [`Bench::bench_function`].
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Exact nearest-rank 50th percentile (differs from `median_ns`, which
    /// keeps the historical rounded-index definition for stability).
    pub p50_ns: f64,
    /// Exact nearest-rank 99th percentile.
    pub p99_ns: f64,
    /// Exact nearest-rank 99.9th percentile.
    pub p999_ns: f64,
    /// Iterations per sample batch (calibrated).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Exact nearest-rank percentile over an **ascending-sorted** sample
/// slice: the smallest sample such that at least `q·N` samples are ≤ it
/// (rank `⌈q·N⌉`, 1-based). No interpolation — the returned value is
/// always an observed sample, which is the honest choice for latency
/// tails where interpolating between a 2 µs and a 2 ms outlier invents a
/// number nobody measured.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is not in `(0, 1]`.
#[must_use]
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "nearest_rank over an empty sample set");
    assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Measures one batch; handed to the closure given to
/// [`Bench::bench_function`] (criterion's `Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The harness: collects one [`Summary`] per benchmarked function and
/// prints a report on [`finish`](Bench::finish).
pub struct Bench {
    warmup: Duration,
    samples: usize,
    target_batch: Duration,
    results: Vec<Summary>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl Bench {
    /// A harness with the default (env-tunable) settings.
    #[must_use]
    pub fn new() -> Self {
        Bench::with(
            Duration::from_millis(env_u64("UTPR_QC_BENCH_WARMUP_MS", 80)),
            env_u64("UTPR_QC_BENCH_SAMPLES", 30) as usize,
            Duration::from_millis(2),
        )
    }

    /// A fully explicit harness (used by fast self-tests).
    #[must_use]
    pub fn with(warmup: Duration, samples: usize, target_batch: Duration) -> Self {
        Bench { warmup, samples: samples.max(1), target_batch, results: Vec::new() }
    }

    /// Benchmarks one function: calibrate the batch size, warm up, then
    /// collect samples. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly like under criterion.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        // Calibrate: grow the batch until one batch costs ~target_batch.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= self.target_batch || iters >= 1 << 24 {
                break;
            }
            // Aim straight at the target, conservatively.
            let scale = if b.elapsed.is_zero() {
                16
            } else {
                (self.target_batch.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16)
            };
            iters = iters.saturating_mul(scale as u64);
        }

        // Warmup window.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
        }

        // Timed samples.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);

        let pct = |q: f64| {
            let idx = ((per_iter_ns.len() - 1) as f64 * q).round() as usize;
            per_iter_ns[idx]
        };
        self.results.push(Summary {
            name: name.to_string(),
            median_ns: pct(0.5),
            p95_ns: pct(0.95),
            min_ns: per_iter_ns[0],
            p50_ns: nearest_rank(&per_iter_ns, 0.50),
            p99_ns: nearest_rank(&per_iter_ns, 0.99),
            p999_ns: nearest_rank(&per_iter_ns, 0.999),
            iters_per_sample: iters,
            samples: per_iter_ns.len(),
        });
    }

    /// Summaries collected so far.
    #[must_use]
    pub fn summaries(&self) -> &[Summary] {
        &self.results
    }

    /// Prints the report table to stdout.
    pub fn report(&self) {
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>10}",
            "benchmark", "median", "p95", "min", "iters"
        );
        println!("{}", "-".repeat(78));
        for s in &self.results {
            println!(
                "{:<28} {:>12} {:>12} {:>12} {:>10}",
                s.name,
                fmt_ns(s.median_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.min_ns),
                s.iters_per_sample,
            );
        }
    }

    /// Prints the report (the tail call of `bench_main!`).
    pub fn finish(self) {
        self.report();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Groups bench functions under one name, like `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Bench) {
            $($f(c);)+
        }
    };
}

/// Entry point running every group and printing the report, like
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Bench::new();
            $($group(&mut c);)+
            c.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_function() {
        let mut bench =
            Bench::with(Duration::from_millis(1), 5, Duration::from_micros(50));
        bench.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        let s = &bench.summaries()[0];
        assert_eq!(s.name, "noop_add");
        assert!(s.median_ns > 0.0);
        assert!(s.p95_ns >= s.median_ns);
        assert!(s.median_ns >= s.min_ns);
        assert!(s.iters_per_sample >= 1);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn nearest_rank_matches_hand_computed_distribution() {
        // 1..=100: with N=100, p-quantile rank is ⌈100q⌉, so the value IS
        // ⌈100q⌉ — checkable by eye.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50.0);
        assert_eq!(nearest_rank(&v, 0.95), 95.0);
        assert_eq!(nearest_rank(&v, 0.99), 99.0);
        assert_eq!(nearest_rank(&v, 0.999), 100.0, "rank ⌈99.9⌉ = 100");
        assert_eq!(nearest_rank(&v, 1.0), 100.0);
        assert_eq!(nearest_rank(&v, 0.001), 1.0, "rank ⌈0.1⌉ clamps to 1");

        // Small uneven set, hand-computed: N=5 → p50 rank ⌈2.5⌉=3,
        // p99 rank ⌈4.95⌉=5.
        let w = [2.0, 3.0, 7.0, 11.0, 400.0];
        assert_eq!(nearest_rank(&w, 0.50), 7.0);
        assert_eq!(nearest_rank(&w, 0.99), 400.0);
        assert_eq!(nearest_rank(&w, 0.60), 7.0, "rank ⌈3.0⌉ = 3, no interpolation");

        let one = [42.0];
        assert_eq!(nearest_rank(&one, 0.999), 42.0);
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let mut bench =
            Bench::with(Duration::from_millis(1), 40, Duration::from_micros(20));
        bench.bench_function("ordered", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
        });
        let s = &bench.summaries()[0];
        assert!(s.min_ns <= s.p50_ns);
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert_eq!(s.samples, 40);
    }

    #[test]
    fn formats_time_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
