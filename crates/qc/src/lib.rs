//! # utpr-qc — zero-dependency property testing and micro-benchmarks
//!
//! The workspace's substitute for `proptest` and `criterion`, written from
//! scratch so the tier-1 gate (`cargo build --release && cargo test -q`)
//! resolves, builds, and runs with **no network access and no external
//! crates**. The paper's soundness evaluation (§VII-B) is a property
//! battery over the Fig. 4 C11 pointer semantics; this crate is the
//! engine that battery runs on.
//!
//! ## Property tests
//!
//! The API deliberately shadows proptest so porting is mechanical:
//!
//! ```
//! use utpr_qc::prelude::*;
//!
//! props! {
//!     #![cases(64)]
//!     // In a test module, write `#[test]` above the fn exactly as under
//!     // proptest; the attribute passes through.
//!     fn addition_commutes(a in 0u64..1000, b in any::<u64>()) {
//!         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//! }
//! addition_commutes();
//! ```
//!
//! - Generators: integer ranges (`0u64..1000`), [`any::<T>()`](gen::any),
//!   [`Just`](gen::Just), tuples, [`GenExt::prop_map`](gen::GenExt),
//!   [`one_of!`] (weighted union, proptest's `prop_oneof!`), and
//!   [`gen::collection`]'s `vec` / `btree_set`.
//! - Failures shrink greedily ([`gen::SampleTree::simplify`]) to a local
//!   minimum before reporting.
//! - Runs are seeded and bit-stable; `UTPR_QC_SEED` (decimal or `0x`-hex)
//!   overrides the base seed and every failure report prints the value to
//!   replay it. See [`runner`] for details.
//!
//! ## Benchmarks
//!
//! [`bench::Bench`] replaces the slice of criterion the workspace used:
//! calibrated batches, a warmup window, and median / p95 / min reporting
//! (see the `bench_group!` / `bench_main!` macros).

pub mod bench;
pub mod gen;
pub mod linear;
pub mod rng;
pub mod runner;
pub mod sched;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::gen::collection;
    pub use crate::gen::{any, Arbitrary, BoxedGen, Gen, GenExt, Just, OneOf, SampleTree};
    pub use crate::runner::{for_all, Config};
    pub use crate::{one_of, prop_assert, prop_assert_eq, prop_assert_ne, props};
}

/// Declares property tests, shadowing the `proptest!` macro.
///
/// ```text
/// props! {
///     #![cases(N)]                  // replaces ProptestConfig::with_cases(N)
///     #[test]
///     fn name(arg in GENERATOR, ...) { body }
///     ...
/// }
/// ```
///
/// Each function becomes a `#[test]` that draws `N` inputs and applies the
/// body; use the `prop_assert*` macros (or plain panics/`assert!`) inside.
#[macro_export]
macro_rules! props {
    (
        #![cases($cases:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __gen = ($($gen,)+);
                $crate::runner::for_all(
                    concat!(module_path!(), "::", stringify!($name)),
                    $crate::runner::Config::cases($cases),
                    __gen,
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )+
    };
}

/// Weighted union of generators over one value type, shadowing
/// `prop_oneof!`: `one_of![3 => gen_a, 1 => gen_b]`.
#[macro_export]
macro_rules! one_of {
    ($($weight:expr => $gen:expr),+ $(,)?) => {
        $crate::gen::OneOf::new(vec![
            $(($weight as u32, $crate::gen::BoxedGen::new($gen))),+
        ])
    };
}

/// Fails the surrounding property when the condition is false
/// (shadows proptest's `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property when the operands differ
/// (shadows proptest's `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `left == right`\n  left: {__l:?}\n right: {__r:?}"),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left == right`\n  left: {__l:?}\n right: {__r:?}\n {}",
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the surrounding property when the operands are equal
/// (shadows proptest's `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(
                format!("assertion failed: `left != right`\n  both: {__l:?}"),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `left != right`\n  both: {__l:?}\n {}",
                format!($($fmt)+),
            ));
        }
    }};
}
