//! Generators and shrink trees — the proptest-shaped core of the harness.
//!
//! A [`Gen`] turns randomness into a [`SampleTree`]: a concrete generated
//! value plus the knowledge of how to propose *simpler* variants of it.
//! The runner walks those proposals greedily after a failure, so every
//! counterexample the harness reports is a local minimum (no single
//! simplification step still fails).
//!
//! The API mirrors proptest where the workspace tests used it:
//! `any::<T>()`, integer `Range`s as generators, [`Just`], `.prop_map`,
//! `collection::vec` / `collection::btree_set`, and the `one_of!` macro in
//! place of `prop_oneof!`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::rng::Rng;

/// A generated value plus its simplification frontier.
pub trait SampleTree: Clone {
    /// The value handed to the property.
    type Value: Clone + Debug;

    /// The concrete value this tree currently represents.
    fn current(&self) -> Self::Value;

    /// Candidate simpler trees, most aggressive first. An empty vector
    /// means the value is already minimal.
    fn simplify(&self) -> Vec<Self>;
}

/// A strategy for producing sample trees from randomness.
pub trait Gen: Clone {
    /// The tree type this generator produces.
    type Tree: SampleTree;

    /// Draws one sample tree.
    fn tree(&self, rng: &mut Rng) -> Self::Tree;
}

// ---------------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------------

/// Integer generator over `[lo, hi)` in i128 space, shrinking toward the
/// in-range point closest to zero.
#[derive(Clone, Debug)]
pub struct IntRangeGen<T> {
    lo: i128,
    hi: i128,
    _marker: PhantomData<T>,
}

impl<T> IntRangeGen<T> {
    /// Builds a generator over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo < hi, "empty integer range {lo}..{hi}");
        IntRangeGen { lo, hi, _marker: PhantomData }
    }

    fn origin(&self) -> i128 {
        self.lo.max(0).min(self.hi - 1)
    }
}

/// Shrink tree for integers: binary descent toward `origin`.
#[derive(Clone, Debug)]
pub struct IntTree<T> {
    value: i128,
    origin: i128,
    _marker: PhantomData<T>,
}

macro_rules! int_impls {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Tree = IntTree<$t>;
            fn tree(&self, rng: &mut Rng) -> IntTree<$t> {
                IntRangeGen::<$t>::new(self.start as i128, self.end as i128).tree(rng)
            }
        }

        impl Gen for IntRangeGen<$t> {
            type Tree = IntTree<$t>;
            fn tree(&self, rng: &mut Rng) -> IntTree<$t> {
                let width = (self.hi - self.lo) as u128;
                let draw = if width > u128::from(u64::MAX) {
                    // Only full 64-bit-wide ranges exceed u64: raw draw.
                    i128::from(rng.next_u64())
                } else {
                    i128::from(rng.below(width as u64))
                };
                IntTree { value: self.lo + draw, origin: self.origin(), _marker: PhantomData }
            }
        }

        impl SampleTree for IntTree<$t> {
            type Value = $t;
            fn current(&self) -> $t {
                self.value as $t
            }
            fn simplify(&self) -> Vec<Self> {
                let mut out = Vec::new();
                let mut push = |v: i128| {
                    if v != self.value && !out.iter().any(|t: &Self| t.value == v) {
                        out.push(IntTree { value: v, ..*self });
                    }
                };
                if self.value != self.origin {
                    push(self.origin);
                    push(self.origin + (self.value - self.origin) / 2);
                    push(self.value - (self.value - self.origin).signum());
                }
                out
            }
        }
    )+};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// any::<T>() — full-domain generators
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain generator, proptest's `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The generator `any::<Self>()` returns.
    type Gen: Gen;

    /// The full-domain generator for this type.
    fn arbitrary() -> Self::Gen;
}

/// The canonical generator for `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Gen {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            type Gen = IntRangeGen<$t>;
            fn arbitrary() -> IntRangeGen<$t> {
                IntRangeGen::new(<$t>::MIN as i128, <$t>::MAX as i128 + 1)
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator for `bool`; `true` shrinks to `false`.
#[derive(Clone, Debug)]
pub struct BoolGen;

/// Shrink tree for `bool`.
#[derive(Clone, Debug)]
pub struct BoolTree(bool);

impl Gen for BoolGen {
    type Tree = BoolTree;
    fn tree(&self, rng: &mut Rng) -> BoolTree {
        BoolTree(rng.next_u64() & 1 == 1)
    }
}

impl SampleTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.0
    }
    fn simplify(&self) -> Vec<Self> {
        if self.0 { vec![BoolTree(false)] } else { Vec::new() }
    }
}

impl Arbitrary for bool {
    type Gen = BoolGen;
    fn arbitrary() -> BoolGen {
        BoolGen
    }
}

// ---------------------------------------------------------------------------
// Just — constant generator
// ---------------------------------------------------------------------------

/// Always produces the given value; never shrinks.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

/// Tree for [`Just`].
#[derive(Clone, Debug)]
pub struct JustTree<V>(V);

impl<V: Clone + Debug> Gen for Just<V> {
    type Tree = JustTree<V>;
    fn tree(&self, _rng: &mut Rng) -> JustTree<V> {
        JustTree(self.0.clone())
    }
}

impl<V: Clone + Debug> SampleTree for JustTree<V> {
    type Value = V;
    fn current(&self) -> V {
        self.0.clone()
    }
    fn simplify(&self) -> Vec<Self> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ($(($($g:ident / $idx:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Tree = ($($g::Tree,)+);
            fn tree(&self, rng: &mut Rng) -> Self::Tree {
                ($(self.$idx.tree(rng),)+)
            }
        }

        impl<$($g: SampleTree),+> SampleTree for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn current(&self) -> Self::Value {
                ($(self.$idx.current(),)+)
            }
            fn simplify(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.simplify() {
                        let mut next = self.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_impls! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11)
}

// ---------------------------------------------------------------------------
// Map — proptest's prop_map
// ---------------------------------------------------------------------------

/// Generator adapter applying `f` to every produced value. Shrinking maps
/// the *input* tree's candidates through `f`, so mapped values shrink as
/// well as their sources do.
#[derive(Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

/// Tree for [`Map`].
#[derive(Clone)]
pub struct MapTree<T, F> {
    inner: T,
    f: F,
}

impl<G, F, O> Gen for Map<G, F>
where
    G: Gen,
    O: Clone + Debug,
    F: Fn(<G::Tree as SampleTree>::Value) -> O + Clone,
{
    type Tree = MapTree<G::Tree, F>;
    fn tree(&self, rng: &mut Rng) -> Self::Tree {
        MapTree { inner: self.inner.tree(rng), f: self.f.clone() }
    }
}

impl<T, F, O> SampleTree for MapTree<T, F>
where
    T: SampleTree,
    O: Clone + Debug,
    F: Fn(T::Value) -> O + Clone,
{
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&self) -> Vec<Self> {
        self.inner
            .simplify()
            .into_iter()
            .map(|inner| MapTree { inner, f: self.f.clone() })
            .collect()
    }
}

/// Combinator methods on every generator (proptest's `Strategy` methods).
pub trait GenExt: Gen + Sized {
    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Clone + Debug,
        F: Fn(<Self::Tree as SampleTree>::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the generator so heterogeneous strategies can share a
    /// signature (proptest's `boxed`).
    fn boxed(self) -> BoxedGen<<Self::Tree as SampleTree>::Value>
    where
        Self: 'static,
        Self::Tree: 'static,
    {
        BoxedGen::new(self)
    }
}

impl<G: Gen> GenExt for G {}

// ---------------------------------------------------------------------------
// Boxed (type-erased) generators — needed by one_of!
// ---------------------------------------------------------------------------

trait DynGen<V> {
    fn dyn_tree(&self, rng: &mut Rng) -> BoxedTree<V>;
}

trait DynTree<V> {
    fn dyn_current(&self) -> V;
    fn dyn_simplify(&self) -> Vec<BoxedTree<V>>;
}

/// A type-erased generator producing values of type `V`.
pub struct BoxedGen<V> {
    inner: Rc<dyn DynGen<V>>,
}

impl<V> Clone for BoxedGen<V> {
    fn clone(&self) -> Self {
        BoxedGen { inner: Rc::clone(&self.inner) }
    }
}

/// A type-erased sample tree producing values of type `V`.
pub struct BoxedTree<V> {
    inner: Rc<dyn DynTree<V>>,
}

impl<V> Clone for BoxedTree<V> {
    fn clone(&self) -> Self {
        BoxedTree { inner: Rc::clone(&self.inner) }
    }
}

struct DynGenImpl<G>(G);
struct DynTreeImpl<T>(T);

impl<V, G> DynGen<V> for DynGenImpl<G>
where
    V: Clone + Debug + 'static,
    G: Gen + 'static,
    G::Tree: SampleTree<Value = V> + 'static,
{
    fn dyn_tree(&self, rng: &mut Rng) -> BoxedTree<V> {
        BoxedTree { inner: Rc::new(DynTreeImpl(self.0.tree(rng))) }
    }
}

impl<V, T> DynTree<V> for DynTreeImpl<T>
where
    V: Clone + Debug + 'static,
    T: SampleTree<Value = V> + 'static,
{
    fn dyn_current(&self) -> V {
        self.0.current()
    }
    fn dyn_simplify(&self) -> Vec<BoxedTree<V>> {
        self.0
            .simplify()
            .into_iter()
            .map(|t| BoxedTree { inner: Rc::new(DynTreeImpl(t)) as Rc<dyn DynTree<V>> })
            .collect()
    }
}

impl<V: Clone + Debug + 'static> BoxedGen<V> {
    /// Erases a concrete generator.
    pub fn new<G>(gen: G) -> Self
    where
        G: Gen + 'static,
        G::Tree: SampleTree<Value = V> + 'static,
    {
        BoxedGen { inner: Rc::new(DynGenImpl(gen)) }
    }
}

impl<V: Clone + Debug + 'static> Gen for BoxedGen<V> {
    type Tree = BoxedTree<V>;
    fn tree(&self, rng: &mut Rng) -> BoxedTree<V> {
        self.inner.dyn_tree(rng)
    }
}

impl<V: Clone + Debug + 'static> SampleTree for BoxedTree<V> {
    type Value = V;
    fn current(&self) -> V {
        self.inner.dyn_current()
    }
    fn simplify(&self) -> Vec<Self> {
        self.inner.dyn_simplify()
    }
}

/// Weighted choice between type-erased generators (proptest's
/// `prop_oneof!`); built by the [`one_of!`](crate::one_of) macro.
#[derive(Clone)]
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedGen<V>)>,
}

impl<V: Clone + Debug + 'static> OneOf<V> {
    /// Builds a weighted union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedGen<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "one_of! needs at least one arm with nonzero weight");
        OneOf { arms }
    }
}

impl<V: Clone + Debug + 'static> Gen for OneOf<V> {
    type Tree = BoxedTree<V>;
    fn tree(&self, rng: &mut Rng) -> BoxedTree<V> {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, gen) in &self.arms {
            if pick < u64::from(*w) {
                return gen.tree(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection generators (proptest's `prop::collection`).
pub mod collection {
    use super::{BTreeSet, Gen, Range, Rng, SampleTree};

    /// `Vec` generator with a length drawn from `len` (proptest's
    /// `prop::collection::vec`).
    #[derive(Clone)]
    pub struct VecGen<G> {
        elem: G,
        len: Range<usize>,
    }

    /// Builds a `Vec` generator.
    pub fn vec<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
        assert!(len.start < len.end, "empty length range");
        VecGen { elem, len }
    }

    /// Shrink tree for vectors: drops chunks, drops single elements, then
    /// shrinks elements in place — never below the requested minimum
    /// length.
    #[derive(Clone)]
    pub struct VecTree<T> {
        elems: Vec<T>,
        min: usize,
    }

    impl<G: Gen> Gen for VecGen<G> {
        type Tree = VecTree<G::Tree>;
        fn tree(&self, rng: &mut Rng) -> Self::Tree {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            let elems = (0..n).map(|_| self.elem.tree(rng)).collect();
            VecTree { elems, min: self.len.start }
        }
    }

    impl<T: SampleTree> VecTree<T> {
        fn without(&self, range: Range<usize>) -> Option<Self> {
            let keep = self.elems.len() - range.len();
            if range.is_empty() || keep < self.min {
                return None;
            }
            let mut elems = self.elems.clone();
            elems.drain(range);
            Some(VecTree { elems, min: self.min })
        }
    }

    impl<T: SampleTree> SampleTree for VecTree<T> {
        type Value = Vec<T::Value>;
        fn current(&self) -> Self::Value {
            self.elems.iter().map(SampleTree::current).collect()
        }
        fn simplify(&self) -> Vec<Self> {
            let n = self.elems.len();
            let mut out = Vec::new();
            // Structural shrinks first: halves, then single removals.
            out.extend(self.without(n / 2..n));
            out.extend(self.without(0..n / 2));
            for i in (0..n).rev() {
                out.extend(self.without(i..i + 1));
            }
            // Element-wise shrinks.
            for i in 0..n {
                for cand in self.elems[i].simplify() {
                    let mut next = self.clone();
                    next.elems[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// `BTreeSet` generator (proptest's `prop::collection::btree_set`).
    /// Duplicates collapse, so the realised set can be smaller than the
    /// drawn length (as in proptest); `len.start >= 1` guarantees a
    /// non-empty set.
    #[derive(Clone)]
    pub struct BTreeSetGen<G> {
        inner: VecGen<G>,
    }

    /// Builds a `BTreeSet` generator.
    pub fn btree_set<G: Gen>(elem: G, len: Range<usize>) -> BTreeSetGen<G> {
        BTreeSetGen { inner: vec(elem, len) }
    }

    /// Shrink tree for sets: the underlying vector tree, collected.
    #[derive(Clone)]
    pub struct BTreeSetTree<T> {
        inner: VecTree<T>,
    }

    impl<G> Gen for BTreeSetGen<G>
    where
        G: Gen,
        <G::Tree as SampleTree>::Value: Ord,
    {
        type Tree = BTreeSetTree<G::Tree>;
        fn tree(&self, rng: &mut Rng) -> Self::Tree {
            BTreeSetTree { inner: self.inner.tree(rng) }
        }
    }

    impl<T> SampleTree for BTreeSetTree<T>
    where
        T: SampleTree,
        T::Value: Ord,
    {
        type Value = BTreeSet<T::Value>;
        fn current(&self) -> Self::Value {
            self.inner.current().into_iter().collect()
        }
        fn simplify(&self) -> Vec<Self> {
            self.inner.simplify().into_iter().map(|inner| BTreeSetTree { inner }).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn greedy_min<T: SampleTree>(mut tree: T, fails: impl Fn(&T::Value) -> bool) -> T::Value {
        assert!(fails(&tree.current()), "planted failure must fail");
        'outer: loop {
            for cand in tree.simplify() {
                if fails(&cand.current()) {
                    tree = cand;
                    continue 'outer;
                }
            }
            return tree.current();
        }
    }

    #[test]
    fn int_shrinks_to_boundary() {
        let mut rng = Rng::new(9);
        // Find a failing sample (>= 500), then shrink: must reach exactly 500.
        let gen = 0u64..10_000;
        loop {
            let t = gen.tree(&mut rng);
            if t.current() >= 500 {
                assert_eq!(greedy_min(t, |v| *v >= 500), 500);
                break;
            }
        }
    }

    #[test]
    fn signed_int_shrinks_toward_zero() {
        let mut rng = Rng::new(11);
        let gen = -1000i64..1000;
        loop {
            let t = gen.tree(&mut rng);
            if t.current() <= -10 {
                assert_eq!(greedy_min(t, |v| *v <= -10), -10);
                break;
            }
        }
    }

    #[test]
    fn vec_shrinks_to_minimal_length_and_elements() {
        let mut rng = Rng::new(5);
        let gen = collection::vec(0u64..100, 1..40);
        loop {
            let t = gen.tree(&mut rng);
            if t.current().len() >= 5 {
                let min = greedy_min(t, |v| v.len() >= 5);
                assert_eq!(min, vec![0, 0, 0, 0, 0]);
                break;
            }
        }
    }

    #[test]
    fn map_shrinks_through_the_function() {
        let mut rng = Rng::new(3);
        let gen = (0u64..1000).prop_map(|x| x * 2);
        loop {
            let t = gen.tree(&mut rng);
            if t.current() >= 100 {
                assert_eq!(greedy_min(t, |v| *v >= 100), 100);
                break;
            }
        }
    }

    #[test]
    fn one_of_respects_weights_roughly() {
        let gen: OneOf<u8> = OneOf::new(vec![
            (9, BoxedGen::new(Just(1u8))),
            (1, BoxedGen::new(Just(2u8))),
        ]);
        let mut rng = Rng::new(17);
        let ones = (0..1000).filter(|_| gen.tree(&mut rng).current() == 1).count();
        assert!((800..=980).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn full_domain_any_is_seed_stable() {
        let a: Vec<u64> = {
            let mut rng = Rng::new(123);
            (0..32).map(|_| any::<u64>().tree(&mut rng).current()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = Rng::new(123);
            (0..32).map(|_| any::<u64>().tree(&mut rng).current()).collect()
        };
        assert_eq!(a, b);
    }
}
