//! The property runner: drives a [`Gen`](crate::gen::Gen) through `cases`
//! random cases, and on the first failure greedily shrinks the input before
//! reporting.
//!
//! ## Determinism and replay
//!
//! Every property derives its stream from a *base seed* mixed with the
//! property's name, so each test is independent yet bit-stable across runs.
//! The base seed is [`DEFAULT_SEED`] unless the `UTPR_QC_SEED` environment
//! variable overrides it (decimal or `0x`-prefixed hex). A failure report
//! prints the base seed and case index; re-running with
//! `UTPR_QC_SEED=<that seed>` reproduces the identical failure, shrink
//! path included.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::gen::{Gen, SampleTree};
use crate::rng::{fnv1a, splitmix64, Rng};

/// Base seed used when `UTPR_QC_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0x5EED_u64;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to execute.
    pub cases: u32,
    /// Cap on accepted shrink steps (adopted simpler failures).
    pub max_shrink_steps: u32,
    /// Cap on total property executions spent shrinking.
    pub max_shrink_execs: u32,
}

impl Config {
    /// A config running `cases` cases with default shrink limits.
    #[must_use]
    pub fn cases(cases: u32) -> Self {
        Config { cases, max_shrink_steps: 2_000, max_shrink_execs: 20_000 }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::cases(256)
    }
}

/// Parses a seed string: decimal, or hex with a `0x`/`0X` prefix.
pub(crate) fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The base seed in effect: `UTPR_QC_SEED` if set and parseable, else
/// [`DEFAULT_SEED`].
#[must_use]
pub fn base_seed() -> u64 {
    match std::env::var("UTPR_QC_SEED") {
        Ok(v) => parse_seed(&v).unwrap_or_else(|| {
            panic!("UTPR_QC_SEED={v:?} is not a decimal or 0x-hex u64")
        }),
        Err(_) => DEFAULT_SEED,
    }
}

thread_local! {
    /// True while the runner executes a property body, so the panic hook
    /// stays silent and the runner formats the failure itself.
    static IN_PROPERTY: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_PROPERTY.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn run_once<V, F>(prop: &F, value: V) -> Result<(), String>
where
    F: Fn(V) -> Result<(), String>,
{
    IN_PROPERTY.with(|f| f.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    IN_PROPERTY.with(|f| f.set(false));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Runs `prop` against `cfg.cases` inputs drawn from `gen`.
///
/// # Panics
///
/// Panics with a replayable report (base seed, case index, original and
/// shrunk counterexamples) on the first property failure. Panics raised by
/// the property body itself are treated as failures and shrunk like
/// assertion failures.
pub fn for_all<G, F>(name: &str, cfg: Config, gen: G, prop: F)
where
    G: Gen,
    F: Fn(<G::Tree as SampleTree>::Value) -> Result<(), String>,
{
    install_quiet_hook();
    let base = base_seed();
    let stream = splitmix64(base ^ fnv1a(name));
    for case in 0..cfg.cases {
        let mut rng = Rng::new(splitmix64(stream ^ u64::from(case)));
        let tree = gen.tree(&mut rng);
        let original = tree.current();
        if let Err(err) = run_once(&prop, tree.current()) {
            let shrunk = shrink(cfg, tree, err, &prop);
            panic!(
                "\n[utpr-qc] property failed: {name}\n\
                 \x20 seed: {base:#x} (replay with UTPR_QC_SEED={base:#x})\n\
                 \x20 case: {case_n}/{cases}\n\
                 \x20 original input: {original:?}\n\
                 \x20 shrunk input ({steps} steps, {execs} executions): {min:?}\n\
                 \x20 error: {err}\n",
                case_n = case + 1,
                cases = cfg.cases,
                steps = shrunk.steps,
                execs = shrunk.execs,
                min = shrunk.value,
                err = shrunk.error,
            );
        }
    }
}

struct Shrunk<V> {
    value: V,
    error: String,
    steps: u32,
    execs: u32,
}

/// Greedy descent: adopt the first simplification candidate that still
/// fails; stop when no candidate fails (a local minimum) or a budget runs
/// out.
fn shrink<T, F>(cfg: Config, tree: T, error: String, prop: &F) -> Shrunk<T::Value>
where
    T: SampleTree,
    F: Fn(T::Value) -> Result<(), String>,
{
    let mut best = tree;
    let mut best_err = error;
    let mut steps = 0u32;
    let mut execs = 0u32;
    'outer: while steps < cfg.max_shrink_steps && execs < cfg.max_shrink_execs {
        for cand in best.simplify() {
            if execs >= cfg.max_shrink_execs {
                break 'outer;
            }
            execs += 1;
            if let Err(err) = run_once(prop, cand.current()) {
                best = cand;
                best_err = err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Shrunk { value: best.current(), error: best_err, steps, execs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("zzz"), None);
        assert_eq!(parse_seed("0x"), None);
    }

    #[test]
    fn passing_property_completes() {
        for_all("qc::self::pass", Config::cases(64), 0u64..100, |x| {
            if x < 100 { Ok(()) } else { Err("out of range".into()) }
        });
    }

    #[test]
    fn failing_property_reports_shrunk_minimum() {
        let result = panic::catch_unwind(|| {
            for_all("qc::self::fail", Config::cases(64), 0u64..10_000, |x| {
                if x < 500 { Ok(()) } else { Err(format!("{x} too big")) }
            });
        });
        let msg = panic_message(result.expect_err("must fail"));
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(msg.contains(": 500"), "did not shrink to 500: {msg}");
        assert!(msg.contains("UTPR_QC_SEED"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let result = panic::catch_unwind(|| {
            for_all("qc::self::panic", Config::cases(64), 0u64..10_000, |x| {
                assert!(x < 500, "{x} too big");
                Ok(())
            });
        });
        let msg = panic_message(result.expect_err("must fail"));
        assert!(msg.contains(": 500"), "did not shrink to 500: {msg}");
        assert!(msg.contains("panic:"), "{msg}");
    }
}
