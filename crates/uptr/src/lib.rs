//! # utpr-ptr — user-transparent persistent references
//!
//! The core contribution of *"Supporting Legacy Libraries on Non-Volatile
//! Memory: A User-Transparent Approach"* (Ye et al., ISCA 2021), executable:
//! a single 64-bit pointer word that may hold either a conventional virtual
//! address or a relocation-stable relative address (pool id + offset), with
//! runtime checks that make every ISO C11 pointer operation behave
//! identically regardless of the format.
//!
//! The crate provides:
//!
//! - [`UPtr`] — the tagged pointer value (bit 63 selects the format,
//!   bit 47 of a virtual address selects the NVM half; paper Fig. 2);
//! - [`C11Engine`] — the executable semantics of the paper's Fig. 4 table,
//!   used by the soundness test battery;
//! - [`ExecEnv`] — the instrumented environment on which the benchmarks run
//!   in the paper's four build variants ([`Mode`]), emitting the
//!   micro-architectural event stream ([`MemEvent`]) that `utpr-sim` prices;
//! - [`Site`]/[`Provenance`] — static pointer-operation sites and the
//!   compiler's per-site knowledge (validated against `utpr-cc`'s dataflow
//!   inference).
//!
//! ## Quick start
//!
//! ```
//! use utpr_heap::AddressSpace;
//! use utpr_ptr::{site, CountingSink, ExecEnv, Mode};
//!
//! let mut space = AddressSpace::new(1);
//! let pool = space.create_pool("list", 1 << 20)?;
//! let mut env = ExecEnv::builder(space)
//!     .mode(Mode::Hw)
//!     .pool(pool)
//!     .sink(CountingSink::new())
//!     .build();
//!
//! // Build a two-node persistent list exactly as legacy code would.
//! let head = env.alloc(site!("ex.head", AllocResult), 16)?;
//! let tail = env.alloc(site!("ex.tail", AllocResult), 16)?;
//! env.write_u64(site!("ex.val", StackLocal), head, 0, 1)?;
//! env.write_ptr(site!("ex.next", StackLocal), head, 8, tail)?;
//!
//! // The pointer stored in NVM is in relative (relocatable) format:
//! assert_ne!(env.peek_raw(head, 8)? & (1 << 63), 0);
//! # Ok::<(), utpr_heap::HeapError>(())
//! ```

pub mod c11;
pub mod env;
pub mod event;
pub mod ptr;
pub mod site;
pub mod stats;

pub use c11::C11Engine;
pub use env::{branch_kind, CheckPolicy, ExecEnv, ExecEnvBuilder, Mode, Placement};
pub use event::{CountingSink, MemEvent, NullSink, TimingSink};
pub use ptr::{PtrFormat, PtrKind, PtrSpace, UPtr};
pub use site::{Provenance, Site, PC_DETERMINE_Y_HELPER, PC_PA_DETERMINE_X, PC_PA_DETERMINE_Y};
pub use stats::PtrStats;
