//! Micro-architectural events emitted by an [`crate::ExecEnv`] and consumed
//! by a timing model.
//!
//! The execution environment performs the *functional* semantics of every
//! operation and, in parallel, narrates what a processor would see as a
//! stream of [`MemEvent`]s. `utpr-sim` implements [`TimingSink`] to turn the
//! stream into cycles using the paper's Table IV machine configuration; the
//! bundled [`CountingSink`] merely tallies events for tests and for
//! Fig. 15-style access-mix ratios.

/// One micro-architectural event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// `n` plain ALU micro-ops (address math, compares, bookkeeping).
    Exec(u32),
    /// A data load at virtual address `va`. `rel_base` is true when the
    /// effective address was generated from a relative-format pointer
    /// (paper Table I: the hardware converts before the TLB access; the
    /// matching [`MemEvent::PolbAccess`] is emitted separately).
    Load {
        /// Effective virtual address.
        va: u64,
        /// Address register held relative format.
        rel_base: bool,
    },
    /// A data store (`storeD`).
    Store {
        /// Effective virtual address.
        va: u64,
        /// Address register held relative format.
        rel_base: bool,
    },
    /// A pointer store (`storeP`): the paper's new instruction. The flags
    /// say which conversions the storeP functional unit performed
    /// (paper Fig. 6); matching `PolbAccess`/`ValbAccess` events are emitted
    /// alongside.
    StoreP {
        /// Destination virtual address (after any conversion).
        va: u64,
        /// Source needed virtual→relative conversion (VALB).
        rs_va2ra: bool,
        /// Source needed relative→virtual conversion (POLB).
        rs_ra2va: bool,
        /// Destination address register was in relative format (POLB).
        rd_ra2va: bool,
    },
    /// A conditional branch; `pc` identifies the static branch instruction
    /// (software checks inside shared helper functions share a pc).
    Branch {
        /// Static identity of the branch instruction.
        pc: u64,
        /// Actual outcome.
        taken: bool,
    },
    /// One hardware relative→virtual translation: a POLB lookup (backed by
    /// the POW walker on a miss). Emitted for explicit-model per-access
    /// translations, relative-base address generation, and loaded-pointer
    /// conversions in HW mode.
    PolbAccess {
        /// Pool id being translated.
        pool: u32,
    },
    /// One hardware virtual→relative translation: a VALB lookup (backed by
    /// the VAW walker on a miss). Emitted by storeP when the source operand
    /// holds a virtual address that must be stored in relative form.
    ValbAccess {
        /// Virtual address being classified.
        va: u64,
    },
    /// A software `ra2va` call: pool-table lookup performed by instructions
    /// (SW mode). The timing model charges call overhead plus table loads.
    SwRa2Va {
        /// Pool being looked up.
        pool: u32,
    },
    /// A software `va2ra` call: range-table lookup performed by instructions
    /// (SW mode).
    SwVa2Ra {
        /// Virtual address being classified.
        va: u64,
    },
}

/// Consumer of the event stream.
///
/// Implementations must be cheap: the environment calls this on every memory
/// operation of the simulated program.
pub trait TimingSink {
    /// Observes one event.
    fn event(&mut self, ev: MemEvent);
}

/// A sink that ignores everything (functional-only runs).
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TimingSink for NullSink {
    fn event(&mut self, _ev: MemEvent) {}
}

impl<T: TimingSink + ?Sized> TimingSink for &mut T {
    fn event(&mut self, ev: MemEvent) {
        (**self).event(ev)
    }
}

/// A sink that counts events by class — useful in tests and for Fig. 15-style
/// ratios without a full timing model.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CountingSink {
    /// ALU micro-ops observed.
    pub exec_uops: u64,
    /// Loads observed.
    pub loads: u64,
    /// Loads whose base register was in relative format.
    pub rel_base_loads: u64,
    /// Plain stores observed.
    pub stores: u64,
    /// storeP instructions observed.
    pub storep: u64,
    /// storeP instructions that performed a VALB (va2ra) translation.
    pub storep_va2ra: u64,
    /// storeP instructions that performed a source POLB (ra2va) translation.
    pub storep_ra2va: u64,
    /// Branches observed.
    pub branches: u64,
    /// Hardware POLB accesses observed.
    pub polb_accesses: u64,
    /// Hardware VALB accesses observed.
    pub valb_accesses: u64,
    /// Software ra2va calls observed.
    pub sw_ra2va: u64,
    /// Software va2ra calls observed.
    pub sw_va2ra: u64,
}

impl CountingSink {
    /// Fresh zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total memory-reference instructions (loads + stores + storeP).
    pub fn memory_refs(&self) -> u64 {
        self.loads + self.stores + self.storep
    }
}

impl TimingSink for CountingSink {
    fn event(&mut self, ev: MemEvent) {
        match ev {
            MemEvent::Exec(n) => self.exec_uops += u64::from(n),
            MemEvent::Load { rel_base, .. } => {
                self.loads += 1;
                if rel_base {
                    self.rel_base_loads += 1;
                }
            }
            MemEvent::Store { .. } => self.stores += 1,
            MemEvent::StoreP { rs_va2ra, rs_ra2va, .. } => {
                self.storep += 1;
                if rs_va2ra {
                    self.storep_va2ra += 1;
                }
                if rs_ra2va {
                    self.storep_ra2va += 1;
                }
            }
            MemEvent::Branch { .. } => self.branches += 1,
            MemEvent::PolbAccess { .. } => self.polb_accesses += 1,
            MemEvent::ValbAccess { .. } => self.valb_accesses += 1,
            MemEvent::SwRa2Va { .. } => self.sw_ra2va += 1,
            MemEvent::SwVa2Ra { .. } => self.sw_va2ra += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_classifies_events() {
        let mut s = CountingSink::new();
        s.event(MemEvent::Exec(3));
        s.event(MemEvent::Load { va: 1, rel_base: true });
        s.event(MemEvent::Load { va: 2, rel_base: false });
        s.event(MemEvent::Store { va: 3, rel_base: false });
        s.event(MemEvent::StoreP { va: 4, rs_va2ra: true, rs_ra2va: false, rd_ra2va: false });
        s.event(MemEvent::Branch { pc: 9, taken: true });
        s.event(MemEvent::PolbAccess { pool: 1 });
        s.event(MemEvent::ValbAccess { va: 5 });
        s.event(MemEvent::SwRa2Va { pool: 1 });
        s.event(MemEvent::SwVa2Ra { va: 7 });
        assert_eq!(s.exec_uops, 3);
        assert_eq!(s.loads, 2);
        assert_eq!(s.rel_base_loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.storep, 1);
        assert_eq!(s.storep_va2ra, 1);
        assert_eq!(s.storep_ra2va, 0);
        assert_eq!(s.branches, 1);
        assert_eq!(s.polb_accesses, 1);
        assert_eq!(s.valb_accesses, 1);
        assert_eq!(s.sw_ra2va, 1);
        assert_eq!(s.sw_va2ra, 1);
        assert_eq!(s.memory_refs(), 4);
    }

    #[test]
    fn null_sink_is_inert() {
        let mut s = NullSink;
        s.event(MemEvent::Exec(1_000_000));
    }

    #[test]
    fn mut_ref_forwarding_works() {
        let mut s = CountingSink::new();
        {
            let mut r: &mut CountingSink = &mut s;
            let r = &mut r;
            r.event(MemEvent::Exec(2));
        }
        assert_eq!(s.exec_uops, 2);
    }
}
