//! Runtime counters: the raw material for the paper's Table V and Fig. 15.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters accumulated by an [`crate::ExecEnv`] run.
///
/// `dynamic_checks` counts executed software format checks (SW mode);
/// `abs_to_rel` / `rel_to_abs` count pointer-format conversions in either
/// direction, exactly what the paper's Table V reports per benchmark.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PtrStats {
    /// Software dynamic format checks executed (SW mode only).
    pub dynamic_checks: u64,
    /// Software checks *elided* by the per-site monomorphic check cache
    /// (SW mode with the cache enabled): for every check the compiler's
    /// static pass left in, either this or `dynamic_checks` advances, so
    /// `dynamic_checks + checks_elided` is invariant under the cache.
    pub checks_elided: u64,
    /// Conversions from absolute (virtual) to relative format (`va2ra`).
    pub abs_to_rel: u64,
    /// Conversions from relative to absolute format (`ra2va`).
    pub rel_to_abs: u64,
    /// Data loads issued.
    pub loads: u64,
    /// Data stores issued (`storeD`).
    pub stores: u64,
    /// Pointer stores issued (`storeP`).
    pub storep: u64,
    /// Pointer loads issued.
    pub ptr_loads: u64,
    /// Per-access object-id translations in Explicit mode.
    pub explicit_translations: u64,
    /// Conditional branches executed by software checks.
    pub check_branches: u64,
    /// Allocations performed.
    pub allocs: u64,
    /// Frees performed.
    pub frees: u64,
}

impl PtrStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total memory-reference operations (loads + stores + storeP).
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores + self.storep + self.ptr_loads
    }

    /// Total format conversions in either direction.
    pub fn conversions(&self) -> u64 {
        self.abs_to_rel + self.rel_to_abs
    }
}

impl Add for PtrStats {
    type Output = PtrStats;
    fn add(mut self, rhs: PtrStats) -> PtrStats {
        self += rhs;
        self
    }
}

impl AddAssign for PtrStats {
    fn add_assign(&mut self, rhs: PtrStats) {
        self.dynamic_checks += rhs.dynamic_checks;
        self.checks_elided += rhs.checks_elided;
        self.abs_to_rel += rhs.abs_to_rel;
        self.rel_to_abs += rhs.rel_to_abs;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.storep += rhs.storep;
        self.ptr_loads += rhs.ptr_loads;
        self.explicit_translations += rhs.explicit_translations;
        self.check_branches += rhs.check_branches;
        self.allocs += rhs.allocs;
        self.frees += rhs.frees;
    }
}

impl fmt::Display for PtrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checks={} elided={} abs->rel={} rel->abs={} loads={} stores={} storeP={} ptr_loads={} explicit_xlat={}",
            self.dynamic_checks,
            self.checks_elided,
            self.abs_to_rel,
            self.rel_to_abs,
            self.loads,
            self.stores,
            self.storep,
            self.ptr_loads,
            self.explicit_translations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let a = PtrStats {
            dynamic_checks: 1,
            checks_elided: 12,
            abs_to_rel: 2,
            rel_to_abs: 3,
            loads: 4,
            stores: 5,
            storep: 6,
            ptr_loads: 7,
            explicit_translations: 8,
            check_branches: 9,
            allocs: 10,
            frees: 11,
        };
        let sum = a + a;
        assert_eq!(sum.dynamic_checks, 2);
        assert_eq!(sum.checks_elided, 24);
        assert_eq!(sum.frees, 22);
        assert_eq!(sum.memory_ops(), 2 * (4 + 5 + 6 + 7));
        assert_eq!(sum.conversions(), 2 * (2 + 3));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!PtrStats::new().to_string().is_empty());
    }
}
