//! The instrumented execution environment: functional semantics plus
//! micro-architectural narration for the paper's four build variants.
//!
//! Client code (the data structures, the KV harness, KNN) is written *once*
//! against [`ExecEnv`]. Every pointer operation carries a static [`Site`];
//! the environment performs the operation against the simulated
//! [`AddressSpace`] and emits the [`MemEvent`] stream a processor running
//! the corresponding build would see:
//!
//! - [`Mode::Volatile`] — the native build: plain pointers, DRAM only.
//! - [`Mode::Explicit`] — the explicit persistent-reference baseline
//!   (Wang et al., the paper's reference 26): object ids everywhere, a hardware translation on
//!   *every* access to a persistent object.
//! - [`Mode::Sw`] — user-transparent references with compiler-inserted
//!   software checks: unresolved sites execute real branches and call
//!   software `ra2va`/`va2ra`.
//! - [`Mode::Hw`] — user-transparent references with the paper's
//!   architecture support: `storeP`, POLB and VALB lookups.
//!
//! The key behavioural difference the paper measures (Fig. 12) falls out of
//! the model: in `Hw`/`Sw` modes a pointer loaded from memory is converted
//! to a virtual address once and then *reused*, while `Explicit` translates
//! again at every access.

use crate::c11::Result;
use crate::event::{MemEvent, NullSink, TimingSink};
use crate::ptr::{PtrFormat, UPtr};
use crate::site::{Site, PC_DETERMINE_Y_HELPER, PC_PA_DETERMINE_X, PC_PA_DETERMINE_Y};
use crate::stats::PtrStats;
use utpr_heap::addr::VirtAddr;
use utpr_heap::{AddressSpace, FaultPlan, HeapError, PoolId, RelLoc};

/// Which build of the program is being simulated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// Native volatile build: no NVM, no persistent pointers.
    Volatile,
    /// Explicit persistent references (object ids + per-access translation).
    Explicit,
    /// User-transparent references, software checks only.
    Sw,
    /// User-transparent references with architecture support.
    Hw,
}

impl Mode {
    /// All four modes, in the order the paper's figures list them.
    pub const ALL: [Mode; 4] = [Mode::Volatile, Mode::Explicit, Mode::Sw, Mode::Hw];

    /// Short label used in reports ("volatile", "explicit", "sw", "hw").
    pub fn label(self) -> &'static str {
        match self {
            Mode::Volatile => "volatile",
            Mode::Explicit => "explicit",
            Mode::Sw => "sw",
            Mode::Hw => "hw",
        }
    }

    /// True for the two user-transparent variants.
    pub fn is_utpr(self) -> bool {
        matches!(self, Mode::Sw | Mode::Hw)
    }
}

/// Where an allocation should be placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Volatile heap.
    Dram,
    /// A persistent pool.
    Pool(PoolId),
}

/// Which sites execute software dynamic checks in [`Mode::Sw`] — the
/// ablation axis for the compiler pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckPolicy {
    /// Use the dataflow inference result per site (the paper's compiler).
    #[default]
    Inferred,
    /// No inference at all: every site checks (a naive compiler).
    AlwaysCheck,
    /// A hypothetical perfect oracle: no site checks.
    Oracle,
}

// Cost-model constants (micro-ops charged for software actions). These are
// deliberately coarse; the timing model turns events into cycles.
const ALLOC_UOPS: u32 = 24;
const ALLOC_TOUCH_WORDS: u64 = 3;
const SW_CHECK_UOPS: u32 = 2;
const SW_CONV_UOPS: u32 = 8;
const PA_CALL_UOPS: u32 = 4;

/// Branch-kind discriminators for [`Site::pc`].
pub mod branch_kind {
    /// Inline `determineY` check on an operand.
    pub const DETERMINE_Y: u32 = 0;
    /// Second operand's `determineY` in binary operations.
    pub const DETERMINE_Y2: u32 = 1;
    /// The `pointerAssignment` helper's determineX/determineY pair,
    /// cached as one unit by the site check cache.
    pub const PA_PAIR: u32 = 2;
    /// Data-structure intrinsic branch (key compare, loop exit).
    pub const PROGRAM: u32 = 8;
}

/// One entry of the per-site monomorphic check cache: the last observed
/// check outcome at a `(site, kind)` pair, stamped with the translation
/// epoch it was observed under.
#[derive(Clone, Copy, Debug)]
struct SiteCheckEntry {
    outcome: u8,
    epoch: u64,
}

/// The instrumented execution environment.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{site, ExecEnv, Mode, Placement};
///
/// let mut space = AddressSpace::new(7);
/// let pool = space.create_pool("nodes", 1 << 20)?;
/// let mut env = ExecEnv::builder(space).mode(Mode::Hw).pool(pool).build();
///
/// let node = env.alloc(site!("ex.alloc", AllocResult), 32)?;
/// env.write_u64(site!("ex.init", StackLocal), node, 0, 99)?;
/// assert_eq!(env.read_u64(site!("ex.read", StackLocal), node, 0)?, 99);
/// env.free(site!("ex.free", StackLocal), node)?;
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct ExecEnv<S: TimingSink = NullSink> {
    space: AddressSpace,
    mode: Mode,
    pool: Option<PoolId>,
    stats: PtrStats,
    sink: S,
    check_policy: CheckPolicy,
    conversion_reuse: bool,
    /// Whether the per-site monomorphic check cache is active (SW mode;
    /// default on — a *modelled* optimization that changes the emitted
    /// event stream, unlike the translation caches; disable for the
    /// cache-off ablation arm).
    site_check_cache: bool,
    /// `(site id, kind)` → last observed outcome, epoch-stamped.
    site_cache: std::collections::HashMap<(usize, u32), SiteCheckEntry>,
    frame_cursor: u64,
    /// Which per-pool undo-log directory slot this environment's
    /// transactions use — each worker thread of a shared pool gets its own.
    txn_slot: u64,
    txn: Option<utpr_heap::UndoLog>,
    /// Frees issued inside the open transaction, applied at commit: the
    /// allocator would otherwise clobber the freed bytes and break undo
    /// rollback (the same reason PMDK defers frees to transaction end).
    txn_frees: Vec<UPtr>,
}

/// Builder for [`ExecEnv`] — the one construction path that names every
/// knob: mode, default pool, event sink, check policy, conversion reuse,
/// and the fault-injection gate.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{CountingSink, ExecEnv, Mode};
///
/// let mut space = AddressSpace::new(7);
/// let pool = space.create_pool("nodes", 1 << 20)?;
/// let env = ExecEnv::builder(space)
///     .mode(Mode::Hw)
///     .pool(pool)
///     .sink(CountingSink::new())
///     .build();
/// assert_eq!(env.mode(), Mode::Hw);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct ExecEnvBuilder<S: TimingSink = NullSink> {
    space: AddressSpace,
    mode: Mode,
    pool: Option<PoolId>,
    sink: S,
    check_policy: CheckPolicy,
    conversion_reuse: bool,
    site_check_cache: bool,
    translation_cache: bool,
    txn_slot: u64,
    faults: Option<FaultPlan>,
}

impl<S: TimingSink> ExecEnvBuilder<S> {
    /// Sets the simulated build variant (default: [`Mode::Volatile`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the default pool placement for [`ExecEnv::alloc`].
    pub fn pool(mut self, pool: PoolId) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Replaces the event sink (default: [`NullSink`]).
    pub fn sink<T: TimingSink>(self, sink: T) -> ExecEnvBuilder<T> {
        ExecEnvBuilder {
            space: self.space,
            mode: self.mode,
            pool: self.pool,
            sink,
            check_policy: self.check_policy,
            conversion_reuse: self.conversion_reuse,
            site_check_cache: self.site_check_cache,
            translation_cache: self.translation_cache,
            txn_slot: self.txn_slot,
            faults: self.faults,
        }
    }

    /// Sets which sites execute software checks (SW-mode ablation).
    pub fn check_policy(mut self, policy: CheckPolicy) -> Self {
        self.check_policy = policy;
        self
    }

    /// Enables/disables conversion reuse for loaded pointers (Fig. 12
    /// ablation; default: enabled).
    pub fn conversion_reuse(mut self, on: bool) -> Self {
        self.conversion_reuse = on;
        self
    }

    /// Enables the per-site monomorphic check cache (SW mode; default:
    /// on). A *modelled* optimization: an elided check skips the
    /// `determineX/Y` events and charges one guard micro-op instead, with
    /// [`PtrStats::checks_elided`] counting the elisions — so enabling it
    /// changes the event stream by design, unlike the translation caches.
    pub fn site_check_cache(mut self, on: bool) -> Self {
        self.site_check_cache = on;
        self
    }

    /// Enables/disables the address space's software translation
    /// lookasides (default: enabled). Turning them off is the cache-off
    /// baseline the equivalence properties compare against; results are
    /// bit-identical either way.
    pub fn translation_cache(mut self, on: bool) -> Self {
        self.translation_cache = on;
        self
    }

    /// Selects which per-pool undo-log directory slot transactions use
    /// (default: 0, the plain single-log format). Worker threads sharing
    /// one pool each build their environment with a distinct slot so their
    /// transactions log independently; see
    /// [`utpr_heap::UndoLog::ensure_slot`].
    pub fn txn_slot(mut self, slot: u64) -> Self {
        self.txn_slot = slot;
        self
    }

    /// Installs a fault-injection gate on the address space at build time
    /// (counting or armed — see [`FaultPlan`]).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Finishes construction.
    pub fn build(self) -> ExecEnv<S> {
        let mut space = self.space;
        if let Some(f) = self.faults {
            space.set_faults(f);
        }
        if space.translation_cache_enabled() != self.translation_cache {
            space.set_translation_cache(self.translation_cache);
        }
        ExecEnv {
            space,
            mode: self.mode,
            pool: self.pool,
            stats: PtrStats::new(),
            sink: self.sink,
            check_policy: self.check_policy,
            conversion_reuse: self.conversion_reuse,
            site_check_cache: self.site_check_cache,
            site_cache: std::collections::HashMap::new(),
            frame_cursor: 0,
            txn_slot: self.txn_slot,
            txn: None,
            txn_frees: Vec::new(),
        }
    }
}

impl ExecEnv<NullSink> {
    /// Starts building an environment over `space`; see [`ExecEnvBuilder`].
    pub fn builder(space: AddressSpace) -> ExecEnvBuilder<NullSink> {
        ExecEnvBuilder {
            space,
            mode: Mode::Volatile,
            pool: None,
            sink: NullSink,
            check_policy: CheckPolicy::Inferred,
            conversion_reuse: true,
            site_check_cache: true,
            translation_cache: true,
            txn_slot: 0,
            faults: None,
        }
    }
}

impl<S: TimingSink> ExecEnv<S> {
    /// Creates an environment. `pool` is the default placement for
    /// [`ExecEnv::alloc`]; it is ignored in [`Mode::Volatile`], which always
    /// allocates volatile memory.
    ///
    /// Thin wrapper over [`ExecEnv::builder`], kept for positional-call
    /// compatibility; prefer the builder, which names every knob.
    pub fn new(space: AddressSpace, mode: Mode, pool: Option<PoolId>, sink: S) -> Self {
        let mut b = ExecEnv::builder(space).mode(mode).sink(sink);
        if let Some(p) = pool {
            b = b.pool(p);
        }
        b.build()
    }

    /// Overrides which sites execute software checks (SW-mode ablation).
    pub fn set_check_policy(&mut self, policy: CheckPolicy) {
        self.check_policy = policy;
    }

    /// The active check policy.
    pub fn check_policy(&self) -> CheckPolicy {
        self.check_policy
    }

    /// Enables/disables the per-site monomorphic check cache at runtime
    /// (see [`ExecEnvBuilder::site_check_cache`]). Disabling drops every
    /// cached outcome.
    pub fn set_site_check_cache(&mut self, on: bool) {
        self.site_check_cache = on;
        if !on {
            self.site_cache.clear();
        }
    }

    /// Whether the per-site monomorphic check cache is active.
    pub fn site_check_cache_enabled(&self) -> bool {
        self.site_check_cache
    }

    /// Enables/disables the conversion-reuse behaviour of loaded pointers
    /// (paper Fig. 12 ablation). With reuse off, loaded relative pointers
    /// stay relative in locals, so every later access through them
    /// re-translates — the Explicit model's behaviour grafted onto HW.
    pub fn set_conversion_reuse(&mut self, on: bool) {
        self.conversion_reuse = on;
    }

    /// The simulated build variant.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configured default pool, if any.
    pub fn pool(&self) -> Option<PoolId> {
        self.pool
    }

    /// The undo-log slot this environment's transactions use.
    pub fn txn_slot(&self) -> u64 {
        self.txn_slot
    }

    /// Immutable access to the address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable access to the address space (pool management, restarts).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PtrStats {
        self.stats
    }

    /// Resets the counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = PtrStats::new();
    }

    /// The event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Decomposes the environment.
    pub fn into_parts(self) -> (AddressSpace, PtrStats, S) {
        (self.space, self.stats, self.sink)
    }

    /// Default placement used by [`ExecEnv::alloc`].
    pub fn default_placement(&self) -> Placement {
        match (self.mode, self.pool) {
            (Mode::Volatile, _) | (_, None) => Placement::Dram,
            (_, Some(p)) => Placement::Pool(p),
        }
    }

    #[inline]
    fn emit(&mut self, ev: MemEvent) {
        self.sink.event(ev);
    }

    // ---- conversions with mode-appropriate narration -----------------------

    /// Converts a relative location to its virtual address, charging the
    /// mode-appropriate machinery.
    #[inline]
    fn convert_ra2va(&mut self, loc: RelLoc) -> Result<VirtAddr> {
        let va = self.space.ra2va(loc)?;
        self.stats.rel_to_abs += 1;
        match self.mode {
            Mode::Hw => self.emit(MemEvent::PolbAccess { pool: loc.pool.raw() }),
            Mode::Sw => {
                self.emit(MemEvent::Exec(SW_CONV_UOPS));
                self.emit(MemEvent::SwRa2Va { pool: loc.pool.raw() });
            }
            Mode::Explicit => {
                // The explicit model's accessor (a D_RO/direct-style API)
                // spends extra instructions computing base+offset on every
                // access, on the load's critical path.
                self.stats.explicit_translations += 1;
                self.emit(MemEvent::Exec(2));
                self.emit(MemEvent::PolbAccess { pool: loc.pool.raw() });
            }
            Mode::Volatile => {}
        }
        Ok(va)
    }

    /// Converts a persistent-half virtual address to relative format.
    #[inline]
    fn convert_va2ra(&mut self, va: VirtAddr) -> Result<RelLoc> {
        let loc = self.space.va2ra(va)?;
        self.stats.abs_to_rel += 1;
        match self.mode {
            Mode::Hw => self.emit(MemEvent::ValbAccess { va: va.raw() }),
            Mode::Sw => {
                self.emit(MemEvent::Exec(SW_CONV_UOPS));
                self.emit(MemEvent::SwVa2Ra { va: va.raw() });
            }
            _ => {}
        }
        Ok(loc)
    }

    /// Whether a site keeps its dynamic check under the active policy.
    #[inline]
    fn site_unresolved(&self, site: &'static Site) -> bool {
        match self.check_policy {
            CheckPolicy::Inferred => !site.is_statically_resolved(),
            CheckPolicy::AlwaysCheck => true,
            CheckPolicy::Oracle => false,
        }
    }

    /// Consults the per-site monomorphic check cache: when the `(site,
    /// kind)` pair last observed exactly `outcome` under the current
    /// translation epoch, the check is elided — `n` elisions are counted
    /// and one guard micro-op is charged (the inline cache's epoch/format
    /// compare). Otherwise the entry is (re)armed with `outcome` and the
    /// caller must execute the full check. The outcome byte keeps
    /// polymorphic sites executing every time, and the epoch stamp forces
    /// re-validation after any attach/detach/quarantine churn.
    fn try_elide(&mut self, site: &'static Site, kind: u32, outcome: u8, n: u64) -> bool {
        let epoch = self.space.translation_epoch();
        let key = (site.id(), kind);
        if let Some(e) = self.site_cache.get(&key) {
            if e.epoch == epoch && e.outcome == outcome {
                self.stats.checks_elided += n;
                self.emit(MemEvent::Exec(1));
                return true;
            }
        }
        self.site_cache.insert(key, SiteCheckEntry { outcome, epoch });
        false
    }

    /// Executes a software dynamic check (SW mode, unresolved sites only).
    /// The check is a call into the shared out-of-line `determineY` helper
    /// — the pass runs after inlining (paper §VI), so every unresolved site
    /// funnels its outcome stream through the helper's one branch.
    #[inline]
    fn sw_check(&mut self, site: &'static Site, kind: u32, taken: bool) {
        if self.mode == Mode::Sw && self.site_unresolved(site) {
            if self.site_check_cache && self.try_elide(site, kind, u8::from(taken), 1) {
                return;
            }
            self.stats.dynamic_checks += 1;
            self.stats.check_branches += 1;
            self.emit(MemEvent::Exec(SW_CHECK_UOPS));
            self.emit(MemEvent::Branch { pc: PC_DETERMINE_Y_HELPER, taken });
        }
    }

    /// Resolves a pointer (+ byte offset) to the virtual address an access
    /// would touch, emitting translation events as the mode requires.
    #[inline]
    fn resolve(&mut self, site: &'static Site, base: UPtr, off: i64) -> Result<(VirtAddr, bool)> {
        let p = base.offset(off);
        self.sw_check(site, branch_kind::DETERMINE_Y, p.format() == PtrFormat::Relative);
        match p.kind() {
            crate::ptr::PtrKind::Null => Err(HeapError::Unmapped(VirtAddr::new(0))),
            crate::ptr::PtrKind::Va(va) => Ok((va, false)),
            crate::ptr::PtrKind::Rel(loc) => {
                let va = self.convert_ra2va(loc)?;
                Ok((va, true))
            }
        }
    }

    // ---- data access (load / storeD) ----------------------------------------

    /// Loads the `u64` at `base + off`.
    ///
    /// # Errors
    ///
    /// Faults on null, unmapped addresses, and detached pools.
    #[inline]
    pub fn read_u64(&mut self, site: &'static Site, base: UPtr, off: i64) -> Result<u64> {
        let (va, rel_base) = self.resolve(site, base, off)?;
        self.stats.loads += 1;
        self.emit(MemEvent::Load { va: va.raw(), rel_base });
        self.space.read_u64(va)
    }

    /// Stores a `u64` at `base + off` (`storeD`).
    ///
    /// # Errors
    ///
    /// Faults on null, unmapped addresses, and detached pools.
    #[inline]
    pub fn write_u64(&mut self, site: &'static Site, base: UPtr, off: i64, v: u64) -> Result<()> {
        let (va, rel_base) = self.resolve(site, base, off)?;
        self.txn_log(va)?;
        self.stats.stores += 1;
        self.emit(MemEvent::Store { va: va.raw(), rel_base });
        self.space.write_u64(va, v)
    }

    /// Atomic compare-and-swap on the `u64` at `base + off`. Returns
    /// `(swapped, old value)`: the CAS published `new` iff the word still
    /// held `expected`. Charged as one load plus one store (LL/SC-style
    /// accounting); the swap itself is atomic against every concurrent
    /// staged write on a shared pool ([`AddressSpace::cas_u64`]). The
    /// lock-free index variants build their mark/link protocol on this.
    ///
    /// # Errors
    ///
    /// Faults on null, unmapped addresses, and detached pools.
    #[inline]
    pub fn cas_u64(
        &mut self,
        site: &'static Site,
        base: UPtr,
        off: i64,
        expected: u64,
        new: u64,
    ) -> Result<(bool, u64)> {
        let (va, rel_base) = self.resolve(site, base, off)?;
        self.txn_log(va)?;
        self.stats.loads += 1;
        self.stats.stores += 1;
        self.emit(MemEvent::Load { va: va.raw(), rel_base });
        self.emit(MemEvent::Store { va: va.raw(), rel_base });
        Ok(self.space.cas_u64(va, expected, new)?)
    }

    /// Loads the `f64` at `base + off` (bit-pattern stored as a word).
    ///
    /// # Errors
    ///
    /// Same as [`ExecEnv::read_u64`].
    #[inline]
    pub fn read_f64(&mut self, site: &'static Site, base: UPtr, off: i64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(site, base, off)?))
    }

    /// Stores an `f64` at `base + off`.
    ///
    /// # Errors
    ///
    /// Same as [`ExecEnv::write_u64`].
    #[inline]
    pub fn write_f64(&mut self, site: &'static Site, base: UPtr, off: i64, v: f64) -> Result<()> {
        self.write_u64(site, base, off, v.to_bits())
    }

    // ---- pointer access (pointer load / storeP) -------------------------------

    /// Loads the pointer stored at `base + off` and binds it to a local,
    /// which in the user-transparent modes converts a relative value to its
    /// virtual address once (the conversion-reuse effect of paper Fig. 12).
    /// In [`Mode::Explicit`] the raw object id is returned and every later
    /// access through it will translate again.
    ///
    /// # Errors
    ///
    /// Faults on null/unmapped bases and detached pools.
    #[inline]
    pub fn read_ptr(&mut self, site: &'static Site, base: UPtr, off: i64) -> Result<UPtr> {
        let (va, rel_base) = self.resolve(site, base, off)?;
        self.stats.ptr_loads += 1;
        self.emit(MemEvent::Load { va: va.raw(), rel_base });
        let raw = UPtr::from_raw(self.space.read_u64(va)?);
        match self.mode {
            Mode::Volatile | Mode::Explicit => Ok(raw),
            Mode::Sw | Mode::Hw => {
                self.sw_check(
                    site,
                    branch_kind::DETERMINE_Y2,
                    raw.format() == PtrFormat::Relative,
                );
                if !self.conversion_reuse {
                    return Ok(raw);
                }
                match raw.as_rel() {
                    Some(loc) => Ok(UPtr::from_va(self.convert_ra2va(loc)?)),
                    None => Ok(raw),
                }
            }
        }
    }

    /// Stores pointer `value` at `base + off` — the `storeP` instruction /
    /// `pointerAssignment` helper. The stored format follows the paper's
    /// Fig. 3: persistent destinations store relocation-stable relative
    /// addresses, volatile destinations store virtual addresses.
    ///
    /// # Errors
    ///
    /// Faults on null/unmapped destinations and detached pools.
    pub fn write_ptr(
        &mut self,
        site: &'static Site,
        base: UPtr,
        off: i64,
        value: UPtr,
    ) -> Result<()> {
        let (dva, rd_was_rel) = self.resolve(site, base, off)?;
        let dest_nvm = dva.is_nvm_region();

        // SW: unresolved sites call the shared pointerAssignment helper,
        // whose two internal branches see the interleaved outcome stream of
        // every call site (this is where Fig. 13's mispredictions live).
        let unresolved_sw = self.mode == Mode::Sw && self.site_unresolved(site);
        if unresolved_sw {
            // The helper's two outcomes are cached as one unit: a site that
            // always links the same formats skips the whole call.
            let value_rel = value.format() == PtrFormat::Relative;
            let outcome = u8::from(dest_nvm) | (u8::from(value_rel) << 1);
            if !(self.site_check_cache && self.try_elide(site, branch_kind::PA_PAIR, outcome, 2)) {
                self.stats.dynamic_checks += 2;
                self.stats.check_branches += 2;
                self.emit(MemEvent::Exec(PA_CALL_UOPS));
                self.emit(MemEvent::Branch { pc: PC_PA_DETERMINE_X, taken: dest_nvm });
                self.emit(MemEvent::Branch { pc: PC_PA_DETERMINE_Y, taken: value_rel });
            }
        }

        let mut rs_va2ra = false;
        let mut rs_ra2va = false;
        let stored = if value.is_null() {
            value
        } else if dest_nvm {
            match value.kind() {
                crate::ptr::PtrKind::Va(v) if v.is_nvm_region() => {
                    rs_va2ra = true;
                    UPtr::from_rel(self.convert_va2ra(v)?)
                }
                _ => value,
            }
        } else {
            match value.as_rel() {
                Some(loc) => {
                    rs_ra2va = true;
                    UPtr::from_va(self.convert_ra2va(loc)?)
                }
                None => value,
            }
        };

        match self.mode {
            Mode::Hw => {
                self.stats.storep += 1;
                self.emit(MemEvent::StoreP {
                    va: dva.raw(),
                    rs_va2ra,
                    rs_ra2va,
                    rd_ra2va: rd_was_rel,
                });
            }
            Mode::Sw => {
                self.stats.storep += 1;
                self.emit(MemEvent::Store { va: dva.raw(), rel_base: false });
            }
            Mode::Volatile | Mode::Explicit => {
                self.stats.stores += 1;
                self.emit(MemEvent::Store { va: dva.raw(), rel_base: rd_was_rel });
            }
        }
        self.txn_log(dva)?;
        self.space.write_u64(dva, stored.raw())
    }

    // ---- comparisons ----------------------------------------------------------

    /// `a == b` over pointers, with the mode's check/conversion costs.
    ///
    /// # Errors
    ///
    /// Faults when a needed conversion hits a detached pool.
    #[inline]
    pub fn ptr_eq(&mut self, site: &'static Site, a: UPtr, b: UPtr) -> Result<bool> {
        self.sw_check(site, branch_kind::DETERMINE_Y, a.format() == PtrFormat::Relative);
        self.sw_check(site, branch_kind::DETERMINE_Y2, b.format() == PtrFormat::Relative);
        self.emit(MemEvent::Exec(1));
        if a.is_null() || b.is_null() {
            return Ok(a.raw() == b.raw());
        }
        if self.mode == Mode::Explicit {
            // Object ids compare directly.
            return Ok(a.raw() == b.raw());
        }
        let av = self.normalize(a)?;
        let bv = self.normalize(b)?;
        Ok(av == bv)
    }

    /// `p == NULL` — the null test every pointer-chasing loop performs. In
    /// SW mode an unresolved site still executes its `determineY` check
    /// first (the compiler cannot know `p`'s format even when comparing to
    /// null), and the *outcome* branch itself is program-intrinsic.
    #[inline]
    pub fn ptr_is_null(&mut self, site: &'static Site, p: UPtr) -> bool {
        self.sw_check(site, branch_kind::DETERMINE_Y, p.format() == PtrFormat::Relative);
        self.emit(MemEvent::Exec(1));
        self.emit(MemEvent::Branch { pc: site.pc(branch_kind::PROGRAM), taken: p.is_null() });
        p.is_null()
    }

    #[inline]
    fn normalize(&mut self, p: UPtr) -> Result<u64> {
        match p.as_rel() {
            Some(loc) => Ok(self.convert_ra2va(loc)?.raw()),
            None => Ok(p.raw()),
        }
    }

    // ---- allocation -------------------------------------------------------------

    fn charge_alloc(&mut self, region_probe: VirtAddr) {
        self.emit(MemEvent::Exec(ALLOC_UOPS));
        for i in 0..ALLOC_TOUCH_WORDS {
            self.emit(MemEvent::Load { va: region_probe.raw() + i * 8, rel_base: false });
            self.emit(MemEvent::Store { va: region_probe.raw() + i * 8, rel_base: false });
        }
    }

    /// Allocates `size` bytes at the default placement and returns a pointer
    /// bound to a local (virtual format in UTPR modes, object id in
    /// Explicit).
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn alloc(&mut self, site: &'static Site, size: u64) -> Result<UPtr> {
        self.alloc_in(site, self.default_placement(), size)
    }

    /// Allocates at an explicit placement.
    ///
    /// In [`Mode::Volatile`] pool placements are redirected to DRAM: the
    /// volatile build of a program has no pools at all.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    pub fn alloc_in(&mut self, site: &'static Site, place: Placement, size: u64) -> Result<UPtr> {
        // Allocation-result sites are always statically resolved, so no
        // dynamic check is charged; the site is kept for API symmetry.
        debug_assert!(site.is_statically_resolved() || !site.name().is_empty());
        self.stats.allocs += 1;
        match (self.mode, place) {
            (Mode::Volatile, _) | (_, Placement::Dram) => {
                let va = self.space.malloc(size)?;
                self.charge_alloc(VirtAddr::new(utpr_heap::addr::DRAM_BASE));
                Ok(UPtr::from_va(va))
            }
            (_, Placement::Pool(pool)) => {
                let loc = self.space.pmalloc(pool, size)?;
                let base = self.space.attachment(pool).map(|a| a.base).unwrap_or(VirtAddr::new(
                    utpr_heap::addr::NVM_BASE,
                ));
                self.charge_alloc(base);
                match self.mode {
                    Mode::Explicit => Ok(UPtr::from_rel(loc)),
                    _ => {
                        // pmalloc returns a relative address by definition;
                        // binding it to a local converts it (site resolved:
                        // no dynamic check, just the conversion).
                        Ok(UPtr::from_va(self.convert_ra2va(loc)?))
                    }
                }
            }
        }
    }

    /// Frees an allocation in whichever space it lives. Freeing null is a
    /// no-op, as in C.
    ///
    /// # Errors
    ///
    /// Propagates allocator and translation failures.
    pub fn free(&mut self, site: &'static Site, p: UPtr) -> Result<()> {
        if p.is_null() {
            return Ok(());
        }
        self.stats.frees += 1;
        self.sw_check(site, branch_kind::DETERMINE_Y, p.format() == PtrFormat::Relative);
        self.emit(MemEvent::Exec(ALLOC_UOPS / 2));
        if self.txn.is_some() && p.space() == crate::ptr::PtrSpace::Nvm {
            // Defer to commit so rollback can resurrect the object intact.
            self.txn_frees.push(p);
            return Ok(());
        }
        self.free_now(p)
    }

    fn free_now(&mut self, p: UPtr) -> Result<()> {
        match p.kind() {
            crate::ptr::PtrKind::Null => Ok(()),
            crate::ptr::PtrKind::Va(va) => {
                if va.is_nvm_region() {
                    let loc = self.convert_va2ra(va)?;
                    self.space.pfree(loc)
                } else {
                    self.space.mfree(va)
                }
            }
            crate::ptr::PtrKind::Rel(loc) => self.space.pfree(loc),
        }
    }

    // ---- persistent transactions -----------------------------------------------

    /// Opens a persistent transaction on the default pool (paper §VI: the
    /// application encloses library calls in a transaction; logging is then
    /// inserted transparently — here, by [`ExecEnv::write_u64`] and
    /// [`ExecEnv::write_ptr`] undo-logging every NVM word they overwrite).
    ///
    /// # Errors
    ///
    /// Faults when no pool is configured or a transaction is already open.
    pub fn txn_begin(&mut self) -> Result<()> {
        let pool = match self.default_placement() {
            Placement::Pool(p) => p,
            Placement::Dram => return Err(HeapError::CorruptRegion("no pool for transaction")),
        };
        let log = utpr_heap::UndoLog::ensure_slot(&mut self.space, pool, 1 << 16, self.txn_slot)?;
        log.begin(&mut self.space)?;
        self.emit(MemEvent::Exec(8));
        self.txn = Some(log);
        // A fresh transaction starts with no deferred work. (After a
        // simulated crash the env object outlives the "process"; any
        // deferred frees from the torn transaction are void — the crash
        // rolled their unlinking back.)
        self.txn_frees.clear();
        Ok(())
    }

    /// Commits the open transaction.
    ///
    /// # Errors
    ///
    /// Faults when no transaction is open.
    pub fn txn_commit(&mut self) -> Result<()> {
        let log = self.txn.take().ok_or(HeapError::CorruptRegion("no open transaction"))?;
        log.commit(&mut self.space)?;
        self.emit(MemEvent::Exec(4));
        // Apply the frees deferred during the transaction.
        let deferred = std::mem::take(&mut self.txn_frees);
        for p in deferred {
            self.free_now(p)?;
        }
        Ok(())
    }

    /// Aborts the open transaction, rolling back every logged write.
    ///
    /// # Errors
    ///
    /// Faults when no transaction is open.
    pub fn txn_abort(&mut self) -> Result<()> {
        let log = self.txn.take().ok_or(HeapError::CorruptRegion("no open transaction"))?;
        log.abort(&mut self.space)?;
        self.emit(MemEvent::Exec(16));
        // Rolled back: the "freed" objects are back in the structure, so
        // the deferred frees are simply dropped.
        self.txn_frees.clear();
        Ok(())
    }

    /// Runs `body` inside a persistent transaction: [`ExecEnv::txn_begin`],
    /// the closure, then [`ExecEnv::txn_commit`] on `Ok` — or
    /// [`ExecEnv::txn_abort`] on `Err`, so the armed log can never leak
    /// past the closure. Prefer this over the raw begin/commit pair.
    ///
    /// An injected crash ([`HeapError::CrashInjected`]) skips the abort —
    /// a real crash kills the process before any rollback could run — and
    /// instead drops the dead environment's volatile transaction state;
    /// the torn log in the pool is [`utpr_heap::UndoLog::recover`]'s job.
    ///
    /// # Errors
    ///
    /// Propagates begin/commit failures and the closure's error.
    pub fn with_txn<T, F>(&mut self, body: F) -> Result<T>
    where
        F: FnOnce(&mut Self) -> Result<T>,
    {
        self.txn_begin()?;
        match body(self) {
            Ok(value) => {
                self.txn_commit()?;
                Ok(value)
            }
            Err(e) => {
                if matches!(e, HeapError::CrashInjected { .. }) {
                    self.txn = None;
                    self.txn_frees.clear();
                    // The worker is dead: abandon (leak) its arena leases
                    // rather than letting a later `bind_arena_slab` hand
                    // the remainder — whose carve state may hold unflushed
                    // line bytes — back to the central free list for
                    // re-carving. Recovery reclaims nothing here, exactly
                    // like thread-cached blocks at a real power loss.
                    self.space.abandon_arena_leases();
                } else {
                    self.txn_abort()?;
                }
                Err(e)
            }
        }
    }

    /// True while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Undo-logs the NVM word at `dva` when a transaction is open; charges
    /// the log-append traffic (one load of the old value, two log stores).
    fn txn_log(&mut self, dva: VirtAddr) -> Result<()> {
        let Some(log) = self.txn else { return Ok(()) };
        if !dva.is_nvm_region() {
            return Ok(());
        }
        let loc = self.space.va2ra(dva)?;
        if loc.pool != log.pool() {
            return Ok(()); // other pools are outside this transaction
        }
        log.log_word(&mut self.space, loc)?;
        let log_va = self
            .space
            .attachment(log.pool())
            .map(|a| a.base.raw() + log.base_offset())
            .unwrap_or(utpr_heap::addr::NVM_BASE);
        self.emit(MemEvent::Exec(4));
        self.emit(MemEvent::Load { va: dva.raw(), rel_base: false });
        self.emit(MemEvent::Store { va: log_va, rel_base: false });
        self.emit(MemEvent::Store { va: log_va + 8, rel_base: false });
        Ok(())
    }

    // ---- persistent roots ----------------------------------------------------

    /// Reads the default pool's root pointer (the durable entry point),
    /// converting it like any loaded pointer.
    ///
    /// # Errors
    ///
    /// Faults when no pool is configured or the root conversion fails.
    pub fn root(&mut self, site: &'static Site) -> Result<UPtr> {
        match self.default_placement() {
            Placement::Dram => {
                // Volatile build: the "root" is a DRAM global.
                let va = self.volatile_root_slot()?;
                self.stats.ptr_loads += 1;
                self.emit(MemEvent::Load { va: va.raw(), rel_base: false });
                Ok(UPtr::from_raw(self.space.read_u64(va)?))
            }
            Placement::Pool(pool) => {
                let base = self
                    .space
                    .attachment(pool)
                    .ok_or(HeapError::PoolDetached(pool))?
                    .base;
                self.stats.ptr_loads += 1;
                self.emit(MemEvent::Load { va: base.raw() + 0x28, rel_base: false });
                let raw = UPtr::from_raw(self.space.pool_root(pool)?);
                match self.mode {
                    Mode::Volatile | Mode::Explicit => Ok(raw),
                    _ => {
                        self.sw_check(
                            site,
                            branch_kind::DETERMINE_Y,
                            raw.format() == PtrFormat::Relative,
                        );
                        match raw.as_rel() {
                            Some(loc) => Ok(UPtr::from_va(self.convert_ra2va(loc)?)),
                            None => Ok(raw),
                        }
                    }
                }
            }
        }
    }

    /// Stores the default pool's root pointer, in relocation-stable form for
    /// pool placements.
    ///
    /// # Errors
    ///
    /// Faults when no pool is configured or conversion fails.
    pub fn set_root(&mut self, site: &'static Site, p: UPtr) -> Result<()> {
        match self.default_placement() {
            Placement::Dram => {
                let va = self.volatile_root_slot()?;
                self.stats.stores += 1;
                self.emit(MemEvent::Store { va: va.raw(), rel_base: false });
                self.space.write_u64(va, p.raw())
            }
            Placement::Pool(pool) => {
                let base = self
                    .space
                    .attachment(pool)
                    .ok_or(HeapError::PoolDetached(pool))?
                    .base;
                let stored = if p.is_null() {
                    p
                } else {
                    match p.kind() {
                        crate::ptr::PtrKind::Va(v) if v.is_nvm_region() => {
                            UPtr::from_rel(self.convert_va2ra(v)?)
                        }
                        _ => p,
                    }
                };
                match self.mode {
                    Mode::Hw => {
                        self.stats.storep += 1;
                        self.emit(MemEvent::StoreP {
                            va: base.raw() + 0x28,
                            rs_va2ra: stored != p,
                            rs_ra2va: false,
                            rd_ra2va: false,
                        });
                    }
                    _ => {
                        self.sw_check(site, branch_kind::DETERMINE_Y, false);
                        self.stats.stores += 1;
                        self.emit(MemEvent::Store { va: base.raw() + 0x28, rel_base: false });
                    }
                }
                self.space.set_pool_root(pool, stored.raw())
            }
        }
    }

    fn volatile_root_slot(&mut self) -> Result<VirtAddr> {
        // A fixed DRAM word acting as the volatile build's global root.
        Ok(VirtAddr::new(utpr_heap::addr::DRAM_BASE + 0x30))
    }

    // ---- program-intrinsic costs ------------------------------------------------

    /// Records a data-structure-intrinsic conditional branch (key compare,
    /// loop exit). Present in every mode; gives Fig. 13 its baseline.
    #[inline]
    pub fn branch(&mut self, site: &'static Site, taken: bool) {
        self.emit(MemEvent::Branch { pc: site.pc(branch_kind::PROGRAM), taken });
    }

    /// Charges `n` plain ALU micro-ops of program work.
    #[inline]
    pub fn charge_exec(&mut self, n: u32) {
        self.emit(MemEvent::Exec(n));
    }

    /// Charges application frame traffic: stack loads/stores in a small hot
    /// DRAM region plus plain micro-ops. Models the per-operation work of
    /// the surrounding program (argument marshalling, frames, client code)
    /// that a whole-program trace would contain — identical in every mode.
    pub fn frame_traffic(&mut self, loads: u32, stores: u32, uops: u32) {
        const STACK_BASE: u64 = 0x7f00_0000;
        self.emit(MemEvent::Exec(uops));
        for i in 0..loads {
            let va = STACK_BASE + (self.frame_cursor + u64::from(i) * 8) % 4096;
            self.emit(MemEvent::Load { va, rel_base: false });
        }
        for i in 0..stores {
            let va = STACK_BASE + (self.frame_cursor + u64::from(i) * 8 + 2048) % 4096;
            self.emit(MemEvent::Store { va, rel_base: false });
        }
        self.frame_cursor = (self.frame_cursor + 40) % 4096;
    }

    // ---- uninstrumented inspection ------------------------------------------------

    /// Reads the raw stored word at `base + off` without emitting events or
    /// conversions — for tests that verify the *stored format* of pointers
    /// (the paper's soundness criterion that NVM-resident pointers hold
    /// correct relative addresses).
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses.
    /// The read goes through the uncached translation/read APIs, so the
    /// oracle can never observe — or perturb — software-lookaside state.
    pub fn peek_raw(&self, base: UPtr, off: i64) -> Result<u64> {
        let p = base.offset(off);
        let va = match p.kind() {
            crate::ptr::PtrKind::Null => return Err(HeapError::Unmapped(VirtAddr::new(0))),
            crate::ptr::PtrKind::Va(va) => va,
            crate::ptr::PtrKind::Rel(loc) => self.space.ra2va_uncached(loc)?,
        };
        self.space.read_u64_uncached(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CountingSink;
    use crate::ptr::PtrSpace;
    use crate::site;

    fn env(mode: Mode) -> ExecEnv<CountingSink> {
        let mut space = AddressSpace::new(23);
        let pool = space.create_pool("t", 1 << 20).unwrap();
        ExecEnv::builder(space).mode(mode).pool(pool).sink(CountingSink::new()).build()
    }

    #[test]
    fn builder_defaults_and_knobs() {
        let space = AddressSpace::new(3);
        let e = ExecEnv::builder(space).build();
        assert_eq!(e.mode(), Mode::Volatile);
        assert_eq!(e.check_policy(), CheckPolicy::Inferred);
        assert_eq!(e.default_placement(), Placement::Dram);

        let mut space = AddressSpace::new(3);
        let pool = space.create_pool("b", 1 << 20).unwrap();
        let e = ExecEnv::builder(space)
            .mode(Mode::Sw)
            .pool(pool)
            .check_policy(CheckPolicy::AlwaysCheck)
            .conversion_reuse(false)
            .faults(utpr_heap::FaultPlan::counting())
            .build();
        assert_eq!(e.mode(), Mode::Sw);
        assert_eq!(e.check_policy(), CheckPolicy::AlwaysCheck);
        assert_eq!(e.default_placement(), Placement::Pool(pool));
        assert!(e.space().faults().is_enabled());
    }

    #[test]
    fn new_is_a_thin_builder_wrapper() {
        let mut space = AddressSpace::new(23);
        let pool = space.create_pool("t", 1 << 20).unwrap();
        let e = ExecEnv::new(space, Mode::Hw, Some(pool), CountingSink::new());
        assert_eq!(e.mode(), Mode::Hw);
        assert_eq!(e.default_placement(), Placement::Pool(pool));
    }

    /// Like `env`, with room for the default-capacity undo log.
    fn txn_env(mode: Mode) -> ExecEnv<CountingSink> {
        let mut space = AddressSpace::new(23);
        let pool = space.create_pool("t", 1 << 22).unwrap();
        ExecEnv::builder(space).mode(mode).pool(pool).sink(CountingSink::new()).build()
    }

    #[test]
    fn with_txn_commits_on_ok_and_aborts_on_err() {
        let mut e = txn_env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        e.write_u64(site!("t.init", StackLocal), a, 0, 10).unwrap();

        let v = e
            .with_txn(|e| {
                e.write_u64(site!("t.w", StackLocal), a, 0, 20)?;
                Ok(20)
            })
            .unwrap();
        assert_eq!(v, 20);
        assert!(!e.in_txn());
        assert_eq!(e.read_u64(site!("t.r", StackLocal), a, 0).unwrap(), 20);

        let err: Result<()> = e.with_txn(|e| {
            e.write_u64(site!("t.w2", StackLocal), a, 0, 30)?;
            Err(HeapError::OutOfMemory { requested: 1 })
        });
        assert!(err.is_err());
        assert!(!e.in_txn());
        assert_eq!(
            e.read_u64(site!("t.r2", StackLocal), a, 0).unwrap(),
            20,
            "aborted txn rolled back"
        );
    }

    #[test]
    fn with_txn_crash_skips_abort_and_recovery_rolls_back() {
        let mut e = txn_env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        e.write_u64(site!("t.init", StackLocal), a, 0, 10).unwrap();
        let loc = e.space().va2ra(a.as_va().unwrap()).unwrap();
        // Materialize the log before arming so the crash strikes the
        // transaction body, not the one-time log allocation.
        e.txn_begin().unwrap();
        e.txn_commit().unwrap();

        e.space_mut().set_faults(utpr_heap::FaultPlan::crash_at(4));
        let err: Result<()> = e.with_txn(|e| e.write_u64(site!("t.w", StackLocal), a, 0, 99));
        assert!(matches!(err, Err(HeapError::CrashInjected { .. })));
        assert!(!e.in_txn(), "dead env dropped its volatile txn handle");

        let rec = utpr_heap::crash_and_recover(e.space_mut(), "t").unwrap();
        assert_eq!(rec.pool, loc.pool);
        let va = e.space().ra2va(loc).unwrap();
        assert_eq!(e.space().read_u64(va).unwrap(), 10, "torn write rolled back");
    }

    #[test]
    fn volatile_allocates_dram_and_is_conversion_free() {
        let mut e = env(Mode::Volatile);
        let p = e.alloc(site!("t.alloc", AllocResult), 64).unwrap();
        assert_eq!(p.space(), PtrSpace::Dram);
        e.write_u64(site!("t.w", StackLocal), p, 0, 5).unwrap();
        assert_eq!(e.read_u64(site!("t.r", StackLocal), p, 0).unwrap(), 5);
        assert_eq!(e.stats().conversions(), 0);
        assert_eq!(e.stats().dynamic_checks, 0);
    }

    #[test]
    fn hw_alloc_returns_converted_va() {
        let mut e = env(Mode::Hw);
        let p = e.alloc(site!("t.alloc", AllocResult), 64).unwrap();
        assert_eq!(p.format(), PtrFormat::Virtual);
        assert_eq!(p.space(), PtrSpace::Nvm);
        assert_eq!(e.stats().rel_to_abs, 1);
        assert_eq!(e.sink().polb_accesses, 1);
    }

    #[test]
    fn explicit_alloc_returns_object_id() {
        let mut e = env(Mode::Explicit);
        let p = e.alloc(site!("t.alloc", AllocResult), 64).unwrap();
        assert_eq!(p.format(), PtrFormat::Relative);
        // Every data access through it translates.
        e.write_u64(site!("t.w", Param), p, 0, 9).unwrap();
        e.read_u64(site!("t.r", Param), p, 0).unwrap();
        e.read_u64(site!("t.r2", Param), p, 8).unwrap();
        assert_eq!(e.stats().explicit_translations, 3);
        assert_eq!(e.sink().polb_accesses, 3);
    }

    #[test]
    fn hw_pointer_store_to_nvm_is_relative_in_memory() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let b = e.alloc(site!("t.b", AllocResult), 32).unwrap();
        e.write_ptr(site!("t.link", MemLoad), a, 0, b).unwrap();
        // In memory: relative format (bit 63 set).
        let raw = e.peek_raw(a, 0).unwrap();
        assert_ne!(raw & (1 << 63), 0, "NVM-resident pointer must be relative");
        // Loaded back: virtual format, same object.
        let back = e.read_ptr(site!("t.load", MemLoad), a, 0).unwrap();
        assert_eq!(back.format(), PtrFormat::Virtual);
        assert!(e.ptr_eq(site!("t.eq", Param), back, b).unwrap());
        // storeP was emitted with a va2ra translation.
        assert_eq!(e.sink().storep, 1);
        assert_eq!(e.sink().storep_va2ra, 1);
        assert_eq!(e.sink().valb_accesses, 1);
    }

    #[test]
    fn sw_mode_counts_checks_only_at_unresolved_sites() {
        let mut e = env(Mode::Sw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let before = e.stats().dynamic_checks;
        // Resolved site: no check.
        e.read_u64(site!("t.r.known", StackLocal), a, 0).unwrap();
        assert_eq!(e.stats().dynamic_checks, before);
        // Unresolved site: check executed.
        e.read_u64(site!("t.r.param", Param), a, 0).unwrap();
        assert_eq!(e.stats().dynamic_checks, before + 1);
        assert!(e.sink().branches > 0);
    }

    #[test]
    fn sw_pointer_assignment_calls_helper_with_two_checks() {
        let mut e = env(Mode::Sw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let b = e.alloc(site!("t.b", AllocResult), 32).unwrap();
        let before = e.stats().dynamic_checks;
        e.write_ptr(site!("t.link", MemLoad), a, 0, b).unwrap();
        // One determineY on the destination base (Fig. 9's `&tmp_p_1.next`)
        // plus the helper's determineX/determineY pair.
        assert_eq!(e.stats().dynamic_checks, before + 3);
        assert_eq!(e.stats().storep, 1);
        // Conversion happened in software.
        assert_eq!(e.sink().sw_va2ra, 1);
        assert_eq!(e.sink().valb_accesses, 0);
    }

    #[test]
    fn read_ptr_converts_once_then_plain_access() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let b = e.alloc(site!("t.b", AllocResult), 32).unwrap();
        e.write_ptr(site!("t.link", MemLoad), a, 0, b).unwrap();
        let polb0 = e.sink().polb_accesses;
        let p = e.read_ptr(site!("t.load", MemLoad), a, 0).unwrap();
        assert_eq!(e.sink().polb_accesses, polb0 + 1, "one conversion at load");
        // Field accesses through the converted pointer are translation-free.
        e.read_u64(site!("t.f1", MemLoad), p, 8).unwrap();
        e.read_u64(site!("t.f2", MemLoad), p, 16).unwrap();
        assert_eq!(e.sink().polb_accesses, polb0 + 1);
    }

    #[test]
    fn explicit_translates_every_field_access() {
        let mut e = env(Mode::Explicit);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let b = e.alloc(site!("t.b", AllocResult), 32).unwrap();
        e.write_ptr(site!("t.link", MemLoad), a, 0, b).unwrap();
        let p = e.read_ptr(site!("t.load", MemLoad), a, 0).unwrap();
        assert_eq!(p.format(), PtrFormat::Relative, "explicit keeps object ids");
        let t0 = e.stats().explicit_translations;
        e.read_u64(site!("t.f1", MemLoad), p, 8).unwrap();
        e.read_u64(site!("t.f2", MemLoad), p, 16).unwrap();
        e.read_u64(site!("t.f3", MemLoad), p, 24).unwrap();
        assert_eq!(e.stats().explicit_translations, t0 + 3);
    }

    #[test]
    fn roots_round_trip_across_restart() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        e.write_u64(site!("t.w", StackLocal), a, 0, 4242).unwrap();
        e.set_root(site!("t.root.set", StackLocal), a).unwrap();

        // Simulate crash + new process generation.
        e.space_mut().restart();
        e.space_mut().open_pool("t").unwrap();
        let r = e.root(site!("t.root.get", KnownReturn)).unwrap();
        assert_eq!(e.read_u64(site!("t.r", MemLoad), r, 0).unwrap(), 4242);
    }

    #[test]
    fn free_works_for_all_pointer_shapes() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap(); // VA into pool
        e.free(site!("t.free", Param), a).unwrap();
        let d = e.alloc_in(site!("t.d", AllocResult), Placement::Dram, 32).unwrap();
        e.free(site!("t.free2", Param), d).unwrap();
        e.free(site!("t.free3", Param), UPtr::NULL).unwrap();

        let mut ex = env(Mode::Explicit);
        let oid = ex.alloc(site!("t.oid", AllocResult), 32).unwrap();
        ex.free(site!("t.free4", Param), oid).unwrap();
    }

    #[test]
    fn ptr_eq_across_formats_in_hw() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let rel = {
            let loc = e.space().va2ra(a.as_va().unwrap()).unwrap();
            UPtr::from_rel(loc)
        };
        assert!(e.ptr_eq(site!("t.eq", Param), a, rel).unwrap());
        assert!(!e.ptr_eq(site!("t.eq2", Param), a, UPtr::NULL).unwrap());
    }

    #[test]
    fn null_write_ptr_stores_zero_without_conversion() {
        let mut e = env(Mode::Hw);
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let conv0 = e.stats().conversions();
        e.write_ptr(site!("t.null", MemLoad), a, 0, UPtr::NULL).unwrap();
        assert_eq!(e.peek_raw(a, 0).unwrap(), 0);
        assert_eq!(e.stats().conversions(), conv0);
        let back = e.read_ptr(site!("t.load", MemLoad), a, 0).unwrap();
        assert!(back.is_null());
    }

    #[test]
    fn site_check_cache_elides_monomorphic_sites_and_conserves_checks() {
        // Same op sequence with the cache off and on: every check is either
        // executed or elided, never dropped.
        let run = |cache: bool| {
            let mut space = AddressSpace::new(23);
            let pool = space.create_pool("t", 1 << 20).unwrap();
            let mut e = ExecEnv::builder(space)
                .mode(Mode::Sw)
                .pool(pool)
                .sink(CountingSink::new())
                .site_check_cache(cache)
                .build();
            let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
            let b = e.alloc(site!("t.b", AllocResult), 32).unwrap();
            for _ in 0..8 {
                e.read_u64(site!("t.r.param", Param), a, 0).unwrap();
                e.write_ptr(site!("t.link", MemLoad), a, 0, b).unwrap();
            }
            e.stats()
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.checks_elided, 0);
        assert!(on.checks_elided > 0, "repeated monomorphic sites elide");
        assert!(on.dynamic_checks < off.dynamic_checks);
        assert_eq!(
            on.dynamic_checks + on.checks_elided,
            off.dynamic_checks,
            "conservation: every check executed or elided"
        );
        assert_eq!(on.memory_ops(), off.memory_ops(), "data traffic unchanged");
    }

    #[test]
    fn site_check_cache_is_on_by_default() {
        let mut e = env(Mode::Sw);
        assert!(e.site_check_cache_enabled());
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        for _ in 0..4 {
            e.read_u64(site!("t.r.param", Param), a, 0).unwrap();
        }
        // A monomorphic site settles into the cache: later repetitions of
        // the same outcome are elided rather than re-checked.
        assert!(e.stats().checks_elided > 0);
        e.set_site_check_cache(false);
        let before = e.stats().checks_elided;
        e.read_u64(site!("t.r.param", Param), a, 0).unwrap();
        assert_eq!(e.stats().checks_elided, before, "opt-out stops eliding");
    }

    #[test]
    fn site_check_cache_revalidates_after_epoch_churn() {
        let mut space = AddressSpace::new(29);
        let pool = space.create_pool("t", 1 << 20).unwrap();
        let mut e = ExecEnv::builder(space)
            .mode(Mode::Sw)
            .pool(pool)
            .sink(CountingSink::new())
            .site_check_cache(true)
            .build();
        let a = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let loc = e.space().va2ra_uncached(a.as_va().unwrap()).unwrap();
        // One site (each site! expansion is a distinct static identity).
        let s = site!("t.r.param", Param);
        e.read_u64(s, a, 0).unwrap(); // arms
        e.read_u64(s, a, 0).unwrap(); // elides
        assert_eq!(e.stats().checks_elided, 1);
        // Detach/re-attach: the epoch advances, the cached outcome is stale.
        e.space_mut().detach(pool).unwrap();
        e.space_mut().attach(pool).unwrap();
        let a2 = UPtr::from_va(e.space().ra2va_uncached(loc).unwrap());
        let checks0 = e.stats().dynamic_checks;
        e.read_u64(s, a2, 0).unwrap();
        assert_eq!(e.stats().dynamic_checks, checks0 + 1, "re-validated, not elided");
        assert_eq!(e.stats().checks_elided, 1);
    }

    #[test]
    fn polymorphic_sites_never_elide() {
        let mut space = AddressSpace::new(31);
        let pool = space.create_pool("t", 1 << 20).unwrap();
        let mut e = ExecEnv::builder(space)
            .mode(Mode::Sw)
            .pool(pool)
            .sink(CountingSink::new())
            .site_check_cache(true)
            .conversion_reuse(false)
            .build();
        let nvm = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let rel = UPtr::from_rel(e.space().va2ra_uncached(nvm.as_va().unwrap()).unwrap());
        // One site alternating between virtual and relative operand
        // formats: the determineY outcome flips every call.
        let s = site!("t.poly", Param);
        for i in 0..6 {
            let p = if i % 2 == 0 { nvm } else { rel };
            e.read_u64(s, p, 0).unwrap();
        }
        assert_eq!(e.stats().checks_elided, 0, "alternating outcomes defeat the cache");
    }

    #[test]
    fn dram_pointer_stored_into_nvm_keeps_va_format() {
        let mut e = env(Mode::Hw);
        let node = e.alloc(site!("t.a", AllocResult), 32).unwrap();
        let d = e.alloc_in(site!("t.d", AllocResult), Placement::Dram, 32).unwrap();
        e.write_ptr(site!("t.link", MemLoad), node, 0, d).unwrap();
        let raw = e.peek_raw(node, 0).unwrap();
        assert_eq!(raw & (1 << 63), 0, "volatile pointer stays virtual");
        let back = e.read_ptr(site!("t.load", MemLoad), node, 0).unwrap();
        assert!(e.ptr_eq(site!("t.eq", Param), back, d).unwrap());
    }
}
