//! Static program sites and the compiler's knowledge about them.
//!
//! Every pointer operation in client code (the data structures, the KV
//! harness, the KNN case study) is tagged with a static [`Site`] describing
//! where the pointer came from. The compiler pass of the paper (our
//! `utpr-cc` crate) decides per site whether the pointer's property is known
//! at compile time; where it is not, the SW version must execute a dynamic
//! check. [`Provenance::is_statically_resolved`] encodes the outcome of that
//! inference for each provenance class; `utpr-cc`'s tests validate the
//! mapping against the real dataflow analysis on representative kernels.

use std::fmt;

/// Where a pointer operand at a site comes from, determining whether the
/// compiler's backward dataflow analysis can resolve its property.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Provenance {
    /// Direct result of `malloc`/`pmalloc` — property known by definition
    /// of the allocation function (paper §V-B).
    AllocResult,
    /// Address of (or value held only in) a stack local whose assignments
    /// are all visible — property propagated by the analysis.
    StackLocal,
    /// Function parameter — callers may pass volatile or persistent
    /// pointers, so the property is unknown (the core motivation of the
    /// paper: libraries receive both).
    Param,
    /// Value loaded from memory — the stored format depends on where the
    /// enclosing object lives, unknown in general.
    MemLoad,
    /// Return value of a function the analysis has a summary for
    /// (e.g. the pool root accessor, documented library functions).
    KnownReturn,
}

impl Provenance {
    /// Whether the paper's compiler inference resolves this class without a
    /// dynamic check.
    ///
    /// The mapping is validated in `utpr-cc` against the actual dataflow
    /// pass: seeds (allocation results, known returns) and everything
    /// reached only from seeds resolve; parameters and memory loads do not.
    pub fn is_statically_resolved(self) -> bool {
        match self {
            Provenance::AllocResult | Provenance::StackLocal | Provenance::KnownReturn => true,
            Provenance::Param | Provenance::MemLoad => false,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provenance::AllocResult => "alloc-result",
            Provenance::StackLocal => "stack-local",
            Provenance::Param => "param",
            Provenance::MemLoad => "mem-load",
            Provenance::KnownReturn => "known-return",
        };
        f.write_str(s)
    }
}

/// A static pointer-operation site in client code.
///
/// Declare sites with the [`crate::site!`] macro so each gets a stable
/// static identity:
///
/// ```
/// use utpr_ptr::{site, Site, Provenance};
///
/// let s: &'static Site = site!("rb.insert.child-link", MemLoad);
/// assert!(!s.is_statically_resolved());
/// ```
#[derive(Debug)]
pub struct Site {
    name: &'static str,
    provenance: Provenance,
}

impl Site {
    /// Creates a site (usually via [`crate::site!`]).
    pub const fn new(name: &'static str, provenance: Provenance) -> Self {
        Site { name, provenance }
    }

    /// Human-readable site name (`"structure.operation.operand"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The operand's provenance class.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Whether the compiler eliminated this site's dynamic check.
    pub fn is_statically_resolved(&self) -> bool {
        self.provenance.is_statically_resolved()
    }

    /// A stable identity for this site: sites are `'static` (the
    /// [`crate::site!`] macro pins each in a static), so the address is
    /// unique per declaration and constant for the program's lifetime —
    /// exactly what a per-site inline cache needs as its key.
    #[inline]
    pub fn id(&'static self) -> usize {
        self as *const Site as usize
    }

    /// A stable pseudo-pc for branches belonging to this site, mixed with a
    /// small `kind` discriminator (one pc per inline check).
    pub fn pc(&self, kind: u32) -> u64 {
        // FNV-1a over the name, then mix the kind.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (u64::from(kind) << 1)
    }
}

/// Shared pseudo-pc of the out-of-line `pointerAssignment` helper's
/// `determineX` branch (paper Fig. 9 emits a call, so all call sites share
/// the helper's branches).
pub const PC_PA_DETERMINE_X: u64 = 0x5041_5f58;
/// Shared pseudo-pc of the helper's `determineY` branch.
pub const PC_PA_DETERMINE_Y: u64 = 0x5041_5f59;
/// Shared pseudo-pc of the out-of-line `determineY` runtime helper used by
/// every other unresolved check site. The code-generation pass runs after
/// all optimizations (paper §VI), so the helper is never inlined and every
/// call site's outcome stream interleaves at this single branch.
pub const PC_DETERMINE_Y_HELPER: u64 = 0x4445_545f;

/// Declares a `&'static Site` in place.
///
/// ```
/// use utpr_ptr::{site, Provenance};
/// let s = site!("list.append.next", Param);
/// assert_eq!(s.provenance(), Provenance::Param);
/// ```
#[macro_export]
macro_rules! site {
    ($name:expr, $prov:ident) => {{
        static SITE: $crate::Site = $crate::Site::new($name, $crate::Provenance::$prov);
        &SITE
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_mapping() {
        assert!(Provenance::AllocResult.is_statically_resolved());
        assert!(Provenance::StackLocal.is_statically_resolved());
        assert!(Provenance::KnownReturn.is_statically_resolved());
        assert!(!Provenance::Param.is_statically_resolved());
        assert!(!Provenance::MemLoad.is_statically_resolved());
    }

    #[test]
    fn macro_produces_static_site() {
        let a = site!("x.y.z", Param);
        let b = site!("x.y.z", Param);
        // Two macro expansions are distinct statics but equal content.
        assert_eq!(a.name(), b.name());
        assert_eq!(a.pc(0), b.pc(0));
    }

    #[test]
    fn pcs_differ_by_name_and_kind() {
        let a = Site::new("a", Provenance::Param);
        let b = Site::new("b", Provenance::Param);
        assert_ne!(a.pc(0), b.pc(0));
        assert_ne!(a.pc(0), a.pc(1));
    }

    #[test]
    fn display_of_provenance() {
        assert_eq!(Provenance::MemLoad.to_string(), "mem-load");
    }
}
