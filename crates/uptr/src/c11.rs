//! The ISO C11 pointer-operation semantics under user-transparent persistent
//! references — an executable rendering of the paper's Fig. 4 table.
//!
//! Every operation the C11 standard permits on pointers is given a semantics
//! that is *observationally identical* to native pointers regardless of the
//! operand's storage format (virtual or relative). The dynamic format checks
//! resolve differences exactly where the table's filled boxes require a
//! conversion; everywhere else the raw value flows through unchanged.
//!
//! The engine is deliberately independent of the timing instrumentation in
//! [`crate::ExecEnv`]: it is the reference model that the soundness test
//! battery (the analogue of the paper's LLVM test-suite evaluation) checks,
//! and it is what the `utpr-cc` IR interpreter executes.

use crate::ptr::{PtrFormat, PtrSpace, UPtr};
use crate::stats::PtrStats;
use std::cmp::Ordering;
use utpr_heap::addr::VirtAddr;
use utpr_heap::{AddressSpace, HeapError};

/// Result alias for semantic operations (faults are heap errors: detached
/// pools, out-of-pool offsets, unmapped addresses).
pub type Result<T> = std::result::Result<T, HeapError>;

/// The executable Fig. 4 semantics, accumulating conversion counts.
///
/// # Examples
///
/// ```
/// use utpr_heap::AddressSpace;
/// use utpr_ptr::{C11Engine, UPtr};
///
/// let mut space = AddressSpace::new(1);
/// let pool = space.create_pool("p", 1 << 20)?;
/// let loc = space.pmalloc(pool, 64)?;
///
/// let rel = UPtr::from_rel(loc);
/// let mut eng = C11Engine::new(&space);
/// let va = eng.ra2va(rel)?;              // one rel→abs conversion
/// assert!(eng.eq(rel, va)?);             // same object, either format
/// assert!(eng.stats().rel_to_abs >= 2);
/// # Ok::<(), utpr_heap::HeapError>(())
/// ```
#[derive(Debug)]
pub struct C11Engine<'a> {
    space: &'a AddressSpace,
    stats: PtrStats,
}

impl<'a> C11Engine<'a> {
    /// Creates an engine over the given address space.
    pub fn new(space: &'a AddressSpace) -> Self {
        C11Engine { space, stats: PtrStats::new() }
    }

    /// Conversion counters accumulated so far.
    pub fn stats(&self) -> PtrStats {
        self.stats
    }

    /// Takes and resets the accumulated counters.
    pub fn take_stats(&mut self) -> PtrStats {
        std::mem::take(&mut self.stats)
    }

    // ---- conversions -------------------------------------------------------

    /// `ra2va`: rewrites a relative pointer into virtual format. Virtual
    /// and null pointers pass through unchanged.
    ///
    /// # Errors
    ///
    /// Faults when the pool is detached or the offset exceeds the pool.
    pub fn ra2va(&mut self, p: UPtr) -> Result<UPtr> {
        match p.as_rel() {
            Some(loc) => {
                let va = self.space.ra2va(loc)?;
                self.stats.rel_to_abs += 1;
                Ok(UPtr::from_va(va))
            }
            None => Ok(p),
        }
    }

    /// `va2ra`: rewrites a virtual pointer into the NVM half into relative
    /// format. Relative, null, and DRAM-half pointers pass through.
    ///
    /// # Errors
    ///
    /// Faults when the address lies in the NVM half but inside no attached
    /// pool.
    pub fn va2ra(&mut self, p: UPtr) -> Result<UPtr> {
        match p.as_va() {
            Some(va) if va.is_nvm_region() => {
                let loc = self.space.va2ra(va)?;
                self.stats.abs_to_rel += 1;
                Ok(UPtr::from_rel(loc))
            }
            _ => Ok(p),
        }
    }

    // ---- cast operators ----------------------------------------------------

    /// `(I)p` — cast pointer to integer. A relative pointer is first
    /// converted to its virtual address (Fig. 4: `$$ = ra2va(pxr.val)`), so
    /// integer round-trips behave exactly as with native pointers.
    ///
    /// # Errors
    ///
    /// Faults if a relative operand's pool is detached.
    pub fn to_int(&mut self, p: UPtr) -> Result<u64> {
        Ok(self.ra2va(p)?.raw())
    }

    /// `(T*)i` — cast integer to pointer: the raw value is adopted verbatim
    /// (Fig. 4: `$$ = i.val`).
    pub fn from_int(i: u64) -> UPtr {
        UPtr::from_raw(i)
    }

    // ---- unary / postfix operators ------------------------------------------

    /// `*p`, `p->f`, `p[i]` address resolution: the virtual address a
    /// dereference accesses.
    ///
    /// # Errors
    ///
    /// Faults on null and on relative pointers whose pool is detached.
    pub fn deref_target(&mut self, p: UPtr) -> Result<VirtAddr> {
        if p.is_null() {
            return Err(HeapError::Unmapped(VirtAddr::new(0)));
        }
        let v = self.ra2va(p)?;
        Ok(v.as_va().expect("ra2va yields virtual"))
    }

    /// `p[i]` with element size — the address of element `i`.
    ///
    /// # Errors
    ///
    /// Same as [`C11Engine::deref_target`].
    pub fn index_target(&mut self, p: UPtr, i: i64, elem_size: u64) -> Result<VirtAddr> {
        self.deref_target(p.offset(i * elem_size as i64))
    }

    /// `!p` / `if (p)` — truth value of a pointer.
    pub fn is_true(p: UPtr) -> bool {
        !p.is_null()
    }

    // ---- additive operators --------------------------------------------------

    /// `p + i` / `p - i` / `++p` (in bytes): format-preserving arithmetic
    /// (Fig. 4: `$$ = pxy.val op i`, the format tag survives).
    pub fn add(p: UPtr, bytes: i64) -> UPtr {
        p.offset(bytes)
    }

    /// `p - q` in bytes. Two relative pointers subtract their raw values
    /// directly (within one pool this is the offset distance); mixed-format
    /// operands normalize to virtual addresses first.
    ///
    /// # Errors
    ///
    /// Faults when a needed conversion hits a detached pool.
    pub fn diff(&mut self, a: UPtr, b: UPtr) -> Result<i64> {
        match (a.format(), b.format()) {
            (PtrFormat::Relative, PtrFormat::Relative) => {
                Ok(a.raw().wrapping_sub(b.raw()) as i64)
            }
            _ => {
                let av = self.ra2va(a)?.raw();
                let bv = self.ra2va(b)?.raw();
                Ok(av.wrapping_sub(bv) as i64)
            }
        }
    }

    // ---- relational and equality operators ------------------------------------

    /// `p == q` (and `!=` by negation). Operands are normalized to virtual
    /// addresses so a relative and a virtual pointer to the same object
    /// compare equal. Null compares by raw value without conversion.
    ///
    /// # Errors
    ///
    /// Faults when a needed conversion hits a detached pool.
    pub fn eq(&mut self, a: UPtr, b: UPtr) -> Result<bool> {
        if a.is_null() || b.is_null() {
            return Ok(a.raw() == b.raw());
        }
        let av = self.ra2va(a)?.raw();
        let bv = self.ra2va(b)?.raw();
        Ok(av == bv)
    }

    /// `<, >, <=, >=` — ordering over the virtual addresses.
    ///
    /// # Errors
    ///
    /// Faults when a needed conversion hits a detached pool.
    pub fn cmp(&mut self, a: UPtr, b: UPtr) -> Result<Ordering> {
        let av = self.ra2va(a)?.raw();
        let bv = self.ra2va(b)?.raw();
        Ok(av.cmp(&bv))
    }

    // ---- assignment (the storeP value transformation) --------------------------

    /// The value transformation of `pointerAssignment` (paper Fig. 3): the
    /// format in which `p` must be stored at a destination residing in
    /// `dest` space.
    ///
    /// - destination in NVM: persistent-half virtual addresses convert to
    ///   relative (`va2ra`) so they stay valid across relocation; relative
    ///   values pass through; DRAM virtual addresses are stored verbatim
    ///   (they cannot be made relocation-stable — such a pointer is only
    ///   meaningful within the current run, exactly as in C).
    /// - destination in DRAM: relative values convert to virtual (`ra2va`);
    ///   virtual values pass through.
    ///
    /// # Errors
    ///
    /// Faults when a needed conversion hits a detached pool or an address
    /// in no pool.
    pub fn assign_value(&mut self, dest: PtrSpace, p: UPtr) -> Result<UPtr> {
        if p.is_null() {
            return Ok(p);
        }
        match dest {
            PtrSpace::Nvm => match p.format() {
                PtrFormat::Relative => Ok(p),
                PtrFormat::Virtual => {
                    if p.space() == PtrSpace::Nvm {
                        self.va2ra(p)
                    } else {
                        Ok(p)
                    }
                }
            },
            PtrSpace::Dram => self.ra2va(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_heap::{PoolId, RelLoc};

    fn setup() -> (AddressSpace, UPtr, UPtr) {
        let mut space = AddressSpace::new(17);
        let pool = space.create_pool("c11", 1 << 20).unwrap();
        let loc = space.pmalloc(pool, 128).unwrap();
        let rel = UPtr::from_rel(loc);
        let va = UPtr::from_va(space.ra2va(loc).unwrap());
        (space, rel, va)
    }

    #[test]
    fn cast_int_round_trip_matches_native() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        // (I)pxr == (I)pxv for the same object.
        let ir = eng.to_int(rel).unwrap();
        let iv = eng.to_int(va).unwrap();
        assert_eq!(ir, iv);
        // (T*)(I)p dereferences the same object.
        let back = C11Engine::from_int(ir);
        assert_eq!(eng.deref_target(back).unwrap(), eng.deref_target(rel).unwrap());
    }

    #[test]
    fn deref_target_same_for_both_formats() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        assert_eq!(eng.deref_target(rel).unwrap(), eng.deref_target(va).unwrap());
        assert_eq!(eng.stats().rel_to_abs, 1);
    }

    #[test]
    fn deref_null_faults() {
        let (space, _, _) = setup();
        let mut eng = C11Engine::new(&space);
        assert!(eng.deref_target(UPtr::NULL).is_err());
    }

    #[test]
    fn additive_ops_preserve_format_and_value() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        for d in [0i64, 8, 24, -8] {
            let r2 = C11Engine::add(rel.offset(32), d);
            let v2 = C11Engine::add(va.offset(32), d);
            assert_eq!(r2.format(), PtrFormat::Relative);
            assert_eq!(v2.format(), PtrFormat::Virtual);
            assert_eq!(eng.deref_target(r2).unwrap(), eng.deref_target(v2).unwrap());
        }
    }

    #[test]
    fn diff_consistent_across_formats() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        let r2 = rel.offset(40);
        let v2 = va.offset(40);
        assert_eq!(eng.diff(r2, rel).unwrap(), 40);
        assert_eq!(eng.diff(v2, va).unwrap(), 40);
        assert_eq!(eng.diff(r2, va).unwrap(), 40);
        assert_eq!(eng.diff(v2, rel).unwrap(), 40);
        assert_eq!(eng.diff(rel, r2).unwrap(), -40);
    }

    #[test]
    fn equality_across_formats() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        assert!(eng.eq(rel, va).unwrap());
        assert!(eng.eq(va, rel).unwrap());
        assert!(!eng.eq(rel.offset(8), va).unwrap());
        assert!(!eng.eq(rel, UPtr::NULL).unwrap());
        assert!(eng.eq(UPtr::NULL, UPtr::NULL).unwrap());
    }

    #[test]
    fn relational_across_formats() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        assert_eq!(eng.cmp(rel, va.offset(8)).unwrap(), Ordering::Less);
        assert_eq!(eng.cmp(rel.offset(8), va).unwrap(), Ordering::Greater);
        assert_eq!(eng.cmp(rel, va).unwrap(), Ordering::Equal);
    }

    #[test]
    fn assign_to_nvm_converts_nvm_va_to_rel() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        let stored = eng.assign_value(PtrSpace::Nvm, va).unwrap();
        assert_eq!(stored, rel);
        assert_eq!(eng.stats().abs_to_rel, 1);
        // Relative stays relative with no conversion.
        let stored2 = eng.assign_value(PtrSpace::Nvm, rel).unwrap();
        assert_eq!(stored2, rel);
        assert_eq!(eng.stats().abs_to_rel, 1);
    }

    #[test]
    fn assign_to_dram_converts_rel_to_va() {
        let (space, rel, va) = setup();
        let mut eng = C11Engine::new(&space);
        let stored = eng.assign_value(PtrSpace::Dram, rel).unwrap();
        assert_eq!(stored, va);
        assert_eq!(eng.stats().rel_to_abs, 1);
        let stored2 = eng.assign_value(PtrSpace::Dram, va).unwrap();
        assert_eq!(stored2, va);
    }

    #[test]
    fn assign_dram_pointer_into_nvm_keeps_va() {
        let mut space = AddressSpace::new(3);
        let _pool = space.create_pool("p", 1 << 20).unwrap();
        let d = space.malloc(32).unwrap();
        let dp = UPtr::from_va(d);
        let mut eng = C11Engine::new(&space);
        let stored = eng.assign_value(PtrSpace::Nvm, dp).unwrap();
        assert_eq!(stored, dp);
        assert_eq!(eng.stats().conversions(), 0);
    }

    #[test]
    fn null_assignment_never_converts() {
        let (space, _, _) = setup();
        let mut eng = C11Engine::new(&space);
        assert_eq!(eng.assign_value(PtrSpace::Nvm, UPtr::NULL).unwrap(), UPtr::NULL);
        assert_eq!(eng.assign_value(PtrSpace::Dram, UPtr::NULL).unwrap(), UPtr::NULL);
        assert_eq!(eng.stats().conversions(), 0);
    }

    #[test]
    fn detached_pool_faults_conversions() {
        let (mut space, rel, _) = setup();
        let pool = rel.as_rel().unwrap().pool;
        space.detach(pool).unwrap();
        let mut eng = C11Engine::new(&space);
        assert!(matches!(eng.ra2va(rel), Err(HeapError::PoolDetached(_))));
        assert!(eng.to_int(rel).is_err());
        assert!(eng.eq(rel, rel).is_err()); // Fig. 10: checks fault, VN would not
    }

    #[test]
    fn bogus_pool_id_faults() {
        let (space, _, _) = setup();
        let mut eng = C11Engine::new(&space);
        let bogus = UPtr::from_rel(RelLoc::new(PoolId::new(12345), 0));
        assert!(eng.ra2va(bogus).is_err());
    }

    #[test]
    fn relocation_preserves_relative_semantics() {
        let (mut space, rel, _) = setup();
        let pool = rel.as_rel().unwrap().pool;
        let before = {
            let mut eng = C11Engine::new(&space);
            eng.deref_target(rel).unwrap()
        };
        space.detach(pool).unwrap();
        space.attach(pool).unwrap();
        let after = {
            let mut eng = C11Engine::new(&space);
            eng.deref_target(rel).unwrap()
        };
        // The virtual address moved, but the relative pointer still resolves
        // into the pool at the same offset.
        assert_ne!(before, after);
        assert_eq!(space.va2ra(before).unwrap_err(), HeapError::NotInAnyPool(before));
        assert_eq!(space.va2ra(after).unwrap(), rel.as_rel().unwrap());
    }
}
