//! The user-transparent persistent pointer value.
//!
//! A [`UPtr`] is a single 64-bit word whose most-significant bit selects the
//! interpretation of the remaining bits (paper Fig. 2):
//!
//! ```text
//! bit 63 = 0:  [ 0 | 15 zero bits | 48-bit virtual address ]
//!              bit 47 of the VA selects the NVM half of the address space
//! bit 63 = 1:  [ 1 | 31-bit pool id | 32-bit intra-pool offset ]
//! ```
//!
//! Because both formats fit the width of a conventional pointer, legacy code
//! can hold, copy, and compare these values without knowing which format it
//! has — the runtime (or the paper's hardware) discerns them with the
//! `determineX`/`determineY` checks modelled by [`UPtr::space`] and
//! [`UPtr::format`].

use std::fmt;
use utpr_heap::addr::{RelLoc, VirtAddr, NVM_REGION_BIT, VA_MASK};
use utpr_heap::PoolId;

/// Flag bit that marks the relative (persistent) pointer format.
pub const REL_BIT: u64 = 1 << 63;

/// Storage format of a pointer value — the paper's `determineY`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PtrFormat {
    /// The value is a 48-bit virtual address.
    Virtual,
    /// The value is a pool id + offset pair (relative address).
    Relative,
}

/// Which memory a pointer targets — the paper's `determineX`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PtrSpace {
    /// Volatile memory (DRAM half).
    Dram,
    /// Persistent memory (NVM half or a pool).
    Nvm,
}

/// Decoded view of a pointer value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PtrKind {
    /// The null pointer.
    Null,
    /// A virtual address (volatile or persistent half).
    Va(VirtAddr),
    /// A pool-relative address.
    Rel(RelLoc),
}

/// A user-transparent persistent reference: one 64-bit word that may hold
/// either a virtual address or a pool-relative address.
///
/// # Examples
///
/// ```
/// use utpr_ptr::{UPtr, PtrFormat};
/// use utpr_heap::{RelLoc, PoolId, VirtAddr};
///
/// let v = UPtr::from_va(VirtAddr::new(0x1000));
/// assert_eq!(v.format(), PtrFormat::Virtual);
///
/// let r = UPtr::from_rel(RelLoc::new(PoolId::new(5), 0x20));
/// assert_eq!(r.format(), PtrFormat::Relative);
/// assert_eq!(r.as_rel(), Some(RelLoc::new(PoolId::new(5), 0x20)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UPtr(u64);

impl UPtr {
    /// The null pointer.
    pub const NULL: UPtr = UPtr(0);

    /// Builds a pointer from its raw stored bits (e.g. a word loaded from
    /// simulated memory).
    #[inline]
    pub fn from_raw(bits: u64) -> Self {
        UPtr(bits)
    }

    /// Raw bits as stored in memory.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Wraps a virtual address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address exceeds 48 bits (it would
    /// collide with the relative-format flag space).
    #[inline]
    pub fn from_va(va: VirtAddr) -> Self {
        debug_assert!(va.raw() <= VA_MASK);
        UPtr(va.raw())
    }

    /// Encodes a pool-relative location.
    #[inline]
    pub fn from_rel(loc: RelLoc) -> Self {
        UPtr(REL_BIT | (u64::from(loc.pool.raw()) << 32) | u64::from(loc.offset))
    }

    /// True for the all-zero null value.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The paper's `determineY`: which format the bits are in.
    #[inline]
    pub fn format(self) -> PtrFormat {
        if self.0 & REL_BIT != 0 {
            PtrFormat::Relative
        } else {
            PtrFormat::Virtual
        }
    }

    /// The paper's `determineX`: does this pointer target persistent memory?
    /// Relative pointers always do; virtual addresses do when bit 47 is set.
    #[inline]
    pub fn space(self) -> PtrSpace {
        if self.0 & REL_BIT != 0 || self.0 & NVM_REGION_BIT != 0 {
            PtrSpace::Nvm
        } else {
            PtrSpace::Dram
        }
    }

    /// Decodes the pointer.
    #[inline]
    pub fn kind(self) -> PtrKind {
        if self.0 == 0 {
            PtrKind::Null
        } else if self.0 & REL_BIT != 0 {
            PtrKind::Rel(self.rel_unchecked())
        } else {
            PtrKind::Va(VirtAddr::new(self.0 & VA_MASK))
        }
    }

    /// The virtual address, if the value is in virtual format (null returns
    /// `None`).
    #[inline]
    pub fn as_va(self) -> Option<VirtAddr> {
        match self.kind() {
            PtrKind::Va(v) => Some(v),
            _ => None,
        }
    }

    /// The relative location, if the value is in relative format.
    #[inline]
    pub fn as_rel(self) -> Option<RelLoc> {
        match self.kind() {
            PtrKind::Rel(r) => Some(r),
            _ => None,
        }
    }

    #[inline]
    fn rel_unchecked(self) -> RelLoc {
        RelLoc::new(PoolId::new(((self.0 >> 32) & 0x7fff_ffff) as u32), self.0 as u32)
    }

    /// Pointer arithmetic `p + delta` (bytes), preserving the format — the
    /// additive-operator rows of the paper's Fig. 4 (`$$ = pxy.val op i`).
    ///
    /// Virtual addresses wrap within 48 bits; relative offsets wrap within
    /// their 32-bit field (out-of-pool offsets fault later, on use, just as
    /// out-of-object arithmetic in C is only UB when dereferenced).
    #[inline]
    pub fn offset(self, delta: i64) -> Self {
        if self.0 & REL_BIT != 0 {
            let off = (self.0 as u32).wrapping_add(delta as u32);
            UPtr((self.0 & !0xffff_ffff) | u64::from(off))
        } else {
            UPtr(self.0.wrapping_add(delta as u64) & VA_MASK)
        }
    }
}

impl fmt::Debug for UPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            PtrKind::Null => write!(f, "UPtr(null)"),
            PtrKind::Va(v) => write!(f, "UPtr(va {v})"),
            PtrKind::Rel(r) => write!(f, "UPtr(rel {r})"),
        }
    }
}

impl fmt::Display for UPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<VirtAddr> for UPtr {
    fn from(va: VirtAddr) -> Self {
        UPtr::from_va(va)
    }
}

impl From<RelLoc> for UPtr {
    fn from(loc: RelLoc) -> Self {
        UPtr::from_rel(loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utpr_heap::addr::NVM_BASE;

    #[test]
    fn null_is_virtual_dram() {
        assert!(UPtr::NULL.is_null());
        assert_eq!(UPtr::NULL.format(), PtrFormat::Virtual);
        assert_eq!(UPtr::NULL.space(), PtrSpace::Dram);
        assert_eq!(UPtr::NULL.kind(), PtrKind::Null);
    }

    #[test]
    fn rel_encoding_round_trips() {
        for (pool, off) in [(0u32, 0u32), (1, 0x20), (0x7fff_ffff, u32::MAX)] {
            let loc = RelLoc::new(PoolId::new(pool), off);
            let p = UPtr::from_rel(loc);
            assert_eq!(p.format(), PtrFormat::Relative);
            assert_eq!(p.space(), PtrSpace::Nvm);
            assert_eq!(p.as_rel(), Some(loc));
            assert_eq!(UPtr::from_raw(p.raw()), p);
        }
    }

    #[test]
    fn va_encoding_round_trips() {
        let va = VirtAddr::new(0xdead_beef);
        let p = UPtr::from_va(va);
        assert_eq!(p.format(), PtrFormat::Virtual);
        assert_eq!(p.space(), PtrSpace::Dram);
        assert_eq!(p.as_va(), Some(va));
    }

    #[test]
    fn nvm_half_va_is_persistent_space() {
        let p = UPtr::from_va(VirtAddr::new(NVM_BASE + 0x100));
        assert_eq!(p.format(), PtrFormat::Virtual);
        assert_eq!(p.space(), PtrSpace::Nvm);
    }

    #[test]
    fn rel_pool_zero_offset_zero_is_not_null() {
        let p = UPtr::from_rel(RelLoc::new(PoolId::new(0), 0));
        assert!(!p.is_null());
    }

    #[test]
    fn offset_preserves_format() {
        let r = UPtr::from_rel(RelLoc::new(PoolId::new(3), 16));
        let r2 = r.offset(24);
        assert_eq!(r2.as_rel(), Some(RelLoc::new(PoolId::new(3), 40)));
        let r3 = r2.offset(-40);
        assert_eq!(r3.as_rel(), Some(RelLoc::new(PoolId::new(3), 0)));

        let v = UPtr::from_va(VirtAddr::new(0x1000));
        assert_eq!(v.offset(8).as_va(), Some(VirtAddr::new(0x1008)));
        assert_eq!(v.offset(-8).as_va(), Some(VirtAddr::new(0xff8)));
    }

    #[test]
    fn rel_offset_wraps_in_32_bits_without_touching_pool() {
        let r = UPtr::from_rel(RelLoc::new(PoolId::new(9), u32::MAX));
        let r2 = r.offset(1);
        assert_eq!(r2.as_rel(), Some(RelLoc::new(PoolId::new(9), 0)));
    }

    #[test]
    fn debug_formats_are_distinct() {
        let n = format!("{:?}", UPtr::NULL);
        let v = format!("{:?}", UPtr::from_va(VirtAddr::new(0x10)));
        let r = format!("{:?}", UPtr::from_rel(RelLoc::new(PoolId::new(1), 2)));
        assert!(n.contains("null"));
        assert!(v.contains("va"));
        assert!(r.contains("rel"));
    }
}
