//! Wire-protocol property battery: random frames survive
//! encode → arbitrary re-chunking → decode bit-for-bit, and malformed
//! bytes (truncated prefixes, oversized claims, unknown opcodes, mutated
//! payloads) produce typed [`ProtoError`]s — never a panic, never a
//! desynchronized decoder.

use utpr_qc::prelude::*;
use utpr_serve::proto::{Decoder, ProtoError, Request, Response, MAX_FRAME};

/// Builds one random request from a flat recipe; `depth` guards the
/// single level of batch nesting the protocol allows.
fn request_from(recipe: &(u32, u64, u64, Vec<(u32, u64, u64)>)) -> Request {
    let (op, a, b, subs) = recipe;
    match op % 6 {
        0 => Request::Get { key: *a },
        1 => Request::Put { key: *a, val: *b },
        2 => Request::Del { key: *a },
        3 => Request::Scan { start: *a, count: (*b % 512) as u32 },
        4 => Request::Ping,
        _ => Request::Batch(
            subs.iter()
                .map(|(op, a, b)| match op % 5 {
                    0 => Request::Get { key: *a },
                    1 => Request::Put { key: *a, val: *b },
                    2 => Request::Del { key: *a },
                    3 => Request::Scan { start: *a, count: (*b % 512) as u32 },
                    _ => Request::Ping,
                })
                .collect(),
        ),
    }
}

fn response_from(recipe: &(u32, u64, u64, Vec<(u32, u64, u64)>)) -> Response {
    let (op, a, b, subs) = recipe;
    let leaf = |op: u32, a: u64, b: u64| match op % 5 {
        0 => Response::Value((a % 2 == 0).then_some(b)),
        1 => Response::Done((a % 2 == 0).then_some(b)),
        2 => Response::Removed((a % 2 == 0).then_some(b)),
        3 => Response::Pong,
        _ => Response::Err(
            utpr_serve::ErrCode::Proto,
            format!("e{:x}", a % 0xffff),
        ),
    };
    match op % 3 {
        0 => leaf(*op / 3, *a, *b),
        1 => Response::Pairs(subs.iter().map(|&(_, k, v)| (k, v)).collect()),
        _ => Response::Batch(subs.iter().map(|&(o, k, v)| leaf(o, k, v)).collect()),
    }
}

/// Splits `bytes` into chunks whose sizes walk the `cuts` recipe, feeding
/// a decoder the way a TCP stream would: arbitrary segmentation.
fn feed_chunked(dec: &mut Decoder, bytes: &[u8], cuts: &[u64]) {
    let mut at = 0;
    let mut c = 0;
    while at < bytes.len() {
        let take = if cuts.is_empty() {
            bytes.len() - at
        } else {
            (cuts[c % cuts.len()] as usize % 7 + 1).min(bytes.len() - at)
        };
        dec.feed(&bytes[at..at + take]);
        at += take;
        c += 1;
    }
}

#[test]
fn requests_roundtrip_under_arbitrary_chunking() {
    let gen = (
        collection::vec(
            (0u32..64, any::<u64>(), any::<u64>(), collection::vec((0u32..64, any::<u64>(), any::<u64>()), 0..6)),
            1..8,
        ),
        collection::vec(any::<u64>(), 0..9),
    );
    for_all(
        "serve::proto::request_roundtrip",
        Config::cases(256),
        gen,
        |(recipes, cuts)| {
            let reqs: Vec<Request> = recipes.iter().map(request_from).collect();
            let mut wire = Vec::new();
            for r in &reqs {
                r.encode(&mut wire);
            }
            let mut dec = Decoder::new();
            feed_chunked(&mut dec, &wire, &cuts);
            let mut seen = Vec::new();
            let mut rewire = Vec::new();
            while let Some(body) = dec.next_frame().map_err(|e| e.to_string())? {
                let req = Request::decode(body).map_err(|e| e.to_string())?;
                req.encode(&mut rewire);
                seen.push(req);
            }
            prop_assert!(dec.finish().is_ok());
            prop_assert_eq!(&seen, &reqs);
            // Bit-for-bit: re-encoding the decoded stream reproduces the
            // original bytes exactly.
            prop_assert_eq!(&rewire, &wire);
            Ok(())
        },
    );
}

#[test]
fn responses_roundtrip_under_arbitrary_chunking() {
    let gen = (
        collection::vec(
            (0u32..64, any::<u64>(), any::<u64>(), collection::vec((0u32..64, any::<u64>(), any::<u64>()), 0..6)),
            1..8,
        ),
        collection::vec(any::<u64>(), 0..9),
    );
    for_all(
        "serve::proto::response_roundtrip",
        Config::cases(256),
        gen,
        |(recipes, cuts)| {
            let resps: Vec<Response> = recipes.iter().map(response_from).collect();
            let mut wire = Vec::new();
            for r in &resps {
                r.encode(&mut wire);
            }
            let mut dec = Decoder::new();
            feed_chunked(&mut dec, &wire, &cuts);
            let mut seen = Vec::new();
            let mut rewire = Vec::new();
            while let Some(body) = dec.next_frame().map_err(|e| e.to_string())? {
                let r = Response::decode(body).map_err(|e| e.to_string())?;
                r.encode(&mut rewire);
                seen.push(r);
            }
            prop_assert!(dec.finish().is_ok());
            prop_assert_eq!(&seen, &resps);
            prop_assert_eq!(&rewire, &wire);
            Ok(())
        },
    );
}

#[test]
fn mutated_streams_never_panic_or_desync() {
    // Take a valid stream, flip one byte anywhere (length prefix, opcode,
    // payload), and decode to exhaustion: every outcome must be a clean
    // frame, a typed error, or a truncated tail — never a panic, and
    // never an infinite loop.
    let gen = (
        collection::vec(
            (0u32..64, any::<u64>(), any::<u64>(), collection::vec((0u32..64, any::<u64>(), any::<u64>()), 0..4)),
            1..5,
        ),
        any::<u64>(),
        any::<u8>(),
    );
    for_all(
        "serve::proto::mutation_robustness",
        Config::cases(512),
        gen,
        |(recipes, pos, flip)| {
            let mut wire = Vec::new();
            for r in recipes.iter().map(request_from) {
                r.encode(&mut wire);
            }
            let at = (pos as usize) % wire.len();
            wire[at] ^= flip | 1;
            let mut dec = Decoder::new();
            dec.feed(&wire);
            let mut frames = 0u32;
            loop {
                match dec.next_frame() {
                    Ok(Some(body)) => {
                        // Frame body may or may not decode; either way it
                        // must be a typed verdict, not a panic.
                        let _ = Request::decode(body);
                        frames += 1;
                        prop_assert!(frames <= 1 + wire.len() as u32);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert!(matches!(
                            e,
                            ProtoError::Oversized(_) | ProtoError::EmptyFrame
                        ));
                        break;
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn truncated_length_prefix_is_typed() {
    let mut wire = Vec::new();
    Request::Put { key: 7, val: 9 }.encode(&mut wire);
    for keep in 0..wire.len() {
        let mut dec = Decoder::new();
        dec.feed(&wire[..keep]);
        assert_eq!(dec.next_frame(), Ok(None), "partial frame must wait, not error");
        if keep > 0 {
            assert_eq!(dec.finish(), Err(ProtoError::Truncated));
        } else {
            assert!(dec.finish().is_ok());
        }
    }
}

#[test]
fn oversized_claim_rejected_before_buffering() {
    let mut dec = Decoder::new();
    let claim = (MAX_FRAME + 1).to_le_bytes();
    dec.feed(&claim);
    assert_eq!(dec.next_frame(), Err(ProtoError::Oversized(MAX_FRAME + 1)));
}

#[test]
fn unknown_opcode_is_typed_not_fatal_to_later_frames() {
    // An unknown opcode poisons its own frame only: the decoder stays in
    // sync and the next frame decodes normally.
    let mut wire = Vec::new();
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[0x7f, 0x00]);
    Request::Get { key: 3 }.encode(&mut wire);
    let mut dec = Decoder::new();
    dec.feed(&wire);
    let first = dec.next_frame().unwrap().unwrap().to_vec();
    assert_eq!(Request::decode(&first), Err(ProtoError::UnknownOpcode(0x7f)));
    let second = dec.next_frame().unwrap().unwrap().to_vec();
    assert_eq!(Request::decode(&second), Ok(Request::Get { key: 3 }));
    assert_eq!(dec.next_frame(), Ok(None));
}
