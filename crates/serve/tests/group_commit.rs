//! Loopback integration battery for the group-commit server.
//!
//! Covers the serving semantics end to end over real sockets (request
//! routing, batch atomicity at the protocol level, cross-shard refusal),
//! the ISSUE's fence-amortization acceptance gate (batched fences/op must
//! be at most half of unbatched at equal offered load), the determinism
//! contract the bench checksum leans on, and the kill-the-server-mid-load
//! arm: die at a seeded durable-write boundary mid-batch, recover every
//! undo-log slot, and pass the faultsweep oracles — acked writes present,
//! unacked writes committed-or-absent, structural invariants intact.
//! Failures print the `UTPR_QC_SEED` replay line.

use utpr_heap::FlushModel;
use utpr_qc::runner::base_seed;
use utpr_serve::{
    expected_put_keys, kill_arm, preload, preload_val, put_val, run_load, Client, ErrCode,
    KillSpec, LoadMode, LoadSpec, Request, Response, ServeConfig, Server,
};

fn cfg(shards: u32, window: usize) -> ServeConfig {
    ServeConfig {
        shards,
        batch_window: window,
        pool_bytes: 64 << 20,
        slab_bytes: 1 << 20,
        flush_model: FlushModel::Eadr,
        seed: base_seed(),
    }
}

#[test]
fn loopback_serving_semantics() {
    let handle = Server::launch(&cfg(2, 8)).expect("launch");
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert_eq!(c.call(&Request::Ping).unwrap(), Response::Pong);
    assert_eq!(c.call(&Request::Get { key: 10 }).unwrap(), Response::Value(None));
    assert_eq!(c.call(&Request::Put { key: 10, val: 77 }).unwrap(), Response::Done(None));
    assert_eq!(
        c.call(&Request::Put { key: 10, val: 78 }).unwrap(),
        Response::Done(Some(77))
    );
    assert_eq!(c.call(&Request::Get { key: 10 }).unwrap(), Response::Value(Some(78)));
    assert_eq!(c.call(&Request::Del { key: 10 }).unwrap(), Response::Removed(Some(78)));
    assert_eq!(c.call(&Request::Get { key: 10 }).unwrap(), Response::Value(None));

    // SCAN probes the contiguous key range [start, start+count) but is
    // partition-local: it sees exactly the keys its owning shard holds
    // (DESIGN.md §14).
    for k in 100..110u64 {
        c.call(&Request::Put { key: k, val: k * 2 }).unwrap();
    }
    let local: Vec<u64> = (100..110u64)
        .filter(|&k| utpr_serve::shard_of(k, 2) == utpr_serve::shard_of(100, 2))
        .collect();
    match c.call(&Request::Scan { start: 100, count: 10 }).unwrap() {
        Response::Pairs(pairs) => {
            assert_eq!(pairs.iter().map(|&(k, _)| k).collect::<Vec<_>>(), local);
            assert!(pairs.iter().all(|&(k, v)| v == k * 2));
        }
        other => panic!("scan returned {other:?}"),
    }

    // A batch whose keys all live on one shard executes atomically and
    // answers with per-op responses in order.
    let shard0_keys: Vec<u64> =
        (0..10_000u64).filter(|&k| utpr_serve::shard_of(k, 2) == 0).take(4).collect();
    let batch: Vec<Request> =
        shard0_keys.iter().map(|&k| Request::Put { key: k, val: k + 1 }).collect();
    match c.call(&Request::Batch(batch)).unwrap() {
        Response::Batch(rs) => {
            assert_eq!(rs.len(), 4);
            assert!(rs.iter().all(|r| matches!(r, Response::Done(_))));
        }
        other => panic!("batch returned {other:?}"),
    }

    // A cross-shard batch is refused whole — no partial application.
    let k0 = shard0_keys[0];
    let k1 = (0..10_000u64).find(|&k| utpr_serve::shard_of(k, 2) == 1).unwrap();
    match c
        .call(&Request::Batch(vec![
            Request::Put { key: k0, val: 0xdead },
            Request::Put { key: k1, val: 0xdead },
        ]))
        .unwrap()
    {
        Response::Err(code, _) => assert_eq!(code, ErrCode::CrossShardBatch),
        other => panic!("cross-shard batch returned {other:?}"),
    }
    assert_ne!(c.call(&Request::Get { key: k0 }).unwrap(), Response::Value(Some(0xdead)));

    let (counters, crashed) = handle.shutdown();
    assert!(!crashed);
    assert!(counters.puts >= 15);
}

/// The tentpole's acceptance gate: at equal offered load, group commit
/// with `batch_window >= 8` must spend at most half the fences per write
/// that the unbatched server does.
#[test]
fn group_commit_halves_fences_per_op() {
    let spec = LoadSpec {
        connections: 16,
        threads: 2,
        records: 500,
        operations: 4_000,
        read_fraction: 0.3,
        mode: LoadMode::Closed { pipeline: 16 },
        seed: base_seed(),
        track_acks: false,
    };

    let mut rates = Vec::new();
    for window in [1usize, 8] {
        let handle = Server::launch(&cfg(2, window)).expect("launch");
        preload(handle.addr(), spec.records).expect("preload");
        let before = handle.counters();
        let report = run_load(handle.addr(), &spec).expect("load");
        let after = handle.counters();
        let (_, crashed) = handle.shutdown();
        assert!(!crashed);
        assert_eq!(report.dead_conns, 0, "window {window}: connections died");
        assert_eq!(report.ops_acked, spec.operations, "window {window}: lost acks");
        let fences = after.pool_fences - before.pool_fences;
        let writes = after.writes() - before.writes();
        assert!(writes > 0);
        rates.push(fences as f64 / writes as f64);
    }
    let (unbatched, batched) = (rates[0], rates[1]);
    assert!(
        batched <= 0.5 * unbatched,
        "group commit too weak: batched {batched:.3} fences/write vs unbatched \
         {unbatched:.3} (UTPR_QC_SEED={})",
        base_seed()
    );
}

/// Final contents are a pure function of the load spec: every expected
/// PUT key holds its derived value, preloaded keys not overwritten hold
/// theirs. This is what makes the bench checksum comparable across runs.
#[test]
fn load_contents_are_deterministic() {
    let spec = LoadSpec {
        connections: 8,
        threads: 2,
        records: 300,
        operations: 1_200,
        read_fraction: 0.5,
        mode: LoadMode::Closed { pipeline: 8 },
        seed: base_seed() ^ 0xd37,
        track_acks: true,
    };
    let handle = Server::launch(&cfg(2, 16)).expect("launch");
    preload(handle.addr(), spec.records).expect("preload");
    let report = run_load(handle.addr(), &spec).expect("load");
    assert_eq!(report.dead_conns, 0);
    assert_eq!(report.ops_acked, spec.operations);

    let expected = expected_put_keys(&spec);
    let acked: std::collections::BTreeSet<u64> =
        report.acked_puts.iter().map(|&(k, _)| k).collect();
    assert_eq!(acked.len(), expected.len());
    assert!(expected.iter().all(|k| acked.contains(k)));

    let mut c = Client::connect(handle.addr()).expect("connect");
    for &k in expected.iter().take(64) {
        assert_eq!(
            c.call(&Request::Get { key: k }).unwrap(),
            Response::Value(Some(put_val(k, spec.seed)))
        );
    }
    use utpr_kv::workload::key_of_index;
    for i in 0..spec.records.min(32) {
        let k = key_of_index(i);
        assert_eq!(
            c.call(&Request::Get { key: k }).unwrap(),
            Response::Value(Some(preload_val(k)))
        );
    }
    handle.shutdown();
}

/// Satellite 4: kill the server at a seeded durable-write boundary in the
/// middle of batched load, restart on the surviving pool, and hold the
/// recovery oracles. On failure every violation carries the
/// `UTPR_QC_SEED` replay line.
#[test]
fn kill_mid_load_recovers_acked_writes() {
    let spec = KillSpec {
        cfg: cfg(2, 16),
        load: LoadSpec {
            connections: 12,
            threads: 2,
            records: 400,
            operations: 3_000,
            read_fraction: 0.25,
            mode: LoadMode::Closed { pipeline: 16 },
            seed: base_seed() ^ 0x5a17,
            track_acks: true,
        },
        crash_window: 0.5,
        seed: base_seed(),
    };
    let report = kill_arm(&spec).expect("kill arm harness");
    assert!(
        report.crashed,
        "gate at boundary {} never tripped (UTPR_QC_SEED={})",
        report.boundary,
        base_seed()
    );
    assert!(report.acked > 0, "crash landed before any PUT was acked");
    for f in &report.oracle_failures {
        eprintln!("oracle failure: {f}");
    }
    assert!(report.oracle_failures.is_empty());
    assert!(report.revived);
}
