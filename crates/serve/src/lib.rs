//! Networked KV front: a zero-dependency, std-only TCP server over
//! `utpr-kv` with fence-amortizing group commit, plus the load harness
//! that drives it (closed-loop and open-loop zipfian traffic through
//! virtual-user multiplexing) and the crash arm that kills it mid-load
//! and audits recovery with the faultsweep oracles.
//!
//! - [`proto`] — length-prefixed binary frames (GET/PUT/DELETE/SCAN/
//!   BATCH/PING), streaming decoder, typed [`proto::ProtoError`]s.
//! - [`server`] — thread-per-shard event loops, key-routed execution,
//!   group commit through the undo log with one persist barrier per
//!   batch, acks released only after that barrier.
//! - [`load`] — virtual-user load generation, nearest-rank latency
//!   percentiles, and the kill-the-server-mid-load arm.
//!
//! See DESIGN.md §14 for the serving-layer design and crash semantics.

pub mod load;
pub mod proto;
pub mod server;

pub use load::{
    expected_put_keys, kill_arm, preload, preload_val, put_val, run_load, Client, KillReport,
    KillSpec, LatencySummary, LoadMode, LoadReport, LoadSpec,
};
pub use proto::{Decoder, ErrCode, ProtoError, Request, Response, MAX_BATCH, MAX_FRAME};
pub use server::{
    shard_of, DirectView, ServeConfig, ServeCounters, ServeError, Server, ServerHandle,
};
