//! Thread-per-shard TCP server with fence-amortizing group commit.
//!
//! ## Architecture
//!
//! One acceptor thread hands incoming connections round-robin to
//! `shards` event-loop threads. Each shard thread owns a disjoint key
//! partition (`shard_of(key)`), its own [`KvStore`] over the shared
//! pool, its own allocation slab, and its own undo-log slot — single
//! writer per partition, exactly the `utpr-kv::mt` discipline, with the
//! wire in front. Requests for keys another shard owns are forwarded
//! over a channel and answered back through a completion channel;
//! per-connection sequence numbers keep pipelined responses in request
//! order regardless of which shard executed them.
//!
//! ## Group commit
//!
//! Each loop iteration drains the shard's whole backlog (sockets +
//! forwarded ops) and applies it in chunks of at most `batch_window`
//! operations, one undo-log transaction per chunk. While a chunk runs,
//! the shard's [`AddressSpace`] holds an open *fence-deferral window*:
//! every `sfence` the transaction protocol would issue (begin, per-word
//! log publication, commit) is counted as elided instead of issued. The
//! chunk then persists with **one** real barrier —
//! [`AddressSpace::persist_point`], which drains the pool via
//! [`SharedPool::persist_point`] — and only after that barrier are the
//! chunk's acknowledgements queued for the wire.
//!
//! This is the crash-resilient-objects ack rule: un-acknowledged work
//! may be dropped wholesale on a crash, so nothing inside the window
//! needs individually ordered persistence. A crash mid-chunk loses the
//! chunk *whole* (its lines revert together; recovery rolls back the
//! open transaction), which clients observe as "never acked, absent" —
//! exactly what the faultsweep oracles demand. At `batch_window == 1`
//! the server runs the unbatched baseline: one transaction per op, real
//! fences throughout, ack after commit.
//!
//! Read-only chunks skip the transaction and the barrier entirely.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use utpr_ds::concurrent::FlushCounters;
use utpr_ds::{IndexCore, RbTree};
use utpr_heap::{
    AddressSpace, FlushModel, HeapError, SharedPool, SlabId, TransStats, UndoLog,
    MAX_LOG_SLOTS,
};
use utpr_kv::KvStore;
use utpr_ptr::{site, ExecEnv, Mode, NullSink};

use crate::proto::{Decoder, ErrCode, ProtoError, Request, Response};

/// Result alias for server operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Server-layer failure: heap or socket.
#[derive(Debug)]
pub enum ServeError {
    /// Heap/pool failure.
    Heap(HeapError),
    /// Socket failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Heap(e) => write!(f, "heap: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HeapError> for ServeError {
    fn from(e: HeapError) -> Self {
        ServeError::Heap(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// splitmix64 finalizer (the same mix `utpr-kv::mt` derives seeds with).
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which shard owns `key`. Stable across restarts (pure function of the
/// key), uniform (splitmix-mixed before the modulo), and shared with the
/// direct-view auditors so offline checks route identically.
pub fn shard_of(key: u64, shards: u32) -> u32 {
    (mix(key, 0x5e4e) % u64::from(shards)) as u32
}

/// Server shape.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Event-loop threads / key partitions (1..=[`MAX_LOG_SLOTS`]).
    pub shards: u32,
    /// Max operations per group-commit transaction. `1` is the unbatched
    /// baseline (no deferral window, ack after each commit).
    pub batch_window: usize,
    /// Shared pool size in bytes.
    pub pool_bytes: u64,
    /// Per-shard slab carved for arena allocation.
    pub slab_bytes: u64,
    /// Persistence-domain model for the pool.
    pub flush_model: FlushModel,
    /// Seed for address-space layout derivation.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            batch_window: 16,
            pool_bytes: 64 << 20,
            slab_bytes: 1 << 20,
            flush_model: FlushModel::Eadr,
            seed: 42,
        }
    }
}

/// Live counters, shared between the shard threads and the handle.
#[derive(Default)]
struct ServeStats {
    gets: AtomicU64,
    puts: AtomicU64,
    dels: AtomicU64,
    scans: AtomicU64,
    batch_frames: AtomicU64,
    write_txns: AtomicU64,
    read_chunks: AtomicU64,
    fences_elided: AtomicU64,
    lines_persisted: AtomicU64,
    conns: AtomicU64,
    proto_errors: AtomicU64,
    crashed: AtomicBool,
    trans: Mutex<TransStats>,
}

/// Point-in-time view of a running (or finished) server's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeCounters {
    /// GET operations applied.
    pub gets: u64,
    /// PUT operations applied.
    pub puts: u64,
    /// DELETE operations applied.
    pub dels: u64,
    /// SCAN frames applied.
    pub scans: u64,
    /// BATCH frames applied.
    pub batch_frames: u64,
    /// Group-commit (write) transactions committed.
    pub write_txns: u64,
    /// Read-only chunks served without any barrier.
    pub read_chunks: u64,
    /// Fences elided by open deferral windows.
    pub fences_elided: u64,
    /// Lines made durable at persist points.
    pub lines_persisted: u64,
    /// Connections accepted.
    pub conns: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Pool-wide fences (includes setup; subtract a baseline snapshot for
    /// steady-state rates).
    pub pool_fences: u64,
    /// Pool-wide group commits.
    pub pool_group_commits: u64,
    /// Pool-wide lines drained.
    pub pool_lines_drained: u64,
}

impl ServeCounters {
    /// Mutating operations applied (PUT + DELETE).
    pub fn writes(&self) -> u64 {
        self.puts + self.dels
    }

    /// All operations applied.
    pub fn ops(&self) -> u64 {
        self.gets + self.puts + self.dels + self.scans
    }

    /// The server-side story in the workspace's flush-accounting shape:
    /// `flushes` = lines actually drained, `elided` = fences the deferral
    /// window swallowed, `fences` = real pool barriers.
    pub fn flush_counters(&self) -> FlushCounters {
        FlushCounters {
            flushes: self.pool_lines_drained,
            elided: self.fences_elided,
            fences: self.pool_fences,
            ops: self.ops(),
        }
    }
}

/// A launched server: join handle, address, pool, counters.
pub struct ServerHandle {
    addr: SocketAddr,
    pool: Arc<SharedPool>,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared pool the server persists into.
    pub fn pool(&self) -> &Arc<SharedPool> {
        &self.pool
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ServeCounters {
        let s = &self.stats;
        ServeCounters {
            gets: s.gets.load(Ordering::Relaxed),
            puts: s.puts.load(Ordering::Relaxed),
            dels: s.dels.load(Ordering::Relaxed),
            scans: s.scans.load(Ordering::Relaxed),
            batch_frames: s.batch_frames.load(Ordering::Relaxed),
            write_txns: s.write_txns.load(Ordering::Relaxed),
            read_chunks: s.read_chunks.load(Ordering::Relaxed),
            fences_elided: s.fences_elided.load(Ordering::Relaxed),
            lines_persisted: s.lines_persisted.load(Ordering::Relaxed),
            conns: s.conns.load(Ordering::Relaxed),
            proto_errors: s.proto_errors.load(Ordering::Relaxed),
            pool_fences: self.pool.fence_count(),
            pool_group_commits: self.pool.group_commits(),
            pool_lines_drained: self.pool.lines_drained(),
        }
    }

    /// Whether a shard hit an injected crash (the kill arm's signal).
    pub fn crashed(&self) -> bool {
        self.stats.crashed.load(Ordering::Acquire)
    }

    /// Merged translation-cache stats from exited shard threads.
    pub fn trans_stats(&self) -> TransStats {
        *self.stats.trans.lock().unwrap()
    }

    /// Requests shutdown and joins every thread. Returns the final
    /// counters and whether the server died of an injected crash rather
    /// than a drain.
    pub fn shutdown(mut self) -> (ServeCounters, bool) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let c = self.counters();
        (c, self.crashed())
    }

    /// Joins without signalling shutdown — used by the kill arm, where
    /// the injected crash is what stops the threads.
    pub fn join(mut self) -> (ServeCounters, bool) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.stop.store(true, Ordering::Release);
        let c = self.counters();
        (c, self.crashed())
    }
}

/// Where a pending op's answer goes.
enum RespTo {
    /// A connection on this shard: slot + sequence number.
    Local { conn: u32, seq: u64 },
    /// A connection on another shard, reached through its done-channel.
    Remote { reply: Sender<Done>, conn: u32, seq: u64 },
}

/// One operation waiting in a shard's backlog.
struct PendingOp {
    req: Request,
    to: RespTo,
}

impl PendingOp {
    /// Batch frames weigh their sub-op count against `batch_window`.
    fn weight(&self) -> usize {
        match &self.req {
            Request::Batch(ops) => ops.len().max(1),
            _ => 1,
        }
    }
}

/// A completed remote op returning to its connection's shard.
struct Done {
    conn: u32,
    seq: u64,
    bytes: Vec<u8>,
}

/// A forwarded op travelling to the shard that owns its key.
struct Fwd {
    req: Request,
    reply: Sender<Done>,
    conn: u32,
    seq: u64,
}

struct Conn {
    stream: TcpStream,
    dec: Decoder,
    wbuf: Vec<u8>,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to release onto the wire.
    next_out: u64,
    /// Encoded responses waiting for their turn (reorder buffer).
    ready: BTreeMap<u64, Vec<u8>>,
    /// Set on EOF or protocol error: stop reading, flush, then drop.
    closing: bool,
    /// Fully closed; slot is dead (slots are not reused).
    closed: bool,
}

/// The server factory. Stateless — `launch`/`launch_on` return a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Creates a fresh pool, builds the base image (per-shard store +
    /// undo-log slot + descriptor directory as pool root), binds
    /// `127.0.0.1:0`, and starts the threads.
    ///
    /// # Errors
    ///
    /// Pool formatting, store creation, or socket failures.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is 0 or above [`MAX_LOG_SLOTS`].
    pub fn launch(cfg: &ServeConfig) -> Result<ServerHandle> {
        assert!(
            cfg.shards >= 1 && u64::from(cfg.shards) <= MAX_LOG_SLOTS,
            "shards must be 1..={MAX_LOG_SLOTS}"
        );
        let pool = SharedPool::create("serve", cfg.pool_bytes, 64)?;
        pool.set_flush_model(cfg.flush_model);

        // Base image, single-threaded (slot materialization is not
        // thread-safe by design): directory word s holds shard s's index
        // descriptor.
        let mut space = AddressSpace::new(mix(cfg.seed, 0x5e7e));
        let pid = space.adopt_shared(&pool)?;
        let mut env: ExecEnv<NullSink> =
            ExecEnv::builder(space).mode(Mode::Hw).pool(pid).build();
        let dir = env.alloc(site!("serve.dir", StackLocal), u64::from(cfg.shards) * 8)?;
        for s in 0..u64::from(cfg.shards) {
            let store: KvStore<RbTree> = KvStore::create(&mut env)?;
            env.write_ptr(
                site!("serve.dir-slot", StackLocal),
                dir,
                (s * 8) as i64,
                store.index().descriptor(),
            )?;
            UndoLog::ensure_slot(env.space_mut(), pid, 1 << 16, s)?;
        }
        env.set_root(site!("serve.root", StackLocal), dir)?;
        // The base image must be durable before traffic: one explicit
        // barrier, outside any measurement window.
        env.space_mut().persist_point();
        drop(env);

        Self::launch_on(cfg, &pool)
    }

    /// Starts the server over an existing (typically just-recovered)
    /// pool: reopens the per-shard stores from the root directory and
    /// carves fresh slabs. `cfg.shards` must match the shard count the
    /// pool was created with.
    ///
    /// # Errors
    ///
    /// Adoption, root lookup, or socket failures.
    pub fn launch_on(cfg: &ServeConfig, pool: &Arc<SharedPool>) -> Result<ServerHandle> {
        assert!(
            cfg.shards >= 1 && u64::from(cfg.shards) <= MAX_LOG_SLOTS,
            "shards must be 1..={MAX_LOG_SLOTS}"
        );
        // Crash-abandoned leases are unrecoverable by design; fresh slabs
        // keep every shard on its own allocation cursor.
        let slabs: Vec<SlabId> = (0..cfg.shards)
            .map(|_| pool.carve_slab(cfg.slab_bytes))
            .collect::<std::result::Result<_, _>>()?;

        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stats = Arc::new(ServeStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        // Channel mesh: per shard an ingress (connections), a forward
        // lane, and a completion lane.
        let mut conn_txs = Vec::new();
        let mut fwd_txs = Vec::new();
        let mut shard_rx = Vec::new();
        for _ in 0..cfg.shards {
            let (ctx, crx) = channel::<TcpStream>();
            let (ftx, frx) = channel::<Fwd>();
            let (dtx, drx) = channel::<Done>();
            conn_txs.push(ctx);
            fwd_txs.push(ftx);
            shard_rx.push((crx, frx, dtx, drx));
        }

        let mut threads = Vec::new();
        for (s, (conn_rx, fwd_rx, done_tx, done_rx)) in shard_rx.into_iter().enumerate() {
            let lanes = ShardLanes {
                conn_rx,
                fwd_rx,
                done_tx,
                done_rx,
                fwd_txs: fwd_txs.clone(),
            };
            let (pool, stats, stop, cfg, slab) =
                (Arc::clone(pool), Arc::clone(&stats), Arc::clone(&stop), *cfg, slabs[s]);
            threads.push(std::thread::spawn(move || {
                shard_main(s as u32, &cfg, &pool, slab, lanes, &stats, &stop);
            }));
        }

        // Acceptor.
        {
            let (stats, stop) = (Arc::clone(&stats), Arc::clone(&stop));
            threads.push(std::thread::spawn(move || {
                let mut next = 0usize;
                while !stop.load(Ordering::Acquire) && !stats.crashed.load(Ordering::Acquire)
                {
                    match listener.accept() {
                        Ok((sock, _)) => {
                            stats.conns.fetch_add(1, Ordering::Relaxed);
                            let _ = sock.set_nodelay(true);
                            let _ = sock.set_nonblocking(true);
                            // A send error means the shard already exited
                            // (crash arm); the connection just drops.
                            let _ = conn_txs[next % conn_txs.len()].send(sock);
                            next += 1;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(ServerHandle { addr, pool: Arc::clone(pool), stats, stop, threads })
    }

    /// Post-crash recovery: adopts the pool in a fresh space, rolls back
    /// every active undo-log slot, and validates allocator invariants.
    /// Returns whether any transaction was rolled back.
    ///
    /// # Errors
    ///
    /// Recovery or validation failures.
    pub fn recover(pool: &Arc<SharedPool>) -> Result<bool> {
        let mut space = AddressSpace::new(0x4ec0_4e4);
        let pid = space.adopt_shared(pool)?;
        let rolled = UndoLog::recover(&mut space, pid)?;
        pool.validate()?;
        Ok(rolled)
    }
}

/// Offline store access over a server pool — the auditors' door: crash
/// oracles and checksum folds read through this, bypassing the wire, with
/// the same shard routing the server uses.
pub struct DirectView {
    env: ExecEnv<NullSink>,
    stores: Vec<KvStore<RbTree>>,
}

impl DirectView {
    /// Opens every shard store from the pool's root directory.
    ///
    /// # Errors
    ///
    /// Adoption or root-directory read failures.
    pub fn open(pool: &Arc<SharedPool>, shards: u32) -> Result<DirectView> {
        let mut space = AddressSpace::new(0xd14e_c7);
        let pid = space.adopt_shared(pool)?;
        let mut env: ExecEnv<NullSink> =
            ExecEnv::builder(space).mode(Mode::Hw).pool(pid).build();
        let dir = env.root(site!("serve.root-open", KnownReturn))?;
        let mut stores = Vec::new();
        for s in 0..u64::from(shards) {
            let desc =
                env.read_ptr(site!("serve.desc-open", KnownReturn), dir, (s * 8) as i64)?;
            stores.push(KvStore::open(desc));
        }
        Ok(DirectView { env, stores })
    }

    /// Reads `key` through its owning shard's store.
    ///
    /// # Errors
    ///
    /// Store read failures.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>> {
        let s = shard_of(key, self.stores.len() as u32) as usize;
        Ok(self.stores[s].get(&mut self.env, key)?)
    }

    /// Total keys across all shards.
    ///
    /// # Errors
    ///
    /// Store walk failures.
    pub fn len(&mut self) -> Result<u64> {
        let mut n = 0;
        for s in &mut self.stores {
            n += s.len(&mut self.env)?;
        }
        Ok(n)
    }

    /// Whether the view holds no keys.
    ///
    /// # Errors
    ///
    /// Store walk failures.
    pub fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Runs every shard index's own structural validator (oracle 1 of the
    /// faultsweep battery). Panics inside the validator are reported as
    /// errors, not propagated.
    ///
    /// # Errors
    ///
    /// A validator error or invariant panic, with the shard named.
    pub fn validate(&mut self) -> std::result::Result<(), String> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for (i, store) in self.stores.iter().enumerate() {
            let desc = store.index().descriptor();
            let env = &mut self.env;
            match catch_unwind(AssertUnwindSafe(|| {
                use utpr_ds::IndexCore;
                RbTree::open(desc).validate(env)
            })) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return Err(format!("shard {i}: validator errored: {e}")),
                Err(_) => return Err(format!("shard {i}: structural invariant violated")),
            }
        }
        Ok(())
    }

    /// Order-independent contents fold over `keys`: for each present key,
    /// mixes `(key, value)` into a commutative sum — deterministic no
    /// matter how ops interleaved, as long as final contents match.
    ///
    /// # Errors
    ///
    /// Store read failures.
    pub fn checksum(&mut self, keys: impl Iterator<Item = u64>) -> Result<u64> {
        let mut sum = 0u64;
        let mut present = 0u64;
        for k in keys {
            if let Some(v) = self.get(k)? {
                sum = sum.wrapping_add(mix(k, v));
                present += 1;
            }
        }
        Ok(sum.wrapping_add(mix(0xc047, present)))
    }
}

struct ShardLanes {
    conn_rx: Receiver<TcpStream>,
    fwd_rx: Receiver<Fwd>,
    done_tx: Sender<Done>,
    done_rx: Receiver<Done>,
    fwd_txs: Vec<Sender<Fwd>>,
}

#[allow(clippy::too_many_lines)]
fn shard_main(
    me: u32,
    cfg: &ServeConfig,
    pool: &Arc<SharedPool>,
    slab: SlabId,
    lanes: ShardLanes,
    stats: &Arc<ServeStats>,
    stop: &Arc<AtomicBool>,
) {
    // Shard-local env + store, the mt worker idiom with a wire in front.
    let mut space = AddressSpace::new(mix(cfg.seed, 0x54a4_d ^ u64::from(me)));
    let Ok(pid) = space.adopt_shared(pool) else { return };
    if space.bind_arena_slab(pid, slab).is_err() {
        return;
    }
    let mut env: ExecEnv<NullSink> = ExecEnv::builder(space)
        .mode(Mode::Hw)
        .pool(pid)
        .txn_slot(u64::from(me))
        .build();
    let desc = match env.root(site!("serve.shard-root", KnownReturn)).and_then(|dir| {
        env.read_ptr(site!("serve.shard-desc", KnownReturn), dir, i64::from(me) * 8)
    }) {
        Ok(v) => v,
        Err(_) => return,
    };
    let mut store: KvStore<RbTree> = KvStore::open(desc);

    let mut conns: Vec<Conn> = Vec::new();
    let mut pending: VecDeque<PendingOp> = VecDeque::new();
    let mut rbuf = [0u8; 16 << 10];
    let mut elided_seen = 0u64;

    'outer: loop {
        // An injected crash is machine-wide: once any shard trips the
        // gate, the whole process is dead — no shard may keep serving.
        if stats.crashed.load(Ordering::Acquire) {
            break;
        }
        let mut progressed = false;

        // New connections.
        while let Ok(stream) = lanes.conn_rx.try_recv() {
            conns.push(Conn {
                stream,
                dec: Decoder::new(),
                wbuf: Vec::new(),
                next_seq: 0,
                next_out: 0,
                ready: BTreeMap::new(),
                closing: false,
                closed: false,
            });
            progressed = true;
        }

        // Socket reads → decoded requests → route.
        for slot in 0..conns.len() {
            if conns[slot].closed || conns[slot].closing {
                continue;
            }
            loop {
                match conns[slot].stream.read(&mut rbuf) {
                    Ok(0) => {
                        // EOF inside a frame is a typed protocol error;
                        // a clean boundary is just a hangup.
                        if conns[slot].dec.finish().is_err() {
                            proto_reject(&mut conns[slot], stats, &ProtoError::Truncated);
                        }
                        conns[slot].closing = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        conns[slot].dec.feed(&rbuf[..n]);
                        if !drain_frames(
                            me, cfg, slot as u32, &mut conns[slot], &lanes, &mut pending,
                            stats,
                        ) {
                            break;
                        }
                        if n < rbuf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conns[slot].closed = true;
                        break;
                    }
                }
            }
        }

        // Ops forwarded from other shards join the same backlog.
        while let Ok(f) = lanes.fwd_rx.try_recv() {
            pending.push_back(PendingOp {
                req: f.req,
                to: RespTo::Remote { reply: f.reply, conn: f.conn, seq: f.seq },
            });
            progressed = true;
        }

        // Apply the backlog in group-commit chunks.
        while !pending.is_empty() {
            progressed = true;
            let window = cfg.batch_window.max(1);
            let mut chunk: Vec<PendingOp> = Vec::new();
            let mut weight = 0usize;
            while let Some(p) = pending.front() {
                let w = p.weight();
                // A batch frame never splits; it may alone exceed the
                // window (atomicity beats the knob).
                if !chunk.is_empty() && weight + w > window {
                    break;
                }
                weight += w;
                chunk.push(pending.pop_front().unwrap());
                if weight >= window {
                    break;
                }
            }

            let has_write = chunk.iter().any(|p| p.req.is_write());
            let mut replies: Vec<(RespTo, Response)> = Vec::with_capacity(chunk.len());
            if !has_write {
                for p in chunk {
                    let resp = apply(&mut env, &mut store, &p.req, stats);
                    match resp {
                        Ok(r) => replies.push((p.to, r)),
                        Err(HeapError::CrashInjected { .. }) => {
                            stats.crashed.store(true, Ordering::Release);
                            break 'outer;
                        }
                        Err(e) => replies
                            .push((p.to, Response::Err(ErrCode::Internal, e.to_string()))),
                    }
                }
                stats.read_chunks.fetch_add(1, Ordering::Relaxed);
            } else {
                // Group commit: one transaction, fences deferred, one
                // barrier, then (and only then) the acks.
                let grouped = window > 1;
                if grouped {
                    env.space_mut().set_fence_deferral(true);
                }
                let r = env.with_txn(|env| {
                    for p in &chunk {
                        let resp = apply(env, &mut store, &p.req, stats)?;
                        replies.push((clone_to(&p.to), resp));
                    }
                    Ok(())
                });
                env.space_mut().set_fence_deferral(false);
                match r {
                    Ok(()) => {
                        if grouped {
                            let drained = env.space_mut().persist_point();
                            stats.lines_persisted.fetch_add(drained, Ordering::Relaxed);
                        }
                        stats.write_txns.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(HeapError::CrashInjected { .. }) => {
                        // The machine died mid-batch: nothing was acked,
                        // nothing may be acked. Recovery owns the rest.
                        stats.crashed.store(true, Ordering::Release);
                        break 'outer;
                    }
                    Err(e) => {
                        // Transaction rolled back whole: every op in the
                        // chunk reports failure, atomically unapplied.
                        let msg = e.to_string();
                        replies = chunk
                            .iter()
                            .map(|p| {
                                (
                                    clone_to(&p.to),
                                    Response::Err(ErrCode::Internal, msg.clone()),
                                )
                            })
                            .collect();
                    }
                }
                let e = env.space().fences_elided();
                stats.fences_elided.fetch_add(e - elided_seen, Ordering::Relaxed);
                elided_seen = e;
            }

            // Release acks — durably committed (or refused) by here.
            for (to, resp) in replies {
                let mut bytes = Vec::new();
                resp.encode(&mut bytes);
                match to {
                    RespTo::Local { conn, seq } => {
                        conns[conn as usize].ready.insert(seq, bytes);
                    }
                    RespTo::Remote { reply, conn, seq } => {
                        let _ = reply.send(Done { conn, seq, bytes });
                    }
                }
            }
        }

        // Completions returning from other shards.
        while let Ok(d) = lanes.done_rx.try_recv() {
            if let Some(c) = conns.get_mut(d.conn as usize) {
                c.ready.insert(d.seq, d.bytes);
            }
            progressed = true;
        }

        // Wire: release in-order responses, then push bytes.
        for c in &mut conns {
            if c.closed {
                continue;
            }
            while let Some(bytes) = c.ready.remove(&c.next_out) {
                c.wbuf.extend_from_slice(&bytes);
                c.next_out += 1;
            }
            while !c.wbuf.is_empty() {
                match c.stream.write(&c.wbuf) {
                    Ok(0) => {
                        c.closed = true;
                        break;
                    }
                    Ok(n) => {
                        c.wbuf.drain(..n);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        c.closed = true;
                        break;
                    }
                }
            }
            // A closing conn with no queued work left is done: everything
            // it was owed (including in-flight remote ops) has shipped.
            if c.closing && c.wbuf.is_empty() && c.ready.is_empty() && c.next_out == c.next_seq
            {
                c.closed = true;
            }
        }

        if stop.load(Ordering::Acquire) && pending.is_empty() {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // Fold this shard's translation stats into the shared plane.
    stats.trans.lock().unwrap().merge(&env.space().trans_stats());
}

/// `RespTo` minus the `Clone` bound on `Sender` noise — channels clone
/// cheaply, local slots copy.
fn clone_to(to: &RespTo) -> RespTo {
    match to {
        RespTo::Local { conn, seq } => RespTo::Local { conn: *conn, seq: *seq },
        RespTo::Remote { reply, conn, seq } => {
            RespTo::Remote { reply: reply.clone(), conn: *conn, seq: *seq }
        }
    }
}

/// Decodes every complete frame buffered on `conn`, answering Pings
/// inline, enqueueing locally owned ops, and forwarding the rest.
/// Returns `false` when the connection hit a protocol error (it is now
/// closing).
fn drain_frames(
    me: u32,
    cfg: &ServeConfig,
    slot: u32,
    conn: &mut Conn,
    lanes: &ShardLanes,
    pending: &mut VecDeque<PendingOp>,
    stats: &Arc<ServeStats>,
) -> bool {
    loop {
        let body = match conn.dec.next_frame() {
            Ok(Some(b)) => b.to_vec(),
            Ok(None) => return true,
            Err(e) => {
                proto_reject(conn, stats, &e);
                return false;
            }
        };
        let req = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                proto_reject(conn, stats, &e);
                return false;
            }
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;

        // Frame-level dispatch decisions live here, on the connection's
        // shard; execution lands on the owner.
        let owner = match &req {
            Request::Ping => {
                let mut bytes = Vec::new();
                Response::Pong.encode(&mut bytes);
                conn.ready.insert(seq, bytes);
                continue;
            }
            Request::Get { key } | Request::Put { key, .. } | Request::Del { key } => {
                shard_of(*key, cfg.shards)
            }
            Request::Scan { start, .. } => shard_of(*start, cfg.shards),
            Request::Batch(ops) => {
                let mut owner = None;
                let mut ok = true;
                for op in ops {
                    let k = match op {
                        Request::Get { key }
                        | Request::Put { key, .. }
                        | Request::Del { key } => *key,
                        Request::Scan { start, .. } => *start,
                        _ => {
                            ok = false;
                            break;
                        }
                    };
                    let o = shard_of(k, cfg.shards);
                    if *owner.get_or_insert(o) != o {
                        ok = false;
                        break;
                    }
                }
                match (ok, owner) {
                    (true, Some(o)) => o,
                    _ => {
                        let mut bytes = Vec::new();
                        Response::Err(
                            ErrCode::CrossShardBatch,
                            "batch keys must share one shard".into(),
                        )
                        .encode(&mut bytes);
                        conn.ready.insert(seq, bytes);
                        continue;
                    }
                }
            }
        };

        if owner == me {
            pending.push_back(PendingOp { req, to: RespTo::Local { conn: slot, seq } });
        } else {
            // A dead peer shard (crash arm) drops the op; the client sees
            // a silent non-ack, which is exactly a crash's contract.
            let _ = lanes.fwd_txs[owner as usize].send(Fwd {
                req,
                reply: lanes.done_tx.clone(),
                conn: slot,
                seq,
            });
        }
    }
}

fn proto_reject(conn: &mut Conn, stats: &Arc<ServeStats>, e: &ProtoError) {
    stats.proto_errors.fetch_add(1, Ordering::Relaxed);
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let mut bytes = Vec::new();
    Response::Err(ErrCode::Proto, e.to_string()).encode(&mut bytes);
    conn.ready.insert(seq, bytes);
    conn.closing = true;
}

/// Applies one request against the shard's store. Transactions and
/// fencing are the caller's concern; this is pure store logic.
fn apply(
    env: &mut ExecEnv<NullSink>,
    store: &mut KvStore<RbTree>,
    req: &Request,
    stats: &Arc<ServeStats>,
) -> std::result::Result<Response, HeapError> {
    match req {
        Request::Get { key } => {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Value(store.get(env, *key)?))
        }
        Request::Put { key, val } => {
            stats.puts.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Done(store.set(env, *key, *val)?))
        }
        Request::Del { key } => {
            stats.dels.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Removed(store.remove(env, *key)?))
        }
        Request::Scan { start, count } => {
            stats.scans.fetch_add(1, Ordering::Relaxed);
            let mut pairs = Vec::new();
            for i in 0..u64::from(*count) {
                let k = start.wrapping_add(i);
                if let Some(v) = store.get(env, k)? {
                    pairs.push((k, v));
                }
            }
            Ok(Response::Pairs(pairs))
        }
        Request::Batch(ops) => {
            stats.batch_frames.fetch_add(1, Ordering::Relaxed);
            let mut rs = Vec::with_capacity(ops.len());
            for op in ops {
                rs.push(apply(env, store, op, stats)?);
            }
            Ok(Response::Batch(rs))
        }
        Request::Ping => Ok(Response::Pong),
    }
}
