//! Wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is `[u32 len (LE)][u8 opcode][payload]`, where `len`
//! counts the opcode byte plus the payload. Integers are little-endian;
//! keys and values are 8 bytes, matching the YCSB shape the rest of the
//! workspace runs. Responses use the same framing with a status byte in
//! place of the opcode.
//!
//! Decoding never panics and never desyncs: a partial frame waits for
//! more bytes, and anything unparseable (oversized length claim, unknown
//! opcode, short payload) surfaces as a typed [`ProtoError`] — the server
//! answers with an error frame and closes the connection, since a
//! malformed length prefix leaves no trustworthy resynchronization point.

use std::fmt;

/// Hard ceiling on the claimed frame length (opcode + payload). A claim
/// above this is rejected *before* buffering, so a hostile 4 GiB length
/// prefix cannot balloon the connection buffer.
pub const MAX_FRAME: u32 = 1 << 20;

/// Cap on sub-operations inside one BATCH frame (and keys in one SCAN) —
/// implied by [`MAX_FRAME`], checked explicitly so the count field can be
/// validated without multiplying attacker-controlled numbers.
pub const MAX_BATCH: u32 = 4096;

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_BATCH: u8 = 0x05;
const OP_PING: u8 = 0x06;

const ST_VALUE: u8 = 0x81;
const ST_DONE: u8 = 0x82;
const ST_REMOVED: u8 = 0x83;
const ST_PAIRS: u8 = 0x84;
const ST_BATCH: u8 = 0x85;
const ST_PONG: u8 = 0x86;
const ST_ERR: u8 = 0xEE;

/// Typed protocol decode failure. Fatal to the connection: after any of
/// these the byte stream has no reliable frame boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended inside a length prefix or inside a frame body.
    Truncated,
    /// A length prefix claimed more than [`MAX_FRAME`] bytes.
    Oversized(u32),
    /// A frame length of zero (no room for the opcode).
    EmptyFrame,
    /// The opcode byte names no known operation.
    UnknownOpcode(u8),
    /// The payload did not match the opcode's shape.
    BadPayload(&'static str),
    /// A BATCH nested another BATCH (one level only).
    NestedBatch,
    /// A BATCH or SCAN count above [`MAX_BATCH`].
    BadCount(u32),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "stream truncated mid-frame"),
            ProtoError::Oversized(n) => {
                write!(f, "frame claims {n} bytes (max {MAX_FRAME})")
            }
            ProtoError::EmptyFrame => write!(f, "zero-length frame"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            ProtoError::NestedBatch => write!(f, "BATCH frames cannot nest"),
            ProtoError::BadCount(n) => write!(f, "count {n} exceeds max {MAX_BATCH}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Application-level error codes carried in [`Response::Err`] frames.
/// Distinct from [`ProtoError`]: these describe a well-formed request the
/// server refuses, and the connection survives them (except `Proto`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The peer's bytes failed to decode; connection closes after this.
    Proto = 1,
    /// A BATCH touched keys owned by more than one shard. Atomicity is
    /// per-shard (one undo-log transaction), so such a batch is refused
    /// rather than half-applied.
    CrossShardBatch = 2,
    /// The server is draining for shutdown.
    Shutdown = 3,
    /// Internal store failure (heap error while applying).
    Internal = 4,
}

impl ErrCode {
    fn from_u8(v: u8) -> Option<ErrCode> {
        match v {
            1 => Some(ErrCode::Proto),
            2 => Some(ErrCode::CrossShardBatch),
            3 => Some(ErrCode::Shutdown),
            4 => Some(ErrCode::Internal),
            _ => None,
        }
    }
}

/// One decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Read `key`.
    Get { key: u64 },
    /// Write `key = val`, returning the previous value.
    Put { key: u64, val: u64 },
    /// Remove `key`, returning the previous value.
    Del { key: u64 },
    /// Probe `count` numerically consecutive keys starting at `start`,
    /// returning the present pairs. Partition-local: only keys owned by
    /// `start`'s shard are probed (see DESIGN.md §14).
    Scan { start: u64, count: u32 },
    /// Atomically apply simple ops (no nested batches) in one undo-log
    /// transaction. All keys must live on one shard.
    Batch(Vec<Request>),
    /// Liveness probe; answered from the event loop without touching the
    /// store.
    Ping,
}

/// One response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// GET result.
    Value(Option<u64>),
    /// PUT result: the value the key held before, if any.
    Done(Option<u64>),
    /// DELETE result: the removed value, if any.
    Removed(Option<u64>),
    /// SCAN result: present `(key, value)` pairs, ascending by key.
    Pairs(Vec<(u64, u64)>),
    /// Per-sub-op results of a BATCH, in request order.
    Batch(Vec<Response>),
    /// PING reply.
    Pong,
    /// Refusal with a code and a short human-readable detail.
    Err(ErrCode, String),
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

/// Cursor over one frame's payload; all reads are bounds-checked.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let v = *self.b.get(self.at).ok_or(ProtoError::BadPayload("short read"))?;
        self.at += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let s = self
            .b
            .get(self.at..self.at + 4)
            .ok_or(ProtoError::BadPayload("short read"))?;
        self.at += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let s = self
            .b
            .get(self.at..self.at + 8)
            .ok_or(ProtoError::BadPayload("short read"))?;
        self.at += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload("trailing bytes"))
        }
    }

    fn opt(&mut self) -> Result<Option<u64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(ProtoError::BadPayload("bad option tag")),
        }
    }
}

impl Request {
    /// Appends this request as one framed message onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let at = out.len();
        out.extend_from_slice(&[0; 4]); // length back-patched below
        self.encode_body(out);
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get { key } => {
                out.push(OP_GET);
                put_u64(out, *key);
            }
            Request::Put { key, val } => {
                out.push(OP_PUT);
                put_u64(out, *key);
                put_u64(out, *val);
            }
            Request::Del { key } => {
                out.push(OP_DEL);
                put_u64(out, *key);
            }
            Request::Scan { start, count } => {
                out.push(OP_SCAN);
                put_u64(out, *start);
                out.extend_from_slice(&count.to_le_bytes());
            }
            Request::Batch(ops) => {
                out.push(OP_BATCH);
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    op.encode_body(out);
                }
            }
            Request::Ping => out.push(OP_PING),
        }
    }

    /// Decodes one frame body (opcode + payload, the length prefix already
    /// stripped and validated by [`Decoder`]).
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] the body can exhibit; never panics.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur { b: body, at: 0 };
        let req = Self::decode_at(&mut c, false)?;
        c.done()?;
        Ok(req)
    }

    fn decode_at(c: &mut Cur, in_batch: bool) -> Result<Request, ProtoError> {
        match c.u8().map_err(|_| ProtoError::EmptyFrame)? {
            OP_GET => Ok(Request::Get { key: c.u64()? }),
            OP_PUT => Ok(Request::Put { key: c.u64()?, val: c.u64()? }),
            OP_DEL => Ok(Request::Del { key: c.u64()? }),
            OP_SCAN => {
                let (start, count) = (c.u64()?, c.u32()?);
                if count > MAX_BATCH {
                    return Err(ProtoError::BadCount(count));
                }
                Ok(Request::Scan { start, count })
            }
            OP_BATCH => {
                if in_batch {
                    return Err(ProtoError::NestedBatch);
                }
                let n = c.u32()?;
                if n > MAX_BATCH {
                    return Err(ProtoError::BadCount(n));
                }
                let mut ops = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ops.push(Self::decode_at(c, true)?);
                }
                Ok(Request::Batch(ops))
            }
            OP_PING => Ok(Request::Ping),
            op => Err(ProtoError::UnknownOpcode(op)),
        }
    }

    /// Whether this request (or any sub-op of a batch) mutates the store.
    pub fn is_write(&self) -> bool {
        match self {
            Request::Put { .. } | Request::Del { .. } => true,
            Request::Batch(ops) => ops.iter().any(Request::is_write),
            _ => false,
        }
    }
}

impl Response {
    /// Appends this response as one framed message onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let at = out.len();
        out.extend_from_slice(&[0; 4]);
        self.encode_body(out);
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Value(v) => {
                out.push(ST_VALUE);
                put_opt(out, *v);
            }
            Response::Done(v) => {
                out.push(ST_DONE);
                put_opt(out, *v);
            }
            Response::Removed(v) => {
                out.push(ST_REMOVED);
                put_opt(out, *v);
            }
            Response::Pairs(ps) => {
                out.push(ST_PAIRS);
                out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
                for (k, v) in ps {
                    put_u64(out, *k);
                    put_u64(out, *v);
                }
            }
            Response::Batch(rs) => {
                out.push(ST_BATCH);
                out.extend_from_slice(&(rs.len() as u32).to_le_bytes());
                for r in rs {
                    r.encode_body(out);
                }
            }
            Response::Pong => out.push(ST_PONG),
            Response::Err(code, msg) => {
                out.push(ST_ERR);
                out.push(*code as u8);
                let m = &msg.as_bytes()[..msg.len().min(512)];
                out.extend_from_slice(&(m.len() as u32).to_le_bytes());
                out.extend_from_slice(m);
            }
        }
    }

    /// Decodes one response frame body.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] the body can exhibit; never panics.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur { b: body, at: 0 };
        let r = Self::decode_at(&mut c, false)?;
        c.done()?;
        Ok(r)
    }

    fn decode_at(c: &mut Cur, in_batch: bool) -> Result<Response, ProtoError> {
        match c.u8().map_err(|_| ProtoError::EmptyFrame)? {
            ST_VALUE => Ok(Response::Value(c.opt()?)),
            ST_DONE => Ok(Response::Done(c.opt()?)),
            ST_REMOVED => Ok(Response::Removed(c.opt()?)),
            ST_PAIRS => {
                let n = c.u32()?;
                if n > MAX_BATCH {
                    return Err(ProtoError::BadCount(n));
                }
                let mut ps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ps.push((c.u64()?, c.u64()?));
                }
                Ok(Response::Pairs(ps))
            }
            ST_BATCH => {
                if in_batch {
                    return Err(ProtoError::NestedBatch);
                }
                let n = c.u32()?;
                if n > MAX_BATCH {
                    return Err(ProtoError::BadCount(n));
                }
                let mut rs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    rs.push(Self::decode_at(c, true)?);
                }
                Ok(Response::Batch(rs))
            }
            ST_PONG => Ok(Response::Pong),
            ST_ERR => {
                let code =
                    ErrCode::from_u8(c.u8()?).ok_or(ProtoError::BadPayload("bad err code"))?;
                let n = c.u32()? as usize;
                if n > 512 {
                    return Err(ProtoError::BadPayload("oversized err text"));
                }
                let s = c
                    .b
                    .get(c.at..c.at + n)
                    .ok_or(ProtoError::BadPayload("short read"))?;
                c.at += n;
                Ok(Response::Err(code, String::from_utf8_lossy(s).into_owned()))
            }
            t => Err(ProtoError::UnknownOpcode(t)),
        }
    }
}

/// Streaming frame splitter: feed arbitrary byte chunks, pop whole frame
/// bodies. Shared by both directions (requests and responses use the same
/// framing). Incomplete frames are not an error — they wait — but an
/// oversized claim is reported immediately, before the stream would have
/// to buffer it.
#[derive(Default, Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    at: usize,
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: move the tail down once the consumed prefix
        // dominates, keeping feed() amortized O(bytes).
        if self.at > 4096 && self.at * 2 > self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body (opcode + payload), or `None` if
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] / [`ProtoError::EmptyFrame`] on an
    /// unusable length prefix. After an error the decoder is poisoned
    /// conceptually — callers close the connection.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, ProtoError> {
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return Ok(None);
        }
        let len =
            u32::from_le_bytes(self.buf[self.at..self.at + 4].try_into().unwrap());
        if len == 0 {
            return Err(ProtoError::EmptyFrame);
        }
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        let need = 4 + len as usize;
        if avail < need {
            return Ok(None);
        }
        let start = self.at + 4;
        self.at += need;
        Ok(Some(&self.buf[start..start + len as usize]))
    }

    /// End-of-stream check: leftover bytes mean the peer died mid-frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Truncated`] when a partial frame remains buffered.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Truncated)
        }
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(r: &Request) -> Request {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let mut d = Decoder::new();
        d.feed(&buf);
        let body = d.next_frame().unwrap().unwrap().to_vec();
        d.finish().unwrap();
        Request::decode(&body).unwrap()
    }

    #[test]
    fn simple_frames_round_trip() {
        for r in [
            Request::Get { key: 7 },
            Request::Put { key: u64::MAX, val: 0 },
            Request::Del { key: 1 },
            Request::Scan { start: 100, count: 16 },
            Request::Ping,
            Request::Batch(vec![
                Request::Put { key: 1, val: 2 },
                Request::Del { key: 3 },
                Request::Get { key: 4 },
            ]),
        ] {
            assert_eq!(round_trip_req(&r), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        for r in [
            Response::Value(Some(9)),
            Response::Value(None),
            Response::Done(None),
            Response::Removed(Some(3)),
            Response::Pairs(vec![(1, 2), (3, 4)]),
            Response::Batch(vec![Response::Done(None), Response::Value(Some(1))]),
            Response::Pong,
            Response::Err(ErrCode::CrossShardBatch, "keys span shards".into()),
        ] {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            let mut d = Decoder::new();
            d.feed(&buf);
            let body = d.next_frame().unwrap().unwrap().to_vec();
            assert_eq!(Response::decode(&body).unwrap(), r);
        }
    }

    #[test]
    fn decoder_handles_arbitrary_chunking() {
        let reqs = [
            Request::Put { key: 11, val: 22 },
            Request::Get { key: 11 },
            Request::Batch(vec![Request::Put { key: 1, val: 1 }; 5]),
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        // Feed one byte at a time: every frame must still pop out intact.
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for b in &wire {
            d.feed(std::slice::from_ref(b));
            while let Some(body) = d.next_frame().unwrap() {
                let body = body.to_vec();
                got.push(Request::decode(&body).unwrap());
            }
        }
        d.finish().unwrap();
        assert_eq!(got.as_slice(), reqs.as_slice());
    }

    #[test]
    fn oversized_claim_is_rejected_before_buffering() {
        let mut d = Decoder::new();
        d.feed(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(d.next_frame(), Err(ProtoError::Oversized(MAX_FRAME + 1)));
    }

    #[test]
    fn truncated_stream_is_typed() {
        let mut buf = Vec::new();
        Request::Put { key: 5, val: 6 }.encode(&mut buf);
        let mut d = Decoder::new();
        d.feed(&buf[..buf.len() - 3]);
        assert_eq!(d.next_frame(), Ok(None), "partial frame just waits");
        assert_eq!(d.finish(), Err(ProtoError::Truncated));
        // Truncated length prefix alone.
        let mut d2 = Decoder::new();
        d2.feed(&[1, 0]);
        assert_eq!(d2.next_frame(), Ok(None));
        assert_eq!(d2.finish(), Err(ProtoError::Truncated));
    }

    #[test]
    fn unknown_opcode_and_bad_shapes_are_typed() {
        assert_eq!(Request::decode(&[0x7f]), Err(ProtoError::UnknownOpcode(0x7f)));
        assert_eq!(
            Request::decode(&[OP_PUT, 1, 2, 3]),
            Err(ProtoError::BadPayload("short read"))
        );
        let mut long = vec![OP_GET];
        long.extend_from_slice(&[0; 9]); // one byte too many
        assert_eq!(Request::decode(&long), Err(ProtoError::BadPayload("trailing bytes")));
        // Nested batch refused.
        let mut nested = vec![OP_BATCH];
        nested.extend_from_slice(&1u32.to_le_bytes());
        nested.push(OP_BATCH);
        nested.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(Request::decode(&nested), Err(ProtoError::NestedBatch));
        // Hostile batch count.
        let mut big = vec![OP_BATCH];
        big.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&big), Err(ProtoError::BadCount(u32::MAX)));
    }
}
