//! Load harness: closed-loop and open-loop zipfian traffic through
//! virtual-user multiplexing, plus the kill-the-server-mid-load arm.
//!
//! Virtual users ("vusers") are simulated connections — each owns a real
//! nonblocking `TcpStream`, but thousands of them are multiplexed over a
//! few OS threads polling round-robin, so connection count scales
//! independently of thread count. GET keys draw from a shared
//! [`KeyUniverse`] (the ζ-table is built once; each vuser's sampler seeds
//! in O(1)); PUTs insert fresh vuser-unique keys, so the final store
//! contents are a pure function of the spec — that is what makes the
//! bench checksum deterministic even though batching timing is not.
//!
//! Latency is recorded per op and summarized with exact nearest-rank
//! percentiles ([`utpr_qc::bench::nearest_rank`]). Open-loop mode
//! measures from the op's *intended* send time, so coordinated omission
//! (a stalled server delaying its own measurement schedule) shows up in
//! the tail instead of hiding.
//!
//! The [`kill_arm`] runs the faultsweep discipline over the wire: count
//! durable-write boundaries with a probe, arm the machine-wide gate at a
//! seeded boundary, drive load until the server dies mid-batch, recover
//! every undo-log slot, and check the crash-resilient-objects oracles —
//! every *acked* write present, every unacked write committed-or-absent,
//! structural invariants intact, and the reborn server serving.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use utpr_heap::FaultPlan;
use utpr_kv::workload::{key_of_index, KeyUniverse};
use utpr_kv::SweepFailure;
use utpr_qc::bench::nearest_rank;

use crate::proto::{Decoder, Request, Response};
use crate::server::{DirectView, Result, ServeConfig, ServeError, Server};

/// How the generator paces requests.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Each vuser keeps up to `pipeline` requests in flight and sends the
    /// next as soon as a slot frees — offered load follows service rate.
    Closed {
        /// In-flight requests per vuser.
        pipeline: usize,
    },
    /// Requests are scheduled at a fixed aggregate rate regardless of
    /// completions; latency is measured from the intended send time.
    Open {
        /// Aggregate target across all vusers, ops/second.
        ops_per_sec: f64,
    },
}

/// Shape of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Virtual users (simulated connections).
    pub connections: u32,
    /// OS threads multiplexing them.
    pub threads: u32,
    /// Preloaded records forming the GET universe.
    pub records: u64,
    /// Total measured operations across all vusers.
    pub operations: u64,
    /// Fraction of GETs; the rest are PUTs of fresh vuser-unique keys.
    pub read_fraction: f64,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Seed for per-vuser RNG derivation.
    pub seed: u64,
    /// Record each PUT's fate for the crash oracles (costs memory).
    pub track_acks: bool,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            connections: 64,
            threads: 2,
            records: 2_000,
            operations: 10_000,
            read_fraction: 0.5,
            mode: LoadMode::Closed { pipeline: 8 },
            seed: 42,
            track_acks: false,
        }
    }
}

/// Nearest-rank latency summary, microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// 50th percentile.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Slowest op.
    pub max_us: f64,
    /// Samples folded in.
    pub samples: u64,
}

impl LatencySummary {
    fn from_samples(mut us: Vec<f64>) -> LatencySummary {
        if us.is_empty() {
            return LatencySummary::default();
        }
        us.sort_by(f64::total_cmp);
        let n = us.len();
        LatencySummary {
            p50_us: nearest_rank(&us, 0.50),
            p99_us: nearest_rank(&us, 0.99),
            p999_us: nearest_rank(&us, 0.999),
            mean_us: us.iter().sum::<f64>() / n as f64,
            max_us: us[n - 1],
            samples: n as u64,
        }
    }
}

/// What one load run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests written to sockets.
    pub ops_sent: u64,
    /// Responses received (excluding errors).
    pub ops_acked: u64,
    /// Error responses received.
    pub errors: u64,
    /// Vuser connections that died mid-run (crash arm signal).
    pub dead_conns: u64,
    /// Wall-clock seconds for the measured phase.
    pub wall_s: f64,
    /// Acked ops per wall second.
    pub throughput: f64,
    /// Latency summary over acked ops.
    pub latency: LatencySummary,
    /// Acknowledged PUTs `(key, val)` — populated when `track_acks`.
    pub acked_puts: Vec<(u64, u64)>,
    /// Sent-but-unacknowledged PUTs — populated when `track_acks`.
    pub unacked_puts: Vec<(u64, u64)>,
    /// Raw latency samples in flight between a worker thread and the
    /// merge — percentiles do not merge, so the parent refolds these.
    #[doc(hidden)]
    pub raw_samples: Vec<f64>,
}

/// The value every load-phase PUT writes for `key` — a pure function, so
/// auditors can reconstruct expected contents without a log.
pub fn put_val(key: u64, seed: u64) -> u64 {
    let mut x = key ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x7a1u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x ^ (x >> 31)
}

/// The value the preload phase writes for `key`.
pub fn preload_val(key: u64) -> u64 {
    key ^ 0x5eed_5eed_5eed_5eed
}

fn vuser_quota(spec: &LoadSpec, v: u32) -> u64 {
    let per = spec.operations / u64::from(spec.connections);
    let rem = spec.operations % u64::from(spec.connections);
    per + u64::from(u64::from(v) < rem)
}

/// The fresh keys vuser `v` inserts, in order: globally unique by
/// construction (disjoint index ranges above the preload range), so final
/// contents are deterministic under any interleaving.
fn insert_key(spec: &LoadSpec, v: u32, i: u64) -> u64 {
    let per = spec.operations / u64::from(spec.connections) + 1;
    key_of_index(spec.records + u64::from(v) * per + i)
}

/// Enumerates every key the load phase *would* insert if it ran to
/// completion — replays each vuser's op-mix RNG without touching a
/// socket. The bench folds its contents checksum over
/// `preload ∪ expected_put_keys`.
pub fn expected_put_keys(spec: &LoadSpec) -> Vec<u64> {
    let mut keys = Vec::new();
    for v in 0..spec.connections {
        let mut rng = utpr_kv::rng::Rng::new(spec.seed ^ (u64::from(v) << 17) ^ 0xab5e);
        let mut inserts = 0u64;
        for _ in 0..vuser_quota(spec, v) {
            if rng.f64() >= spec.read_fraction {
                keys.push(insert_key(spec, v, inserts));
                inserts += 1;
            }
        }
    }
    keys
}

/// A simple blocking client for tests and probes: one request, one
/// response, in order.
pub struct Client {
    stream: TcpStream,
    dec: Decoder,
}

impl Client {
    /// Connects (blocking) to a server.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, dec: Decoder::new() })
    }

    /// Sends `req` and blocks for its response.
    ///
    /// # Errors
    ///
    /// Socket failures, or `InvalidData` on an undecodable response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut out = Vec::new();
        req.encode(&mut out);
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// Sends a whole slice of requests pipelined, then collects all
    /// responses in order.
    ///
    /// # Errors
    ///
    /// Socket failures, or `InvalidData` on an undecodable response.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> std::io::Result<Vec<Response>> {
        let mut out = Vec::new();
        for r in reqs {
            r.encode(&mut out);
        }
        self.stream.write_all(&out)?;
        (0..reqs.len()).map(|_| self.read_response()).collect()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(body) = self
                .dec
                .next_frame()
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?
            {
                let body = body.to_vec();
                return Response::decode(&body)
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.dec.feed(&buf[..n]);
        }
    }
}

/// Preloads `records` keys over the wire (pipelined PUTs of
/// [`preload_val`]), returning how many were acked.
///
/// # Errors
///
/// Socket failures.
pub fn preload(addr: SocketAddr, records: u64) -> std::io::Result<u64> {
    let mut c = Client::connect(addr)?;
    let mut acked = 0u64;
    let mut i = 0u64;
    while i < records {
        let n = (records - i).min(256);
        let reqs: Vec<Request> = (i..i + n)
            .map(|j| {
                let k = key_of_index(j);
                Request::Put { key: k, val: preload_val(k) }
            })
            .collect();
        for r in c.call_pipelined(&reqs)? {
            acked += u64::from(matches!(r, Response::Done(_)));
        }
        i += n;
    }
    Ok(acked)
}

/// One in-flight request's bookkeeping.
struct InFlight {
    /// When latency starts counting: send time (closed) or intended send
    /// time (open — the coordinated-omission-safe origin).
    t0: Instant,
    /// `Some((key, val))` when this is a PUT the oracles care about.
    put: Option<(u64, u64)>,
}

struct Vuser {
    stream: TcpStream,
    dec: Decoder,
    wbuf: Vec<u8>,
    inflight: VecDeque<InFlight>,
    quota: u64,
    sent: u64,
    acked: u64,
    errors: u64,
    inserts: u64,
    keys: utpr_kv::workload::KeyStream,
    rng: utpr_kv::rng::Rng,
    latencies_us: Vec<f64>,
    acked_puts: Vec<(u64, u64)>,
    unacked_puts: Vec<(u64, u64)>,
    dead: bool,
    /// Open-loop send schedule: next intended send instant.
    next_send: Instant,
    interval: Duration,
}

impl Vuser {
    fn done(&self) -> bool {
        self.dead || (self.sent == self.quota && self.inflight.is_empty())
    }

    fn die(&mut self, track: bool) {
        self.dead = true;
        if track {
            for f in self.inflight.drain(..) {
                if let Some(kv) = f.put {
                    self.unacked_puts.push(kv);
                }
            }
        } else {
            self.inflight.clear();
        }
    }
}

/// Drives one load phase against a running server.
///
/// # Errors
///
/// Connection-establishment failures. (Mid-run socket deaths are data,
/// not errors — they land in `dead_conns`.)
///
/// # Panics
///
/// Panics if `connections`, `threads`, `records`, or an open-loop rate
/// is zero.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> std::io::Result<LoadReport> {
    assert!(spec.connections >= 1 && spec.threads >= 1 && spec.records >= 1);
    if let LoadMode::Open { ops_per_sec } = spec.mode {
        assert!(ops_per_sec > 0.0, "open-loop rate must be positive");
    }
    let universe = KeyUniverse::new(spec.records);

    let reports: Vec<std::io::Result<LoadReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| {
                let universe = &universe;
                s.spawn(move || drive_thread(addr, spec, universe, t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load thread panicked")).collect()
    });

    let mut all_lat: Vec<f64> = Vec::new();
    let mut out = LoadReport::default();
    for r in reports {
        let mut r = r?;
        out.ops_sent += r.ops_sent;
        out.ops_acked += r.ops_acked;
        out.errors += r.errors;
        out.dead_conns += r.dead_conns;
        out.wall_s = out.wall_s.max(r.wall_s);
        all_lat.append(&mut r.raw_samples);
        out.acked_puts.append(&mut r.acked_puts);
        out.unacked_puts.append(&mut r.unacked_puts);
    }
    out.latency = LatencySummary::from_samples(all_lat);
    out.throughput = if out.wall_s > 0.0 { out.ops_acked as f64 / out.wall_s } else { 0.0 };
    Ok(out)
}

fn drive_thread(
    addr: SocketAddr,
    spec: &LoadSpec,
    universe: &KeyUniverse,
    t: u32,
) -> std::io::Result<LoadReport> {
    // Vusers are partitioned contiguously across threads.
    let per = spec.connections / spec.threads;
    let rem = spec.connections % spec.threads;
    let lo = t * per + t.min(rem);
    let n = per + u32::from(t < rem);
    let start = Instant::now();

    let mut vusers: Vec<Vuser> = Vec::with_capacity(n as usize);
    for i in 0..n {
        let v = lo + i;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let quota = vuser_quota(spec, v);
        let (interval, first) = match spec.mode {
            LoadMode::Closed { .. } => (Duration::ZERO, start),
            LoadMode::Open { ops_per_sec } => {
                let iv =
                    Duration::from_secs_f64(f64::from(spec.connections) / ops_per_sec);
                // Stagger phases so the fleet doesn't fire in lockstep.
                (iv, start + iv.mul_f64(f64::from(v) / f64::from(spec.connections)))
            }
        };
        vusers.push(Vuser {
            stream,
            dec: Decoder::new(),
            wbuf: Vec::new(),
            inflight: VecDeque::new(),
            quota,
            sent: 0,
            acked: 0,
            errors: 0,
            inserts: 0,
            keys: universe.stream(spec.seed ^ (u64::from(v) << 33) ^ 0x6e7),
            rng: utpr_kv::rng::Rng::new(spec.seed ^ (u64::from(v) << 17) ^ 0xab5e),
            latencies_us: Vec::new(),
            acked_puts: Vec::new(),
            unacked_puts: Vec::new(),
            dead: false,
            next_send: first,
            interval,
        });
    }

    let pipeline = match spec.mode {
        LoadMode::Closed { pipeline } => pipeline.max(1),
        // Open loop bounds memory, not rate: a stalled server backs up
        // the in-flight queue and the tail pays, visibly.
        LoadMode::Open { .. } => 1 << 14,
    };
    let mut rbuf = [0u8; 16 << 10];

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for u in 0..vusers.len() {
            let v = u as u32 + lo;
            let vu = &mut vusers[u];
            if vu.done() {
                continue;
            }
            all_done = false;

            // Send side.
            let now = Instant::now();
            while !vu.dead && vu.sent < vu.quota && vu.inflight.len() < pipeline {
                let (t0, ready) = match spec.mode {
                    LoadMode::Closed { .. } => (now, true),
                    LoadMode::Open { .. } => (vu.next_send, vu.next_send <= now),
                };
                if !ready {
                    break;
                }
                let is_put = vu.rng.f64() >= spec.read_fraction;
                let (req, put) = if is_put {
                    let key = insert_key(spec, v, vu.inserts);
                    vu.inserts += 1;
                    let val = put_val(key, spec.seed);
                    (Request::Put { key, val }, Some((key, val)))
                } else {
                    (Request::Get { key: vu.keys.next_key() }, None)
                };
                req.encode(&mut vu.wbuf);
                vu.inflight.push_back(InFlight { t0, put });
                vu.sent += 1;
                vu.next_send += vu.interval;
                progressed = true;
            }
            while !vu.wbuf.is_empty() {
                match vu.stream.write(&vu.wbuf) {
                    Ok(0) => {
                        vu.die(spec.track_acks);
                        break;
                    }
                    Ok(k) => {
                        vu.wbuf.drain(..k);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        vu.die(spec.track_acks);
                        break;
                    }
                }
            }

            // Receive side.
            if vu.dead {
                continue;
            }
            loop {
                match vu.stream.read(&mut rbuf) {
                    Ok(0) => {
                        vu.die(spec.track_acks);
                        break;
                    }
                    Ok(k) => {
                        progressed = true;
                        vu.dec.feed(&rbuf[..k]);
                        loop {
                            let ok = match vu.dec.next_frame() {
                                Ok(Some(body)) => {
                                    let is_err = matches!(
                                        Response::decode(body),
                                        Ok(Response::Err(..)) | Err(_)
                                    );
                                    !is_err
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    vu.die(spec.track_acks);
                                    break;
                                }
                            };
                            let Some(f) = vu.inflight.pop_front() else {
                                vu.die(spec.track_acks);
                                break;
                            };
                            let us = f.t0.elapsed().as_secs_f64() * 1e6;
                            vu.latencies_us.push(us);
                            if ok {
                                vu.acked += 1;
                                if let (Some(kv), true) = (f.put, spec.track_acks) {
                                    vu.acked_puts.push(kv);
                                }
                            } else {
                                vu.errors += 1;
                            }
                        }
                        if k < rbuf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        vu.die(spec.track_acks);
                        break;
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    let wall = start.elapsed().as_secs_f64();
    let mut out = LoadReport { wall_s: wall, ..LoadReport::default() };
    for mut vu in vusers {
        out.ops_sent += vu.sent;
        out.ops_acked += vu.acked;
        out.errors += vu.errors;
        out.dead_conns += u64::from(vu.dead);
        out.raw_samples.append(&mut vu.latencies_us);
        out.acked_puts.append(&mut vu.acked_puts);
        out.unacked_puts.append(&mut vu.unacked_puts);
    }
    Ok(out)
}

/// Shape of one kill-the-server-mid-load trial.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    /// Server shape (eADR expected — the clean-crash model the mt sweeps
    /// use; ADR torn drains are a different experiment).
    pub cfg: ServeConfig,
    /// The load to die under. `track_acks` is forced on.
    pub load: LoadSpec,
    /// Where in the measured boundary budget the gate lands, as a
    /// seeded fraction drawn from `(0.1, 0.1 + crash_window)`.
    pub crash_window: f64,
    /// Trial seed (pass `utpr_qc::runner::base_seed()` for replayability).
    pub seed: u64,
}

/// What one kill trial observed. `oracle_failures` empty ⇔ pass.
#[derive(Clone, Debug, Default)]
pub struct KillReport {
    /// The armed boundary index.
    pub boundary: u64,
    /// Whether the gate actually tripped mid-load.
    pub crashed: bool,
    /// Whether recovery rolled back an open transaction.
    pub rolled_back: bool,
    /// PUTs the client saw acked / sent-unacked.
    pub acked: u64,
    /// PUTs sent but never acknowledged.
    pub unacked: u64,
    /// Oracle violations, formatted with the `UTPR_QC_SEED` replay line.
    pub oracle_failures: Vec<String>,
    /// Whether the relaunched server served a probe PUT+GET.
    pub revived: bool,
}

/// Runs the kill arm: probe boundaries, arm the gate, drive load into the
/// crash, recover, audit, relaunch.
///
/// # Errors
///
/// Harness failures (launch, preload, sockets) — oracle *verdicts* are
/// data in the report, not errors.
///
/// # Panics
///
/// Panics if the load spec is degenerate (see [`run_load`]).
pub fn kill_arm(spec: &KillSpec) -> Result<KillReport> {
    let fail = |k: u64, detail: String| {
        SweepFailure { crash_point: k, seed: spec.seed, detail }.to_string()
    };
    let mut load = spec.load;
    load.track_acks = true;

    // Phase 1: boundary census. A short unarmed probe measures durable
    // writes per op so the gate can be aimed mid-load.
    let handle = Server::launch(&spec.cfg)?;
    let addr = handle.addr();
    preload(addr, load.records).map_err(ServeError::Io)?;
    handle.pool().set_faults(FaultPlan::counting());
    let mut probe = load;
    probe.operations = (load.operations / 10).max(64);
    probe.track_acks = false;
    run_load(addr, &probe).map_err(ServeError::Io)?;
    let per_op =
        handle.pool().faults().writes() as f64 / probe.operations.max(1) as f64;
    handle.shutdown();

    // Phase 2: armed run on a fresh server. The boundary is a seeded
    // fraction of the full load's budget, placed past warmup.
    let frac = 0.1
        + (mix64(spec.seed ^ 0x6b31_6c6c) as f64 / u64::MAX as f64)
            * spec.crash_window.clamp(0.01, 0.8);
    let budget = per_op * load.operations as f64;
    let k = (budget * frac).max(8.0) as u64;

    let handle = Server::launch(&spec.cfg)?;
    let addr = handle.addr();
    preload(addr, load.records).map_err(ServeError::Io)?;
    handle.pool().set_faults(FaultPlan::crash_at(k));
    let lr = run_load(addr, &load).map_err(ServeError::Io)?;
    let pool = handle.pool().clone();
    let (_, crashed) = handle.join();

    let mut out = KillReport {
        boundary: k,
        crashed,
        acked: lr.acked_puts.len() as u64,
        unacked: lr.unacked_puts.len() as u64,
        ..KillReport::default()
    };
    if !crashed {
        out.oracle_failures.push(fail(
            k,
            format!(
                "armed run completed without crashing (k={k} past the load's boundary budget)"
            ),
        ));
        return Ok(out);
    }

    // Phase 3: recovery + oracles, the faultsweep battery over the wire's
    // ack log.
    pool.set_faults(FaultPlan::disabled());
    out.rolled_back = Server::recover(&pool)?;
    let mut view = DirectView::open(&pool, spec.cfg.shards)?;
    if let Err(e) = view.validate() {
        out.oracle_failures.push(fail(k, e));
    }
    for &(key, val) in &lr.acked_puts {
        match view.get(key)? {
            Some(v) if v == val => {}
            got => {
                out.oracle_failures.push(fail(
                    k,
                    format!("acked PUT {key:#x}={val:#x} reads back as {got:?}"),
                ));
            }
        }
    }
    for &(key, val) in &lr.unacked_puts {
        match view.get(key)? {
            None => {}
            Some(v) if v == val => {}
            Some(v) => {
                out.oracle_failures.push(fail(
                    k,
                    format!(
                        "unacked PUT {key:#x} is neither absent nor committed: holds {v:#x} (wrote {val:#x})"
                    ),
                ));
            }
        }
    }
    drop(view);

    // Phase 4: the reborn server must serve.
    let handle = Server::launch_on(&spec.cfg, &pool)?;
    let mut c = Client::connect(handle.addr()).map_err(ServeError::Io)?;
    let probe_key = key_of_index(u64::MAX / 2);
    let put = c.call(&Request::Put { key: probe_key, val: 0xa11ce });
    let get = c.call(&Request::Get { key: probe_key });
    out.revived = matches!(put, Ok(Response::Done(_)))
        && matches!(get, Ok(Response::Value(Some(0xa11ce))));
    if !out.revived {
        out.oracle_failures
            .push(fail(k, "relaunched server failed the PUT+GET probe".into()));
    }
    handle.shutdown();
    Ok(out)
}

fn mix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}
